#pragma once

/// \file routing.hpp
/// Minimal-hop routing over a concrete interconnect Graph.
///
/// The table stores per-destination BFS distances, so any neighbour one
/// step closer to the destination is a legal next hop. Two policies:
///
///  * kDeterministic — always the lowest-id minimal neighbour. Simple,
///    but on a fat-tree it funnels every flow of a switch through the
///    same up-link and throws away the topology's path diversity.
///  * kRandomMinimal — ECMP-style: each hop picks uniformly among the
///    minimal next hops. This is what makes a fat-tree actually deliver
///    its full bisection bandwidth (Theorem 1 is a statement about the
///    wiring; the routing has to spread load to realise it). The
///    netsim_fabric_validation bench quantifies the difference.
///
/// On a chain the two coincide (paths are unique).

#include <cstdint>
#include <vector>

#include "hmcs/simcore/rng.hpp"
#include "hmcs/topology/graph.hpp"

namespace hmcs::netsim {

enum class RoutingPolicy {
  kDeterministic,
  kRandomMinimal,
};

class RoutingTable {
 public:
  /// Builds distance tables for all destinations. The graph must be
  /// connected (throws ConfigError otherwise).
  explicit RoutingTable(const topology::Graph& graph);

  /// Ordered switch ids crossed travelling src -> dst under the
  /// deterministic policy. Empty when src == dst.
  std::vector<topology::NodeId> switch_path(topology::NodeId src,
                                            topology::NodeId dst) const;

  /// Same, picking uniformly among minimal next hops with `rng`.
  std::vector<topology::NodeId> random_switch_path(topology::NodeId src,
                                                   topology::NodeId dst,
                                                   simcore::Rng& rng) const;

  /// Number of switches crossed on any minimal route (policy-independent).
  std::uint32_t switch_hops(topology::NodeId src, topology::NodeId dst) const;

  std::size_t num_nodes() const { return num_nodes_; }

 private:
  std::uint16_t distance(topology::NodeId from, topology::NodeId dst) const {
    return distance_[static_cast<std::size_t>(dst) * num_nodes_ + from];
  }

  template <typename PickNext>
  std::vector<topology::NodeId> walk(topology::NodeId src,
                                     topology::NodeId dst,
                                     PickNext&& pick_next) const;

  std::size_t num_nodes_;
  std::vector<std::vector<topology::NodeId>> adjacency_;
  /// distance_[dst * num_nodes_ + node] = BFS hops from node to dst.
  std::vector<std::uint16_t> distance_;
};

}  // namespace hmcs::netsim
