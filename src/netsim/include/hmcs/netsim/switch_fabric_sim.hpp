#pragma once

/// \file switch_fabric_sim.hpp
/// Switch-level discrete-event simulation of one interconnect fabric.
///
/// The paper's model (and its §6 simulator) abstracts each network to a
/// single service centre whose rate is given by the closed forms of
/// Section 5 — eq. (11) for the fat-tree, eq. (21) with the (N/2)M*beta
/// bisection penalty for the chain. This simulator removes that
/// abstraction: messages traverse the *wired* topology switch by switch,
/// each switch a FIFO queue, so contention and the bisection bottleneck
/// emerge from the structure instead of being assumed. It is the second
/// member of the paper's "set of simulators" and the tool behind the
/// netsim_fabric_validation bench, which checks how well the Section 5
/// closed forms track switch-level reality.
///
/// Timing model (store-and-forward, as the paper assumes for
/// Ethernet-based networks): a message of M bytes occupies each switch
/// on its path for alpha_sw + M*beta (full reception then forwarding);
/// kCutThrough serialises only at the first switch and adds alpha_sw at
/// the rest — this is the assumption embedded in eq. (11). The
/// technology's link latency alpha is added once end to end (eq. 10).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/netsim/routing.hpp"
#include "hmcs/simcore/tally.hpp"
#include "hmcs/topology/graph.hpp"
#include "hmcs/util/cancel.hpp"

namespace hmcs::netsim {

enum class SwitchingMode {
  kStoreAndForward,  ///< serialise the message at every switch
  kCutThrough,       ///< serialise once; later hops cost alpha_sw only
};

/// A fully resolved route: the switches to traverse plus the fixed
/// end-to-end link latency for this particular path (heterogeneous
/// multi-fabric systems cross several technologies, so alpha is
/// path-dependent).
struct RoutedPath {
  std::vector<topology::NodeId> switches;
  double extra_latency_us = 0.0;
};

/// Custom router: source/destination are *endpoint indices* (not node
/// ids). When set it replaces the built-in BFS routing entirely — used
/// by HmcsFabric to enforce the ICN1-local / ECN1-ICN2-ECN1-remote rule.
using PathProvider = std::function<RoutedPath(
    std::uint64_t source, std::uint64_t destination, simcore::Rng& rng)>;

struct FabricSimOptions {
  SwitchingMode mode = SwitchingMode::kStoreAndForward;
  /// kRandomMinimal (ECMP) by default: the spread over equal-cost paths
  /// is what lets a fat-tree realise its Theorem 1 bandwidth.
  RoutingPolicy routing = RoutingPolicy::kRandomMinimal;
  /// Per-endpoint Poisson injection rate, messages per microsecond.
  double rate_per_us = 1e-4;
  double message_bytes = 1024.0;
  analytic::NetworkTechnology technology;
  double switch_latency_us = 10.0;
  /// Per-stage bandwidth multipliers (index 0 = stage 1, nearest the
  /// endpoints); stages beyond the vector use 1.0. Implements the
  /// paper's future-work item "modeling of communication networks with
  /// technology heterogeneity": e.g. {1.0, 2.0} gives a fat-tree with
  /// double-speed upper-stage links, a common real deployment.
  std::vector<double> stage_bandwidth_scale;
  /// Per-node bandwidth multipliers indexed by graph node id (empty =
  /// all 1.0); composes with stage_bandwidth_scale. Lets one simulation
  /// mix fabrics of different technologies (HmcsFabric).
  std::vector<double> node_bandwidth_scale;
  /// Optional custom router (see PathProvider). When set, the path's
  /// extra_latency_us replaces the flat technology.latency_us term.
  PathProvider path_provider;
  /// Number of injecting endpoints; 0 = all graph endpoints. Composite
  /// fabrics append relay endpoints (gateways) that must not inject.
  std::uint64_t active_endpoints = 0;
  /// Closed loop blocks a source until its message is delivered
  /// (assumption 4); open loop injects regardless.
  bool closed_loop = true;
  std::uint64_t measured_messages = 10000;
  std::uint64_t warmup_messages = 2000;
  std::uint64_t seed = 1;
  std::uint64_t max_events = 200'000'000;
  /// Cooperative cancellation / wall-clock deadline, polled on the
  /// event-loop rare path (every few thousand events); run() unwinds
  /// with hmcs::Cancelled or hmcs::DeadlineExceeded. Must outlive
  /// run(); null = never interrupted.
  const util::CancelToken* cancel = nullptr;
};

struct FabricSimResult {
  std::uint64_t messages_measured = 0;
  double mean_latency_us = 0.0;
  simcore::ConfidenceInterval latency_ci{0.0, 0.0, 0.0};
  double p95_latency_us = 0.0;
  double mean_switch_hops = 0.0;
  /// Delivered messages per endpoint per microsecond over the window —
  /// the fabric's achieved per-node throughput.
  double delivered_rate_per_us = 0.0;
  /// Busiest switch's busy fraction, and its index — identifies the
  /// chain's bisection bottleneck.
  double max_switch_utilization = 0.0;
  std::size_t busiest_switch = 0;
  std::vector<double> switch_utilization;
  double window_duration_us = 0.0;
};

class SwitchFabricSim {
 public:
  /// The graph must contain >= 2 endpoints; destinations are uniform
  /// over the other endpoints (assumption 3).
  SwitchFabricSim(const topology::Graph& graph, FabricSimOptions options);
  ~SwitchFabricSim();

  SwitchFabricSim(const SwitchFabricSim&) = delete;
  SwitchFabricSim& operator=(const SwitchFabricSim&) = delete;

  /// Executes one run; single-shot per instance.
  FabricSimResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hmcs::netsim
