#pragma once

/// \file hmcs_fabric.hpp
/// The whole HMSCS at switch granularity: every cluster's ICN1 fabric,
/// every cluster's ECN1 fabric (with a gateway port toward the second
/// stage), and the ICN2 fabric, grafted into one Graph and routed by
/// the paper's rule — local messages ride their cluster's ICN1; remote
/// messages go source-ECN1 -> gateway -> ICN2 -> gateway -> dest-ECN1.
///
/// This is the most literal "physical" rendering of Figure 1. Together
/// with SwitchFabricSim it forms the third member of the simulator set:
///
///   1. centre-level  (sim::MultiClusterSim — one server per network,
///      the paper's own validation simulator)
///   2. single-fabric switch-level (netsim_fabric_validation)
///   3. whole-system switch-level  (this builder + the
///      netsim_hmcs_validation bench), which checks the one-server
///      abstraction of the paper's model end to end.
///
/// Technologies differ per fabric, so the builder emits per-node
/// bandwidth scales (relative to the reference technology) and prices
/// each route's end-to-end alpha from the fabrics it crosses.

#include <cstdint>
#include <vector>

#include "hmcs/analytic/system_config.hpp"
#include "hmcs/netsim/routing.hpp"
#include "hmcs/netsim/switch_fabric_sim.hpp"
#include "hmcs/topology/graph.hpp"

namespace hmcs::netsim {

class HmcsFabric {
 public:
  explicit HmcsFabric(const analytic::SystemConfig& config);

  /// Combined graph: endpoints 0..N-1 are the processors; the C gateway
  /// relay endpoints follow; switches after that.
  const topology::Graph& graph() const { return graph_; }

  std::uint64_t num_processors() const { return num_processors_; }

  /// Routed path between two processors under the HMSCS rule (random
  /// minimal within each fabric). extra_latency_us carries the summed
  /// per-fabric link latencies (alpha terms of eq. 10).
  RoutedPath route(std::uint64_t src, std::uint64_t dst,
                   simcore::Rng& rng) const;

  /// Simulation options pre-wired to this fabric: path provider, node
  /// bandwidth scales (relative to `reference` = the config's ICN2
  /// technology), and active endpoint count. Workload fields (rate,
  /// messages, seed) are left at their defaults for the caller. The
  /// returned path provider references this HmcsFabric, which must
  /// outlive any simulator using the options.
  FabricSimOptions make_sim_options() const;

 private:
  /// One grafted sub-fabric and its local router.
  struct SubFabric {
    topology::Graph local;                   ///< local wiring
    RoutingTable routes;                     ///< router over `local`
    std::vector<topology::NodeId> node_map;  ///< local node -> global node
    double latency_us;                       ///< technology alpha
    explicit SubFabric(topology::Graph g, std::vector<topology::NodeId> map,
                       double alpha)
        : local(std::move(g)), routes(local), node_map(std::move(map)),
          latency_us(alpha) {}
  };

  /// Builds one network's wiring, grafts it into graph_, and returns
  /// the sub-fabric. `local_endpoint_globals` maps the fabric's local
  /// endpoint indices to global node ids.
  SubFabric graft(const analytic::NetworkTechnology& tech,
                  std::uint64_t endpoints,
                  const std::vector<topology::NodeId>& local_endpoint_globals,
                  double bandwidth_scale);

  std::vector<topology::NodeId> map_path(
      const SubFabric& fabric, topology::NodeId local_src,
      topology::NodeId local_dst, simcore::Rng& rng) const;

  analytic::SystemConfig config_;
  topology::Graph graph_;
  std::uint64_t num_processors_;
  std::vector<topology::NodeId> gateway_nodes_;
  std::vector<SubFabric> icn1_;
  std::vector<SubFabric> ecn1_;
  std::vector<SubFabric> icn2_;  // single element; vector for uniformity
  std::vector<double> node_bandwidth_scale_;
};

}  // namespace hmcs::netsim
