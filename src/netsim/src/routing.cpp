#include "hmcs/netsim/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "hmcs/util/error.hpp"

namespace hmcs::netsim {

using topology::NodeId;

namespace {
constexpr std::uint16_t kUnreached = std::numeric_limits<std::uint16_t>::max();
}  // namespace

RoutingTable::RoutingTable(const topology::Graph& graph)
    : num_nodes_(graph.num_nodes()), adjacency_(graph.num_nodes()) {
  require(num_nodes_ >= 2, "RoutingTable: graph needs >= 2 nodes");
  require(num_nodes_ < kUnreached, "RoutingTable: graph too large");

  // Neighbours sorted ascending so the deterministic policy is stable.
  for (const topology::Link& link : graph.links()) {
    adjacency_[link.a].push_back(link.b);
    adjacency_[link.b].push_back(link.a);
  }
  for (auto& neighbours : adjacency_) {
    std::sort(neighbours.begin(), neighbours.end());
  }

  distance_.assign(num_nodes_ * num_nodes_, kUnreached);
  for (NodeId dst = 0; dst < num_nodes_; ++dst) {
    std::uint16_t* row = &distance_[static_cast<std::size_t>(dst) * num_nodes_];
    row[dst] = 0;
    std::queue<NodeId> frontier;
    frontier.push(dst);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (const NodeId neighbour : adjacency_[v]) {
        if (row[neighbour] != kUnreached) continue;
        row[neighbour] = static_cast<std::uint16_t>(row[v] + 1);
        frontier.push(neighbour);
      }
    }
    for (NodeId v = 0; v < num_nodes_; ++v) {
      require(row[v] != kUnreached, "RoutingTable: graph is disconnected");
    }
  }
}

template <typename PickNext>
std::vector<NodeId> RoutingTable::walk(NodeId src, NodeId dst,
                                       PickNext&& pick_next) const {
  require(src < num_nodes_ && dst < num_nodes_,
          "RoutingTable: node out of range");
  std::vector<NodeId> path;
  if (src == dst) return path;
  NodeId cursor = src;
  while (true) {
    const std::uint16_t remaining = distance(cursor, dst);
    bool found = false;
    const NodeId chosen = pick_next(cursor, dst, remaining, found);
    ensure(found, "RoutingTable: no minimal next hop");
    if (chosen == dst) return path;
    path.push_back(chosen);
    ensure(path.size() <= num_nodes_, "RoutingTable: routing loop");
    cursor = chosen;
  }
}

std::vector<NodeId> RoutingTable::switch_path(NodeId src, NodeId dst) const {
  return walk(src, dst,
              [this](NodeId cursor, NodeId target, std::uint16_t remaining,
                     bool& found) {
                for (const NodeId neighbour : adjacency_[cursor]) {
                  if (distance(neighbour, target) + 1 == remaining) {
                    found = true;
                    return neighbour;
                  }
                }
                found = false;
                return cursor;
              });
}

std::vector<NodeId> RoutingTable::random_switch_path(NodeId src, NodeId dst,
                                                     simcore::Rng& rng) const {
  return walk(src, dst,
              [this, &rng](NodeId cursor, NodeId target,
                           std::uint16_t remaining, bool& found) {
                // Reservoir-sample uniformly among minimal next hops.
                NodeId chosen = cursor;
                std::uint64_t seen = 0;
                for (const NodeId neighbour : adjacency_[cursor]) {
                  if (distance(neighbour, target) + 1 == remaining) {
                    ++seen;
                    if (rng.uniform_below(seen) == 0) chosen = neighbour;
                  }
                }
                found = seen > 0;
                return chosen;
              });
}

std::uint32_t RoutingTable::switch_hops(NodeId src, NodeId dst) const {
  require(src < num_nodes_ && dst < num_nodes_,
          "RoutingTable: node out of range");
  if (src == dst) return 0;
  // Endpoint-to-endpoint distance counts both endpoint links; the
  // switches in between number distance - 1.
  return static_cast<std::uint32_t>(distance(src, dst)) - 1;
}

}  // namespace hmcs::netsim
