#include "hmcs/netsim/hmcs_fabric.hpp"

#include <utility>

#include "hmcs/topology/fat_tree.hpp"
#include "hmcs/topology/linear_array.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::netsim {

using topology::Graph;
using topology::NodeId;

namespace {

Graph build_local_fabric(analytic::NetworkArchitecture architecture,
                         std::uint64_t endpoints, std::uint32_t ports) {
  if (architecture == analytic::NetworkArchitecture::kNonBlocking) {
    return topology::FatTree(endpoints, ports).build_graph();
  }
  return topology::LinearArray(endpoints, ports).build_graph();
}

}  // namespace

HmcsFabric::HmcsFabric(const analytic::SystemConfig& config)
    : config_(config), num_processors_(config.total_nodes()) {
  config.validate();
  require(num_processors_ >= 2, "HmcsFabric: needs >= 2 processors");

  // Processors first, then gateway relays (one per cluster when the
  // system is multi-cluster).
  for (std::uint64_t p = 0; p < num_processors_; ++p) {
    graph_.add_node(topology::NodeKind::kEndpoint, 0,
                    static_cast<std::uint32_t>(p));
  }
  const bool multi_cluster = config.clusters > 1;
  if (multi_cluster) {
    for (std::uint32_t c = 0; c < config.clusters; ++c) {
      gateway_nodes_.push_back(graph_.add_node(
          topology::NodeKind::kEndpoint, 0,
          static_cast<std::uint32_t>(num_processors_ + c)));
    }
  }
  node_bandwidth_scale_.assign(graph_.num_nodes(), 1.0);

  const std::uint32_t n0 = config.nodes_per_cluster;
  const double reference_bandwidth = config.icn2.bandwidth_bytes_per_us;

  // ICN1 fabrics (skipped for one-node clusters: no local traffic).
  if (n0 >= 2) {
    for (std::uint32_t c = 0; c < config.clusters; ++c) {
      std::vector<NodeId> locals(n0);
      for (std::uint32_t i = 0; i < n0; ++i) {
        locals[i] = static_cast<NodeId>(c * n0 + i);
      }
      icn1_.push_back(graft(
          config.icn1, n0, locals,
          config.icn1.bandwidth_bytes_per_us / reference_bandwidth));
    }
  }

  if (multi_cluster) {
    // ECN1 fabrics: the cluster's processors plus its gateway.
    for (std::uint32_t c = 0; c < config.clusters; ++c) {
      std::vector<NodeId> locals(n0 + 1);
      for (std::uint32_t i = 0; i < n0; ++i) {
        locals[i] = static_cast<NodeId>(c * n0 + i);
      }
      locals[n0] = gateway_nodes_[c];
      ecn1_.push_back(graft(
          config.ecn1, n0 + 1, locals,
          config.ecn1.bandwidth_bytes_per_us / reference_bandwidth));
    }
    // ICN2: the gateways.
    icn2_.push_back(graft(config.icn2, config.clusters, gateway_nodes_, 1.0));
  }
}

HmcsFabric::SubFabric HmcsFabric::graft(
    const analytic::NetworkTechnology& tech, std::uint64_t endpoints,
    const std::vector<NodeId>& local_endpoint_globals,
    double bandwidth_scale) {
  require(local_endpoint_globals.size() == endpoints,
          "HmcsFabric: endpoint mapping size mismatch");
  Graph local = build_local_fabric(config_.architecture, endpoints,
                                   config_.switch_params.ports);

  // Local node ids: endpoints 0..E-1 first, switches after — the
  // documented layout of every build_graph() in hmcs::topology.
  std::vector<NodeId> node_map(local.num_nodes());
  for (NodeId id = 0; id < local.num_nodes(); ++id) {
    const topology::Node& node = local.node(id);
    if (node.kind == topology::NodeKind::kEndpoint) {
      node_map[id] = local_endpoint_globals[id];
    } else {
      node_map[id] = graph_.add_node(topology::NodeKind::kSwitch, node.stage,
                                     node.index);
      node_bandwidth_scale_.push_back(bandwidth_scale);
    }
  }
  for (const topology::Link& link : local.links()) {
    graph_.add_link(node_map[link.a], node_map[link.b], link.multiplicity);
  }
  ensure(node_bandwidth_scale_.size() == graph_.num_nodes(),
         "HmcsFabric: bandwidth scale bookkeeping out of sync");
  return SubFabric(std::move(local), std::move(node_map), tech.latency_us);
}

std::vector<NodeId> HmcsFabric::map_path(const SubFabric& fabric,
                                         NodeId local_src, NodeId local_dst,
                                         simcore::Rng& rng) const {
  std::vector<NodeId> path =
      fabric.routes.random_switch_path(local_src, local_dst, rng);
  for (NodeId& node : path) node = fabric.node_map[node];
  return path;
}

RoutedPath HmcsFabric::route(std::uint64_t src, std::uint64_t dst,
                             simcore::Rng& rng) const {
  require(src < num_processors_ && dst < num_processors_ && src != dst,
          "HmcsFabric: route needs two distinct processors");
  const std::uint32_t n0 = config_.nodes_per_cluster;
  const auto src_cluster = static_cast<std::uint32_t>(src / n0);
  const auto dst_cluster = static_cast<std::uint32_t>(dst / n0);

  RoutedPath routed;
  if (src_cluster == dst_cluster) {
    ensure(!icn1_.empty(), "HmcsFabric: local route in one-node clusters");
    const SubFabric& fabric = icn1_[src_cluster];
    routed.switches =
        map_path(fabric, static_cast<NodeId>(src % n0),
                 static_cast<NodeId>(dst % n0), rng);
    routed.extra_latency_us = fabric.latency_us;
    return routed;
  }

  const SubFabric& egress = ecn1_[src_cluster];
  const SubFabric& backbone = icn2_.front();
  const SubFabric& ingress = ecn1_[dst_cluster];
  routed.switches = map_path(egress, static_cast<NodeId>(src % n0),
                             static_cast<NodeId>(n0), rng);
  for (const NodeId node :
       map_path(backbone, src_cluster, dst_cluster, rng)) {
    routed.switches.push_back(node);
  }
  for (const NodeId node : map_path(ingress, static_cast<NodeId>(n0),
                                    static_cast<NodeId>(dst % n0), rng)) {
    routed.switches.push_back(node);
  }
  routed.extra_latency_us =
      egress.latency_us + backbone.latency_us + ingress.latency_us;
  return routed;
}

FabricSimOptions HmcsFabric::make_sim_options() const {
  FabricSimOptions options;
  options.technology = config_.icn2;  // the reference beta
  options.switch_latency_us = config_.switch_params.latency_us;
  options.message_bytes = config_.message_bytes;
  options.rate_per_us = config_.generation_rate_per_us;
  options.node_bandwidth_scale = node_bandwidth_scale_;
  options.active_endpoints = num_processors_;
  options.path_provider = [this](std::uint64_t src, std::uint64_t dst,
                                 simcore::Rng& rng) {
    return route(src, dst, rng);
  };
  return options;
}

}  // namespace hmcs::netsim
