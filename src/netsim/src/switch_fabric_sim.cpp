#include "hmcs/netsim/switch_fabric_sim.hpp"

#include <algorithm>
#include <deque>
#include <optional>

#include "hmcs/simcore/batch_means.hpp"
#include "hmcs/simcore/fifo_station.hpp"
#include "hmcs/simcore/histogram.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/simcore/simulation.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::netsim {

using topology::NodeId;

namespace {

struct MessageState {
  std::vector<NodeId> path;  ///< switch node ids, in traversal order
  std::size_t hop = 0;       ///< index into path of the current switch
  std::uint64_t source = 0;  ///< endpoint *index* (not node id)
  double generated_at = 0.0;
  double extra_latency_us = 0.0;  ///< path-dependent alpha term
  bool in_use = false;
};

}  // namespace

struct SwitchFabricSim::Impl {
  FabricSimOptions options;
  std::vector<NodeId> endpoints;
  /// Dense switch indexing: switch_index[node id] or npos.
  std::vector<std::size_t> switch_index_of_node;
  std::vector<NodeId> switch_nodes;
  std::vector<std::uint32_t> switch_stage;

  std::optional<RoutingTable> routes;
  simcore::Simulator simulator;
  std::deque<simcore::FifoStation> switches;
  simcore::Rng think_rng{0};
  simcore::Rng dest_rng{0};
  simcore::Rng route_rng{0};

  std::vector<MessageState> messages;
  std::vector<std::uint32_t> free_slots;

  bool measuring = false;
  bool done = false;
  bool has_run = false;
  double window_start = 0.0;
  std::uint64_t delivered_total = 0;
  std::uint64_t measured = 0;
  simcore::Tally latency;
  simcore::Tally hops;
  std::vector<double> samples;

  /// Bandwidth multiplier for a switch, by its stage (1-indexed).
  double stage_scale(NodeId switch_node) const {
    const std::uint32_t stage = switch_stage[switch_index_of_node[switch_node]];
    const std::size_t index = stage == 0 ? 0 : stage - 1;
    if (index >= options.stage_bandwidth_scale.size()) return 1.0;
    return options.stage_bandwidth_scale[index];
  }

  double node_scale(NodeId switch_node) const {
    if (switch_node >= options.node_bandwidth_scale.size()) return 1.0;
    return options.node_bandwidth_scale[switch_node];
  }

  double serialization_us(NodeId switch_node) const {
    return options.message_bytes * options.technology.byte_time_us() /
           (stage_scale(switch_node) * node_scale(switch_node));
  }

  /// Service demanded at the switch a job is entering.
  double service_for(const MessageState& msg) const {
    const NodeId current = msg.path[msg.hop];
    const bool first_hop = msg.hop == 0;
    if (options.mode == SwitchingMode::kStoreAndForward || first_hop) {
      return options.switch_latency_us + serialization_us(current);
    }
    return options.switch_latency_us;
  }

  void build(const topology::Graph& graph) {
    endpoints = graph.endpoints();
    require(endpoints.size() >= 2, "SwitchFabricSim: needs >= 2 endpoints");
    require(options.rate_per_us > 0.0,
            "SwitchFabricSim: injection rate must be > 0");
    require(options.message_bytes > 0.0,
            "SwitchFabricSim: message size must be > 0");
    analytic::validate(options.technology);
    require(options.switch_latency_us >= 0.0,
            "SwitchFabricSim: switch latency must be >= 0");
    require(options.measured_messages >= 2,
            "SwitchFabricSim: needs >= 2 measured messages");
    for (const double scale : options.stage_bandwidth_scale) {
      require(scale > 0.0,
              "SwitchFabricSim: stage bandwidth scales must be > 0");
    }
    for (const double scale : options.node_bandwidth_scale) {
      require(scale > 0.0,
              "SwitchFabricSim: node bandwidth scales must be > 0");
    }
    if (options.active_endpoints == 0) {
      options.active_endpoints = endpoints.size();
    }
    require(options.active_endpoints >= 2 &&
                options.active_endpoints <= endpoints.size(),
            "SwitchFabricSim: active_endpoints out of range");

    // The built-in router is only needed when no custom one is given.
    if (!options.path_provider) routes.emplace(graph);

    simcore::Rng master(options.seed);
    think_rng = master.split();
    dest_rng = master.split();
    route_rng = master.split();

    switch_index_of_node.assign(graph.num_nodes(), SIZE_MAX);
    for (NodeId id = 0; id < graph.num_nodes(); ++id) {
      if (graph.node(id).kind == topology::NodeKind::kSwitch) {
        switch_index_of_node[id] = switch_nodes.size();
        switch_nodes.push_back(id);
        switch_stage.push_back(graph.node(id).stage);
        switches.emplace_back(
            simulator, "SW" + std::to_string(id),
            [this](const simcore::FifoStation::Job& job) {
              return service_for(messages[static_cast<std::size_t>(job.id)]);
            });
        switches.back().set_departure_callback(
            [this](const simcore::FifoStation::Departure& d) {
              advance(d.job.id);
            });
      }
    }
    require(!switches.empty(), "SwitchFabricSim: graph has no switches");

    // In-flight pool: closed loop bounds it at one per endpoint; open
    // loop can exceed that, so the pool grows on demand there.
    messages.resize(endpoints.size());
    free_slots.reserve(endpoints.size());
    for (std::uint64_t i = endpoints.size(); i > 0; --i) {
      free_slots.push_back(static_cast<std::uint32_t>(i - 1));
    }
    if (options.warmup_messages == 0) measuring = true;
  }

  void schedule_injection(std::uint64_t endpoint_index) {
    simulator.schedule_after(
        think_rng.exponential(1.0 / options.rate_per_us),
        [this, endpoint_index] { inject(endpoint_index); });
  }

  void inject(std::uint64_t endpoint_index) {
    if (free_slots.empty()) {
      ensure(!options.closed_loop,
             "SwitchFabricSim: pool exhausted in closed loop");
      messages.push_back(MessageState{});
      free_slots.push_back(static_cast<std::uint32_t>(messages.size() - 1));
    }
    const std::uint32_t slot = free_slots.back();
    free_slots.pop_back();

    const std::uint64_t draw =
        dest_rng.uniform_below(options.active_endpoints - 1);
    const std::uint64_t dst_index =
        draw >= endpoint_index ? draw + 1 : draw;

    MessageState& msg = messages[slot];
    if (options.path_provider) {
      RoutedPath routed =
          options.path_provider(endpoint_index, dst_index, route_rng);
      msg.path = std::move(routed.switches);
      msg.extra_latency_us = routed.extra_latency_us;
    } else {
      msg.path = options.routing == RoutingPolicy::kRandomMinimal
                     ? routes->random_switch_path(endpoints[endpoint_index],
                                                  endpoints[dst_index],
                                                  route_rng)
                     : routes->switch_path(endpoints[endpoint_index],
                                           endpoints[dst_index]);
      msg.extra_latency_us = options.technology.latency_us;
    }
    ensure(!msg.path.empty(), "SwitchFabricSim: endpoint pair with no path");
    msg.hop = 0;
    msg.source = endpoint_index;
    msg.generated_at = simulator.now();
    msg.in_use = true;

    switches[switch_index_of_node[msg.path[0]]].arrive(slot);
    if (!options.closed_loop) schedule_injection(endpoint_index);
  }

  void advance(std::uint64_t id) {
    MessageState& msg = messages[static_cast<std::size_t>(id)];
    ensure(msg.in_use, "SwitchFabricSim: departure for free slot");
    ++msg.hop;
    if (msg.hop < msg.path.size()) {
      switches[switch_index_of_node[msg.path[msg.hop]]].arrive(id);
      return;
    }
    deliver(id);
  }

  void deliver(std::uint64_t id) {
    MessageState& msg = messages[static_cast<std::size_t>(id)];
    // eq. (10): the link latency alpha applies once end to end (per
    // fabric crossed, when a custom router priced the path).
    const double elapsed =
        simulator.now() - msg.generated_at + msg.extra_latency_us;
    const std::uint64_t source = msg.source;
    const double path_switches = static_cast<double>(msg.path.size());
    msg.in_use = false;
    msg.path.clear();
    free_slots.push_back(static_cast<std::uint32_t>(id));

    ++delivered_total;
    if (measuring) {
      latency.add(elapsed);
      hops.add(path_switches);
      samples.push_back(elapsed);
      if (++measured >= options.measured_messages) {
        done = true;
        return;
      }
    } else if (delivered_total >= options.warmup_messages) {
      measuring = true;
      window_start = simulator.now();
      for (auto& station : switches) station.reset_statistics();
    }
    if (options.closed_loop) schedule_injection(source);
  }

  FabricSimResult run() {
    require(!has_run, "SwitchFabricSim: run() may be called only once");
    has_run = true;
    for (std::uint64_t e = 0; e < options.active_endpoints; ++e) {
      schedule_injection(e);
    }
    // Cancellation poll period: keeps the steady_clock read off the
    // per-event hot path.
    constexpr std::uint64_t kCancelPollMask = 4095;
    while (!done) {
      ensure(simulator.step(),
             "SwitchFabricSim: event queue drained before completion");
      if (options.max_events != 0 &&
          simulator.executed_events() > options.max_events) {
        detail::throw_config_error(
            "SwitchFabricSim: exceeded max_events safety limit",
            std::source_location::current());
      }
      if (options.cancel != nullptr &&
          (simulator.executed_events() & kCancelPollMask) == 0) {
        options.cancel->check("SwitchFabricSim");
      }
    }

    FabricSimResult result;
    result.messages_measured = measured;
    result.mean_latency_us = latency.mean();
    result.mean_switch_hops = hops.mean();
    result.window_duration_us = simulator.now() - window_start;
    if (result.window_duration_us > 0.0) {
      result.delivered_rate_per_us =
          static_cast<double>(measured) / result.window_duration_us /
          static_cast<double>(options.active_endpoints);
    }

    const std::uint64_t batch = std::max<std::uint64_t>(1, measured / 32);
    simcore::BatchMeans batches(batch);
    for (const double sample : samples) batches.add(sample);
    result.latency_ci = batches.num_complete_batches() >= 2
                            ? batches.confidence_interval()
                            : latency.confidence_interval();

    simcore::Histogram histogram(0.0, latency.max() * 1.001 + 1.0, 128);
    for (const double sample : samples) histogram.add(sample);
    result.p95_latency_us = histogram.quantile(0.95);

    result.switch_utilization.reserve(switches.size());
    for (std::size_t i = 0; i < switches.size(); ++i) {
      const double utilization = switches[i].utilization();
      result.switch_utilization.push_back(utilization);
      if (utilization > result.max_switch_utilization) {
        result.max_switch_utilization = utilization;
        result.busiest_switch = i;
      }
    }
    return result;
  }
};

SwitchFabricSim::SwitchFabricSim(const topology::Graph& graph,
                                 FabricSimOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = std::move(options);
  impl_->build(graph);
}

SwitchFabricSim::~SwitchFabricSim() = default;

FabricSimResult SwitchFabricSim::run() { return impl_->run(); }

}  // namespace hmcs::netsim
