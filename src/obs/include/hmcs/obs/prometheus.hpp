#pragma once

/// \file prometheus.hpp
/// Prometheus text exposition (format 0.0.4) over a MetricsSnapshot.
///
/// Mapping from registry kinds:
///   Counter -> `# TYPE <name> counter`, one sample.
///   Gauge   -> `# TYPE <name> gauge`, one sample.
///   Stat    -> `# TYPE <name> summary` with `<name>_sum`/`<name>_count`,
///              plus `<name>_min`/`<name>_max` gauges (Prometheus has no
///              native min/max, and dropping them loses information).
///   Timer   -> `# TYPE <name>_seconds histogram`: cumulative
///              `_bucket{le="..."}` series from the Timer's HDR
///              histogram (bucket edges converted ns -> s), closing
///              `le="+Inf"`, then `_sum` and `_count`.
///
/// Dotted registry names are sanitised to the Prometheus charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]*) by mapping every illegal byte to '_'
/// (e.g. `serve.request.wall_time` -> `serve_request_wall_time`).
/// Optional constant labels are attached to every sample with proper
/// value escaping (`\\`, `\"`, `\n`).

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hmcs::obs {

class Registry;
struct MetricsSnapshot;

struct PrometheusOptions {
  /// Constant labels stamped on every exported sample, e.g.
  /// {{"instance", "hmcs_serve:9090"}}. Names are sanitised like metric
  /// names; values are escaped, arbitrary UTF-8 allowed.
  std::vector<std::pair<std::string, std::string>> labels;
};

/// `name` mapped onto the Prometheus metric-name charset: every byte
/// outside [a-zA-Z0-9_:] becomes '_', a leading digit gets a '_'
/// prefix, and an empty input becomes "_".
std::string prometheus_metric_name(std::string_view name);

/// Label-value escaping per the text format: backslash, double quote,
/// and newline are escaped; everything else (including UTF-8) passes
/// through.
std::string prometheus_escape_label(std::string_view value);

/// Renders every metric in the snapshot; "" for an empty snapshot.
std::string render_prometheus(const MetricsSnapshot& snapshot,
                              const PrometheusOptions& options = {});

/// Convenience: snapshot + render in one call.
std::string render_prometheus(Registry& registry,
                              const PrometheusOptions& options = {});

}  // namespace hmcs::obs
