#pragma once

/// \file hdr_histogram.hpp
/// A lock-free log-linear ("HDR-style") histogram over unsigned 64-bit
/// values with configurable relative precision and exact quantile
/// extraction. Unlike the Timer's power-of-two buckets (up to 2x
/// quantile error), every bucket here spans at most a 2^-sub_bits
/// relative range, so a quantile read back from the histogram is within
/// ~3% of the true sample quantile at the default precision.
///
/// Layout (the classic HdrHistogram scheme): with h = 2^sub_bits,
/// values below 2h are counted exactly (one bucket per value); above
/// that, each power-of-two octave [2^k, 2^(k+1)) is split into h linear
/// sub-buckets. The mapping is branch-light integer arithmetic:
///
///   index(v) = v                     when v < 2h
///            = h*s + (v >> s)        where s = bit_width(v) - sub_bits - 1
///
/// which is contiguous across octaves and covers the full 64-bit range
/// in h * (65 - sub_bits) buckets (1920 at the default sub_bits = 5).
///
/// record() is one relaxed fetch_add on the bucket plus one on the
/// total — safe from any thread, wait-free, no locks. Reads (snapshot,
/// quantiles) are relaxed loads: concurrent recording makes a snapshot
/// slightly fuzzy at the margin, never torn.

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

namespace hmcs::obs {

/// Point-in-time, non-atomic copy of a histogram (or a merge of
/// several): sparse (upper bound, count) pairs plus quantile readers.
struct HdrSnapshot {
  unsigned sub_bits = 5;
  std::uint64_t total = 0;
  /// (inclusive upper bound of the bucket, count), ascending, non-empty
  /// buckets only.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  bool empty() const { return total == 0; }

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket
  /// holding the sample of rank ceil(q * total). Exceeds the true
  /// sample quantile by at most a factor of 1 + 2^-sub_bits. 0 when
  /// the snapshot is empty.
  std::uint64_t quantile(double q) const;

  /// Upper bound of the highest non-empty bucket (the recorded maximum,
  /// rounded up to its bucket edge). 0 when empty.
  std::uint64_t max_value() const;
};

class HdrHistogram {
 public:
  /// `sub_bits` in [1, 12] sets the precision: each bucket spans at
  /// most a 2^-sub_bits relative range (5 -> ~3.1%, 7 -> ~0.8%).
  explicit HdrHistogram(unsigned sub_bits = 5);

  HdrHistogram(const HdrHistogram&) = delete;
  HdrHistogram& operator=(const HdrHistogram&) = delete;

  /// Wait-free: two relaxed atomic increments.
  void record(std::uint64_t value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  unsigned sub_bits() const { return sub_bits_; }
  std::size_t bucket_count() const { return counts_.size(); }

  /// Zeroes every bucket. Not atomic with respect to concurrent
  /// record() calls (counts in flight may survive or be lost); callers
  /// rotate or quiesce first.
  void reset();

  HdrSnapshot snapshot() const;

  /// Adds this histogram's bucket counts into `dense` (sized
  /// bucket_count()); used to merge epoch histograms without
  /// intermediate sparse copies.
  void accumulate(std::vector<std::uint64_t>& dense) const;

  /// Sparse snapshot of an externally merged dense array.
  static HdrSnapshot snapshot_from_dense(
      unsigned sub_bits, const std::vector<std::uint64_t>& dense);

  /// Convenience single read: snapshot().quantile(q).
  std::uint64_t quantile(double q) const { return snapshot().quantile(q); }

  static std::size_t index_for(std::uint64_t value, unsigned sub_bits);
  /// Inclusive upper bound of bucket `index`.
  static std::uint64_t bucket_upper_bound(std::size_t index,
                                          unsigned sub_bits);
  static std::size_t array_size(unsigned sub_bits);

 private:
  unsigned sub_bits_;
  std::atomic<std::uint64_t> count_{0};
  std::vector<std::atomic<std::uint64_t>> counts_;
};

}  // namespace hmcs::obs
