#pragma once

/// \file trace.hpp
/// A span/counter trace recorder that exports the Chrome trace-event
/// JSON format, loadable in Perfetto (https://ui.perfetto.dev) and
/// chrome://tracing.
///
/// The session stores events in a fixed-capacity ring: when full, the
/// oldest event is overwritten and dropped_count() advances, so an
/// accidental attach to a huge run keeps the most recent window instead
/// of exhausting memory — and the truncation is visible, never silent.
///
/// Two time domains coexist in one file by convention (see
/// docs/OBSERVABILITY.md): wall-clock spans from the experiment drivers
/// use pid 1 ("sweep"), and each simulator run's simulated-time counter
/// tracks use their own pid, so Perfetto renders them as separate
/// process groups and the axes never mix within a track.
///
/// Emitted phases ("ph" in the trace-event spec):
///   "X" complete  — a span with ts (µs) + dur (µs)
///   "i" instant   — a point event
///   "C" counter   — a numeric track (queue depth, messages in flight)
///   "M" metadata  — process/thread names

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hmcs::obs {

struct SpanEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  double timestamp_us = 0.0;
  double duration_us = 0.0;  ///< complete ("X") events only
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  double counter_value = 0.0;  ///< counter ("C") events only
};

class TraceSession {
 public:
  /// Ring capacity in events (metadata events are stored separately and
  /// are not bounded — there are a handful per process).
  explicit TraceSession(std::size_t capacity = 65536);

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// All record paths are thread-safe (one mutex; tracing granularity is
  /// spans and sampler ticks, not per-event hot paths).
  void complete(std::string name, std::string category, double timestamp_us,
                double duration_us, std::uint32_t pid = 1,
                std::uint32_t tid = 0);
  void instant(std::string name, std::string category, double timestamp_us,
               std::uint32_t pid = 1, std::uint32_t tid = 0);
  void counter(std::string name, double timestamp_us, double value,
               std::uint32_t pid = 1);
  void set_process_name(std::uint32_t pid, std::string name);
  void set_thread_name(std::uint32_t pid, std::uint32_t tid, std::string name);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Events overwritten because the ring was full.
  std::uint64_t dropped_count() const;

  /// Ring contents in record order (oldest retained first).
  std::vector<SpanEvent> events() const;

  /// Microseconds elapsed on the steady clock since the session was
  /// created — the wall-clock timestamp base for complete()/instant().
  double wall_now_us() const;

  /// The full document: {"displayTimeUnit":"ms","traceEvents":[...]}.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to `path`; throws hmcs::Error on failure.
  void write_file(const std::string& path) const;

 private:
  void record(SpanEvent event);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<SpanEvent> ring_;
  std::size_t head_ = 0;  ///< next write position once the ring is full
  std::uint64_t dropped_ = 0;
  std::vector<SpanEvent> metadata_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII wall-clock span: records a complete event covering its lifetime.
/// A null session makes it a no-op, so call sites can stay unconditional.
class WallClockSpan {
 public:
  WallClockSpan(TraceSession* session, std::string name, std::string category,
                std::uint32_t pid = 1, std::uint32_t tid = 0)
      : session_(session),
        name_(std::move(name)),
        category_(std::move(category)),
        pid_(pid),
        tid_(tid),
        start_us_(session ? session->wall_now_us() : 0.0) {}
  WallClockSpan(const WallClockSpan&) = delete;
  WallClockSpan& operator=(const WallClockSpan&) = delete;
  ~WallClockSpan() {
    if (session_ == nullptr) return;
    const double end_us = session_->wall_now_us();
    session_->complete(std::move(name_), std::move(category_), start_us_,
                       end_us - start_us_, pid_, tid_);
  }

 private:
  TraceSession* session_;
  std::string name_;
  std::string category_;
  std::uint32_t pid_;
  std::uint32_t tid_;
  double start_us_;
};

}  // namespace hmcs::obs
