#pragma once

/// \file sampler.hpp
/// A periodic gauge sampler for time-series observability. The owner
/// registers named probes (callbacks reading instantaneous state: event
/// queue depth, per-centre queue lengths, messages in flight) and calls
/// sample(now) on simulated-time ticks; each tick appends one point per
/// probe to a bounded series and, when a TraceSession is attached,
/// mirrors the values as Chrome counter ("C") events so Perfetto renders
/// them as counter tracks.
///
/// Series are bounded per probe: past `capacity_per_series` points the
/// oldest point is dropped (and counted), keeping the most recent window
/// — consistent with the TraceSession ring policy.
///
/// The sampler is deliberately not thread-safe: it belongs to exactly
/// one simulation (single-threaded by design); concurrent runs each own
/// their sampler. The mirrored TraceSession is itself thread-safe.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hmcs/obs/trace.hpp"

namespace hmcs::obs {

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(std::size_t capacity_per_series = 8192);

  /// Mirrors every sampled point into `session` as counter events under
  /// `pid` (session may be null: series-only mode).
  void attach_trace(TraceSession* session, std::uint32_t pid);

  void add_probe(std::string name, std::function<double()> probe);

  /// Appends one point per probe at time `now_us`.
  void sample(double now_us);

  struct Series {
    std::string name;
    std::vector<double> times_us;
    std::vector<double> values;
    std::uint64_t dropped = 0;
  };

  std::size_t num_probes() const { return series_.size(); }
  std::uint64_t samples_taken() const { return samples_taken_; }
  const std::vector<Series>& series() const { return series_; }

 private:
  std::size_t capacity_per_series_;
  std::vector<std::function<double()>> probes_;
  std::vector<Series> series_;
  std::uint64_t samples_taken_ = 0;
  TraceSession* trace_ = nullptr;
  std::uint32_t trace_pid_ = 0;
};

}  // namespace hmcs::obs
