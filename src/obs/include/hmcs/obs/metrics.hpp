#pragma once

/// \file metrics.hpp
/// The process-wide metrics registry: named counters, gauges, stats, and
/// histogram timers with O(1) pre-resolved handles.
///
/// Design rules, in order of importance:
///
///  1. The instrumented hot path pays one relaxed atomic RMW per event
///     and nothing else. Handle resolution (name lookup, allocation)
///     happens once, at first use, behind a mutex; after that the handle
///     is a plain pointer into storage that is never reallocated or
///     freed, so it stays valid for the life of the process — including
///     across snapshot() and reset_values().
///  2. Everything is thread-safe: figure sweeps run one simulator per
///     worker thread and all of them publish into the same registry.
///     Counters/gauges use relaxed atomics; min/max use CAS loops; the
///     registry index is mutex-protected (registration is cold).
///  3. Under `HMCS_OBS_DISABLED` every HMCS_OBS_* macro expands to a
///     no-op that does not evaluate its value argument and references no
///     symbol from this library, so a disabled translation unit carries
///     zero runtime cost and no link dependency from the macros.
///
/// Metric kinds:
///   Counter — monotone std::uint64_t (events dispatched, solves, ...).
///   Gauge   — last-written double (warm-up cutoff, last residual, ...).
///   Stat    — count/sum/min/max of doubles (per-centre utilisation
///             observed once per run, aggregating across a sweep).
///   Timer   — a Stat over wall nanoseconds plus a 64-bucket power-of-two
///             latency histogram; ScopedTimer records one span RAII-style.
///
/// Naming convention (see docs/OBSERVABILITY.md): dot-separated
/// lower_snake path, `<layer>.<component>.<quantity>`, e.g.
/// `simcore.engine.events_dispatched`, `sim.center.icn1.utilization`.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "hmcs/obs/hdr_histogram.hpp"

namespace hmcs::obs {

#if defined(HMCS_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotone counter. Cache-line aligned so two hot counters never share
/// a line (the registry's storage never moves, so the alignment sticks).
class alignas(64) Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class alignas(64) Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// count/sum/min/max accumulator for repeated scalar observations.
class alignas(64) Stat {
 public:
  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when no observation was recorded yet.
  double min() const;
  double max() const;
  double mean() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Wall-clock duration histogram: Stat semantics over nanoseconds plus
/// power-of-two buckets (bucket b counts durations with bit_width(ns) == b,
/// i.e. [2^(b-1), 2^b) ns; bucket 0 is exactly 0 ns) plus a log-linear
/// HDR histogram (hdr_histogram.hpp) for quantile extraction within
/// ~2^-5 relative precision instead of the power-of-two 2x.
class alignas(64) Timer {
 public:
  static constexpr std::size_t kBuckets = 64;
  /// Precision of the embedded HDR histogram (~3.1% bucket width).
  static constexpr unsigned kHdrSubBits = 5;

  void observe_ns(std::uint64_t ns);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t min_ns() const;
  std::uint64_t max_ns() const;
  double mean_ns() const;
  std::uint64_t bucket_count(std::size_t bucket) const;
  /// Quantile over the HDR histogram; see HdrSnapshot::quantile.
  std::uint64_t quantile_ns(double q) const { return hdr_.quantile(q); }
  const HdrHistogram& hdr() const { return hdr_; }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~0ull};
  std::atomic<std::uint64_t> max_ns_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  HdrHistogram hdr_{kHdrSubBits};
};

/// RAII span feeding a Timer with the elapsed steady-clock nanoseconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer)
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (timer_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    timer_->observe_ns(ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Point-in-time copy of every registered metric, in registration order.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct StatRow {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  struct TimerRow {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    /// (upper-bound-exclusive ns, count) for each non-empty bucket.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
    /// Fine-grained log-linear histogram (quantiles, Prometheus export).
    HdrSnapshot hdr;
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<StatRow> stats;
  std::vector<TimerRow> timers;

  std::size_t total_metrics() const {
    return counters.size() + gauges.size() + stats.size() + timers.size();
  }
  /// nullptr when `name` is not a counter in this snapshot.
  const CounterRow* find_counter(std::string_view name) const;
  const GaugeRow* find_gauge(std::string_view name) const;
  const StatRow* find_stat(std::string_view name) const;
  const TimerRow* find_timer(std::string_view name) const;
};

/// Name → cell index. Cells live in chunked stable storage (no
/// reallocation), so handles returned once are valid forever. Requesting
/// the same name twice returns the same cell; requesting a name that is
/// already registered as a different kind throws hmcs::ConfigError.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide instance the HMCS_OBS_* macros publish into.
  static Registry& global();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Stat* stat(std::string_view name);
  Timer* timer(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every cell but keeps all registrations (and thus all
  /// outstanding handles) intact. Used between test cases and between
  /// repeated sweeps of one process.
  void reset_values();

  std::size_t size() const;

 private:
  struct Impl;
  Impl* impl_;  // never freed members referenced by handles; see .cpp
};

}  // namespace hmcs::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. Each site resolves its handle once (function-
// local static) and then pays only the guard-load plus one relaxed
// atomic. Under HMCS_OBS_DISABLED they expand to nothing; the value
// expression is kept compilable but unevaluated via sizeof, so disabled
// instrumentation cannot bit-rot silently.
// ---------------------------------------------------------------------------

#if !defined(HMCS_OBS_DISABLED)

#define HMCS_OBS_COUNTER_ADD(name, amount)                                   \
  do {                                                                       \
    static ::hmcs::obs::Counter* const hmcs_obs_cell =                       \
        ::hmcs::obs::Registry::global().counter(name);                       \
    hmcs_obs_cell->inc(static_cast<std::uint64_t>(amount));                  \
  } while (0)

#define HMCS_OBS_COUNTER_INC(name) HMCS_OBS_COUNTER_ADD(name, 1)

#define HMCS_OBS_GAUGE_SET(name, value)                                      \
  do {                                                                       \
    static ::hmcs::obs::Gauge* const hmcs_obs_cell =                         \
        ::hmcs::obs::Registry::global().gauge(name);                         \
    hmcs_obs_cell->set(static_cast<double>(value));                          \
  } while (0)

#define HMCS_OBS_STAT_OBSERVE(name, value)                                   \
  do {                                                                       \
    static ::hmcs::obs::Stat* const hmcs_obs_cell =                          \
        ::hmcs::obs::Registry::global().stat(name);                          \
    hmcs_obs_cell->observe(static_cast<double>(value));                      \
  } while (0)

#define HMCS_OBS_DETAIL_CONCAT2(a, b) a##b
#define HMCS_OBS_DETAIL_CONCAT(a, b) HMCS_OBS_DETAIL_CONCAT2(a, b)

/// Declares an RAII timer span covering the rest of the enclosing scope.
#define HMCS_OBS_TIMER_SCOPE(name)                                           \
  static ::hmcs::obs::Timer* const HMCS_OBS_DETAIL_CONCAT(                   \
      hmcs_obs_timer_cell_, __LINE__) =                                      \
      ::hmcs::obs::Registry::global().timer(name);                           \
  ::hmcs::obs::ScopedTimer HMCS_OBS_DETAIL_CONCAT(hmcs_obs_timer_,           \
                                                  __LINE__) {                \
    HMCS_OBS_DETAIL_CONCAT(hmcs_obs_timer_cell_, __LINE__)                   \
  }

#else  // HMCS_OBS_DISABLED

#define HMCS_OBS_COUNTER_ADD(name, amount) \
  do {                                     \
    (void)sizeof(name);                    \
    (void)sizeof(amount);                  \
  } while (0)
#define HMCS_OBS_COUNTER_INC(name) \
  do {                             \
    (void)sizeof(name);            \
  } while (0)
#define HMCS_OBS_GAUGE_SET(name, value) \
  do {                                  \
    (void)sizeof(name);                 \
    (void)sizeof(value);                \
  } while (0)
#define HMCS_OBS_STAT_OBSERVE(name, value) \
  do {                                     \
    (void)sizeof(name);                    \
    (void)sizeof(value);                   \
  } while (0)
#define HMCS_OBS_TIMER_SCOPE(name) static_assert(sizeof(name) > 0)

#endif  // HMCS_OBS_DISABLED
