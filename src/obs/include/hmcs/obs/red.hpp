#pragma once

/// \file red.hpp
/// Rolling-window RED aggregator: request Rate, Error rate, and
/// Duration quantiles over the last N seconds, built on atomically
/// rotated one-second epochs.
///
/// Design: a ring of `window_seconds + 2` epoch slots, each holding an
/// epoch id, request/error counters, an exact max, and an HDR duration
/// histogram. A recorder computes its epoch from the steady clock and
/// claims the slot by CAS-ing the slot's id from the stale value to a
/// kResetting marker, zeroing the counters, then publishing the new id.
/// Recorders that lose the race spin briefly for the winner; on timeout
/// (or when the slot has already advanced past their epoch — a
/// straggler more than a full ring behind) the sample is *dropped* and
/// counted in dropped(). This is monitoring-grade accounting: the hot
/// path never blocks, at the cost of losing a bounded handful of
/// samples around epoch boundaries under extreme contention.
///
/// summarize() merges the epochs covering (now - window, now] into one
/// dense array and reads quantiles from the merged histogram. The
/// current (partial) epoch contributes its fraction of wall time to the
/// rate denominator, so qps is not underestimated at window start.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "hmcs/obs/hdr_histogram.hpp"

namespace hmcs::obs {

class RedWindow {
 public:
  struct Options {
    /// Width of the rolling window, in whole seconds (>= 1).
    unsigned window_seconds = 60;
    /// Precision of the per-epoch duration histograms.
    unsigned sub_bits = 5;
  };

  struct Summary {
    double window_s = 0.0;      ///< Seconds of wall time actually covered.
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    double rate_per_s = 0.0;
    double error_rate = 0.0;    ///< errors / requests; 0 when idle.
    std::uint64_t p50_ns = 0;
    std::uint64_t p90_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
    std::uint64_t max_ns = 0;   ///< Exact (not bucket-rounded) maximum.
  };

  RedWindow();  // default Options
  explicit RedWindow(const Options& options);
  ~RedWindow();  // out of line: Epoch is incomplete here
  RedWindow(const RedWindow&) = delete;
  RedWindow& operator=(const RedWindow&) = delete;

  /// Records one finished request into the current wall-clock epoch.
  void record(std::uint64_t duration_ns, bool error);

  /// Summary over the trailing window ending now.
  Summary summarize() const;

  /// Samples dropped at epoch boundaries (see file comment). A healthy
  /// service keeps this at or near zero.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  unsigned window_seconds() const { return options_.window_seconds; }

  // -- Deterministic entry points (tests drive the epoch explicitly) --

  /// record() with an explicit epoch number instead of the clock.
  void record_at(std::int64_t epoch, std::uint64_t duration_ns, bool error);

  /// summarize() as of `elapsed_in_epoch` seconds into `epoch`.
  Summary summarize_at(std::int64_t epoch, double elapsed_in_epoch) const;

 private:
  struct Epoch;

  std::int64_t current_epoch() const;
  double elapsed_in_current_epoch() const;
  Epoch* claim(std::int64_t epoch);

  Options options_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::unique_ptr<Epoch>> ring_;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace hmcs::obs
