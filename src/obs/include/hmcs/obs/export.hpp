#pragma once

/// \file export.hpp
/// Structured exporters for the observability layer, built on the
/// existing hmcs::util writers: a metrics snapshot (plus optional
/// sampled time series) renders to JSON and CSV, and
/// write_run_artifacts() dumps the standard `--obs-out` bundle —
/// metrics.json, metrics.csv, and trace.json — into a directory,
/// creating it when missing.

#include <string>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/obs/sampler.hpp"
#include "hmcs/obs/trace.hpp"
#include "hmcs/util/csv.hpp"

namespace hmcs::obs {

/// JSON document with "counters"/"gauges"/"stats"/"timers" arrays and,
/// when `sampler` is non-null, a "series" array of sampled tracks.
std::string metrics_json(const MetricsSnapshot& snapshot,
                         const TimeSeriesSampler* sampler = nullptr);

/// Flat CSV: name,kind,count,value,sum,mean,min,max (one row per metric;
/// inapplicable cells empty). Counter value/timers in their native units.
CsvWriter metrics_csv(const MetricsSnapshot& snapshot);

/// Writes `<dir>/metrics.json`, `<dir>/metrics.csv`, and — when `trace`
/// is non-null — `<dir>/trace.json`. Creates `dir` (and parents) on
/// demand; throws hmcs::Error when anything cannot be written.
void write_run_artifacts(const std::string& dir,
                         const MetricsSnapshot& snapshot,
                         const TraceSession* trace = nullptr,
                         const TimeSeriesSampler* sampler = nullptr);

}  // namespace hmcs::obs
