#include "hmcs/obs/hdr_histogram.hpp"

#include <bit>
#include <cmath>

#include "hmcs/util/error.hpp"

namespace hmcs::obs {

std::uint64_t HdrSnapshot::quantile(double q) const {
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (const auto& [upper, count] : buckets) {
    cumulative += count;
    if (cumulative >= rank) return upper;
  }
  return buckets.empty() ? 0 : buckets.back().first;
}

std::uint64_t HdrSnapshot::max_value() const {
  return buckets.empty() ? 0 : buckets.back().first;
}

HdrHistogram::HdrHistogram(unsigned sub_bits) : sub_bits_(sub_bits) {
  require(sub_bits >= 1 && sub_bits <= 12,
          "HdrHistogram: sub_bits must be in [1, 12]");
  counts_ = std::vector<std::atomic<std::uint64_t>>(array_size(sub_bits));
}

std::size_t HdrHistogram::array_size(unsigned sub_bits) {
  const std::uint64_t half = 1ull << sub_bits;
  // Shifts s run 1 .. 64 - sub_bits - 1; the top index is
  // half * s_max + (2*half - 1), see index_for().
  return static_cast<std::size_t>(half * (65 - sub_bits));
}

std::size_t HdrHistogram::index_for(std::uint64_t value, unsigned sub_bits) {
  const std::uint64_t half = 1ull << sub_bits;
  if (value < 2 * half) return static_cast<std::size_t>(value);
  const unsigned shift =
      static_cast<unsigned>(std::bit_width(value)) - sub_bits - 1;
  return static_cast<std::size_t>(half * shift + (value >> shift));
}

std::uint64_t HdrHistogram::bucket_upper_bound(std::size_t index,
                                               unsigned sub_bits) {
  const std::uint64_t half = 1ull << sub_bits;
  const std::uint64_t i = static_cast<std::uint64_t>(index);
  if (i < 2 * half) return i;
  const std::uint64_t shift = i / half - 1;  // >= 1 here
  const std::uint64_t top = i - half * shift + 1;  // in (half, 2*half]
  // ((top << shift) - 1) can reach past 2^64 only in the very last
  // bucket; saturate instead of wrapping.
  if (shift >= 64 || (top >> (64 - shift)) != 0) return ~0ull;
  return (top << shift) - 1;
}

void HdrHistogram::record(std::uint64_t value) {
  counts_[index_for(value, sub_bits_)].fetch_add(1,
                                                 std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

void HdrHistogram::reset() {
  for (auto& bucket : counts_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

HdrSnapshot HdrHistogram::snapshot() const {
  HdrSnapshot snap;
  snap.sub_bits = sub_bits_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    snap.buckets.emplace_back(bucket_upper_bound(i, sub_bits_), n);
    snap.total += n;
  }
  return snap;
}

void HdrHistogram::accumulate(std::vector<std::uint64_t>& dense) const {
  require(dense.size() == counts_.size(),
          "HdrHistogram::accumulate: dense array size mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    dense[i] += counts_[i].load(std::memory_order_relaxed);
  }
}

HdrSnapshot HdrHistogram::snapshot_from_dense(
    unsigned sub_bits, const std::vector<std::uint64_t>& dense) {
  HdrSnapshot snap;
  snap.sub_bits = sub_bits;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] == 0) continue;
    snap.buckets.emplace_back(bucket_upper_bound(i, sub_bits), dense[i]);
    snap.total += dense[i];
  }
  return snap;
}

}  // namespace hmcs::obs
