#include "hmcs/obs/metrics.hpp"

#include <bit>
#include <deque>
#include <limits>
#include <map>
#include <mutex>

#include "hmcs/util/error.hpp"

namespace hmcs::obs {

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

void Stat::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Stat::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Stat::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Stat::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Stat::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Timer::observe_ns(std::uint64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = min_ns_.load(std::memory_order_relaxed);
  while (ns < cur &&
         !min_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  cur = max_ns_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_ns_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  // Bucket b holds durations with bit_width(ns) == b, i.e. [2^(b-1), 2^b);
  // bucket 0 is exactly zero.
  std::size_t bucket = static_cast<std::size_t>(std::bit_width(ns));
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  hdr_.record(ns);
}

std::uint64_t Timer::min_ns() const {
  return count() == 0 ? 0 : min_ns_.load(std::memory_order_relaxed);
}

std::uint64_t Timer::max_ns() const {
  return max_ns_.load(std::memory_order_relaxed);
}

double Timer::mean_ns() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(total_ns()) /
                            static_cast<double>(n);
}

std::uint64_t Timer::bucket_count(std::size_t bucket) const {
  return bucket < kBuckets ? buckets_[bucket].load(std::memory_order_relaxed)
                           : 0;
}

void Timer::reset() {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(~0ull, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  hdr_.reset();
}

// ---------------------------------------------------------------------------
// Snapshot lookups
// ---------------------------------------------------------------------------

namespace {
template <typename Row>
const Row* find_row(const std::vector<Row>& rows, std::string_view name) {
  for (const Row& row : rows) {
    if (row.name == name) return &row;
  }
  return nullptr;
}
}  // namespace

const MetricsSnapshot::CounterRow* MetricsSnapshot::find_counter(
    std::string_view name) const {
  return find_row(counters, name);
}
const MetricsSnapshot::GaugeRow* MetricsSnapshot::find_gauge(
    std::string_view name) const {
  return find_row(gauges, name);
}
const MetricsSnapshot::StatRow* MetricsSnapshot::find_stat(
    std::string_view name) const {
  return find_row(stats, name);
}
const MetricsSnapshot::TimerRow* MetricsSnapshot::find_timer(
    std::string_view name) const {
  return find_row(timers, name);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Impl {
  enum class Kind : std::uint8_t { kCounter, kGauge, kStat, kTimer };

  mutable std::mutex mutex;
  /// Name -> (kind, index into that kind's cell deque). std::deque keeps
  /// every cell at a stable address, which is what makes handles durable.
  std::map<std::string, std::pair<Kind, std::size_t>, std::less<>> index;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Stat> stats;
  std::deque<Timer> timers;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> stat_names;
  std::vector<std::string> timer_names;

  static const char* kind_name(Kind kind) {
    switch (kind) {
      case Kind::kCounter:
        return "counter";
      case Kind::kGauge:
        return "gauge";
      case Kind::kStat:
        return "stat";
      case Kind::kTimer:
        return "timer";
    }
    return "unknown";
  }

  /// Returns the cell index for `name`, registering it when new; throws
  /// when the name is already registered under a different kind.
  std::size_t resolve(std::string_view name, Kind kind, std::size_t next) {
    require(!name.empty(), "obs::Registry: metric name must be non-empty");
    const auto it = index.find(name);
    if (it == index.end()) {
      index.emplace(std::string(name), std::make_pair(kind, next));
      return next;
    }
    require(it->second.first == kind,
            "obs::Registry: metric '" + std::string(name) +
                "' already registered as a " + kind_name(it->second.first));
    return it->second.second;
  }
};

Registry::Registry() : impl_(new Impl) {}

Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Intentionally leaked: handles cached in function-local statics across
  // every instrumented library must stay valid through static destruction.
  static Registry* const instance = new Registry;
  return *instance;
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::size_t i =
      impl_->resolve(name, Impl::Kind::kCounter, impl_->counters.size());
  if (i == impl_->counters.size()) {
    impl_->counters.emplace_back();
    impl_->counter_names.emplace_back(name);
  }
  return &impl_->counters[i];
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::size_t i =
      impl_->resolve(name, Impl::Kind::kGauge, impl_->gauges.size());
  if (i == impl_->gauges.size()) {
    impl_->gauges.emplace_back();
    impl_->gauge_names.emplace_back(name);
  }
  return &impl_->gauges[i];
}

Stat* Registry::stat(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::size_t i =
      impl_->resolve(name, Impl::Kind::kStat, impl_->stats.size());
  if (i == impl_->stats.size()) {
    impl_->stats.emplace_back();
    impl_->stat_names.emplace_back(name);
  }
  return &impl_->stats[i];
}

Timer* Registry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::size_t i =
      impl_->resolve(name, Impl::Kind::kTimer, impl_->timers.size());
  if (i == impl_->timers.size()) {
    impl_->timers.emplace_back();
    impl_->timer_names.emplace_back(name);
  }
  return &impl_->timers[i];
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(impl_->counters.size());
  for (std::size_t i = 0; i < impl_->counters.size(); ++i) {
    snap.counters.push_back(
        {impl_->counter_names[i], impl_->counters[i].value()});
  }
  snap.gauges.reserve(impl_->gauges.size());
  for (std::size_t i = 0; i < impl_->gauges.size(); ++i) {
    snap.gauges.push_back({impl_->gauge_names[i], impl_->gauges[i].value()});
  }
  snap.stats.reserve(impl_->stats.size());
  for (std::size_t i = 0; i < impl_->stats.size(); ++i) {
    const Stat& s = impl_->stats[i];
    snap.stats.push_back(
        {impl_->stat_names[i], s.count(), s.sum(), s.min(), s.max()});
  }
  snap.timers.reserve(impl_->timers.size());
  for (std::size_t i = 0; i < impl_->timers.size(); ++i) {
    const Timer& t = impl_->timers[i];
    MetricsSnapshot::TimerRow row;
    row.name = impl_->timer_names[i];
    row.count = t.count();
    row.total_ns = t.total_ns();
    row.min_ns = t.min_ns();
    row.max_ns = t.max_ns();
    row.hdr = t.hdr().snapshot();
    for (std::size_t b = 0; b < Timer::kBuckets; ++b) {
      const std::uint64_t n = t.bucket_count(b);
      if (n == 0) continue;
      const std::uint64_t upper = b >= 63 ? ~0ull : (1ull << b);
      row.buckets.emplace_back(upper, n);
    }
    snap.timers.push_back(std::move(row));
  }
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (Counter& c : impl_->counters) c.reset();
  for (Gauge& g : impl_->gauges) g.reset();
  for (Stat& s : impl_->stats) s.reset();
  for (Timer& t : impl_->timers) t.reset();
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->index.size();
}

}  // namespace hmcs::obs
