#include "hmcs/obs/sampler.hpp"

#include <utility>

#include "hmcs/util/error.hpp"

namespace hmcs::obs {

TimeSeriesSampler::TimeSeriesSampler(std::size_t capacity_per_series)
    : capacity_per_series_(capacity_per_series) {
  require(capacity_per_series >= 1,
          "TimeSeriesSampler: capacity must be >= 1");
}

void TimeSeriesSampler::attach_trace(TraceSession* session, std::uint32_t pid) {
  trace_ = session;
  trace_pid_ = pid;
}

void TimeSeriesSampler::add_probe(std::string name,
                                  std::function<double()> probe) {
  require(static_cast<bool>(probe), "TimeSeriesSampler: probe must be callable");
  probes_.push_back(std::move(probe));
  Series series;
  series.name = std::move(name);
  series_.push_back(std::move(series));
}

void TimeSeriesSampler::sample(double now_us) {
  ++samples_taken_;
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    const double value = probes_[i]();
    Series& series = series_[i];
    if (series.times_us.size() >= capacity_per_series_) {
      // Keep the most recent window; erase is O(n) but sampling is a
      // coarse, user-enabled diagnostic path.
      series.times_us.erase(series.times_us.begin());
      series.values.erase(series.values.begin());
      ++series.dropped;
    }
    series.times_us.push_back(now_us);
    series.values.push_back(value);
    if (trace_ != nullptr) {
      trace_->counter(series.name, now_us, value, trace_pid_);
    }
  }
}

}  // namespace hmcs::obs
