#include "hmcs/obs/export.hpp"

#include <filesystem>
#include <fstream>

#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs::obs {

std::string metrics_json(const MetricsSnapshot& snapshot,
                         const TimeSeriesSampler* sampler) {
  JsonWriter json;
  json.begin_object();

  json.key("counters").begin_array();
  for (const auto& row : snapshot.counters) {
    json.begin_object();
    json.key("name").value(row.name);
    json.key("value").value(row.value);
    json.end_object();
  }
  json.end_array();

  json.key("gauges").begin_array();
  for (const auto& row : snapshot.gauges) {
    json.begin_object();
    json.key("name").value(row.name);
    json.key("value").value(row.value);
    json.end_object();
  }
  json.end_array();

  json.key("stats").begin_array();
  for (const auto& row : snapshot.stats) {
    json.begin_object();
    json.key("name").value(row.name);
    json.key("count").value(row.count);
    json.key("sum").value(row.sum);
    json.key("mean").value(row.count == 0
                               ? 0.0
                               : row.sum / static_cast<double>(row.count));
    json.key("min").value(row.min);
    json.key("max").value(row.max);
    json.end_object();
  }
  json.end_array();

  json.key("timers").begin_array();
  for (const auto& row : snapshot.timers) {
    json.begin_object();
    json.key("name").value(row.name);
    json.key("count").value(row.count);
    json.key("total_ns").value(row.total_ns);
    json.key("mean_ns").value(
        row.count == 0 ? 0.0
                       : static_cast<double>(row.total_ns) /
                             static_cast<double>(row.count));
    json.key("min_ns").value(row.min_ns);
    json.key("max_ns").value(row.max_ns);
    json.key("p50_ns").value(row.hdr.quantile(0.50));
    json.key("p90_ns").value(row.hdr.quantile(0.90));
    json.key("p99_ns").value(row.hdr.quantile(0.99));
    json.key("p999_ns").value(row.hdr.quantile(0.999));
    json.key("buckets").begin_array();
    for (const auto& [upper_ns, count] : row.buckets) {
      json.begin_object();
      json.key("le_ns").value(upper_ns);
      json.key("count").value(count);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  if (sampler != nullptr) {
    json.key("series").begin_array();
    for (const auto& series : sampler->series()) {
      json.begin_object();
      json.key("name").value(series.name);
      json.key("dropped").value(series.dropped);
      json.key("points").begin_array();
      for (std::size_t i = 0; i < series.times_us.size(); ++i) {
        json.begin_array()
            .value(series.times_us[i])
            .value(series.values[i])
            .end_array();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
  }

  json.end_object();
  return json.str();
}

CsvWriter metrics_csv(const MetricsSnapshot& snapshot) {
  CsvWriter csv({"name", "kind", "count", "value", "sum", "mean", "min", "max"});
  for (const auto& row : snapshot.counters) {
    csv.add_row({row.name, "counter", "", std::to_string(row.value), "", "",
                 "", ""});
  }
  for (const auto& row : snapshot.gauges) {
    csv.add_row(
        {row.name, "gauge", "", format_compact(row.value, 12), "", "", "", ""});
  }
  for (const auto& row : snapshot.stats) {
    const double mean =
        row.count == 0 ? 0.0 : row.sum / static_cast<double>(row.count);
    csv.add_row({row.name, "stat", std::to_string(row.count), "",
                 format_compact(row.sum, 12), format_compact(mean, 12),
                 format_compact(row.min, 12), format_compact(row.max, 12)});
  }
  for (const auto& row : snapshot.timers) {
    const double mean = row.count == 0
                            ? 0.0
                            : static_cast<double>(row.total_ns) /
                                  static_cast<double>(row.count);
    csv.add_row({row.name, "timer_ns", std::to_string(row.count), "",
                 std::to_string(row.total_ns), format_compact(mean, 12),
                 std::to_string(row.min_ns), std::to_string(row.max_ns)});
  }
  return csv;
}

void write_run_artifacts(const std::string& dir,
                         const MetricsSnapshot& snapshot,
                         const TraceSession* trace,
                         const TimeSeriesSampler* sampler) {
  require(!dir.empty(), "write_run_artifacts: directory must be non-empty");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  require(!ec, "write_run_artifacts: cannot create '" + dir +
                   "': " + ec.message());

  const std::string json_path = dir + "/metrics.json";
  std::ofstream out(json_path);
  require(out.good(), "write_run_artifacts: cannot write '" + json_path + "'");
  out << metrics_json(snapshot, sampler) << "\n";
  require(out.good(), "write_run_artifacts: write failed for '" + json_path +
                          "'");
  out.close();

  metrics_csv(snapshot).write_file(dir + "/metrics.csv");
  if (trace != nullptr) trace->write_file(dir + "/trace.json");
}

}  // namespace hmcs::obs
