#include "hmcs/obs/red.hpp"

#include "hmcs/util/error.hpp"

namespace hmcs::obs {

namespace {
/// Slot id while the claiming thread zeroes the counters. Real epoch
/// ids start at 0, empty slots hold -1, so -2 never collides.
constexpr std::int64_t kResetting = -2;
constexpr int kClaimSpins = 1024;
}  // namespace

struct RedWindow::Epoch {
  explicit Epoch(unsigned sub_bits) : hist(sub_bits) {}

  std::atomic<std::int64_t> id{-1};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> max_ns{0};
  HdrHistogram hist;
};

RedWindow::RedWindow() : RedWindow(Options()) {}

RedWindow::~RedWindow() = default;

RedWindow::RedWindow(const Options& options)
    : options_(options), start_(std::chrono::steady_clock::now()) {
  require(options.window_seconds >= 1,
          "RedWindow: window_seconds must be >= 1");
  // +2 slots: one for the epoch currently being written, one of slack
  // so a summarize() racing a rotation never reads a slot that is being
  // recycled for an epoch still inside the window.
  ring_.reserve(options.window_seconds + 2);
  for (unsigned i = 0; i < options.window_seconds + 2; ++i) {
    ring_.push_back(std::make_unique<Epoch>(options.sub_bits));
  }
}

std::int64_t RedWindow::current_epoch() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration_cast<std::chrono::seconds>(elapsed).count();
}

double RedWindow::elapsed_in_current_epoch() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const double s =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  return s - static_cast<double>(current_epoch());
}

RedWindow::Epoch* RedWindow::claim(std::int64_t epoch) {
  Epoch& slot = *ring_[static_cast<std::size_t>(epoch) % ring_.size()];
  for (int spin = 0; spin < kClaimSpins; ++spin) {
    std::int64_t seen = slot.id.load(std::memory_order_acquire);
    if (seen == epoch) return &slot;
    if (seen > epoch) return nullptr;  // straggler: slot already recycled
    if (seen == kResetting) continue;  // another thread is zeroing it
    if (slot.id.compare_exchange_strong(seen, kResetting,
                                        std::memory_order_acq_rel)) {
      slot.requests.store(0, std::memory_order_relaxed);
      slot.errors.store(0, std::memory_order_relaxed);
      slot.max_ns.store(0, std::memory_order_relaxed);
      slot.hist.reset();
      slot.id.store(epoch, std::memory_order_release);
      return &slot;
    }
  }
  return nullptr;  // contended past the spin budget: drop the sample
}

void RedWindow::record_at(std::int64_t epoch, std::uint64_t duration_ns,
                          bool error) {
  Epoch* slot = claim(epoch);
  if (slot == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot->requests.fetch_add(1, std::memory_order_relaxed);
  if (error) slot->errors.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = slot->max_ns.load(std::memory_order_relaxed);
  while (duration_ns > cur &&
         !slot->max_ns.compare_exchange_weak(cur, duration_ns,
                                             std::memory_order_relaxed)) {
  }
  slot->hist.record(duration_ns);
}

void RedWindow::record(std::uint64_t duration_ns, bool error) {
  record_at(current_epoch(), duration_ns, error);
}

RedWindow::Summary RedWindow::summarize_at(std::int64_t epoch,
                                           double elapsed_in_epoch) const {
  Summary out;
  if (elapsed_in_epoch < 0.0) elapsed_in_epoch = 0.0;
  if (elapsed_in_epoch > 1.0) elapsed_in_epoch = 1.0;

  std::vector<std::uint64_t> dense(
      HdrHistogram::array_size(options_.sub_bits), 0);
  const std::int64_t oldest =
      epoch - static_cast<std::int64_t>(options_.window_seconds) + 1;
  double covered = 0.0;
  for (const auto& slot : ring_) {
    const std::int64_t id = slot->id.load(std::memory_order_acquire);
    if (id < oldest || id > epoch || id < 0) continue;
    covered += id == epoch ? elapsed_in_epoch : 1.0;
    out.requests += slot->requests.load(std::memory_order_relaxed);
    out.errors += slot->errors.load(std::memory_order_relaxed);
    const std::uint64_t m = slot->max_ns.load(std::memory_order_relaxed);
    if (m > out.max_ns) out.max_ns = m;
    slot->hist.accumulate(dense);
  }
  // A service younger than the window has only lived `covered` seconds;
  // clamping the denominator up to the full window would dilute qps.
  out.window_s = covered;
  if (out.requests > 0) {
    const double denom = covered > 1e-9 ? covered : 1e-9;
    out.rate_per_s = static_cast<double>(out.requests) / denom;
    out.error_rate =
        static_cast<double>(out.errors) / static_cast<double>(out.requests);
  }
  const HdrSnapshot merged =
      HdrHistogram::snapshot_from_dense(options_.sub_bits, dense);
  out.p50_ns = merged.quantile(0.50);
  out.p90_ns = merged.quantile(0.90);
  out.p99_ns = merged.quantile(0.99);
  out.p999_ns = merged.quantile(0.999);
  return out;
}

RedWindow::Summary RedWindow::summarize() const {
  return summarize_at(current_epoch(), elapsed_in_current_epoch());
}

}  // namespace hmcs::obs
