#include "hmcs/obs/prometheus.hpp"

#include <charconv>
#include <cstdint>

#include "hmcs/obs/metrics.hpp"

namespace hmcs::obs {

namespace {

bool legal_name_byte(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// Shortest round-trip decimal for a double (to_chars), matching how
/// Prometheus client libraries print sample values.
void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

/// Pre-rendered `{k="v",...}` block (possibly empty) applied to plain
/// samples; histogram buckets splice their `le` in before the '}'.
std::string render_label_block(const PrometheusOptions& options) {
  if (options.labels.empty()) return "";
  std::string block = "{";
  bool first = true;
  for (const auto& [name, value] : options.labels) {
    if (!first) block += ',';
    first = false;
    block += prometheus_metric_name(name);
    block += "=\"";
    block += prometheus_escape_label(value);
    block += '"';
  }
  block += '}';
  return block;
}

void append_sample(std::string& out, const std::string& name,
                   const char* suffix, const std::string& labels, double v) {
  out += name;
  out += suffix;
  out += labels;
  out += ' ';
  append_double(out, v);
  out += '\n';
}

void append_sample_u64(std::string& out, const std::string& name,
                       const char* suffix, const std::string& labels,
                       std::uint64_t v) {
  out += name;
  out += suffix;
  out += labels;
  out += ' ';
  append_u64(out, v);
  out += '\n';
}

void append_type(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

/// `le` label value for a bucket edge: ns scaled to seconds.
void append_bucket(std::string& out, const std::string& name,
                   const std::string& labels, const char* le,
                   std::uint64_t cumulative) {
  out += name;
  out += "_bucket";
  if (labels.empty()) {
    out += "{le=\"";
    out += le;
    out += "\"}";
  } else {
    out.append(labels, 0, labels.size() - 1);  // drop trailing '}'
    out += ",le=\"";
    out += le;
    out += "\"}";
  }
  out += ' ';
  append_u64(out, cumulative);
  out += '\n';
}

}  // namespace

std::string prometheus_metric_name(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  if (name.front() >= '0' && name.front() <= '9') out += '_';
  for (const char c : name) {
    out += legal_name_byte(c, out.empty()) ? c : '_';
  }
  return out;
}

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot,
                              const PrometheusOptions& options) {
  const std::string labels = render_label_block(options);
  std::string out;

  for (const auto& row : snapshot.counters) {
    const std::string name = prometheus_metric_name(row.name);
    append_type(out, name, "counter");
    append_sample_u64(out, name, "", labels, row.value);
  }

  for (const auto& row : snapshot.gauges) {
    const std::string name = prometheus_metric_name(row.name);
    append_type(out, name, "gauge");
    append_sample(out, name, "", labels, row.value);
  }

  for (const auto& row : snapshot.stats) {
    const std::string name = prometheus_metric_name(row.name);
    append_type(out, name, "summary");
    append_sample(out, name, "_sum", labels, row.sum);
    append_sample_u64(out, name, "_count", labels, row.count);
    append_type(out, name + "_min", "gauge");
    append_sample(out, name, "_min", labels, row.min);
    append_type(out, name + "_max", "gauge");
    append_sample(out, name, "_max", labels, row.max);
  }

  for (const auto& row : snapshot.timers) {
    // Registry timers record nanoseconds; Prometheus convention is base
    // units, so the exported histogram is in seconds.
    const std::string name = prometheus_metric_name(row.name) + "_seconds";
    append_type(out, name, "histogram");
    std::uint64_t cumulative = 0;
    for (const auto& [upper_ns, count] : row.hdr.buckets) {
      cumulative += count;
      std::string le;
      append_double(le, static_cast<double>(upper_ns) * 1e-9);
      append_bucket(out, name, labels, le.c_str(), cumulative);
    }
    // The Timer count and the HDR total are updated by separate relaxed
    // atomics; under concurrent recording they can differ by the events
    // in flight. Keep the exposition internally consistent: +Inf ==
    // _count >= every bucket.
    const std::uint64_t total = row.count > cumulative ? row.count : cumulative;
    append_bucket(out, name, labels, "+Inf", total);
    append_sample(out, name, "_sum", labels,
                  static_cast<double>(row.total_ns) * 1e-9);
    append_sample_u64(out, name, "_count", labels, total);
  }

  return out;
}

std::string render_prometheus(Registry& registry,
                              const PrometheusOptions& options) {
  return render_prometheus(registry.snapshot(), options);
}

}  // namespace hmcs::obs
