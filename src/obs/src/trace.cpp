#include "hmcs/obs/trace.hpp"

#include <fstream>
#include <utility>

#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace hmcs::obs {

TraceSession::TraceSession(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  require(capacity >= 1, "TraceSession: capacity must be >= 1");
}

void TraceSession::record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  // Ring full: overwrite the oldest event and account for the loss.
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void TraceSession::complete(std::string name, std::string category,
                            double timestamp_us, double duration_us,
                            std::uint32_t pid, std::uint32_t tid) {
  SpanEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.timestamp_us = timestamp_us;
  event.duration_us = duration_us;
  event.pid = pid;
  event.tid = tid;
  record(std::move(event));
}

void TraceSession::instant(std::string name, std::string category,
                           double timestamp_us, std::uint32_t pid,
                           std::uint32_t tid) {
  SpanEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.timestamp_us = timestamp_us;
  event.pid = pid;
  event.tid = tid;
  record(std::move(event));
}

void TraceSession::counter(std::string name, double timestamp_us, double value,
                           std::uint32_t pid) {
  SpanEvent event;
  event.name = std::move(name);
  event.phase = 'C';
  event.timestamp_us = timestamp_us;
  event.pid = pid;
  event.counter_value = value;
  record(std::move(event));
}

void TraceSession::set_process_name(std::uint32_t pid, std::string name) {
  SpanEvent event;
  event.name = std::move(name);
  event.phase = 'M';
  event.pid = pid;
  std::lock_guard<std::mutex> lock(mutex_);
  metadata_.push_back(std::move(event));
}

void TraceSession::set_thread_name(std::uint32_t pid, std::uint32_t tid,
                                   std::string name) {
  SpanEvent event;
  event.name = std::move(name);
  event.phase = 'M';
  event.pid = pid;
  event.tid = tid;
  event.counter_value = 1.0;  // marks a thread_name (vs process_name) record
  std::lock_guard<std::mutex> lock(mutex_);
  metadata_.push_back(std::move(event));
}

std::size_t TraceSession::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t TraceSession::dropped_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<SpanEvent> TraceSession::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  // Oldest retained first: [head_, end) then [0, head_).
  for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  return out;
}

double TraceSession::wall_now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(elapsed).count();
}

std::string TraceSession::to_chrome_json() const {
  const std::vector<SpanEvent> ordered = events();
  std::vector<SpanEvent> meta;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    meta = metadata_;
  }

  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();
  for (const SpanEvent& event : meta) {
    const bool thread = event.counter_value != 0.0;
    json.begin_object();
    json.key("name").value(thread ? "thread_name" : "process_name");
    json.key("ph").value("M");
    json.key("ts").value(0.0);
    json.key("pid").value(event.pid);
    if (thread) json.key("tid").value(event.tid);
    json.key("args").begin_object();
    json.key("name").value(event.name);
    json.end_object();
    json.end_object();
  }
  for (const SpanEvent& event : ordered) {
    json.begin_object();
    json.key("name").value(event.name);
    if (!event.category.empty()) json.key("cat").value(event.category);
    json.key("ph").value(std::string_view(&event.phase, 1));
    json.key("ts").value(event.timestamp_us);
    if (event.phase == 'X') json.key("dur").value(event.duration_us);
    json.key("pid").value(event.pid);
    if (event.phase == 'C') {
      json.key("args").begin_object();
      json.key("value").value(event.counter_value);
      json.end_object();
    } else {
      json.key("tid").value(event.tid);
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void TraceSession::write_file(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "TraceSession: cannot write '" + path + "'");
  out << to_chrome_json() << "\n";
  require(out.good(), "TraceSession: write failed for '" + path + "'");
}

}  // namespace hmcs::obs
