#pragma once

/// \file traffic_pattern.hpp
/// Destination selection for generated messages. The paper's assumption 3
/// is uniform traffic (any other node, equally likely); the localized and
/// hotspot patterns implement the paper's Section 5.3 remark that
/// "the linear array network is not suited for random traffic patterns,
/// but for localized traffic patterns" — they exist so the ablation bench
/// can demonstrate exactly that.
///
/// Node numbering: node id = cluster * nodes_per_cluster + local index,
/// matching the simulator's layout.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hmcs/simcore/rng.hpp"

namespace hmcs::workload {

/// Shape of the node space a pattern draws destinations from.
struct NodeSpace {
  std::uint32_t clusters = 1;
  /// Per-cluster node counts (uniform systems repeat one value).
  std::vector<std::uint32_t> nodes_per_cluster;

  std::uint64_t total_nodes() const;
  std::uint32_t cluster_of(std::uint64_t node) const;
  std::uint64_t first_node_of(std::uint32_t cluster) const;

  static NodeSpace uniform(std::uint32_t clusters, std::uint32_t nodes_each);
  void validate() const;
};

class TrafficPattern {
 public:
  virtual ~TrafficPattern() = default;

  /// Picks a destination != source. Requires >= 2 nodes in the space.
  virtual std::uint64_t pick_destination(std::uint64_t source,
                                         simcore::Rng& rng) const = 0;

  virtual std::string name() const = 0;
};

/// Assumption 3: uniform over all other nodes.
class UniformTraffic final : public TrafficPattern {
 public:
  explicit UniformTraffic(NodeSpace space);
  std::uint64_t pick_destination(std::uint64_t source,
                                 simcore::Rng& rng) const override;
  std::string name() const override { return "uniform"; }

 private:
  NodeSpace space_;
};

/// With probability `locality` the destination stays inside the source's
/// cluster (uniform there); otherwise uniform over the remote nodes.
/// locality == intra-cluster fraction, the knob the blocking-network
/// ablation sweeps.
class LocalizedTraffic final : public TrafficPattern {
 public:
  LocalizedTraffic(NodeSpace space, double locality);
  std::uint64_t pick_destination(std::uint64_t source,
                                 simcore::Rng& rng) const override;
  std::string name() const override;

 private:
  NodeSpace space_;
  double locality_;
};

/// With probability `hotspot_fraction` the destination is the hotspot
/// node; otherwise uniform over the others. Models a shared server / NFS
/// home node.
class HotspotTraffic final : public TrafficPattern {
 public:
  HotspotTraffic(NodeSpace space, std::uint64_t hotspot_node,
                 double hotspot_fraction);
  std::uint64_t pick_destination(std::uint64_t source,
                                 simcore::Rng& rng) const override;
  std::string name() const override;

 private:
  NodeSpace space_;
  std::uint64_t hotspot_;
  double fraction_;
};

}  // namespace hmcs::workload
