#pragma once

/// \file message_size.hpp
/// Message-size distributions. The paper fixes M (assumption 6); the
/// variable distributions exist for the sensitivity ablation that checks
/// how far the fixed-size analytical model drifts when real traffic has
/// a size mix.

#include <cstdint>
#include <memory>
#include <string>

#include "hmcs/simcore/rng.hpp"

namespace hmcs::workload {

class MessageSizeDistribution {
 public:
  virtual ~MessageSizeDistribution() = default;
  virtual double sample_bytes(simcore::Rng& rng) const = 0;
  virtual double mean_bytes() const = 0;
  virtual std::string name() const = 0;
};

/// Assumption 6: every message is exactly `bytes` long.
class FixedSize final : public MessageSizeDistribution {
 public:
  explicit FixedSize(double bytes);
  double sample_bytes(simcore::Rng& rng) const override;
  double mean_bytes() const override { return bytes_; }
  std::string name() const override;

 private:
  double bytes_;
};

/// Small control messages mixed with large payloads — the classic
/// cluster traffic mix.
class BimodalSize final : public MessageSizeDistribution {
 public:
  BimodalSize(double small_bytes, double large_bytes, double large_fraction);
  double sample_bytes(simcore::Rng& rng) const override;
  double mean_bytes() const override;
  std::string name() const override;

 private:
  double small_bytes_;
  double large_bytes_;
  double large_fraction_;
};

/// Exponential sizes with the given mean, clamped below by `min_bytes`
/// (a message has at least a header).
class ExponentialSize final : public MessageSizeDistribution {
 public:
  explicit ExponentialSize(double mean_bytes, double min_bytes = 1.0);
  double sample_bytes(simcore::Rng& rng) const override;
  double mean_bytes() const override;
  std::string name() const override;

 private:
  double mean_bytes_;
  double min_bytes_;
};

}  // namespace hmcs::workload
