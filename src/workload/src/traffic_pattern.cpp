#include "hmcs/workload/traffic_pattern.hpp"

#include <algorithm>

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs::workload {

std::uint64_t NodeSpace::total_nodes() const {
  std::uint64_t total = 0;
  for (const auto n : nodes_per_cluster) total += n;
  return total;
}

std::uint32_t NodeSpace::cluster_of(std::uint64_t node) const {
  std::uint64_t cursor = 0;
  for (std::uint32_t c = 0; c < nodes_per_cluster.size(); ++c) {
    cursor += nodes_per_cluster[c];
    if (node < cursor) return c;
  }
  detail::throw_config_error("NodeSpace: node id out of range",
                             std::source_location::current());
}

std::uint64_t NodeSpace::first_node_of(std::uint32_t cluster) const {
  require(cluster < nodes_per_cluster.size(), "NodeSpace: cluster out of range");
  std::uint64_t cursor = 0;
  for (std::uint32_t c = 0; c < cluster; ++c) cursor += nodes_per_cluster[c];
  return cursor;
}

NodeSpace NodeSpace::uniform(std::uint32_t clusters, std::uint32_t nodes_each) {
  NodeSpace space;
  space.clusters = clusters;
  space.nodes_per_cluster.assign(clusters, nodes_each);
  space.validate();
  return space;
}

void NodeSpace::validate() const {
  require(clusters >= 1, "NodeSpace: needs >= 1 cluster");
  require(nodes_per_cluster.size() == clusters,
          "NodeSpace: per-cluster sizes must match cluster count");
  for (const auto n : nodes_per_cluster) {
    require(n >= 1, "NodeSpace: every cluster needs >= 1 node");
  }
}

UniformTraffic::UniformTraffic(NodeSpace space) : space_(std::move(space)) {
  space_.validate();
  require(space_.total_nodes() >= 2, "UniformTraffic: needs >= 2 nodes");
}

std::uint64_t UniformTraffic::pick_destination(std::uint64_t source,
                                               simcore::Rng& rng) const {
  const std::uint64_t n = space_.total_nodes();
  require(source < n, "UniformTraffic: source out of range");
  // Uniform over the n-1 others: draw in [0, n-1) and skip self.
  const std::uint64_t draw = rng.uniform_below(n - 1);
  return draw >= source ? draw + 1 : draw;
}

LocalizedTraffic::LocalizedTraffic(NodeSpace space, double locality)
    : space_(std::move(space)), locality_(locality) {
  space_.validate();
  require(space_.total_nodes() >= 2, "LocalizedTraffic: needs >= 2 nodes");
  require(locality >= 0.0 && locality <= 1.0,
          "LocalizedTraffic: locality must be in [0, 1]");
}

std::string LocalizedTraffic::name() const {
  return "localized(" + format_fixed(locality_, 2) + ")";
}

std::uint64_t LocalizedTraffic::pick_destination(std::uint64_t source,
                                                 simcore::Rng& rng) const {
  const std::uint64_t n = space_.total_nodes();
  require(source < n, "LocalizedTraffic: source out of range");
  const std::uint32_t home = space_.cluster_of(source);
  const std::uint64_t home_size = space_.nodes_per_cluster[home];
  const std::uint64_t home_base = space_.first_node_of(home);

  const bool stay_local = home_size >= 2 && rng.bernoulli(locality_);
  if (stay_local) {
    const std::uint64_t local_index = source - home_base;
    const std::uint64_t draw = rng.uniform_below(home_size - 1);
    return home_base + (draw >= local_index ? draw + 1 : draw);
  }
  const std::uint64_t remote_count = n - home_size;
  if (remote_count == 0) {
    // Single-cluster system: fall back to uniform-local.
    const std::uint64_t draw = rng.uniform_below(n - 1);
    return draw >= source ? draw + 1 : draw;
  }
  // Uniform over nodes outside the home cluster: index the remote space.
  std::uint64_t draw = rng.uniform_below(remote_count);
  if (draw >= home_base) draw += home_size;
  return draw;
}

HotspotTraffic::HotspotTraffic(NodeSpace space, std::uint64_t hotspot_node,
                               double hotspot_fraction)
    : space_(std::move(space)), hotspot_(hotspot_node), fraction_(hotspot_fraction) {
  space_.validate();
  require(space_.total_nodes() >= 2, "HotspotTraffic: needs >= 2 nodes");
  require(hotspot_node < space_.total_nodes(),
          "HotspotTraffic: hotspot node out of range");
  require(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0,
          "HotspotTraffic: fraction must be in [0, 1]");
}

std::string HotspotTraffic::name() const {
  return "hotspot(node " + std::to_string(hotspot_) + ", " +
         format_fixed(fraction_, 2) + ")";
}

std::uint64_t HotspotTraffic::pick_destination(std::uint64_t source,
                                               simcore::Rng& rng) const {
  const std::uint64_t n = space_.total_nodes();
  require(source < n, "HotspotTraffic: source out of range");
  if (source != hotspot_ && rng.bernoulli(fraction_)) return hotspot_;
  const std::uint64_t draw = rng.uniform_below(n - 1);
  return draw >= source ? draw + 1 : draw;
}

}  // namespace hmcs::workload
