#include "hmcs/workload/message_size.hpp"

#include <algorithm>

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs::workload {

FixedSize::FixedSize(double bytes) : bytes_(bytes) {
  require(bytes > 0.0, "FixedSize: size must be > 0");
}

double FixedSize::sample_bytes(simcore::Rng&) const { return bytes_; }

std::string FixedSize::name() const {
  return "fixed(" + format_compact(bytes_) + "B)";
}

BimodalSize::BimodalSize(double small_bytes, double large_bytes,
                         double large_fraction)
    : small_bytes_(small_bytes),
      large_bytes_(large_bytes),
      large_fraction_(large_fraction) {
  require(small_bytes > 0.0 && large_bytes >= small_bytes,
          "BimodalSize: requires 0 < small <= large");
  require(large_fraction >= 0.0 && large_fraction <= 1.0,
          "BimodalSize: fraction must be in [0, 1]");
}

double BimodalSize::sample_bytes(simcore::Rng& rng) const {
  return rng.bernoulli(large_fraction_) ? large_bytes_ : small_bytes_;
}

double BimodalSize::mean_bytes() const {
  return large_fraction_ * large_bytes_ + (1.0 - large_fraction_) * small_bytes_;
}

std::string BimodalSize::name() const {
  return "bimodal(" + format_compact(small_bytes_) + "B/" +
         format_compact(large_bytes_) + "B, p=" +
         format_fixed(large_fraction_, 2) + ")";
}

ExponentialSize::ExponentialSize(double mean_bytes, double min_bytes)
    : mean_bytes_(mean_bytes), min_bytes_(min_bytes) {
  require(mean_bytes > 0.0, "ExponentialSize: mean must be > 0");
  require(min_bytes >= 0.0 && min_bytes <= mean_bytes,
          "ExponentialSize: min must be in [0, mean]");
}

double ExponentialSize::sample_bytes(simcore::Rng& rng) const {
  return std::max(min_bytes_, rng.exponential(mean_bytes_));
}

double ExponentialSize::mean_bytes() const { return mean_bytes_; }

std::string ExponentialSize::name() const {
  return "exponential(" + format_compact(mean_bytes_) + "B)";
}

}  // namespace hmcs::workload
