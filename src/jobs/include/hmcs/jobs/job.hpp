#pragma once

/// \file job.hpp
/// Parallel jobs for the multi-cluster scheduling layer. The paper's
/// context is systems hosting parallel applications (its companion work
/// [4, 21] schedules jobs on multi-clusters; [5] studies co-allocation);
/// this layer connects that workload view to the paper's latency model:
/// a job's communication time depends on whether its tasks share one
/// cluster or span several.

#include <cstdint>
#include <vector>

namespace hmcs::jobs {

struct Job {
  std::uint64_t id = 0;
  /// Arrival time at the scheduler (microseconds).
  double arrival_us = 0.0;
  /// Number of processors the job needs for its whole lifetime.
  std::uint32_t tasks = 1;
  /// Pure computation time per task (us), excluding communication.
  double work_us = 0.0;
  /// Messages each task exchanges with uniformly random peers over the
  /// job's lifetime; the latency model prices them by placement.
  double messages_per_task = 0.0;
};

/// Where a job's tasks landed: processor counts per cluster (zero
/// entries allowed; sums to the job's task count).
struct Placement {
  std::vector<std::uint32_t> tasks_per_cluster;

  std::uint32_t total() const {
    std::uint32_t sum = 0;
    for (const std::uint32_t t : tasks_per_cluster) sum += t;
    return sum;
  }

  /// Number of clusters actually used.
  std::uint32_t clusters_used() const {
    std::uint32_t used = 0;
    for (const std::uint32_t t : tasks_per_cluster) used += (t > 0);
    return used;
  }

  /// Probability that a random ordered pair of the job's tasks lies in
  /// different clusters — the job-local analogue of eq. (8).
  double remote_pair_fraction() const;
};

/// Completed-job record.
struct JobOutcome {
  Job job;
  Placement placement;
  double start_us = 0.0;
  double finish_us = 0.0;
  double runtime_us = 0.0;        ///< work + communication
  double communication_us = 0.0;  ///< the placement-dependent part

  double wait_us() const { return start_us - job.arrival_us; }
  double response_us() const { return finish_us - job.arrival_us; }
  /// Bounded slowdown with a 1 ms floor on runtime (standard metric).
  double bounded_slowdown() const;
};

}  // namespace hmcs::jobs
