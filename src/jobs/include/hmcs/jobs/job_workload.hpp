#pragma once

/// \file job_workload.hpp
/// Synthetic parallel-job workload generator: Poisson arrivals,
/// power-of-two task counts (the classic supercomputer-log shape), and
/// exponential work with a configurable communication intensity.

#include <cstdint>
#include <vector>

#include "hmcs/jobs/job.hpp"
#include "hmcs/simcore/rng.hpp"

namespace hmcs::jobs {

struct WorkloadSpec {
  /// Mean job inter-arrival time (us).
  double mean_interarrival_us = 50e3;
  /// Task counts drawn uniformly from {min_tasks, 2*min_tasks, ...,
  /// max_tasks}; both must be powers of two with min <= max.
  std::uint32_t min_tasks = 1;
  std::uint32_t max_tasks = 64;
  /// Mean per-task compute time (exponential, us).
  double mean_work_us = 200e3;
  /// Messages per task over the job's lifetime (fixed).
  double messages_per_task = 500.0;
  std::uint64_t seed = 1;

  void validate() const;
};

/// Generates `count` jobs with ids 0..count-1 in arrival order.
std::vector<Job> generate_jobs(const WorkloadSpec& spec, std::uint64_t count);

}  // namespace hmcs::jobs
