#pragma once

/// \file scheduler.hpp
/// Event-driven multi-cluster job scheduler. Jobs queue FCFS; a
/// placement policy decides whether a job may span clusters
/// (co-allocation) or must fit inside one; the job's runtime is its
/// compute time plus a communication overhead priced by the paper's
/// latency model for the chosen placement:
///
///   comm = messages_per_task * [ (1-f) W_intra + f W_remote ]
///
/// where f is the placement's remote-pair fraction, W_intra the ICN1
/// response time and W_remote the ECN1/ICN2 path response from a
/// LatencyPrediction of the underlying system. This reproduces the
/// co-allocation trade-off of the paper's reference [5]: spanning
/// clusters starts jobs sooner (less fragmentation) but runs them
/// slower — and the balance flips with the network heterogeneity case.

#include <cstdint>
#include <vector>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/jobs/job.hpp"

namespace hmcs::jobs {

enum class PlacementPolicy {
  /// A job runs only when one cluster can hold it entirely.
  kSingleCluster,
  /// A job may span clusters whenever total free capacity suffices
  /// (greedy most-free-first split).
  kCoAllocation,
  /// Prefer a single cluster; spill over only when none fits.
  kSingleClusterFirst,
};

const char* to_string(PlacementPolicy policy);

struct SchedulerOptions {
  PlacementPolicy policy = PlacementPolicy::kSingleClusterFirst;
  /// Aggressive backfill: when the queue head cannot start, later jobs
  /// that fit may overtake it (no reservation). Off = strict FCFS.
  bool backfill = false;
};

struct ScheduleMetrics {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  ///< larger than the whole machine
  double makespan_us = 0.0;
  double mean_wait_us = 0.0;
  double mean_response_us = 0.0;
  double mean_bounded_slowdown = 0.0;
  /// Busy processor-time over machine capacity until the makespan.
  double utilization = 0.0;
  /// Fraction of started jobs that spanned more than one cluster.
  double spanning_fraction = 0.0;
  /// Mean communication share of runtime.
  double mean_comm_share = 0.0;
};

struct ScheduleResult {
  ScheduleMetrics metrics;
  std::vector<JobOutcome> outcomes;
};

class MultiClusterScheduler {
 public:
  /// The system description supplies cluster count/size and — through a
  /// latency prediction — the W_intra / W_remote prices. The prediction
  /// is evaluated once at the config's generation rate (interpreted as
  /// the background communication intensity).
  MultiClusterScheduler(const analytic::SystemConfig& system,
                        SchedulerOptions options);

  /// Runs the whole job list (must be sorted by arrival time) to
  /// completion and returns per-job outcomes plus aggregates.
  ScheduleResult run(const std::vector<Job>& jobs);

  double intra_latency_us() const { return intra_latency_us_; }
  double remote_latency_us() const { return remote_latency_us_; }

 private:
  bool try_place(std::uint32_t tasks, Placement* placement) const;
  double communication_time(const Job& job, const Placement& placement) const;

  std::uint32_t clusters_;
  std::uint32_t nodes_per_cluster_;
  SchedulerOptions options_;
  double intra_latency_us_;
  double remote_latency_us_;
  std::vector<std::uint32_t> free_;
};

}  // namespace hmcs::jobs
