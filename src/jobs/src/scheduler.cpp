#include "hmcs/jobs/scheduler.hpp"

#include <algorithm>
#include <deque>

#include "hmcs/simcore/simulation.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::jobs {

const char* to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kSingleCluster:
      return "single-cluster";
    case PlacementPolicy::kCoAllocation:
      return "co-allocation";
    case PlacementPolicy::kSingleClusterFirst:
      return "single-cluster-first";
  }
  return "unknown";
}

MultiClusterScheduler::MultiClusterScheduler(
    const analytic::SystemConfig& system, SchedulerOptions options)
    : clusters_(system.clusters),
      nodes_per_cluster_(system.nodes_per_cluster),
      options_(options),
      free_(system.clusters, system.nodes_per_cluster) {
  system.validate();
  // Price intra- and cross-cluster messages once, at the configured
  // background intensity, with the exact closed-network solver.
  analytic::ModelOptions model;
  model.fixed_point.method = analytic::SourceThrottling::kExactMva;
  const analytic::LatencyPrediction prediction =
      analytic::predict_latency(system, model);
  intra_latency_us_ = prediction.icn1.response_time_us;
  remote_latency_us_ = prediction.icn2.response_time_us +
                       2.0 * prediction.ecn1.response_time_us;
}

bool MultiClusterScheduler::try_place(std::uint32_t tasks,
                                      Placement* placement) const {
  placement->tasks_per_cluster.assign(clusters_, 0);

  auto place_single = [&]() -> bool {
    for (std::uint32_t c = 0; c < clusters_; ++c) {
      if (free_[c] >= tasks) {
        placement->tasks_per_cluster[c] = tasks;
        return true;
      }
    }
    return false;
  };
  auto place_spanning = [&]() -> bool {
    std::uint64_t total_free = 0;
    for (const std::uint32_t f : free_) total_free += f;
    if (total_free < tasks) return false;
    // Greedy most-free-first keeps the span (and thus the remote-pair
    // fraction) low.
    std::uint32_t remaining = tasks;
    std::vector<std::uint32_t> order(clusters_);
    for (std::uint32_t c = 0; c < clusters_; ++c) order[c] = c;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (free_[a] != free_[b]) return free_[a] > free_[b];
                return a < b;
              });
    for (const std::uint32_t c : order) {
      const std::uint32_t take = std::min(free_[c], remaining);
      placement->tasks_per_cluster[c] = take;
      remaining -= take;
      if (remaining == 0) return true;
    }
    return false;
  };

  switch (options_.policy) {
    case PlacementPolicy::kSingleCluster:
      return place_single();
    case PlacementPolicy::kCoAllocation:
      return place_spanning();
    case PlacementPolicy::kSingleClusterFirst:
      return place_single() || place_spanning();
  }
  ensure(false, "scheduler: unknown policy");
  return false;
}

double MultiClusterScheduler::communication_time(
    const Job& job, const Placement& placement) const {
  if (job.messages_per_task <= 0.0 || job.tasks < 2) return 0.0;
  const double f = placement.remote_pair_fraction();
  const double per_message =
      (1.0 - f) * intra_latency_us_ + f * remote_latency_us_;
  return job.messages_per_task * per_message;
}

ScheduleResult MultiClusterScheduler::run(const std::vector<Job>& jobs) {
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    require(jobs[i - 1].arrival_us <= jobs[i].arrival_us,
            "scheduler: jobs must be sorted by arrival time");
  }
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(clusters_) * nodes_per_cluster_;

  simcore::Simulator sim;
  std::deque<const Job*> queue;
  ScheduleResult result;
  result.outcomes.reserve(jobs.size());

  auto start_job = [&](const Job& job, const Placement& placement) {
    for (std::uint32_t c = 0; c < clusters_; ++c) {
      ensure(free_[c] >= placement.tasks_per_cluster[c],
             "scheduler: placement exceeds free capacity");
      free_[c] -= placement.tasks_per_cluster[c];
    }
    JobOutcome outcome;
    outcome.job = job;
    outcome.placement = placement;
    outcome.start_us = sim.now();
    outcome.communication_us = communication_time(job, placement);
    outcome.runtime_us = job.work_us + outcome.communication_us;
    outcome.finish_us = outcome.start_us + outcome.runtime_us;
    result.outcomes.push_back(outcome);

    const Placement freed = placement;
    sim.schedule_after(outcome.runtime_us, [&, freed] {
      for (std::uint32_t c = 0; c < clusters_; ++c) {
        free_[c] += freed.tasks_per_cluster[c];
      }
    });
  };

  // Drains the queue as far as the policy allows. Declared as a
  // std::function so completion events can re-enter it.
  auto drain = [&] {
    while (!queue.empty()) {
      Placement placement;
      if (try_place(queue.front()->tasks, &placement)) {
        start_job(*queue.front(), placement);
        queue.pop_front();
        continue;
      }
      if (!options_.backfill) return;
      // Aggressive backfill: let any fitting later job overtake.
      bool started_any = false;
      for (auto it = std::next(queue.begin()); it != queue.end();) {
        Placement fill;
        if (try_place((*it)->tasks, &fill)) {
          start_job(**it, fill);
          it = queue.erase(it);
          started_any = true;
        } else {
          ++it;
        }
      }
      if (!started_any) return;
      // A backfill start never frees capacity, so the head still cannot
      // run; stop here and wait for a completion.
      return;
    }
  };

  for (const Job& job : jobs) {
    if (job.tasks > capacity ||
        (options_.policy == PlacementPolicy::kSingleCluster &&
         job.tasks > nodes_per_cluster_)) {
      ++result.metrics.rejected;
      continue;
    }
    sim.schedule_at(job.arrival_us, [&, job_ptr = &job] {
      queue.push_back(job_ptr);
      drain();
    });
  }

  // Drive the event loop manually: after every event (arrival or
  // capacity release), schedule one drain at each newly started job's
  // finish time, *after* its release event (FIFO among equal
  // timestamps guarantees the release runs first).
  std::uint64_t chained = 0;
  while (sim.step()) {
    for (; chained < result.outcomes.size(); ++chained) {
      sim.schedule_at(result.outcomes[chained].finish_us, [&] { drain(); });
    }
  }

  ensure(queue.empty(), "scheduler: jobs left queued after drain");

  // ---- aggregates ---------------------------------------------------------
  ScheduleMetrics& metrics = result.metrics;
  metrics.completed = result.outcomes.size();
  if (metrics.completed == 0) return result;

  double busy_area = 0.0;
  double wait_sum = 0.0;
  double response_sum = 0.0;
  double slowdown_sum = 0.0;
  double comm_share_sum = 0.0;
  std::uint64_t spanning = 0;
  for (const JobOutcome& outcome : result.outcomes) {
    metrics.makespan_us = std::max(metrics.makespan_us, outcome.finish_us);
    busy_area += static_cast<double>(outcome.job.tasks) * outcome.runtime_us;
    wait_sum += outcome.wait_us();
    response_sum += outcome.response_us();
    slowdown_sum += outcome.bounded_slowdown();
    if (outcome.runtime_us > 0.0) {
      comm_share_sum += outcome.communication_us / outcome.runtime_us;
    }
    if (outcome.placement.clusters_used() > 1) ++spanning;
  }
  const double n = static_cast<double>(metrics.completed);
  metrics.mean_wait_us = wait_sum / n;
  metrics.mean_response_us = response_sum / n;
  metrics.mean_bounded_slowdown = slowdown_sum / n;
  metrics.mean_comm_share = comm_share_sum / n;
  metrics.spanning_fraction = static_cast<double>(spanning) / n;
  if (metrics.makespan_us > 0.0) {
    metrics.utilization = busy_area / (static_cast<double>(capacity) *
                                       metrics.makespan_us);
  }
  return result;
}

}  // namespace hmcs::jobs
