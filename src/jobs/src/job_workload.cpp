#include "hmcs/jobs/job_workload.hpp"

#include <algorithm>
#include <cmath>

#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace hmcs::jobs {

double Placement::remote_pair_fraction() const {
  const double total_tasks = static_cast<double>(total());
  if (total_tasks < 2.0) return 0.0;
  double same = 0.0;
  for (const std::uint32_t t : tasks_per_cluster) {
    const double ft = static_cast<double>(t);
    same += ft * (ft - 1.0);
  }
  return 1.0 - same / (total_tasks * (total_tasks - 1.0));
}

double JobOutcome::bounded_slowdown() const {
  constexpr double kFloorUs = 1000.0;
  return response_us() / std::max(runtime_us, kFloorUs);
}

void WorkloadSpec::validate() const {
  require(mean_interarrival_us > 0.0,
          "WorkloadSpec: inter-arrival time must be > 0");
  require(min_tasks >= 1 && is_power_of_two(min_tasks),
          "WorkloadSpec: min_tasks must be a power of two");
  require(is_power_of_two(max_tasks) && max_tasks >= min_tasks,
          "WorkloadSpec: max_tasks must be a power of two >= min_tasks");
  require(mean_work_us > 0.0, "WorkloadSpec: mean work must be > 0");
  require(messages_per_task >= 0.0,
          "WorkloadSpec: messages_per_task must be >= 0");
}

std::vector<Job> generate_jobs(const WorkloadSpec& spec, std::uint64_t count) {
  spec.validate();
  simcore::Rng rng(spec.seed);

  // Enumerate the allowed power-of-two sizes once.
  std::vector<std::uint32_t> sizes;
  for (std::uint32_t s = spec.min_tasks; s <= spec.max_tasks; s *= 2) {
    sizes.push_back(s);
    if (s > spec.max_tasks / 2) break;  // avoid overflow on s *= 2
  }

  std::vector<Job> jobs;
  jobs.reserve(count);
  double clock = 0.0;
  for (std::uint64_t id = 0; id < count; ++id) {
    clock += rng.exponential(spec.mean_interarrival_us);
    Job job;
    job.id = id;
    job.arrival_us = clock;
    job.tasks = sizes[rng.uniform_below(sizes.size())];
    job.work_us = rng.exponential(spec.mean_work_us);
    job.messages_per_task = spec.messages_per_task;
    jobs.push_back(job);
  }
  return jobs;
}

}  // namespace hmcs::jobs
