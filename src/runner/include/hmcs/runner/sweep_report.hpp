#pragma once

/// \file sweep_report.hpp
/// Generic artifact rendering for an executed sweep: a paper-style
/// table (one row per point, one latency column per backend, relative
/// error against the first backend), a flat CSV series, and a
/// machine-readable JSON record. The figure harness keeps its own
/// renderer (fixed two-message-size layout with ASCII charts); these
/// cover every other sweep, including anything run through hmcs_run.

#include <iosfwd>
#include <string>

#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/csv.hpp"

namespace hmcs::runner {

/// Table columns: the coordinate axes that actually vary across the
/// sweep (clusters and message bytes always; lambda/technology/
/// architecture only when non-singleton), then "<backend> (ms)" per
/// backend (with ±CI when the backend reports one), then
/// "RelErr <backend>" against the first backend when there are >= 2.
std::string render_sweep_table(const SweepResult& result);

/// One row per point: clusters, message_bytes, lambda_per_s,
/// architecture, technology, seed, then per backend mean_ms and
/// ci_half_ms.
CsvWriter sweep_csv(const SweepResult& result);

/// Spec echo + backends + every cell with its diagnostics.
std::string sweep_json(const SweepResult& result);

/// Renders the table plus, when the directories are non-empty,
/// `<csv_dir>/<id>.csv` and `<json_dir>/<id>.json`.
void print_sweep_report(std::ostream& os, const SweepResult& result,
                        const std::string& csv_dir = "",
                        const std::string& json_dir = "");

}  // namespace hmcs::runner
