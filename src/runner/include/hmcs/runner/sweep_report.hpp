#pragma once

/// \file sweep_report.hpp
/// Generic artifact rendering for an executed sweep: a paper-style
/// table (one row per point, one latency column per backend, relative
/// error against the first backend), a flat CSV series, and a
/// machine-readable JSON record. The figure harness keeps its own
/// renderer (fixed two-message-size layout with ASCII charts); these
/// cover every other sweep, including anything run through hmcs_run.

#include <iosfwd>
#include <string>

#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/csv.hpp"

namespace hmcs::runner {

/// Table columns: the coordinate axes that actually vary across the
/// sweep (clusters and message bytes always; lambda/technology/
/// architecture only when non-singleton), then "<backend> (ms)" per
/// backend (with ±CI when the backend reports one), then
/// "RelErr <backend>" against the first backend when there are >= 2.
/// Fault-tolerance columns appear only when informative: "Conv <b>"
/// per backend when any cell is non-converged, "Status <b>" when any
/// cell is non-ok (failed cells print FAILED/TIMEOUT/- in the latency
/// column, and RelErr falls back to "-" when either side has no
/// value). An all-ok converged sweep renders byte-identically to the
/// pre-robustness engine.
std::string render_sweep_table(const SweepResult& result);

/// One row per point: clusters, message_bytes, lambda_per_s,
/// architecture, technology, seed, then per backend mean_ms,
/// ci_half_ms, converged (0/1), status (ok|failed|timed_out|degraded|
/// skipped), and attempts.
CsvWriter sweep_csv(const SweepResult& result);

/// Spec echo + backends + every cell with its diagnostics.
std::string sweep_json(const SweepResult& result);

/// Renders the table plus, when the directories are non-empty,
/// `<csv_dir>/<id>.csv` and `<json_dir>/<id>.json`.
void print_sweep_report(std::ostream& os, const SweepResult& result,
                        const std::string& csv_dir = "",
                        const std::string& json_dir = "");

}  // namespace hmcs::runner
