#pragma once

/// \file sweep_spec.hpp
/// The declarative sweep description: axes over cluster count, message
/// size, generation rate, network-technology case, and architecture,
/// expanded cartesian or zipped into a flat list of fully built
/// SystemConfigs with deterministic per-point seeds. Every study in the
/// repo — the paper's Figures 4-7, the ablations, and any config-file
/// sweep run through hmcs_run — is one SweepSpec handed to run_sweep().
///
/// Axis semantics: an empty axis means its single default (Case 1
/// technologies, the paper rate, the paper cluster sweep, M=1024,
/// non-blocking). Cartesian mode nests the axes in the fixed order
///
///   technologies -> lambda -> clusters -> message_bytes -> architectures
///
/// (innermost last), which reproduces the row order of every existing
/// study: figures iterate clusters-major / size-minor, the message-size
/// sweep iterates bytes then architecture, and so on. Zipped mode walks
/// all non-singleton axes in lockstep (they must share one length;
/// singleton axes broadcast).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hmcs/analytic/model_tree.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/analytic/system_config.hpp"

namespace hmcs::runner {

/// One point of the technology axis: the three network roles plus a
/// label used in tables and trace tracks.
struct TechnologyCase {
  std::string label;
  analytic::NetworkTechnology icn1;
  analytic::NetworkTechnology ecn1;
  analytic::NetworkTechnology icn2;
};

/// The paper's Table 2 heterogeneity cases as technology-axis points.
TechnologyCase technology_case(analytic::HeterogeneityCase hetero);

enum class AxisMode {
  kCartesian,  ///< full cross product, fixed nesting order (see above)
  kZipped,     ///< lockstep walk; non-singleton axes share one length
};

/// One axis over a node-path field of a tree sweep's base topology
/// (analytic::set_tree_path grammar, e.g.
/// "root.children[1].icn.bandwidth"). Only meaningful when
/// SweepSpec::base_tree is set.
struct PathAxis {
  std::string path;
  std::vector<double> values;
};

struct SweepAxes {
  std::vector<TechnologyCase> technologies;  ///< empty = Case 1
  std::vector<double> lambda_per_us;         ///< empty = paper rate
  std::vector<std::uint32_t> clusters;       ///< empty = paper sweep
  std::vector<double> message_bytes;         ///< empty = {1024}
  std::vector<analytic::NetworkArchitecture> architectures;  ///< empty = {non-blocking}
  /// Flat sweeps only: sweepable workload-distribution axes, nested
  /// innermost (after architectures) in cartesian mode. Empty = the
  /// SweepSpec workload's value. Tree sweeps reject them — set the
  /// topology-wide scenario through SweepSpec::workload instead.
  std::vector<double> service_cv2;
  std::vector<double> arrival_ca2;
  /// Tree sweeps only: per-point overrides applied to copies of
  /// base_tree. Cartesian mode nests them outermost (declaration-order
  /// major) over message_bytes then architectures; zipped mode walks
  /// them in lockstep with the other axes.
  std::vector<PathAxis> node_paths;
};

struct SweepPoint {
  std::size_t index = 0;  ///< position in expansion order
  std::uint32_t clusters = 0;
  double message_bytes = 0.0;
  double lambda_per_us = 0.0;
  analytic::NetworkArchitecture architecture =
      analytic::NetworkArchitecture::kNonBlocking;
  std::size_t technology_index = 0;
  std::string technology_label;
  /// Deterministic per-point seed (seed_fn or the default SplitMix64
  /// chain over base_seed/clusters/bytes); fixed at expansion time so
  /// results never depend on execution scheduling.
  std::uint64_t seed = 1;
  /// Human-readable coordinates, e.g. "fig6 C=8 M=1024"; names trace
  /// tracks and error messages.
  std::string label;
  analytic::SystemConfig config;  ///< fully built and validated
  /// Tree sweeps: the point's topology with this point's node-path
  /// overrides applied; null for flat sweeps. When set, `config` holds
  /// the equivalent flat config if the tree lowers (as_system_config)
  /// and a default-constructed placeholder otherwise — backends are
  /// dispatched through predict_tree for these points.
  std::shared_ptr<const analytic::ModelTree> tree;
};

struct SweepSpec {
  std::string id = "sweep";
  std::string title;
  AxisMode mode = AxisMode::kCartesian;
  SweepAxes axes;
  /// N: clusters must divide it (assumption 5: equal-size clusters).
  std::uint32_t total_nodes = analytic::kPaperTotalNodes;
  analytic::SwitchParams switch_params{analytic::kPaperSwitchPorts,
                                       analytic::kPaperSwitchLatencyUs};
  std::uint64_t base_seed = 1;
  /// Fixed workload scenario applied to every point (flat: the config's
  /// scenario; tree: the topology-wide scenario when non-default). The
  /// service_cv2/arrival_ca2 axes override their fields per point.
  analytic::WorkloadScenario workload;
  /// When set, the sweep is a *tree sweep*: every point is a copy of
  /// this topology with the node_paths overrides applied. The flat
  /// shape axes (technologies/lambda/clusters) must stay empty — the
  /// topology owns those properties — while message_bytes and
  /// architectures still apply (they are ModelTree fields).
  /// total_nodes/switch_params are ignored; the tree carries its own.
  std::shared_ptr<const analytic::ModelTree> base_tree;
  /// Per-point seed override for studies with historical hand-rolled
  /// seeding (the point's seed field is unset when called); null = the
  /// default_point_seed chain, the figure harness protocol.
  std::function<std::uint64_t(const SweepPoint&)> seed_fn;
};

/// The figure harness's seed derivation: decorrelates runs across sweep
/// points while keeping the whole sweep reproducible from one base seed.
/// Each coordinate is folded in through a full SplitMix64 finalizer: an
/// affine mix of (seed, clusters, bytes) collides for nearby sweep
/// points and hands highly correlated seeds to adjacent runs.
std::uint64_t default_point_seed(std::uint64_t base_seed,
                                 std::uint32_t clusters,
                                 double message_bytes);

/// Seed for retry attempt `attempt` (1-based) of a cell whose point
/// seed is `point_seed`. Attempt 1 is the point seed itself — a sweep
/// without faults is bit-identical to the pre-retry engine — and each
/// later attempt folds the attempt number through a full SplitMix64
/// finalizer, so retries are decorrelated from the failed run yet
/// deterministic for any thread count (docs/ROBUSTNESS.md).
std::uint64_t retry_point_seed(std::uint64_t point_seed,
                               std::uint32_t attempt);

/// Expands the spec into its flat point list (cartesian or zipped),
/// building and validating every SystemConfig. Throws hmcs::ConfigError
/// on empty expansions, zip length mismatches, or invalid
/// configurations (e.g. a cluster count that does not divide
/// total_nodes).
std::vector<SweepPoint> expand_sweep(const SweepSpec& spec);

}  // namespace hmcs::runner
