#pragma once

/// \file journal.hpp
/// Checkpoint/resume for sweeps: a JSON-lines journal of completed
/// cells. The writer appends one line per cell as it reaches a terminal
/// status and flushes after every line, so a run killed at any moment
/// (SIGINT or SIGKILL) leaves a journal of everything it finished; the
/// loader replays it and run_sweep skips those cells. Because per-point
/// seeds are fixed at expansion time and every numeric field round-trips
/// exactly (17-significant-digit doubles, decimal-string u64 seeds,
/// nan/inf spelled out), a resumed sweep's merged result is bit-identical
/// to an uninterrupted run. Format reference: docs/ROBUSTNESS.md.
///
/// Line 1 is a header identifying the sweep shape:
///
///   {"journal":"hmcs-sweep","version":1,"id":"fig6","points":8,
///    "backends":["analytic","des"]}
///
/// then one object per terminal cell:
///
///   {"cell":5,"seed":"1965...","status":"ok","attempts":1,"error":"",
///    "result":{"mean_latency_us":31.4,...}}
///
/// A truncated final line (kill mid-write) is ignored on load; appending
/// to a resumed journal is valid (later records win, headers must agree).

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "hmcs/runner/backend.hpp"

namespace hmcs::runner {

/// A loaded journal: the sweep shape from the header(s) plus every
/// complete cell record, last occurrence winning.
struct SweepJournal {
  std::string id;
  std::size_t points = 0;
  std::vector<std::string> backend_names;
  /// Indexed by flat cell (point-major, points * backends entries);
  /// empty optionals are cells the journaled run never finished.
  std::vector<std::optional<PointResult>> cells;
  /// Seed recorded per journaled cell (guards against resuming under a
  /// different spec); meaningful where cells[i] is set.
  std::vector<std::uint64_t> seeds;

  std::size_t completed() const;
};

/// Parses a journal file. Throws hmcs::ConfigError on unreadable paths,
/// a missing/foreign header, or disagreeing headers; tolerates (and
/// drops) one truncated trailing line.
SweepJournal load_sweep_journal(const std::string& path);

/// Thread-safe appending journal writer. Constructing it truncates or
/// appends per `append`; the header is written immediately when the
/// file is fresh, so even a run killed before its first finished cell
/// leaves a resumable journal.
class JournalWriter {
 public:
  struct Shape {
    std::string id;
    std::size_t points = 0;
    std::vector<std::string> backend_names;
  };

  /// Throws hmcs::ConfigError when the file cannot be opened.
  JournalWriter(const std::string& path, const Shape& shape, bool append);

  /// Appends one terminal cell record and flushes. Safe to call from
  /// concurrent workers.
  void record(std::size_t cell, std::uint64_t seed, const PointResult& result);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mutex_;
};

}  // namespace hmcs::runner
