#pragma once

/// \file sweep_config.hpp
/// The sweep-config loader: builds a complete runnable sweep — spec,
/// backend set, thread count, output directories — from a JSON document
/// or a key=value file, so any study is a config file away instead of a
/// bespoke binary (see configs/sweeps/*.json for complete samples and
/// docs/ARCHITECTURE.md for the format reference).
///
/// JSON (RFC 8259, parsed with hmcs::parse_json):
///
///   {
///     "id": "fig6_small",
///     "title": "blocking Case-1, small sweep",
///     "mode": "cartesian",                  // or "zipped"
///     "total_nodes": 256,
///     "seed": 3,
///     "threads": 0,                         // 0 = hardware concurrency
///     "on_error": "collect-all",            // or "fail-fast" (default)
///     "max_attempts": 2,                    // per-cell retry budget
///     "cell_deadline_ms": 60000,            // 0 = no deadline
///     "degraded_utilization": 0.999,        // saturation guardrail
///     "batch_cells": 256,                   // 0 = per-cell (default)
///     "axes": {
///       "clusters": [1, 2, 4, 8],
///       "message_bytes": [1024, 512],
///       "lambda_per_s": [250],
///       "architecture": ["blocking"],
///       "technology": ["case1",
///                      {"label": "custom", "icn1": "myrinet",
///                       "ecn1": "custom:MyNet,25,120", "icn2": "myrinet"}]
///     },
///     "backends": [
///       {"type": "analytic", "model": "mva"},
///       {"type": "des", "messages": 2000, "warmup": 400,
///        "replications": 1},
///       {"type": "fabric", "messages": 2000, "warmup": 400}
///     ]
///   }
///
/// Tree sweeps (JSON only): a top-level "tree" member holds a complete
/// nested topology config (the docs/COMPOSITION.md schema, as accepted
/// by hmcs_serve), and the axes sweep node fields by path instead of
/// the flat shape axes:
///
///   {
///     "id": "smoke_tree",
///     "tree": {"tree": {"network": "fast-ethernet", "children": [...]},
///              "message_bytes": 1024},
///     "axes": {
///       "paths": [{"path": "root.children[0].icn.bandwidth",
///                  "values": [125, 1250]}],
///       "message_bytes": [512, 1024]
///     },
///     "backends": [{"type": "analytic"}]
///   }
///
/// The technology/lambda/clusters axes do not combine with "tree"
/// (the topology owns those properties); message_bytes and
/// architecture still apply.
///
/// Key=value (flat; lists are comma-separated; technology entries are
/// case1|case2 or a single preset applied to all three roles):
///
///   id            = fig6_small
///   mode          = cartesian
///   clusters      = 1,2,4,8
///   message_bytes = 1024,512
///   lambda_per_s  = 250
///   architecture  = blocking
///   technology    = case1
///   backends      = analytic,des
///   model         = mva          # analytic throttling method
///   messages      = 2000         # DES/fabric deliveries per point
///   warmup        = 400
///   replications  = 1
///   seed          = 3
///   on_error      = collect-all  # fail-fast (default) | collect-all
///   max_attempts  = 2
///   cell_deadline_ms = 60000
///   degraded_utilization = 0.999
///   batch_cells   = 256          # 0 = per-cell evaluation (default)
///
/// Unknown keys are rejected at every level so typos fail loudly.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hmcs/runner/backend.hpp"
#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/runner/sweep_spec.hpp"
#include "hmcs/util/json.hpp"
#include "hmcs/util/keyvalue.hpp"

namespace hmcs::runner {

/// Execution-time knobs applied while constructing backends (config
/// files describe the study; these describe this run of it).
struct SweepLoadOptions {
  /// Sim-time sampling period for DES queue-depth counter tracks (µs;
  /// 0 = off). hmcs_run wires --obs-sample-us through here.
  double obs_sample_interval_us = 0.0;
};

/// A fully loaded, runnable sweep.
struct SweepRunConfig {
  SweepSpec spec;
  std::vector<std::shared_ptr<Backend>> backends;
  std::uint32_t threads = 0;  ///< 0 = hardware concurrency

  /// Fault-tolerance policy (docs/ROBUSTNESS.md), config keys
  /// `on_error` (fail-fast|collect-all), `max_attempts`,
  /// `cell_deadline_ms`, `degraded_utilization`; hmcs_run copies these
  /// into RunnerOptions and lets CLI flags override them.
  FailurePolicy on_error = FailurePolicy::kFailFast;
  std::uint32_t max_attempts = 1;
  double cell_deadline_ms = 0.0;
  double degraded_utilization = 1.0;
  /// RunnerOptions::batch_cells, config key `batch_cells`; hmcs_run's
  /// --batch flag overrides it.
  std::uint32_t batch_cells = 0;
};

/// Loads a sweep config from `path`: `.json` is parsed as the JSON
/// schema, anything else as key=value. Throws hmcs::ConfigError on
/// unreadable files or malformed/unknown content.
SweepRunConfig load_sweep_config(const std::string& path,
                                 const SweepLoadOptions& options = {});

/// Parses the JSON schema from text.
SweepRunConfig sweep_config_from_json(std::string_view text,
                                      const SweepLoadOptions& options = {});

/// Builds from an already-parsed key=value file.
SweepRunConfig sweep_config_from_keyvalue(const KeyValueFile& file,
                                          const SweepLoadOptions& options = {});

/// Parses one technology-axis entry: a string ("case1"/"case2" or any
/// parse_technology spec applied to all three roles) or an object with
/// icn1/ecn1/icn2 plus an optional label. Shared with the serve layer so
/// sweeps and query requests speak one schema.
TechnologyCase technology_from_json(const JsonValue& entry);

/// Builds one evaluation backend from a "backends" array entry
/// ({"type": "analytic"|"des"|"fabric", ...}; unknown keys rejected).
/// Shared with the serve layer.
std::shared_ptr<Backend> backend_from_json(const JsonValue& entry,
                                           const SweepLoadOptions& options = {});

/// Parses an analytic throttling-model name: bisection|picard|mva|none
/// (the figure harnesses' --model vocabulary).
analytic::SourceThrottling parse_throttling_model(const std::string& name);

/// Inverse of parse_throttling_model (stable wire names). Used for
/// canonical cache keys in the serve layer.
const char* throttling_model_name(analytic::SourceThrottling method);

/// Parses a failure-policy name: fail-fast|collect-all.
FailurePolicy parse_failure_policy(const std::string& name);

}  // namespace hmcs::runner
