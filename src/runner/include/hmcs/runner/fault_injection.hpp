#pragma once

/// \file fault_injection.hpp
/// A test backend that fails on demand: chosen point indices throw
/// (ConfigError or LogicError), hang cooperatively until the cell's
/// cancel token expires, or return a NaN mean. Healthy points delegate
/// to an inner backend, or compute a cheap deterministic synthetic
/// latency when none is given. Every predict() call is logged with its
/// (point, attempt, seed) triple so tests can assert the retry
/// protocol — deterministic re-derived seeds, bounded attempts —
/// independently of worker scheduling.
///
/// This is test infrastructure, but it lives in the library (not the
/// test binary) so the CLI smoke tooling and future chaos studies can
/// reuse it.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hmcs/runner/backend.hpp"

namespace hmcs::runner {

class FaultInjectionBackend : public Backend {
 public:
  struct Options {
    /// Delegate for non-faulting calls; null = synthetic result
    /// (a pure function of clusters, message bytes, and seed).
    std::shared_ptr<Backend> inner;
    /// Point indices that throw hmcs::ConfigError.
    std::vector<std::size_t> throw_config_on;
    /// Point indices that throw hmcs::LogicError.
    std::vector<std::size_t> throw_logic_on;
    /// Point indices that spin until ctx.cancel expires (cooperative
    /// hang); throws hmcs::LogicError after ~10 s if no token ever
    /// expires, so a misconfigured test cannot wedge the suite.
    std::vector<std::size_t> hang_on;
    /// Point indices that return a NaN mean latency.
    std::vector<std::size_t> nan_on;
    /// Faulting points stop faulting on attempts > this count
    /// (0 = fault forever). Models transient failures for retry tests.
    std::uint32_t heal_after_attempts = 0;
  };

  explicit FaultInjectionBackend(Options options,
                                 std::string name = "faulty");

  const std::string& name() const override { return name_; }
  PointResult predict(const analytic::SystemConfig& config,
                      const PointContext& ctx) const override;

  struct Call {
    std::size_t point = 0;
    std::uint32_t attempt = 0;
    std::uint64_t seed = 0;
  };
  /// Every predict() invocation so far, sorted by (point, attempt) so
  /// the log is identical for any worker count.
  std::vector<Call> calls() const;

 private:
  bool faults(const std::vector<std::size_t>& set, std::size_t point,
              std::uint32_t attempt) const;

  Options options_;
  std::string name_;
  mutable std::mutex mutex_;
  mutable std::vector<Call> calls_;
};

}  // namespace hmcs::runner
