#pragma once

/// \file sweep_runner.hpp
/// Executes the point×backend grid of a SweepSpec on a work-stealing
/// thread pool. Every cell (one backend evaluating one point) is an
/// independent task writing to its own preallocated slot, and every
/// point's seed is fixed at expansion time, so the result is
/// bit-identical to a serial run for any thread count — the repo-wide
/// determinism contract (CONTRIBUTING.md).
///
/// Observability: with a trace session attached, the sweep records one
/// wall-clock span per cell under pid 1 (tid = worker lane), and each
/// DES-backed point's simulator inherits the session with a distinct
/// pid (2 + point index) so simulated-time phase spans land in their
/// own Perfetto process group. The sweep's total wall time feeds the
/// `runner.sweep.wall_time` timer metric.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hmcs/obs/trace.hpp"
#include "hmcs/runner/backend.hpp"
#include "hmcs/runner/sweep_spec.hpp"

namespace hmcs::runner {

struct RunnerOptions {
  /// Worker threads; 0 = hardware concurrency. Results are identical
  /// for any value.
  std::uint32_t threads = 0;
  /// Optional wall-clock + simulated-time trace session (see above).
  std::shared_ptr<obs::TraceSession> trace;
};

/// The executed grid: points in expansion order × backends in call
/// order, cells point-major.
struct SweepResult {
  std::string id;
  std::string title;
  std::vector<SweepPoint> points;
  std::vector<std::string> backend_names;
  std::vector<PointResult> cells;  ///< points.size() * backend_names.size()

  const PointResult& at(std::size_t point, std::size_t backend) const;
  /// Index of a backend by name; throws hmcs::ConfigError when absent.
  std::size_t backend_index(const std::string& name) const;
};

/// Expands the spec and evaluates every point with every backend.
/// Throws what the backends throw (the first failure wins; remaining
/// tasks are abandoned).
SweepResult run_sweep(const SweepSpec& spec,
                      const std::vector<std::shared_ptr<Backend>>& backends,
                      const RunnerOptions& options = {});

}  // namespace hmcs::runner
