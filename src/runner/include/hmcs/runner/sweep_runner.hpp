#pragma once

/// \file sweep_runner.hpp
/// Executes the point×backend grid of a SweepSpec on a work-stealing
/// thread pool. Every cell (one backend evaluating one point) is an
/// independent task writing to its own preallocated slot, and every
/// point's seed is fixed at expansion time, so the result is
/// bit-identical to a serial run for any thread count — the repo-wide
/// determinism contract (CONTRIBUTING.md).
///
/// Fault tolerance (docs/ROBUSTNESS.md): each cell carries a terminal
/// CellStatus instead of poisoning the sweep. Under kFailFast (the
/// default, the historical semantics) the first failing cell's
/// exception is rethrown after the pool drains its in-flight work;
/// under kCollectAll failures are recorded in the cell — error string,
/// attempt count — and every other cell still runs. Bounded retries
/// re-derive the seed deterministically per attempt (retry_point_seed),
/// a per-cell wall-clock deadline is enforced cooperatively through
/// PointContext::cancel, validity guardrails demote suspect results to
/// kDegraded, and a JSON-lines journal (journal.hpp) makes any sweep
/// resumable with bit-identical merged output.
///
/// Observability: with a trace session attached, the sweep records one
/// wall-clock span per cell under pid 1 (tid = worker lane), and each
/// DES-backed point's simulator inherits the session with a distinct
/// pid (2 + point index) so simulated-time phase spans land in their
/// own Perfetto process group. The sweep's total wall time feeds the
/// `runner.sweep.wall_time` timer metric; cell dispositions feed the
/// `runner.cells.*` counters.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hmcs/obs/trace.hpp"
#include "hmcs/runner/backend.hpp"
#include "hmcs/runner/journal.hpp"
#include "hmcs/runner/sweep_spec.hpp"
#include "hmcs/util/cancel.hpp"

namespace hmcs::runner {

/// What a cell failure does to the rest of the sweep.
enum class FailurePolicy : std::uint8_t {
  /// Rethrow the first failing cell's exception from run_sweep and
  /// abandon the remaining cells — the historical behavior, and the
  /// right one for tests where any failure is a bug.
  kFailFast,
  /// Record the failure in the cell (status, error, attempts) and keep
  /// draining the grid — failures are data, not fatal errors.
  kCollectAll,
};

struct RunnerOptions {
  /// Worker threads; 0 = hardware concurrency. Results are identical
  /// for any value.
  std::uint32_t threads = 0;
  /// Cells per evaluate_batch call for backends advertising a batch
  /// path (batch_capacity() > 1); 0 (the default) evaluates every cell
  /// through predict(), preserving the historical execution exactly.
  /// Chunk boundaries are fixed in point-index space (independent of
  /// thread count and resume state), chunks containing resumed cells
  /// re-evaluate the whole chunk but only write the pending cells, and
  /// a failing chunk falls back to per-cell predict() with the full
  /// retry/deadline machinery — so statuses, journals, and resume
  /// byte-identity are preserved. The chunk deadline is
  /// cell_deadline_ms × chunk size.
  std::uint32_t batch_cells = 0;
  /// Optional wall-clock + simulated-time trace session (see above).
  std::shared_ptr<obs::TraceSession> trace;

  /// Cell-failure isolation policy (kTimedOut counts as a failure for
  /// fail-fast purposes; kDegraded never does).
  FailurePolicy on_error = FailurePolicy::kFailFast;
  /// Maximum predict() attempts per cell (>= 1). Attempt k runs with
  /// retry_point_seed(point.seed, k), so retry outcomes are
  /// deterministic at any thread count.
  std::uint32_t max_attempts = 1;
  /// Per-cell wall-clock budget in milliseconds; 0 disables. Enforced
  /// cooperatively: the token is polled on the simulators' event-loop
  /// rare path, and an expired cell unwinds as kTimedOut.
  double cell_deadline_ms = 0.0;
  /// Saturation guardrail: a cell whose max_center_utilization reaches
  /// this busy fraction is marked kDegraded (a saturated centre's
  /// latency estimate is window-length artefact, not steady state).
  /// The default 1.0 only fires on a centre busy for the entire
  /// measurement window; non-converged fixed points and non-finite
  /// means are always demoted.
  double degraded_utilization = 1.0;

  /// Checkpoint journal; cells are recorded as they reach a terminal
  /// status. Null = no journaling. The writer must outlive run_sweep.
  JournalWriter* journal = nullptr;
  /// Resume source: cells completed in `resume` are not re-executed
  /// (whatever their status) and their recorded results are merged
  /// bit-identically. Shape and per-cell seeds must match the spec.
  const SweepJournal* resume = nullptr;
  /// Sweep-wide cancellation (e.g. SIGINT): pending cells become
  /// kSkipped, in-flight cells unwind and are left kSkipped too, and
  /// run_sweep returns the partial grid (fail-fast and collect-all
  /// alike). Must outlive run_sweep; null = not cancellable.
  const util::CancelToken* cancel = nullptr;
};

/// The executed grid: points in expansion order × backends in call
/// order, cells point-major.
struct SweepResult {
  std::string id;
  std::string title;
  std::vector<SweepPoint> points;
  std::vector<std::string> backend_names;
  std::vector<PointResult> cells;  ///< points.size() * backend_names.size()

  const PointResult& at(std::size_t point, std::size_t backend) const;
  /// Index of a backend by name; throws hmcs::ConfigError when absent.
  std::size_t backend_index(const std::string& name) const;

  /// Number of cells with the given terminal status.
  std::size_t count_status(CellStatus status) const;
  /// True when every cell is kOk or kDegraded — i.e. every cell has a
  /// usable (if flagged) number.
  bool all_evaluated() const;
};

/// Expands the spec and evaluates every point with every backend.
/// Under FailurePolicy::kFailFast throws what the backends throw (the
/// first failure wins; remaining tasks are abandoned); under
/// kCollectAll failures land in their cells and run_sweep only throws
/// for configuration errors of the sweep itself (empty expansion,
/// duplicate backends, resume-journal mismatch).
SweepResult run_sweep(const SweepSpec& spec,
                      const std::vector<std::shared_ptr<Backend>>& backends,
                      const RunnerOptions& options = {});

}  // namespace hmcs::runner
