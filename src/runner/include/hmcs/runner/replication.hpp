#pragma once

/// \file replication.hpp
/// Independent-replications methodology: run the simulator R times with
/// decorrelated seeds and build the confidence interval across the
/// replication means. This is the statistically sound way to interval a
/// steady-state simulation (batch means within one run being the cheap
/// approximation); the DES backend uses it when replications > 1.
/// (Lived in hmcs::experiment before the sweep engine; moved here
/// because replication is an execution-strategy concern of the runner.)

#include <cstdint>
#include <vector>

#include "hmcs/analytic/system_config.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/simcore/tally.hpp"

namespace hmcs::runner {

struct ReplicationResult {
  /// Grand mean of the per-replication mean latencies (microseconds).
  double mean_latency_us = 0.0;
  /// CI across replication means (Student-t, R-1 df).
  simcore::ConfidenceInterval latency_ci{0.0, 0.0, 0.0};
  /// Mean of the per-replication effective rates.
  double effective_rate_per_us = 0.0;
  std::vector<sim::SimResult> replications;
};

/// Runs `replications` >= 1 independent simulations; seeds are derived
/// from base_options.seed via splitmix so runs are decorrelated yet the
/// whole experiment reproduces from one seed. Replications execute on
/// up to `parallelism` threads (0 = hardware concurrency); each
/// simulator instance is thread-confined, so results are bit-identical
/// to a serial run regardless of the thread count.
ReplicationResult run_replications(const analytic::SystemConfig& config,
                                   const sim::SimOptions& base_options,
                                   std::uint32_t replications,
                                   std::uint32_t parallelism = 0);

}  // namespace hmcs::runner
