#pragma once

/// \file backend.hpp
/// The evaluation-backend interface of the sweep engine. A Backend turns
/// one SystemConfig into one PointResult; the three implementations wrap
/// the repo's three evaluators of the same model description —
///
///   AnalyticBackend  Section 4's closed-form model (predict_latency)
///   DesBackend       the centre-level validation simulator (Section 6)
///   FabricBackend    the switch-level netsim rendering of Figure 1
///
/// — so any study can pair any subset of them over one declarative sweep
/// (Thomasian's point that analysis and simulation are interchangeable
/// evaluations of one model). Backends must be thread-safe: the
/// SweepRunner calls predict() concurrently from its worker pool.

#include <cstdint>
#include <memory>
#include <string>

#include "hmcs/analytic/batch_solver.hpp"
#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/model_tree.hpp"
#include "hmcs/analytic/system_config.hpp"
#include "hmcs/netsim/switch_fabric_sim.hpp"
#include "hmcs/obs/trace.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/cancel.hpp"

namespace hmcs::runner {

/// Terminal disposition of one grid cell (docs/ROBUSTNESS.md). Backends
/// never set it — they throw or return; the runner assigns it from the
/// outcome of the final attempt plus the validity guardrails.
enum class CellStatus : std::uint8_t {
  kOk,        ///< evaluated, passed the guardrails
  kFailed,    ///< the backend threw (ConfigError, LogicError, ...)
  kTimedOut,  ///< the per-cell wall-clock deadline expired
  kDegraded,  ///< evaluated, but the result is suspect: non-converged
              ///< fixed point, saturated centre, or non-finite mean
  kSkipped,   ///< never evaluated (cancelled sweep / abandoned lane)
};

/// Stable wire/report names: ok|failed|timed_out|degraded|skipped.
const char* to_string(CellStatus status);
/// Inverse of to_string; throws hmcs::ConfigError on unknown names.
CellStatus parse_cell_status(const std::string& name);

/// One backend's evaluation of one sweep point. mean_latency_us is the
/// headline number every backend fills; the diagnostic fields are
/// populated by the backends they apply to and left zero elsewhere.
struct PointResult {
  double mean_latency_us = 0.0;
  /// 95% CI half-width (0 for the deterministic analytic backend).
  double ci_half_us = 0.0;

  /// Analytic diagnostics (eq. 7 fixed point).
  double lambda_offered = 0.0;
  double lambda_effective = 0.0;
  bool converged = true;

  /// Simulation diagnostics.
  double effective_rate_per_us = 0.0;
  std::uint64_t messages_measured = 0;

  /// Switch-level diagnostics.
  double mean_switch_hops = 0.0;
  double max_switch_utilization = 0.0;

  /// Busiest service-centre busy fraction seen by this evaluation (DES:
  /// max over ICN1/ECN1/ICN2 roles and replications; fabric: busiest
  /// switch; analytic: 0). Feeds the saturation guardrail.
  double max_center_utilization = 0.0;

  /// Fault-tolerance record, filled by the runner (backends leave the
  /// defaults). `attempts` counts predict() calls actually made for
  /// this cell (0 = never executed); `error` holds the final attempt's
  /// exception message for kFailed/kTimedOut and the guardrail reason
  /// for kDegraded.
  CellStatus status = CellStatus::kOk;
  std::uint32_t attempts = 0;
  std::string error;
};

/// Per-point execution context handed to a backend: the point's
/// deterministic seed, its flat index and label (used for trace track
/// naming), the worker lane executing it, and the sweep's optional trace
/// session for simulated-time spans.
struct PointContext {
  std::size_t index = 0;
  std::uint32_t worker = 0;
  std::uint64_t seed = 1;
  /// 1-based attempt number; retries re-derive seed via
  /// retry_point_seed so attempt k is deterministic at any thread count.
  std::uint32_t attempt = 1;
  std::string label;
  std::shared_ptr<obs::TraceSession> trace;
  /// Per-cell cancellation/deadline token (valid for the duration of
  /// the predict() call); backends running open-ended loops thread it
  /// into them. Null when the sweep runs without deadlines.
  const util::CancelToken* cancel = nullptr;
};

/// Execution context for one evaluate_batch call: the flat index of the
/// chunk's first point (trace/debug labelling) and a chunk-wide
/// cancellation token (deadline = per-cell budget × chunk size).
struct BatchPointContext {
  std::size_t first_index = 0;
  std::uint32_t worker = 0;
  const util::CancelToken* cancel = nullptr;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Column label in tables/CSV/JSON; unique within one run_sweep call.
  virtual const std::string& name() const = 0;

  /// Evaluates one configuration. Must be const and thread-safe; the
  /// runner invokes it concurrently. Implementations use ctx.seed for
  /// any stochastic execution so results are scheduling-independent.
  virtual PointResult predict(const analytic::SystemConfig& config,
                              const PointContext& ctx) const = 0;

  /// Evaluates one recursive topology (docs/COMPOSITION.md). The base
  /// implementation lowers flat-shaped trees through as_system_config()
  /// onto predict(), so every backend handles depth-2 trees for free;
  /// genuinely nested trees throw hmcs::ConfigError unless a backend
  /// overrides this (AnalyticBackend, DesBackend). Same const and
  /// thread-safety contract as predict().
  virtual PointResult predict_tree(const analytic::ModelTree& tree,
                                   const PointContext& ctx) const;

  /// Largest chunk one evaluate_batch call accepts; 1 (the default)
  /// means the backend has no batch path and the runner calls predict()
  /// per cell. Backends whose per-point work is dominated by shared
  /// precomputation (the analytic model) return > 1.
  virtual std::size_t batch_capacity() const { return 1; }

  /// Evaluates `count` configurations into results[0, count). Only
  /// called when batch_capacity() > 1; the base implementation throws
  /// hmcs::LogicError. Same const/thread-safety contract as predict().
  /// A throw fails the whole chunk — the runner then falls back to
  /// per-cell predict() calls, so partial results must not be written.
  virtual void evaluate_batch(const analytic::SystemConfig* const* configs,
                              std::size_t count, const BatchPointContext& ctx,
                              PointResult* results) const;
};

/// Wraps analytic::predict_latency. Deterministic; ignores ctx.seed.
/// Threads the runner's per-cell cancel token into the solver so
/// deadlines bound even MVA-backed cells, and implements the batched
/// path through analytic::predict_latency_batch.
///
/// The default batch options disable warm starts: a batched sweep is
/// then bit-identical to the per-cell path cell for cell (values and
/// statuses), which keeps `hmcs_run --batch` interchangeable with the
/// scalar run. Pass BatchOptions{true} to trade that for the
/// continuation warm starts (tolerance-level agreement on converged
/// cells; see batch_solver.hpp).
class AnalyticBackend : public Backend {
 public:
  explicit AnalyticBackend(analytic::ModelOptions options = {},
                           std::string name = "analytic",
                           analytic::BatchOptions batch = {false});

  const std::string& name() const override { return name_; }
  PointResult predict(const analytic::SystemConfig& config,
                      const PointContext& ctx) const override;
  /// predict_model_tree with this backend's fixed-point options; flat
  /// shapes take the exact-lowering path and match predict() exactly.
  PointResult predict_tree(const analytic::ModelTree& tree,
                           const PointContext& ctx) const override;

  std::size_t batch_capacity() const override { return 4096; }
  void evaluate_batch(const analytic::SystemConfig* const* configs,
                      std::size_t count, const BatchPointContext& ctx,
                      PointResult* results) const override;

 private:
  analytic::ModelOptions options_;
  std::string name_;
  analytic::BatchOptions batch_;
};

/// Wraps sim::MultiClusterSim (optionally through the independent-
/// replications harness). The point's seed comes from ctx.seed.
class DesBackend : public Backend {
 public:
  struct Options {
    /// Base options; seed is overwritten with ctx.seed per point.
    sim::SimOptions sim;
    std::uint32_t replications = 1;
    /// Historical seeding protocols, preserved so ported studies stay
    /// bit-identical: false (figure protocol) derives per-replication
    /// seeds from ctx.seed via the replication harness even for R=1;
    /// true (bench-driver protocol) hands ctx.seed straight to a single
    /// simulator (requires replications == 1).
    bool direct_seed = false;
  };

  explicit DesBackend(Options options, std::string name = "des");

  const std::string& name() const override { return name_; }
  PointResult predict(const analytic::SystemConfig& config,
                      const PointContext& ctx) const override;
  /// Flat-shaped trees lower onto predict() (same replication harness);
  /// nested trees run sim::TreeSim with per-replication seeds derived
  /// from ctx.seed by the replication harness's SplitMix64 protocol.
  PointResult predict_tree(const analytic::ModelTree& tree,
                           const PointContext& ctx) const override;

 private:
  Options options_;
  std::string name_;
};

/// Wraps the switch-granularity rendering: builds an netsim::HmcsFabric
/// for the configuration and runs netsim::SwitchFabricSim on it.
class FabricBackend : public Backend {
 public:
  struct Options {
    std::uint64_t measured_messages = 10000;
    std::uint64_t warmup_messages = 2000;
    netsim::SwitchingMode mode = netsim::SwitchingMode::kStoreAndForward;
    bool closed_loop = true;
  };

  FabricBackend() : FabricBackend(Options{}) {}
  explicit FabricBackend(Options options, std::string name = "fabric");

  const std::string& name() const override { return name_; }
  PointResult predict(const analytic::SystemConfig& config,
                      const PointContext& ctx) const override;

 private:
  Options options_;
  std::string name_;
};

}  // namespace hmcs::runner
