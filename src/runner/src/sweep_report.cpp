#include "hmcs/runner/sweep_report.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"
#include "hmcs/util/math_util.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace hmcs::runner {

namespace {

/// Which coordinate columns vary across this sweep's points.
struct VaryingAxes {
  bool lambda = false;
  bool technology = false;
  bool architecture = false;
};

VaryingAxes varying_axes(const SweepResult& result) {
  VaryingAxes varying;
  if (result.points.empty()) return varying;
  const SweepPoint& first = result.points.front();
  for (const SweepPoint& point : result.points) {
    if (point.lambda_per_us != first.lambda_per_us) varying.lambda = true;
    if (point.technology_index != first.technology_index) {
      varying.technology = true;
    }
    if (point.architecture != first.architecture) varying.architecture = true;
  }
  return varying;
}

/// True when the cell produced a number worth printing (ok or
/// degraded); failed/timed-out/skipped cells carry no usable latency.
bool has_value(const PointResult& cell) {
  return cell.status == CellStatus::kOk ||
         cell.status == CellStatus::kDegraded;
}

std::string latency_cell(const PointResult& cell) {
  switch (cell.status) {
    case CellStatus::kFailed: return "FAILED";
    case CellStatus::kTimedOut: return "TIMEOUT";
    case CellStatus::kSkipped: return "-";
    case CellStatus::kOk:
    case CellStatus::kDegraded: break;
  }
  if (!std::isfinite(cell.mean_latency_us)) return "inf";
  std::string text = format_fixed(units::us_to_ms(cell.mean_latency_us), 3);
  if (cell.ci_half_us > 0.0) {
    text += " ±" + format_fixed(units::us_to_ms(cell.ci_half_us), 3);
  }
  if (!cell.converged) text += "*";
  return text;
}

std::string status_cell(const PointResult& cell) {
  std::string text = to_string(cell.status);
  if (cell.attempts > 1) {
    text += " (x" + std::to_string(cell.attempts) + ")";
  }
  return text;
}

}  // namespace

std::string render_sweep_table(const SweepResult& result) {
  const VaryingAxes varying = varying_axes(result);
  const std::size_t n_backends = result.backend_names.size();

  // Fault-tolerance columns appear only when they carry information,
  // so an all-ok converged sweep renders byte-identically to the
  // pre-robustness engine.
  bool any_non_ok = false;
  bool any_non_converged = false;
  for (const PointResult& cell : result.cells) {
    if (cell.status != CellStatus::kOk) any_non_ok = true;
    if (!cell.converged) any_non_converged = true;
  }

  std::vector<std::string> headers{"Clusters", "M (bytes)"};
  if (varying.lambda) headers.push_back("lambda (msg/s)");
  if (varying.technology) headers.push_back("technology");
  if (varying.architecture) headers.push_back("architecture");
  for (const std::string& name : result.backend_names) {
    headers.push_back(name + " (ms)");
  }
  for (std::size_t b = 1; b < n_backends; ++b) {
    headers.push_back("RelErr " + result.backend_names[b]);
  }
  if (any_non_converged) {
    for (const std::string& name : result.backend_names) {
      headers.push_back("Conv " + name);
    }
  }
  if (any_non_ok) {
    for (const std::string& name : result.backend_names) {
      headers.push_back("Status " + name);
    }
  }

  Table table(headers);
  for (const SweepPoint& point : result.points) {
    std::vector<std::string> row{std::to_string(point.clusters),
                                 format_compact(point.message_bytes, 6)};
    if (varying.lambda) {
      row.push_back(
          format_compact(units::per_us_to_per_s(point.lambda_per_us), 6));
    }
    if (varying.technology) row.push_back(point.technology_label);
    if (varying.architecture) {
      row.push_back(analytic::to_string(point.architecture));
    }
    for (std::size_t b = 0; b < n_backends; ++b) {
      row.push_back(latency_cell(result.at(point.index, b)));
    }
    const PointResult& reference = result.at(point.index, 0);
    for (std::size_t b = 1; b < n_backends; ++b) {
      const PointResult& other = result.at(point.index, b);
      if (!has_value(reference) || !has_value(other)) {
        row.push_back("-");
        continue;
      }
      // The paper's accuracy notion: |other - reference| / other, with
      // the non-reference evaluation as ground truth (Figures 4-7 use
      // |analysis - simulation| / simulation).
      row.push_back(
          format_fixed(relative_error(units::us_to_ms(
                                          reference.mean_latency_us),
                                      units::us_to_ms(
                                          other.mean_latency_us)) *
                           100.0, 1) + "%");
    }
    if (any_non_converged) {
      for (std::size_t b = 0; b < n_backends; ++b) {
        row.push_back(result.at(point.index, b).converged ? "yes" : "no");
      }
    }
    if (any_non_ok) {
      for (std::size_t b = 0; b < n_backends; ++b) {
        row.push_back(status_cell(result.at(point.index, b)));
      }
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

CsvWriter sweep_csv(const SweepResult& result) {
  std::vector<std::string> headers{"clusters",     "message_bytes",
                                   "lambda_per_s", "architecture",
                                   "technology",   "seed"};
  for (const std::string& name : result.backend_names) {
    headers.push_back(name + "_mean_ms");
    headers.push_back(name + "_ci_half_ms");
    headers.push_back(name + "_converged");
    headers.push_back(name + "_status");
    headers.push_back(name + "_attempts");
  }
  CsvWriter csv(headers);
  for (const SweepPoint& point : result.points) {
    std::vector<std::string> row{
        std::to_string(point.clusters),
        format_compact(point.message_bytes, 17),
        format_compact(units::per_us_to_per_s(point.lambda_per_us), 17),
        analytic::to_string(point.architecture),
        point.technology_label,
        std::to_string(point.seed)};
    for (std::size_t b = 0; b < result.backend_names.size(); ++b) {
      const PointResult& cell = result.at(point.index, b);
      row.push_back(format_compact(units::us_to_ms(cell.mean_latency_us), 17));
      row.push_back(format_compact(units::us_to_ms(cell.ci_half_us), 17));
      row.push_back(cell.converged ? "1" : "0");
      row.push_back(to_string(cell.status));
      row.push_back(std::to_string(cell.attempts));
    }
    csv.add_row(row);
  }
  return csv;
}

std::string sweep_json(const SweepResult& result) {
  JsonWriter json;
  json.begin_object();
  json.key("id").value(result.id);
  json.key("title").value(result.title);
  json.key("backends").begin_array();
  for (const std::string& name : result.backend_names) json.value(name);
  json.end_array();
  json.key("points").begin_array();
  for (const SweepPoint& point : result.points) {
    json.begin_object();
    json.key("clusters").value(point.clusters);
    json.key("message_bytes").value(point.message_bytes);
    json.key("lambda_per_s")
        .value(units::per_us_to_per_s(point.lambda_per_us));
    json.key("architecture").value(analytic::to_string(point.architecture));
    json.key("technology").value(point.technology_label);
    json.key("seed").value(point.seed);
    json.key("results").begin_object();
    for (std::size_t b = 0; b < result.backend_names.size(); ++b) {
      const PointResult& cell = result.at(point.index, b);
      json.key(result.backend_names[b]).begin_object();
      json.key("status").value(to_string(cell.status));
      json.key("attempts").value(cell.attempts);
      if (!cell.error.empty()) json.key("error").value(cell.error);
      json.key("mean_latency_us").value(cell.mean_latency_us);
      json.key("ci_half_us").value(cell.ci_half_us);
      json.key("converged").value(cell.converged);
      if (cell.lambda_offered > 0.0) {
        json.key("lambda_offered").value(cell.lambda_offered);
        json.key("lambda_effective").value(cell.lambda_effective);
      }
      if (cell.messages_measured > 0) {
        json.key("messages_measured").value(cell.messages_measured);
        json.key("effective_rate_per_us").value(cell.effective_rate_per_us);
      }
      if (cell.mean_switch_hops > 0.0) {
        json.key("mean_switch_hops").value(cell.mean_switch_hops);
        json.key("max_switch_utilization")
            .value(cell.max_switch_utilization);
      }
      if (cell.max_center_utilization > 0.0) {
        json.key("max_center_utilization")
            .value(cell.max_center_utilization);
      }
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void print_sweep_report(std::ostream& os, const SweepResult& result,
                        const std::string& csv_dir,
                        const std::string& json_dir) {
  os << "== " << (result.title.empty() ? result.id : result.title) << " ==\n";
  os << render_sweep_table(result);
  // One-line disposition summary, only when something needs attention.
  const std::size_t failed = result.count_status(CellStatus::kFailed);
  const std::size_t timed_out = result.count_status(CellStatus::kTimedOut);
  const std::size_t degraded = result.count_status(CellStatus::kDegraded);
  const std::size_t skipped = result.count_status(CellStatus::kSkipped);
  if (failed + timed_out + degraded + skipped > 0) {
    os << "cells: " << result.count_status(CellStatus::kOk) << " ok";
    if (degraded != 0) os << ", " << degraded << " degraded";
    if (failed != 0) os << ", " << failed << " failed";
    if (timed_out != 0) os << ", " << timed_out << " timed_out";
    if (skipped != 0) os << ", " << skipped << " skipped";
    os << " (of " << result.cells.size() << ")\n";
  }
  // Best-effort like obs::write_run_artifacts: a failure surfaces as
  // the write error below, with the path in the message.
  std::error_code ec;
  if (!csv_dir.empty()) {
    std::filesystem::create_directories(csv_dir, ec);
    const std::string path = csv_dir + "/" + result.id + ".csv";
    sweep_csv(result).write_file(path);
    os << "series written to " << path << "\n";
  }
  if (!json_dir.empty()) {
    std::filesystem::create_directories(json_dir, ec);
    const std::string path = json_dir + "/" + result.id + ".json";
    std::ofstream out(path);
    require(out.good(), "print_sweep_report: cannot write '" + path + "'");
    out << sweep_json(result) << "\n";
    os << "record written to " << path << "\n";
  }
}

}  // namespace hmcs::runner
