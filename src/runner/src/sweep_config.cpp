#include "hmcs/runner/sweep_config.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "hmcs/analytic/config_io.hpp"
#include "hmcs/analytic/tree_io.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/units.hpp"

namespace hmcs::runner {

namespace {

using analytic::parse_architecture;
using analytic::parse_technology;

void reject_unknown_members(const JsonValue& object,
                            const std::vector<std::string>& known,
                            const std::string& where) {
  for (const auto& [key, value] : object.members) {
    (void)value;
    require(std::find(known.begin(), known.end(), key) != known.end(),
            "sweep config: unknown key '" + key + "' in " + where);
  }
}

double number_member(const JsonValue& object, std::string_view key,
                     double fallback) {
  const JsonValue* member = object.find(key);
  return member == nullptr ? fallback : member->as_number();
}

std::uint64_t uint_member(const JsonValue& object, std::string_view key,
                          std::uint64_t fallback) {
  const JsonValue* member = object.find(key);
  if (member == nullptr) return fallback;
  const double number = member->as_number();
  require(number >= 0.0 && number == static_cast<double>(
                                         static_cast<std::uint64_t>(number)),
          "sweep config: '" + std::string(key) +
              "' must be a non-negative integer");
  return static_cast<std::uint64_t>(number);
}

std::string string_member(const JsonValue& object, std::string_view key,
                          const std::string& fallback) {
  const JsonValue* member = object.find(key);
  return member == nullptr ? fallback : member->as_string();
}

/// "case1"/"case2", or any parse_technology spec applied to all roles.
TechnologyCase technology_from_string(const std::string& spec) {
  if (spec == "case1") {
    return technology_case(analytic::HeterogeneityCase::kCase1);
  }
  if (spec == "case2") {
    return technology_case(analytic::HeterogeneityCase::kCase2);
  }
  TechnologyCase tech;
  tech.icn1 = parse_technology(spec);
  tech.ecn1 = tech.icn1;
  tech.icn2 = tech.icn1;
  tech.label = tech.icn1.name;
  return tech;
}

AxisMode parse_mode(const std::string& mode) {
  if (mode == "cartesian") return AxisMode::kCartesian;
  if (mode == "zipped") return AxisMode::kZipped;
  detail::throw_config_error(
      "sweep config: mode must be cartesian|zipped, got '" + mode + "'",
      std::source_location::current());
}

void load_axes_json(const JsonValue& axes, SweepAxes& out) {
  reject_unknown_members(axes,
                         {"clusters", "message_bytes", "lambda_per_s",
                          "architecture", "technology", "paths",
                          "service_cv2", "arrival_ca2"},
                         "'axes'");
  if (const JsonValue* clusters = axes.find("clusters")) {
    require(clusters->is_array(),
            "sweep config: 'clusters' must be an array");
    for (const JsonValue& item : clusters->items) {
      const double number = item.as_number();
      require(number >= 1.0 &&
                  number == static_cast<double>(
                                static_cast<std::uint32_t>(number)),
              "sweep config: cluster counts must be positive integers");
      out.clusters.push_back(static_cast<std::uint32_t>(number));
    }
  }
  if (const JsonValue* bytes = axes.find("message_bytes")) {
    require(bytes->is_array(),
            "sweep config: 'message_bytes' must be an array");
    for (const JsonValue& item : bytes->items) {
      out.message_bytes.push_back(item.as_number());
    }
  }
  if (const JsonValue* lambda = axes.find("lambda_per_s")) {
    require(lambda->is_array(),
            "sweep config: 'lambda_per_s' must be an array");
    for (const JsonValue& item : lambda->items) {
      out.lambda_per_us.push_back(units::per_s_to_per_us(item.as_number()));
    }
  }
  if (const JsonValue* arch = axes.find("architecture")) {
    require(arch->is_array(),
            "sweep config: 'architecture' must be an array");
    for (const JsonValue& item : arch->items) {
      out.architectures.push_back(parse_architecture(item.as_string()));
    }
  }
  if (const JsonValue* tech = axes.find("technology")) {
    require(tech->is_array(),
            "sweep config: 'technology' must be an array");
    for (const JsonValue& item : tech->items) {
      out.technologies.push_back(technology_from_json(item));
    }
  }
  if (const JsonValue* cv2 = axes.find("service_cv2")) {
    require(cv2->is_array(),
            "sweep config: 'service_cv2' must be an array");
    for (const JsonValue& item : cv2->items) {
      out.service_cv2.push_back(item.as_number());
    }
  }
  if (const JsonValue* ca2 = axes.find("arrival_ca2")) {
    require(ca2->is_array(),
            "sweep config: 'arrival_ca2' must be an array");
    for (const JsonValue& item : ca2->items) {
      out.arrival_ca2.push_back(item.as_number());
    }
  }
  if (const JsonValue* paths = axes.find("paths")) {
    require(paths->is_array(), "sweep config: 'paths' must be an array");
    for (const JsonValue& item : paths->items) {
      require(item.is_object(),
              "sweep config: 'paths' entries must be objects");
      reject_unknown_members(item, {"path", "values"}, "a path axis");
      PathAxis axis;
      axis.path = item.at("path").as_string();
      const JsonValue& values = item.at("values");
      require(values.is_array() && values.size() >= 1,
              "sweep config: path axis '" + axis.path +
                  "' needs a non-empty 'values' array");
      for (const JsonValue& value : values.items) {
        axis.values.push_back(value.as_number());
      }
      out.node_paths.push_back(std::move(axis));
    }
  }
}

}  // namespace

TechnologyCase technology_from_json(const JsonValue& entry) {
  if (entry.is_string()) return technology_from_string(entry.as_string());
  require(entry.is_object(),
          "sweep config: technology entries must be strings or objects");
  reject_unknown_members(entry, {"label", "icn1", "ecn1", "icn2"},
                         "a technology entry");
  TechnologyCase tech;
  tech.icn1 = parse_technology(entry.at("icn1").as_string());
  tech.ecn1 = parse_technology(entry.at("ecn1").as_string());
  tech.icn2 = parse_technology(entry.at("icn2").as_string());
  tech.label = string_member(entry, "label",
                             tech.icn1.name + "/" + tech.ecn1.name + "/" +
                                 tech.icn2.name);
  return tech;
}

std::shared_ptr<Backend> backend_from_json(const JsonValue& entry,
                                           const SweepLoadOptions& options) {
  require(entry.is_object(),
          "sweep config: backend entries must be objects");
  const std::string type = entry.at("type").as_string();
  if (type == "analytic") {
    reject_unknown_members(entry, {"type", "model", "name"},
                           "an analytic backend");
    analytic::ModelOptions model;
    model.fixed_point.method =
        parse_throttling_model(string_member(entry, "model", "bisection"));
    return std::make_shared<AnalyticBackend>(
        model, string_member(entry, "name", "analytic"));
  }
  if (type == "des") {
    reject_unknown_members(
        entry, {"type", "messages", "warmup", "replications", "name"},
        "a des backend");
    DesBackend::Options des;
    des.sim.measured_messages =
        uint_member(entry, "messages", des.sim.measured_messages);
    des.sim.warmup_messages =
        uint_member(entry, "warmup", des.sim.warmup_messages);
    des.sim.obs.sample_interval_us = options.obs_sample_interval_us;
    des.replications = static_cast<std::uint32_t>(
        uint_member(entry, "replications", 1));
    require(des.replications >= 1,
            "sweep config: des replications must be >= 1");
    return std::make_shared<DesBackend>(des,
                                        string_member(entry, "name", "des"));
  }
  if (type == "fabric") {
    reject_unknown_members(entry, {"type", "messages", "warmup", "name"},
                           "a fabric backend");
    FabricBackend::Options fabric;
    fabric.measured_messages =
        uint_member(entry, "messages", fabric.measured_messages);
    fabric.warmup_messages =
        uint_member(entry, "warmup", fabric.warmup_messages);
    return std::make_shared<FabricBackend>(
        fabric, string_member(entry, "name", "fabric"));
  }
  detail::throw_config_error(
      "sweep config: backend type must be analytic|des|fabric, got '" + type +
          "'",
      std::source_location::current());
}

analytic::SourceThrottling parse_throttling_model(const std::string& name) {
  const std::string trimmed = trim(name);
  if (trimmed == "bisection") return analytic::SourceThrottling::kBisection;
  if (trimmed == "picard") return analytic::SourceThrottling::kPicard;
  if (trimmed == "mva") return analytic::SourceThrottling::kExactMva;
  if (trimmed == "none") return analytic::SourceThrottling::kNone;
  detail::throw_config_error(
      "unknown model '" + name + "' (expected bisection|picard|mva|none)",
      std::source_location::current());
}

const char* throttling_model_name(analytic::SourceThrottling method) {
  switch (method) {
    case analytic::SourceThrottling::kBisection: return "bisection";
    case analytic::SourceThrottling::kPicard: return "picard";
    case analytic::SourceThrottling::kExactMva: return "mva";
    case analytic::SourceThrottling::kNone: return "none";
  }
  detail::throw_logic_error("unknown SourceThrottling value",
                            std::source_location::current());
}

FailurePolicy parse_failure_policy(const std::string& name) {
  const std::string trimmed = trim(name);
  if (trimmed == "fail-fast") return FailurePolicy::kFailFast;
  if (trimmed == "collect-all") return FailurePolicy::kCollectAll;
  detail::throw_config_error(
      "unknown on_error policy '" + name +
          "' (expected fail-fast|collect-all)",
      std::source_location::current());
}

SweepRunConfig sweep_config_from_json(std::string_view text,
                                      const SweepLoadOptions& options) {
  const JsonValue doc = parse_json(text);
  require(doc.is_object(), "sweep config: the document must be an object");
  reject_unknown_members(doc,
                         {"id", "title", "mode", "total_nodes",
                          "switch_ports", "switch_latency_us", "seed",
                          "threads", "axes", "backends", "on_error",
                          "max_attempts", "cell_deadline_ms",
                          "degraded_utilization", "batch_cells", "tree",
                          "workload"},
                         "the sweep config");

  SweepRunConfig config;
  config.spec.id = string_member(doc, "id", "sweep");
  config.spec.title = string_member(doc, "title", "");
  config.spec.mode = parse_mode(string_member(doc, "mode", "cartesian"));
  config.spec.total_nodes = static_cast<std::uint32_t>(
      uint_member(doc, "total_nodes", analytic::kPaperTotalNodes));
  config.spec.switch_params.ports = static_cast<std::uint32_t>(
      uint_member(doc, "switch_ports", analytic::kPaperSwitchPorts));
  config.spec.switch_params.latency_us =
      number_member(doc, "switch_latency_us", analytic::kPaperSwitchLatencyUs);
  config.spec.base_seed = uint_member(doc, "seed", 1);
  config.threads = static_cast<std::uint32_t>(uint_member(doc, "threads", 0));
  config.on_error =
      parse_failure_policy(string_member(doc, "on_error", "fail-fast"));
  config.max_attempts =
      static_cast<std::uint32_t>(uint_member(doc, "max_attempts", 1));
  require(config.max_attempts >= 1,
          "sweep config: max_attempts must be >= 1");
  config.cell_deadline_ms = number_member(doc, "cell_deadline_ms", 0.0);
  require(config.cell_deadline_ms >= 0.0,
          "sweep config: cell_deadline_ms must be >= 0");
  config.degraded_utilization =
      number_member(doc, "degraded_utilization", 1.0);
  require(config.degraded_utilization > 0.0,
          "sweep config: degraded_utilization must be > 0");
  config.batch_cells =
      static_cast<std::uint32_t>(uint_member(doc, "batch_cells", 0));

  if (const JsonValue* tree = doc.find("tree")) {
    // The member is a complete nested topology config (the same
    // docs/COMPOSITION.md document hmcs_serve accepts), so the topology
    // carries its own switch/message parameters.
    config.spec.base_tree = std::make_shared<const analytic::ModelTree>(
        analytic::model_tree_from_json(*tree, "'tree'"));
  }

  if (const JsonValue* workload = doc.find("workload")) {
    config.spec.workload = analytic::workload_from_json(*workload);
  }

  if (const JsonValue* axes = doc.find("axes")) {
    require(axes->is_object(), "sweep config: 'axes' must be an object");
    load_axes_json(*axes, config.spec.axes);
  }

  if (const JsonValue* backends = doc.find("backends")) {
    require(backends->is_array(),
            "sweep config: 'backends' must be an array");
    for (const JsonValue& entry : backends->items) {
      config.backends.push_back(backend_from_json(entry, options));
    }
  }
  if (config.backends.empty()) {
    config.backends.push_back(std::make_shared<AnalyticBackend>());
  }
  return config;
}

SweepRunConfig sweep_config_from_keyvalue(const KeyValueFile& file,
                                          const SweepLoadOptions& options) {
  const std::vector<std::string> known{
      "id",           "title",       "mode",         "total_nodes",
      "switch_ports", "switch_latency_us", "seed",   "threads",
      "clusters",     "message_bytes", "lambda_per_s", "architecture",
      "service_cv2",  "arrival_ca2",
      "technology",   "backends",    "model",        "messages",
      "warmup",       "replications", "on_error",    "max_attempts",
      "cell_deadline_ms", "degraded_utilization", "batch_cells"};
  const auto unknown = file.unknown_keys(known);
  require(unknown.empty(), "sweep config: unknown key '" +
                               (unknown.empty() ? "" : unknown[0]) + "'");

  SweepRunConfig config;
  config.spec.id = file.get_or("id", "sweep");
  config.spec.title = file.get_or("title", "");
  config.spec.mode = parse_mode(file.get_or("mode", "cartesian"));
  config.spec.total_nodes = static_cast<std::uint32_t>(
      parse_int(file.get_or("total_nodes",
                            std::to_string(analytic::kPaperTotalNodes))));
  config.spec.switch_params.ports = static_cast<std::uint32_t>(
      parse_int(file.get_or("switch_ports",
                            std::to_string(analytic::kPaperSwitchPorts))));
  config.spec.switch_params.latency_us =
      parse_double(file.get_or("switch_latency_us", "10"));
  const long long seed = parse_int(file.get_or("seed", "1"));
  require(seed >= 0, "sweep config: seed must be >= 0");
  config.spec.base_seed = static_cast<std::uint64_t>(seed);
  config.threads =
      static_cast<std::uint32_t>(parse_int(file.get_or("threads", "0")));
  config.on_error = parse_failure_policy(file.get_or("on_error", "fail-fast"));
  const long long attempts = parse_int(file.get_or("max_attempts", "1"));
  require(attempts >= 1, "sweep config: max_attempts must be >= 1");
  config.max_attempts = static_cast<std::uint32_t>(attempts);
  config.cell_deadline_ms = parse_double(file.get_or("cell_deadline_ms", "0"));
  require(config.cell_deadline_ms >= 0.0,
          "sweep config: cell_deadline_ms must be >= 0");
  config.degraded_utilization =
      parse_double(file.get_or("degraded_utilization", "1"));
  require(config.degraded_utilization > 0.0,
          "sweep config: degraded_utilization must be > 0");
  const long long batch_cells = parse_int(file.get_or("batch_cells", "0"));
  require(batch_cells >= 0, "sweep config: batch_cells must be >= 0");
  config.batch_cells = static_cast<std::uint32_t>(batch_cells);

  const auto list = [&](const char* key) {
    std::vector<std::string> items;
    if (!file.has(key)) return items;
    for (const std::string& item : split(file.get(key), ',')) {
      items.push_back(trim(item));
    }
    return items;
  };
  for (const std::string& item : list("clusters")) {
    const long long value = parse_int(item);
    require(value >= 1, "sweep config: cluster counts must be >= 1");
    config.spec.axes.clusters.push_back(static_cast<std::uint32_t>(value));
  }
  for (const std::string& item : list("message_bytes")) {
    config.spec.axes.message_bytes.push_back(parse_double(item));
  }
  for (const std::string& item : list("lambda_per_s")) {
    config.spec.axes.lambda_per_us.push_back(
        units::per_s_to_per_us(parse_double(item)));
  }
  for (const std::string& item : list("architecture")) {
    config.spec.axes.architectures.push_back(parse_architecture(item));
  }
  for (const std::string& item : list("technology")) {
    config.spec.axes.technologies.push_back(technology_from_string(item));
  }
  for (const std::string& item : list("service_cv2")) {
    config.spec.axes.service_cv2.push_back(parse_double(item));
  }
  for (const std::string& item : list("arrival_ca2")) {
    config.spec.axes.arrival_ca2.push_back(parse_double(item));
  }

  const auto messages =
      static_cast<std::uint64_t>(parse_int(file.get_or("messages", "10000")));
  const auto warmup =
      static_cast<std::uint64_t>(parse_int(file.get_or("warmup", "2000")));
  std::vector<std::string> backend_names = list("backends");
  if (backend_names.empty()) backend_names = {"analytic"};
  for (const std::string& name : backend_names) {
    if (name == "analytic") {
      analytic::ModelOptions model;
      model.fixed_point.method =
          parse_throttling_model(file.get_or("model", "bisection"));
      config.backends.push_back(std::make_shared<AnalyticBackend>(model));
    } else if (name == "des") {
      DesBackend::Options des;
      des.sim.measured_messages = messages;
      des.sim.warmup_messages = warmup;
      des.sim.obs.sample_interval_us = options.obs_sample_interval_us;
      des.replications = static_cast<std::uint32_t>(
          parse_int(file.get_or("replications", "1")));
      config.backends.push_back(std::make_shared<DesBackend>(des));
    } else if (name == "fabric") {
      FabricBackend::Options fabric;
      fabric.measured_messages = messages;
      fabric.warmup_messages = warmup;
      config.backends.push_back(std::make_shared<FabricBackend>(fabric));
    } else {
      detail::throw_config_error(
          "sweep config: backend must be analytic|des|fabric, got '" + name +
              "'",
          std::source_location::current());
    }
  }
  return config;
}

SweepRunConfig load_sweep_config(const std::string& path,
                                 const SweepLoadOptions& options) {
  // An ifstream on a directory "opens" and reads nothing, which would
  // silently yield the default sweep — reject anything that is not a
  // regular file up front.
  std::error_code ec;
  require(std::filesystem::is_regular_file(path, ec),
          "sweep config: '" + path + "' is not a readable file");
  const bool is_json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (is_json) {
    std::ifstream in(path);
    require(in.good(), "sweep config: cannot open '" + path + "'");
    std::stringstream buffer;
    buffer << in.rdbuf();
    return sweep_config_from_json(buffer.str(), options);
  }
  return sweep_config_from_keyvalue(KeyValueFile::load(path), options);
}

}  // namespace hmcs::runner
