#include "hmcs/runner/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs::runner {

const PointResult& SweepResult::at(std::size_t point,
                                   std::size_t backend) const {
  require(point < points.size(), "SweepResult::at: point out of range");
  require(backend < backend_names.size(),
          "SweepResult::at: backend out of range");
  return cells[point * backend_names.size() + backend];
}

std::size_t SweepResult::backend_index(const std::string& name) const {
  for (std::size_t i = 0; i < backend_names.size(); ++i) {
    if (backend_names[i] == name) return i;
  }
  detail::throw_config_error("SweepResult: no backend named '" + name + "'",
                             std::source_location::current());
}

std::size_t SweepResult::count_status(CellStatus status) const {
  std::size_t count = 0;
  for (const PointResult& cell : cells) {
    if (cell.status == status) ++count;
  }
  return count;
}

bool SweepResult::all_evaluated() const {
  for (const PointResult& cell : cells) {
    if (cell.status != CellStatus::kOk &&
        cell.status != CellStatus::kDegraded) {
      return false;
    }
  }
  return true;
}

namespace {

/// Per-worker task range claimed through an atomic cursor; exhausted
/// workers steal from the other lanes' remainders. fetch_add past `end`
/// is harmless (the claim is discarded), and every task index writes to
/// its own result slot, so scheduling never affects the output.
struct Lane {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

/// One schedulable unit: a contiguous run of points through one
/// backend. count == 1 is the per-cell path (the historical execution);
/// count > 1 is a batch chunk for a capacity-advertising backend.
struct Task {
  std::size_t first_point = 0;
  std::size_t count = 1;
  std::size_t backend = 0;
};

/// Validity guardrails, applied to a cell that evaluated without
/// throwing: demote results that would silently poison a figure.
void apply_guardrails(PointResult& cell, const RunnerOptions& options) {
  if (!std::isfinite(cell.mean_latency_us)) {
    cell.status = CellStatus::kDegraded;
    cell.error = "non-finite mean latency";
    return;
  }
  if (!cell.converged) {
    cell.status = CellStatus::kDegraded;
    cell.error = "fixed point did not converge";
    return;
  }
  if (cell.max_center_utilization >= options.degraded_utilization) {
    cell.status = CellStatus::kDegraded;
    cell.error = "saturated: max centre utilization " +
                 format_fixed(cell.max_center_utilization, 3) + " >= " +
                 format_fixed(options.degraded_utilization, 3);
  }
}

void count_terminal_status(CellStatus status) {
  switch (status) {
    case CellStatus::kOk:
      HMCS_OBS_COUNTER_INC("runner.cells.completed");
      break;
    case CellStatus::kFailed:
      HMCS_OBS_COUNTER_INC("runner.cells.failed");
      break;
    case CellStatus::kTimedOut:
      HMCS_OBS_COUNTER_INC("runner.cells.timed_out");
      break;
    case CellStatus::kDegraded:
      HMCS_OBS_COUNTER_INC("runner.cells.degraded");
      break;
    case CellStatus::kSkipped:
      break;  // counted in bulk after the pool drains
  }
}

void merge_resumed_cells(const SweepJournal& journal, SweepResult& result,
                         std::vector<char>& done) {
  require(journal.id == result.id,
          "run_sweep: resume journal is for sweep '" + journal.id +
              "', not '" + result.id + "'");
  require(journal.points == result.points.size(),
          "run_sweep: resume journal has a different point count");
  require(journal.backend_names == result.backend_names,
          "run_sweep: resume journal has a different backend set");
  const std::size_t n_backends = result.backend_names.size();
  std::uint64_t resumed = 0;
  for (std::size_t cell = 0; cell < journal.cells.size(); ++cell) {
    if (!journal.cells[cell].has_value()) continue;
    // The journaled first-attempt seed must equal this expansion's —
    // anything else means the journal belongs to a different spec and
    // merging would mix incompatible runs.
    require(journal.seeds[cell] == result.points[cell / n_backends].seed,
            "run_sweep: resume journal seed mismatch at cell " +
                std::to_string(cell) + " (journal from a different spec?)");
    result.cells[cell] = *journal.cells[cell];
    done[cell] = 1;
    ++resumed;
  }
  HMCS_OBS_COUNTER_ADD("runner.cells.resumed", resumed);
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec,
                      const std::vector<std::shared_ptr<Backend>>& backends,
                      const RunnerOptions& options) {
  require(!backends.empty(), "run_sweep: needs at least one backend");
  require(options.max_attempts >= 1, "run_sweep: max_attempts must be >= 1");

  SweepResult result;
  result.id = spec.id;
  result.title = spec.title;
  result.points = expand_sweep(spec);
  require(!result.points.empty(), "run_sweep: the sweep expands to no points");
  result.backend_names.reserve(backends.size());
  for (const auto& backend : backends) {
    require(backend != nullptr, "run_sweep: null backend");
    for (const std::string& existing : result.backend_names) {
      require(existing != backend->name(),
              "run_sweep: duplicate backend name '" + backend->name() + "'");
    }
    result.backend_names.push_back(backend->name());
  }

  obs::WallClockSpan sweep_span(options.trace.get(), spec.id, "runner.sweep",
                                1, 0);
  HMCS_OBS_TIMER_SCOPE("runner.sweep.wall_time");
  if (options.trace) {
    options.trace->set_process_name(1, spec.id + " sweep (wall-clock us)");
  }

  const std::size_t n_backends = backends.size();
  const std::size_t n_cells = result.points.size() * n_backends;
  result.cells.resize(n_cells);

  // done[cell] is written only by the single worker that claimed the
  // cell (or here, before the pool starts) and read after join, so a
  // plain byte array is race-free.
  std::vector<char> done(n_cells, 0);
  if (options.resume != nullptr) {
    merge_resumed_cells(*options.resume, result, done);
  }

  const auto sweep_cancelled = [&] {
    return options.cancel != nullptr && options.cancel->cancelled();
  };

  /// One cell to its terminal status. Returns false when the sweep was
  /// cancelled mid-attempt (the cell stays not-done and is marked
  /// kSkipped after the drain); fills `fail_fast_error` when a terminal
  /// failure must abort the sweep under kFailFast.
  auto run_cell = [&](std::size_t cell, std::uint32_t worker,
                      std::exception_ptr& fail_fast_error) -> bool {
    const SweepPoint& point = result.points[cell / n_backends];
    const std::size_t backend = cell % n_backends;
    PointResult& out = result.cells[cell];
    std::exception_ptr last_error;
    for (std::uint32_t attempt = 1;; ++attempt) {
      util::CancelToken cell_token(options.cancel);
      cell_token.set_deadline_after_ms(options.cell_deadline_ms);
      PointContext ctx;
      ctx.index = point.index;
      ctx.worker = worker;
      ctx.seed = retry_point_seed(point.seed, attempt);
      ctx.attempt = attempt;
      ctx.label = point.label;
      ctx.trace = options.trace;
      ctx.cancel = &cell_token;
      // Wall-clock span per cell: pid 1 is the sweep's wall-clock
      // domain, tid separates concurrent worker lanes.
      obs::WallClockSpan cell_span(
          options.trace.get(),
          point.label + " [" + result.backend_names[backend] + "]",
          "runner.point", 1, worker + 1);
      try {
        out = point.tree != nullptr
                  ? backends[backend]->predict_tree(*point.tree, ctx)
                  : backends[backend]->predict(point.config, ctx);
        out.status = CellStatus::kOk;
        out.attempts = attempt;
        out.error.clear();
        apply_guardrails(out, options);
        break;
      } catch (const hmcs::Cancelled&) {
        out = PointResult{};
        out.status = CellStatus::kSkipped;
        out.attempts = attempt;
        return false;
      } catch (const hmcs::DeadlineExceeded& error) {
        out = PointResult{};
        out.status = CellStatus::kTimedOut;
        out.attempts = attempt;
        out.error = error.what();
        last_error = std::current_exception();
      } catch (const std::exception& error) {
        out = PointResult{};
        out.status = CellStatus::kFailed;
        out.attempts = attempt;
        out.error = error.what();
        last_error = std::current_exception();
      } catch (...) {
        out = PointResult{};
        out.status = CellStatus::kFailed;
        out.attempts = attempt;
        out.error = "unknown exception";
        last_error = std::current_exception();
      }
      if (attempt >= options.max_attempts) break;
      HMCS_OBS_COUNTER_INC("runner.cells.retried");
    }

    done[cell] = 1;
    count_terminal_status(out.status);
    if (options.journal != nullptr) {
      options.journal->record(cell, point.seed, out);
    }
    if (options.on_error == FailurePolicy::kFailFast &&
        (out.status == CellStatus::kFailed ||
         out.status == CellStatus::kTimedOut)) {
      fail_fast_error = last_error;
    }
    return true;
  };

  /// One contiguous point-chunk through a backend's batch path. A chunk
  /// whose cells are all done (resumed) is skipped outright; a chunk
  /// with any pending cell re-evaluates *every* cell — warm-start
  /// composition inside the chunk must not depend on journal state —
  /// but writes only the pending ones, so merged resume output stays
  /// byte-identical to an uninterrupted run. Returns false when the
  /// sweep was cancelled mid-chunk.
  auto run_batch_task = [&](const Task& task, std::uint32_t worker,
                            std::exception_ptr& fail_fast_error) -> bool {
    bool any_pending = false;
    for (std::size_t k = 0; k < task.count && !any_pending; ++k) {
      any_pending = !done[(task.first_point + k) * n_backends + task.backend];
    }
    if (!any_pending) return true;

    util::CancelToken chunk_token(options.cancel);
    chunk_token.set_deadline_after_ms(options.cell_deadline_ms *
                                      static_cast<double>(task.count));
    BatchPointContext ctx;
    ctx.first_index = result.points[task.first_point].index;
    ctx.worker = worker;
    ctx.cancel = &chunk_token;

    std::vector<const analytic::SystemConfig*> configs(task.count);
    for (std::size_t k = 0; k < task.count; ++k) {
      configs[k] = &result.points[task.first_point + k].config;
    }
    std::vector<PointResult> chunk(task.count);

    obs::WallClockSpan chunk_span(
        options.trace.get(),
        result.points[task.first_point].label + " +" +
            std::to_string(task.count - 1) + " [" +
            result.backend_names[task.backend] + "]",
        "runner.batch", 1, worker + 1);
    bool evaluated = false;
    try {
      backends[task.backend]->evaluate_batch(configs.data(), task.count, ctx,
                                             chunk.data());
      evaluated = true;
    } catch (const hmcs::Cancelled&) {
      return false;  // sweep cancelled; the cells drain as kSkipped
    } catch (...) {
      // Chunk deadline, one bad cell, or a backend bug: isolate it by
      // degrading to the per-cell path below, which re-applies the full
      // retry/deadline machinery to each pending cell individually.
      HMCS_OBS_COUNTER_INC("runner.batch.fallbacks");
    }

    if (evaluated) {
      HMCS_OBS_COUNTER_INC("runner.batch.calls");
      HMCS_OBS_COUNTER_ADD("runner.batch.cells", task.count);
      for (std::size_t k = 0; k < task.count; ++k) {
        const std::size_t cell =
            (task.first_point + k) * n_backends + task.backend;
        if (done[cell]) continue;
        PointResult& out = result.cells[cell];
        out = chunk[k];
        out.status = CellStatus::kOk;
        out.attempts = 1;
        out.error.clear();
        apply_guardrails(out, options);
        done[cell] = 1;
        count_terminal_status(out.status);
        if (options.journal != nullptr) {
          options.journal->record(
              cell, result.points[task.first_point + k].seed, out);
        }
      }
      return true;
    }
    for (std::size_t k = 0; k < task.count; ++k) {
      const std::size_t cell =
          (task.first_point + k) * n_backends + task.backend;
      if (done[cell]) continue;
      if (!run_cell(cell, worker, fail_fast_error)) return false;
      if (fail_fast_error) return true;
    }
    return true;
  };

  // The schedulable task list. With batching off (or for backends with
  // no batch path) every task is one cell in point-major order, so the
  // task indices, lane boundaries, and claim order reproduce the
  // historical per-cell execution exactly. With batching on, a
  // capacity-advertising backend's points are chunked on fixed
  // point-aligned boundaries — independent of thread count and resume
  // state, which keeps results deterministic.
  const std::size_t n_points = result.points.size();
  // Tree points cannot ride the batched path: evaluate_batch takes
  // SystemConfig pointers, and a tree point's config is only a lowered
  // view (or a placeholder). Force per-cell tasks for such sweeps.
  bool any_tree_point = false;
  for (const SweepPoint& point : result.points) {
    if (point.tree != nullptr) {
      any_tree_point = true;
      break;
    }
  }
  std::vector<std::size_t> chunk_of(n_backends, 1);
  if (options.batch_cells > 1 && !any_tree_point) {
    for (std::size_t b = 0; b < n_backends; ++b) {
      const std::size_t capacity = backends[b]->batch_capacity();
      if (capacity > 1) {
        chunk_of[b] = std::min<std::size_t>(options.batch_cells, capacity);
      }
    }
  }
  std::vector<Task> tasks;
  tasks.reserve(n_cells);
  for (std::size_t p = 0; p < n_points; ++p) {
    for (std::size_t b = 0; b < n_backends; ++b) {
      if (p % chunk_of[b] != 0) continue;
      tasks.push_back(Task{p, std::min(chunk_of[b], n_points - p), b});
    }
  }

  auto run_task = [&](const Task& task, std::uint32_t worker,
                      std::exception_ptr& fail_fast_error) -> bool {
    if (task.count == 1) {
      const std::size_t cell = task.first_point * n_backends + task.backend;
      if (done[cell]) return true;  // completed in the resumed journal
      return run_cell(cell, worker, fail_fast_error);
    }
    return run_batch_task(task, worker, fail_fast_error);
  };

  std::uint32_t threads =
      options.threads != 0
          ? options.threads
          : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<std::uint32_t>(
      std::min<std::size_t>(threads, tasks.size()));

  // Static block partition into per-worker lanes; finished workers
  // steal from the tail of the busiest survivors. The cheap analytic
  // cells drain instantly, so stealing is what keeps every core on the
  // expensive DES/fabric cells.
  std::vector<Lane> lanes(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    lanes[w].next.store(tasks.size() * w / threads, std::memory_order_relaxed);
    lanes[w].end = tasks.size() * (w + 1) / threads;
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker_body = [&](std::uint32_t w) {
    std::exception_ptr fail_fast_error;
    for (std::uint32_t victim = 0; victim < threads; ++victim) {
      Lane& lane = lanes[(w + victim) % threads];
      while (!failed.load(std::memory_order_relaxed) && !sweep_cancelled()) {
        const std::size_t task =
            lane.next.fetch_add(1, std::memory_order_relaxed);
        if (task >= lane.end) break;
        if (!run_task(tasks[task], w, fail_fast_error)) return;  // cancelled
        if (fail_fast_error) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = fail_fast_error;
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
      if (failed.load(std::memory_order_relaxed) || sweep_cancelled()) break;
    }
  };

  if (threads <= 1) {
    worker_body(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t w = 0; w < threads; ++w) {
      pool.emplace_back(worker_body, w);
    }
    for (std::thread& thread : pool) thread.join();
  }

  // A SIGINT-style cancel outranks fail-fast: the caller asked for the
  // partial grid (to flush/report it), not for the abandoned cells'
  // exception.
  if (first_error && !sweep_cancelled()) std::rethrow_exception(first_error);

  std::uint64_t skipped = 0;
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    if (done[cell]) continue;
    result.cells[cell] = PointResult{};
    result.cells[cell].status = CellStatus::kSkipped;
    ++skipped;
  }
  if (skipped != 0) HMCS_OBS_COUNTER_ADD("runner.cells.skipped", skipped);
  return result;
}

}  // namespace hmcs::runner
