#include "hmcs/runner/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::runner {

const PointResult& SweepResult::at(std::size_t point,
                                   std::size_t backend) const {
  require(point < points.size(), "SweepResult::at: point out of range");
  require(backend < backend_names.size(),
          "SweepResult::at: backend out of range");
  return cells[point * backend_names.size() + backend];
}

std::size_t SweepResult::backend_index(const std::string& name) const {
  for (std::size_t i = 0; i < backend_names.size(); ++i) {
    if (backend_names[i] == name) return i;
  }
  detail::throw_config_error("SweepResult: no backend named '" + name + "'",
                             std::source_location::current());
}

namespace {

/// Per-worker task range claimed through an atomic cursor; exhausted
/// workers steal from the other lanes' remainders. fetch_add past `end`
/// is harmless (the claim is discarded), and every task index writes to
/// its own result slot, so scheduling never affects the output.
struct Lane {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

}  // namespace

SweepResult run_sweep(const SweepSpec& spec,
                      const std::vector<std::shared_ptr<Backend>>& backends,
                      const RunnerOptions& options) {
  require(!backends.empty(), "run_sweep: needs at least one backend");

  SweepResult result;
  result.id = spec.id;
  result.title = spec.title;
  result.points = expand_sweep(spec);
  require(!result.points.empty(), "run_sweep: the sweep expands to no points");
  result.backend_names.reserve(backends.size());
  for (const auto& backend : backends) {
    require(backend != nullptr, "run_sweep: null backend");
    for (const std::string& existing : result.backend_names) {
      require(existing != backend->name(),
              "run_sweep: duplicate backend name '" + backend->name() + "'");
    }
    result.backend_names.push_back(backend->name());
  }

  obs::WallClockSpan sweep_span(options.trace.get(), spec.id, "runner.sweep",
                                1, 0);
  HMCS_OBS_TIMER_SCOPE("runner.sweep.wall_time");
  if (options.trace) {
    options.trace->set_process_name(1, spec.id + " sweep (wall-clock us)");
  }

  const std::size_t n_backends = backends.size();
  const std::size_t n_cells = result.points.size() * n_backends;
  result.cells.resize(n_cells);

  auto run_cell = [&](std::size_t cell, std::uint32_t worker) {
    const SweepPoint& point = result.points[cell / n_backends];
    const std::size_t backend = cell % n_backends;
    PointContext ctx;
    ctx.index = point.index;
    ctx.worker = worker;
    ctx.seed = point.seed;
    ctx.label = point.label;
    ctx.trace = options.trace;
    // Wall-clock span per cell: pid 1 is the sweep's wall-clock domain,
    // tid separates concurrent worker lanes.
    obs::WallClockSpan cell_span(
        options.trace.get(),
        point.label + " [" + result.backend_names[backend] + "]",
        "runner.point", 1, worker + 1);
    result.cells[cell] = backends[backend]->predict(point.config, ctx);
  };

  std::uint32_t threads =
      options.threads != 0
          ? options.threads
          : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<std::uint32_t>(
      std::min<std::size_t>(threads, n_cells));

  if (threads <= 1) {
    for (std::size_t cell = 0; cell < n_cells; ++cell) run_cell(cell, 0);
    return result;
  }

  // Static block partition into per-worker lanes; finished workers
  // steal from the tail of the busiest survivors. The cheap analytic
  // cells drain instantly, so stealing is what keeps every core on the
  // expensive DES/fabric cells.
  std::vector<Lane> lanes(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    lanes[w].next.store(n_cells * w / threads, std::memory_order_relaxed);
    lanes[w].end = n_cells * (w + 1) / threads;
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker_body = [&](std::uint32_t w) {
    for (std::uint32_t victim = 0; victim < threads; ++victim) {
      Lane& lane = lanes[(w + victim) % threads];
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t cell =
            lane.next.fetch_add(1, std::memory_order_relaxed);
        if (cell >= lane.end) break;
        try {
          run_cell(cell, w);
        } catch (...) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) {
    pool.emplace_back(worker_body, w);
  }
  for (std::thread& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

}  // namespace hmcs::runner
