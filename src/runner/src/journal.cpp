#include "hmcs/runner/journal.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <sstream>

#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace hmcs::runner {

namespace {

/// Doubles must round-trip exactly for the resume bit-identity
/// contract. JsonWriter already emits finite values as %.17g (exact);
/// non-finite values — a backend can legitimately produce NaN/inf — are
/// encoded as the strings "nan"/"inf"/"-inf" because JSON has no
/// spelling for them.
void journal_number(JsonWriter& json, const char* key, double value) {
  json.key(key);
  if (std::isnan(value)) {
    json.value("nan");
  } else if (std::isinf(value)) {
    json.value(value > 0.0 ? "inf" : "-inf");
  } else {
    json.value(value);
  }
}

double read_journal_number(const JsonValue& object, const char* key) {
  const JsonValue& member = object.at(key);
  if (member.is_string()) {
    const std::string& text = member.as_string();
    if (text == "nan") return std::numeric_limits<double>::quiet_NaN();
    if (text == "inf") return std::numeric_limits<double>::infinity();
    if (text == "-inf") return -std::numeric_limits<double>::infinity();
    detail::throw_config_error(
        "journal: bad non-finite spelling '" + text + "' for " + key,
        std::source_location::current());
  }
  return member.as_number();
}

/// u64 values (seeds, message counts) are encoded as decimal strings:
/// the JSON parser narrows numbers through double, which silently loses
/// bits above 2^53 — and SplitMix64 seeds use all 64.
std::uint64_t read_journal_u64(const JsonValue& object, const char* key) {
  const std::string& text = object.at(key).as_string();
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  require(errno == 0 && end != nullptr && *end == '\0' && !text.empty(),
          "journal: bad u64 '" + text + "' for " + key);
  return static_cast<std::uint64_t>(value);
}

std::string header_line(const JournalWriter::Shape& shape) {
  JsonWriter json;
  json.begin_object();
  json.key("journal").value("hmcs-sweep");
  json.key("version").value(std::uint64_t{1});
  json.key("id").value(shape.id);
  json.key("points").value(static_cast<std::uint64_t>(shape.points));
  json.key("backends").begin_array();
  for (const std::string& name : shape.backend_names) json.value(name);
  json.end_array();
  json.end_object();
  return json.str();
}

std::string cell_line(std::size_t cell, std::uint64_t seed,
                      const PointResult& result) {
  JsonWriter json;
  json.begin_object();
  json.key("cell").value(static_cast<std::uint64_t>(cell));
  json.key("seed").value(std::to_string(seed));
  json.key("status").value(to_string(result.status));
  json.key("attempts").value(result.attempts);
  json.key("error").value(result.error);
  json.key("result").begin_object();
  journal_number(json, "mean_latency_us", result.mean_latency_us);
  journal_number(json, "ci_half_us", result.ci_half_us);
  journal_number(json, "lambda_offered", result.lambda_offered);
  journal_number(json, "lambda_effective", result.lambda_effective);
  json.key("converged").value(result.converged);
  journal_number(json, "effective_rate_per_us", result.effective_rate_per_us);
  json.key("messages_measured")
      .value(std::to_string(result.messages_measured));
  journal_number(json, "mean_switch_hops", result.mean_switch_hops);
  journal_number(json, "max_switch_utilization",
                 result.max_switch_utilization);
  journal_number(json, "max_center_utilization",
                 result.max_center_utilization);
  json.end_object();
  json.end_object();
  return json.str();
}

void apply_header(SweepJournal& journal, const JsonValue& doc, bool& seen) {
  require(doc.at("journal").as_string() == "hmcs-sweep",
          "journal: not an hmcs sweep journal");
  require(doc.at("version").as_number() == 1.0,
          "journal: unsupported version");
  SweepJournal header;
  header.id = doc.at("id").as_string();
  header.points = static_cast<std::size_t>(doc.at("points").as_number());
  for (const JsonValue& name : doc.at("backends").items) {
    header.backend_names.push_back(name.as_string());
  }
  require(header.points > 0 && !header.backend_names.empty(),
          "journal: degenerate header");
  if (!seen) {
    journal.id = header.id;
    journal.points = header.points;
    journal.backend_names = header.backend_names;
    const std::size_t cells = header.points * header.backend_names.size();
    journal.cells.assign(cells, std::nullopt);
    journal.seeds.assign(cells, 0);
    seen = true;
    return;
  }
  // An appended-to journal repeats its header; all copies must agree.
  require(header.id == journal.id && header.points == journal.points &&
              header.backend_names == journal.backend_names,
          "journal: disagreeing headers (mixed sweeps in one file?)");
}

void apply_cell(SweepJournal& journal, const JsonValue& doc) {
  const std::size_t cell = static_cast<std::size_t>(
      doc.at("cell").as_number());
  require(cell < journal.cells.size(), "journal: cell index out of range");
  PointResult result;
  result.status = parse_cell_status(doc.at("status").as_string());
  require(result.status != CellStatus::kSkipped,
          "journal: skipped cells are never journaled");
  result.attempts =
      static_cast<std::uint32_t>(doc.at("attempts").as_number());
  result.error = doc.at("error").as_string();
  const JsonValue& fields = doc.at("result");
  result.mean_latency_us = read_journal_number(fields, "mean_latency_us");
  result.ci_half_us = read_journal_number(fields, "ci_half_us");
  result.lambda_offered = read_journal_number(fields, "lambda_offered");
  result.lambda_effective = read_journal_number(fields, "lambda_effective");
  result.converged = fields.at("converged").as_bool();
  result.effective_rate_per_us =
      read_journal_number(fields, "effective_rate_per_us");
  result.messages_measured = read_journal_u64(fields, "messages_measured");
  result.mean_switch_hops = read_journal_number(fields, "mean_switch_hops");
  result.max_switch_utilization =
      read_journal_number(fields, "max_switch_utilization");
  result.max_center_utilization =
      read_journal_number(fields, "max_center_utilization");
  journal.seeds[cell] = read_journal_u64(doc, "seed");
  journal.cells[cell] = std::move(result);
}

}  // namespace

std::size_t SweepJournal::completed() const {
  std::size_t count = 0;
  for (const auto& cell : cells) count += cell.has_value() ? 1 : 0;
  return count;
}

SweepJournal load_sweep_journal(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "journal: cannot open '" + path + "'");

  SweepJournal journal;
  bool seen_header = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // A process killed mid-write leaves at most one incomplete final
    // line; getline without a trailing record separator or a parse
    // failure on the last line is expected, anywhere else it is
    // corruption.
    JsonValue doc;
    try {
      doc = parse_json(line);
    } catch (const ConfigError&) {
      require(in.peek() == std::ifstream::traits_type::eof(),
              "journal: corrupt record mid-file in '" + path + "'");
      break;
    }
    if (!seen_header) {
      apply_header(journal, doc, seen_header);
      continue;
    }
    if (doc.find("journal") != nullptr) {
      apply_header(journal, doc, seen_header);
      continue;
    }
    apply_cell(journal, doc);
  }
  require(seen_header, "journal: '" + path + "' has no hmcs-sweep header");
  return journal;
}

JournalWriter::JournalWriter(const std::string& path, const Shape& shape,
                             bool append)
    : path_(path) {
  require(shape.points > 0 && !shape.backend_names.empty(),
          "journal: degenerate shape");
  const bool fresh =
      !append || !std::filesystem::exists(path) ||
      std::filesystem::file_size(path) == 0;
  out_.open(path, fresh ? std::ios::trunc : std::ios::app);
  require(out_.good(), "journal: cannot write '" + path + "'");
  // Always restate the header: a fresh file needs one, and an appended
  // header re-validates shape agreement on the next load.
  out_ << header_line(shape) << "\n";
  out_.flush();
  require(out_.good(), "journal: write to '" + path + "' failed");
}

void JournalWriter::record(std::size_t cell, std::uint64_t seed,
                           const PointResult& result) {
  const std::string line = cell_line(cell, seed, result);
  const std::scoped_lock lock(mutex_);
  out_ << line << "\n";
  out_.flush();
}

}  // namespace hmcs::runner
