#include "hmcs/runner/replication.hpp"

#include <algorithm>
#include <future>
#include <thread>
#include <vector>

#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::runner {

ReplicationResult run_replications(const analytic::SystemConfig& config,
                                   const sim::SimOptions& base_options,
                                   std::uint32_t replications,
                                   std::uint32_t parallelism) {
  require(replications >= 1, "run_replications: needs >= 1 replication");
  if (parallelism == 0) {
    parallelism = std::max(1u, std::thread::hardware_concurrency());
  }
  parallelism = std::min(parallelism, replications);

  // Pre-derive every replication's seed so the result is independent of
  // scheduling order.
  simcore::SplitMix64 seeder(base_options.seed);
  std::vector<std::uint64_t> seeds(replications);
  for (auto& seed : seeds) seed = seeder.next();

  ReplicationResult result;
  result.replications.resize(replications);

  auto run_one = [&](std::uint32_t r) {
    sim::SimOptions options = base_options;
    options.seed = seeds[r];
    // Tracing is not thread-safe to share; replications drop it.
    options.trace.reset();
    sim::MultiClusterSim simulator(config, options);
    result.replications[r] = simulator.run();
  };

  if (parallelism == 1) {
    for (std::uint32_t r = 0; r < replications; ++r) run_one(r);
  } else {
    // Static block partition: each worker owns a contiguous range, so
    // there is no shared mutable state beyond the preallocated slots.
    std::vector<std::future<void>> workers;
    workers.reserve(parallelism);
    for (std::uint32_t w = 0; w < parallelism; ++w) {
      workers.push_back(std::async(std::launch::async, [&, w] {
        for (std::uint32_t r = w; r < replications; r += parallelism) {
          run_one(r);
        }
      }));
    }
    for (auto& worker : workers) worker.get();  // propagates exceptions
  }

  simcore::Tally means;
  simcore::Tally rates;
  for (const sim::SimResult& run : result.replications) {
    means.add(run.mean_latency_us);
    rates.add(run.effective_rate_per_us);
  }
  result.mean_latency_us = means.mean();
  result.effective_rate_per_us = rates.mean();
  if (replications >= 2) {
    result.latency_ci = means.confidence_interval();
  } else {
    result.latency_ci = result.replications.front().latency_ci;
  }
  return result;
}

}  // namespace hmcs::runner
