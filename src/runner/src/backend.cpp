#include "hmcs/runner/backend.hpp"

#include <algorithm>

#include "hmcs/analytic/tree_model.hpp"
#include "hmcs/netsim/hmcs_fabric.hpp"
#include "hmcs/runner/replication.hpp"
#include "hmcs/sim/tree_sim.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/simcore/tally.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::runner {

const char* to_string(CellStatus status) {
  switch (status) {
    case CellStatus::kOk: return "ok";
    case CellStatus::kFailed: return "failed";
    case CellStatus::kTimedOut: return "timed_out";
    case CellStatus::kDegraded: return "degraded";
    case CellStatus::kSkipped: return "skipped";
  }
  detail::throw_logic_error("to_string: invalid CellStatus",
                            std::source_location::current());
}

CellStatus parse_cell_status(const std::string& name) {
  if (name == "ok") return CellStatus::kOk;
  if (name == "failed") return CellStatus::kFailed;
  if (name == "timed_out") return CellStatus::kTimedOut;
  if (name == "degraded") return CellStatus::kDegraded;
  if (name == "skipped") return CellStatus::kSkipped;
  detail::throw_config_error("unknown cell status '" + name + "'",
                             std::source_location::current());
}

void Backend::evaluate_batch(const analytic::SystemConfig* const*, std::size_t,
                             const BatchPointContext&, PointResult*) const {
  detail::throw_logic_error(
      "Backend::evaluate_batch: '" + name() + "' has no batch path",
      std::source_location::current());
}

PointResult Backend::predict_tree(const analytic::ModelTree& tree,
                                  const PointContext& ctx) const {
  if (const auto flat = tree.as_system_config()) return predict(*flat, ctx);
  detail::throw_config_error(
      "backend '" + name() + "' cannot evaluate nested model trees",
      std::source_location::current());
}

namespace {

PointResult from_prediction(const analytic::LatencyPrediction& prediction) {
  PointResult result;
  result.mean_latency_us = prediction.mean_latency_us;
  result.lambda_offered = prediction.lambda_offered;
  result.lambda_effective = prediction.lambda_effective;
  result.converged = prediction.fixed_point_converged;
  return result;
}

}  // namespace

AnalyticBackend::AnalyticBackend(analytic::ModelOptions options,
                                 std::string name, analytic::BatchOptions batch)
    : options_(options), name_(std::move(name)), batch_(batch) {}

PointResult AnalyticBackend::predict(const analytic::SystemConfig& config,
                                     const PointContext& ctx) const {
  analytic::ModelOptions options = options_;
  options.fixed_point.cancel = ctx.cancel;
  return from_prediction(analytic::predict_latency(config, options));
}

PointResult AnalyticBackend::predict_tree(const analytic::ModelTree& tree,
                                          const PointContext& ctx) const {
  analytic::TreeModelOptions options;
  options.fixed_point = options_.fixed_point;
  options.fixed_point.cancel = ctx.cancel;
  const analytic::TreeLatencyPrediction prediction =
      analytic::predict_model_tree(tree, options);

  PointResult result;
  result.mean_latency_us = prediction.mean_latency_us;
  const double processors =
      static_cast<double>(tree.total_processors());
  result.lambda_offered =
      processors > 0.0 ? prediction.lambda_offered_total / processors : 0.0;
  result.lambda_effective =
      result.lambda_offered * prediction.effective_rate_scale;
  result.converged = prediction.fixed_point_converged;
  return result;
}

void AnalyticBackend::evaluate_batch(
    const analytic::SystemConfig* const* configs, std::size_t count,
    const BatchPointContext& ctx, PointResult* results) const {
  analytic::ModelOptions options = options_;
  options.fixed_point.cancel = ctx.cancel;
  options.fixed_point.residual_trace = nullptr;  // one buffer, many cells
  const std::vector<analytic::LatencyPrediction> predictions =
      analytic::predict_latency_batch(configs, count, options, batch_);
  for (std::size_t i = 0; i < count; ++i) {
    results[i] = from_prediction(predictions[i]);
  }
}

DesBackend::DesBackend(Options options, std::string name)
    : options_(std::move(options)), name_(std::move(name)) {
  require(options_.replications >= 1, "DesBackend: needs >= 1 replication");
  require(!options_.direct_seed || options_.replications == 1,
          "DesBackend: direct_seed requires replications == 1");
}

namespace {

double max_role_utilization(const sim::SimResult& run) {
  return std::max({run.icn1.utilization, run.ecn1.utilization,
                   run.icn2.utilization});
}

}  // namespace

PointResult DesBackend::predict(const analytic::SystemConfig& config,
                                const PointContext& ctx) const {
  sim::SimOptions sim_options = options_.sim;
  sim_options.seed = ctx.seed;
  sim_options.cancel = ctx.cancel;
  if (ctx.trace) {
    // Each point's simulated-time tracks get their own pid so the
    // sim-µs axis never shares a track with wall-clock spans.
    sim_options.obs.trace = ctx.trace;
    sim_options.obs.trace_pid = static_cast<std::uint32_t>(2 + ctx.index);
    ctx.trace->set_process_name(sim_options.obs.trace_pid,
                                ctx.label + " (sim us)");
  }

  PointResult result;
  if (options_.direct_seed) {
    sim::MultiClusterSim simulator(config, sim_options);
    const sim::SimResult run = simulator.run();
    result.mean_latency_us = run.mean_latency_us;
    result.ci_half_us = run.latency_ci.half_width;
    result.effective_rate_per_us = run.effective_rate_per_us;
    result.messages_measured = run.messages_measured;
    result.max_center_utilization = max_role_utilization(run);
    return result;
  }

  // Replications stay serial inside a point: the sweep's points already
  // use the machine.
  const ReplicationResult run =
      run_replications(config, sim_options, options_.replications, 1);
  result.mean_latency_us = run.mean_latency_us;
  result.ci_half_us = run.latency_ci.half_width;
  result.effective_rate_per_us = run.effective_rate_per_us;
  for (const sim::SimResult& replication : run.replications) {
    result.messages_measured += replication.messages_measured;
    result.max_center_utilization = std::max(
        result.max_center_utilization, max_role_utilization(replication));
  }
  return result;
}

PointResult DesBackend::predict_tree(const analytic::ModelTree& tree,
                                     const PointContext& ctx) const {
  if (const auto flat = tree.as_system_config()) return predict(*flat, ctx);

  sim::TreeSimOptions tree_options;
  tree_options.measured_messages = options_.sim.measured_messages;
  tree_options.warmup_messages = options_.sim.warmup_messages;
  tree_options.target_relative_ci = options_.sim.target_relative_ci;
  tree_options.message_cap = options_.sim.message_cap;
  tree_options.max_events = options_.sim.max_events;
  tree_options.cancel = ctx.cancel;

  PointResult result;
  if (options_.direct_seed) {
    tree_options.seed = ctx.seed;
    sim::TreeSim simulator(tree, tree_options);
    const sim::TreeSimResult run = simulator.run();
    result.mean_latency_us = run.mean_latency_us;
    result.ci_half_us = run.latency_ci.half_width;
    result.effective_rate_per_us = run.effective_rate_per_us;
    result.messages_measured = run.messages_measured;
    result.max_center_utilization = run.max_center_utilization;
    return result;
  }

  // The replication harness's seeding protocol (replication.cpp):
  // per-replication seeds pre-derived from the point seed, replications
  // serial inside a point.
  simcore::SplitMix64 seeder(ctx.seed);
  std::vector<std::uint64_t> seeds(options_.replications);
  for (auto& seed : seeds) seed = seeder.next();

  simcore::Tally means;
  simcore::Tally rates;
  simcore::ConfidenceInterval single_ci{0.0, 0.0, 0.0};
  for (std::uint32_t r = 0; r < options_.replications; ++r) {
    tree_options.seed = seeds[r];
    sim::TreeSim simulator(tree, tree_options);
    const sim::TreeSimResult run = simulator.run();
    means.add(run.mean_latency_us);
    rates.add(run.effective_rate_per_us);
    single_ci = run.latency_ci;
    result.messages_measured += run.messages_measured;
    result.max_center_utilization =
        std::max(result.max_center_utilization, run.max_center_utilization);
  }
  result.mean_latency_us = means.mean();
  result.effective_rate_per_us = rates.mean();
  result.ci_half_us = options_.replications >= 2
                          ? means.confidence_interval().half_width
                          : single_ci.half_width;
  return result;
}

FabricBackend::FabricBackend(Options options, std::string name)
    : options_(options), name_(std::move(name)) {}

PointResult FabricBackend::predict(const analytic::SystemConfig& config,
                                   const PointContext& ctx) const {
  const netsim::HmcsFabric fabric(config);
  netsim::FabricSimOptions fabric_options = fabric.make_sim_options();
  fabric_options.measured_messages = options_.measured_messages;
  fabric_options.warmup_messages = options_.warmup_messages;
  fabric_options.mode = options_.mode;
  fabric_options.closed_loop = options_.closed_loop;
  fabric_options.seed = ctx.seed;
  fabric_options.cancel = ctx.cancel;
  netsim::SwitchFabricSim simulator(fabric.graph(), fabric_options);
  const netsim::FabricSimResult run = simulator.run();

  PointResult result;
  result.mean_latency_us = run.mean_latency_us;
  result.ci_half_us = run.latency_ci.half_width;
  result.effective_rate_per_us = run.delivered_rate_per_us;
  result.messages_measured = run.messages_measured;
  result.mean_switch_hops = run.mean_switch_hops;
  result.max_switch_utilization = run.max_switch_utilization;
  result.max_center_utilization = run.max_switch_utilization;
  return result;
}

}  // namespace hmcs::runner
