#include "hmcs/runner/sweep_spec.hpp"

#include <algorithm>

#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs::runner {

TechnologyCase technology_case(analytic::HeterogeneityCase hetero) {
  TechnologyCase tech;
  tech.label = analytic::to_string(hetero);
  if (hetero == analytic::HeterogeneityCase::kCase1) {
    tech.icn1 = analytic::gigabit_ethernet();
    tech.ecn1 = analytic::fast_ethernet();
    tech.icn2 = analytic::fast_ethernet();
  } else {
    tech.icn1 = analytic::fast_ethernet();
    tech.ecn1 = analytic::gigabit_ethernet();
    tech.icn2 = analytic::gigabit_ethernet();
  }
  return tech;
}

std::uint64_t default_point_seed(std::uint64_t base_seed,
                                 std::uint32_t clusters,
                                 double message_bytes) {
  simcore::SplitMix64 seed_mix(base_seed);
  simcore::SplitMix64 cluster_mix(seed_mix.next() ^ clusters);
  simcore::SplitMix64 byte_mix(cluster_mix.next() ^
                               static_cast<std::uint64_t>(message_bytes));
  return byte_mix.next();
}

std::uint64_t retry_point_seed(std::uint64_t point_seed,
                               std::uint32_t attempt) {
  if (attempt <= 1) return point_seed;
  simcore::SplitMix64 attempt_mix(point_seed ^ attempt);
  return attempt_mix.next();
}

namespace {

/// Resolved axes: every axis non-empty after defaulting.
struct ResolvedAxes {
  std::vector<TechnologyCase> technologies;
  std::vector<double> lambda_per_us;
  std::vector<std::uint32_t> clusters;
  std::vector<double> message_bytes;
  std::vector<analytic::NetworkArchitecture> architectures;
  std::vector<double> service_cv2;
  std::vector<double> arrival_ca2;
};

ResolvedAxes resolve(const SweepSpec& spec) {
  const SweepAxes& axes = spec.axes;
  ResolvedAxes resolved;
  resolved.technologies = axes.technologies;
  if (resolved.technologies.empty()) {
    resolved.technologies = {
        technology_case(analytic::HeterogeneityCase::kCase1)};
  }
  resolved.lambda_per_us = axes.lambda_per_us;
  if (resolved.lambda_per_us.empty()) {
    resolved.lambda_per_us = {analytic::kPaperRatePerUs};
  }
  resolved.clusters = axes.clusters;
  if (resolved.clusters.empty()) {
    std::size_t count = 0;
    const std::uint32_t* values = analytic::paper_cluster_sweep(&count);
    resolved.clusters.assign(values, values + count);
  }
  resolved.message_bytes = axes.message_bytes;
  if (resolved.message_bytes.empty()) resolved.message_bytes = {1024.0};
  resolved.architectures = axes.architectures;
  if (resolved.architectures.empty()) {
    resolved.architectures = {analytic::NetworkArchitecture::kNonBlocking};
  }
  resolved.service_cv2 = axes.service_cv2;
  if (resolved.service_cv2.empty()) {
    resolved.service_cv2 = {spec.workload.service_cv2};
  }
  resolved.arrival_ca2 = axes.arrival_ca2;
  if (resolved.arrival_ca2.empty()) {
    resolved.arrival_ca2 = {spec.workload.arrival_ca2};
  }
  return resolved;
}

SweepPoint make_point(const SweepSpec& spec, const ResolvedAxes& axes,
                      std::size_t tech, std::size_t lambda,
                      std::size_t clusters, std::size_t bytes,
                      std::size_t arch, std::size_t cv2, std::size_t ca2,
                      std::size_t index) {
  SweepPoint point;
  point.index = index;
  point.clusters = axes.clusters[clusters];
  point.message_bytes = axes.message_bytes[bytes];
  point.lambda_per_us = axes.lambda_per_us[lambda];
  point.architecture = axes.architectures[arch];
  point.technology_index = tech;
  point.technology_label = axes.technologies[tech].label;

  require(point.clusters >= 1,
          "sweep '" + spec.id + "': clusters must be >= 1");
  require(spec.total_nodes >= 1 && spec.total_nodes % point.clusters == 0,
          "sweep '" + spec.id + "': clusters=" +
              std::to_string(point.clusters) +
              " must divide total_nodes=" + std::to_string(spec.total_nodes) +
              " (assumption 5: equal-size clusters)");

  analytic::SystemConfig config;
  config.clusters = point.clusters;
  config.nodes_per_cluster = spec.total_nodes / point.clusters;
  config.icn1 = axes.technologies[tech].icn1;
  config.ecn1 = axes.technologies[tech].ecn1;
  config.icn2 = axes.technologies[tech].icn2;
  config.switch_params = spec.switch_params;
  config.architecture = point.architecture;
  config.message_bytes = point.message_bytes;
  config.generation_rate_per_us = point.lambda_per_us;
  config.scenario = spec.workload;
  config.scenario.service_cv2 = axes.service_cv2[cv2];
  config.scenario.arrival_ca2 = axes.arrival_ca2[ca2];
  config.validate();
  point.config = config;

  // Label: the figure-style core plus a suffix per non-singleton extra
  // axis, so every trace track stays identifiable in wide sweeps.
  point.label = spec.id + " C=" + std::to_string(point.clusters) + " M=" +
                format_compact(point.message_bytes, 6);
  if (axes.technologies.size() > 1) {
    point.label += ' ';
    point.label += point.technology_label;
  }
  if (axes.lambda_per_us.size() > 1) {
    point.label += " lambda=";
    point.label += format_compact(point.lambda_per_us, 6);
  }
  if (axes.architectures.size() > 1) {
    point.label += ' ';
    point.label += analytic::to_string(point.architecture);
  }
  if (axes.service_cv2.size() > 1) {
    point.label += " cv2=";
    point.label += format_compact(axes.service_cv2[cv2], 6);
  }
  if (axes.arrival_ca2.size() > 1) {
    point.label += " ca2=";
    point.label += format_compact(axes.arrival_ca2[ca2], 6);
  }

  point.seed = spec.seed_fn
                   ? spec.seed_fn(point)
                   : default_point_seed(spec.base_seed, point.clusters,
                                        point.message_bytes);
  return point;
}

/// One point of a tree sweep: a copy of the base topology with this
/// point's node-path overrides and message/architecture coordinates.
SweepPoint make_tree_point(
    const SweepSpec& spec, const std::vector<double>& bytes_axis,
    const std::vector<analytic::NetworkArchitecture>& arch_axis,
    const std::vector<std::size_t>& path_choice, std::size_t bytes,
    std::size_t arch, std::size_t index) {
  SweepPoint point;
  point.index = index;

  analytic::ModelTree tree = *spec.base_tree;
  tree.message_bytes = bytes_axis[bytes];
  tree.architecture = arch_axis[arch];
  // A non-default sweep workload overrides whatever the topology config
  // carried; the default leaves the tree's own scenario in place.
  if (!spec.workload.is_default()) tree.scenario = spec.workload;
  for (std::size_t p = 0; p < spec.axes.node_paths.size(); ++p) {
    const PathAxis& axis = spec.axes.node_paths[p];
    analytic::set_tree_path(tree, axis.path, axis.values[path_choice[p]]);
  }
  tree.validate();

  point.clusters = static_cast<std::uint32_t>(tree.root.children.size());
  point.message_bytes = tree.message_bytes;
  point.architecture = tree.architecture;
  point.technology_label = "tree";

  point.label = spec.id + " tree M=" + format_compact(point.message_bytes, 6);
  for (std::size_t p = 0; p < spec.axes.node_paths.size(); ++p) {
    const PathAxis& axis = spec.axes.node_paths[p];
    if (axis.values.size() <= 1) continue;
    point.label += ' ';
    point.label += axis.path;
    point.label += '=';
    point.label += format_compact(axis.values[path_choice[p]], 6);
  }
  if (arch_axis.size() > 1) {
    point.label += ' ';
    point.label += analytic::to_string(point.architecture);
  }

  // Flat-shaped trees also carry the equivalent SystemConfig so
  // reporting code that reads point.config keeps working; genuinely
  // nested points leave the placeholder and are dispatched through
  // Backend::predict_tree.
  if (const auto flat = tree.as_system_config()) {
    point.config = *flat;
    point.lambda_per_us = flat->generation_rate_per_us;
  }
  point.tree = std::make_shared<const analytic::ModelTree>(std::move(tree));

  point.seed = spec.seed_fn ? spec.seed_fn(point)
                            : default_point_seed(
                                  spec.base_seed,
                                  static_cast<std::uint32_t>(index),
                                  point.message_bytes);
  return point;
}

std::vector<SweepPoint> expand_tree_sweep(const SweepSpec& spec) {
  require(spec.axes.technologies.empty() && spec.axes.lambda_per_us.empty() &&
              spec.axes.clusters.empty(),
          "sweep '" + spec.id +
              "': a tree sweep owns its shape — the technology/lambda/"
              "clusters axes do not apply (sweep node fields via 'paths')");
  require(spec.axes.service_cv2.empty() && spec.axes.arrival_ca2.empty(),
          "sweep '" + spec.id +
              "': the service_cv2/arrival_ca2 axes do not apply to tree "
              "sweeps — set a fixed 'workload' instead");
  for (const PathAxis& axis : spec.axes.node_paths) {
    require(!axis.values.empty(), "sweep '" + spec.id + "': path axis '" +
                                      axis.path + "' has no values");
  }
  std::vector<double> bytes_axis = spec.axes.message_bytes;
  if (bytes_axis.empty()) bytes_axis = {spec.base_tree->message_bytes};
  std::vector<analytic::NetworkArchitecture> arch_axis =
      spec.axes.architectures;
  if (arch_axis.empty()) arch_axis = {spec.base_tree->architecture};

  const std::size_t n_paths = spec.axes.node_paths.size();
  std::vector<SweepPoint> points;

  if (spec.mode == AxisMode::kCartesian) {
    // Path axes nest outermost, declaration-order major, then
    // message_bytes, then architectures — mirroring the flat sweep's
    // fixed nesting with the topology axes in the technology slot.
    std::size_t combos = 1;
    for (const PathAxis& axis : spec.axes.node_paths) {
      combos *= axis.values.size();
    }
    std::vector<std::size_t> path_choice(n_paths, 0);
    for (std::size_t k = 0; k < combos; ++k) {
      std::size_t rest = k;
      for (std::size_t p = n_paths; p > 0; --p) {
        const std::size_t size = spec.axes.node_paths[p - 1].values.size();
        path_choice[p - 1] = rest % size;
        rest /= size;
      }
      for (std::size_t m = 0; m < bytes_axis.size(); ++m) {
        for (std::size_t a = 0; a < arch_axis.size(); ++a) {
          points.push_back(make_tree_point(spec, bytes_axis, arch_axis,
                                           path_choice, m, a, points.size()));
        }
      }
    }
    return points;
  }

  // Zipped: every non-singleton axis (path, bytes, architecture) shares
  // one length; singletons broadcast.
  std::size_t length = 1;
  const auto fold = [&](std::size_t axis_size, const std::string& axis_name) {
    if (axis_size == 1) return;
    if (length == 1) {
      length = axis_size;
      return;
    }
    require(axis_size == length,
            "sweep '" + spec.id + "': zipped axis '" + axis_name + "' has " +
                std::to_string(axis_size) + " values but another axis has " +
                std::to_string(length));
  };
  for (const PathAxis& axis : spec.axes.node_paths) {
    fold(axis.values.size(), axis.path);
  }
  fold(bytes_axis.size(), "message_bytes");
  fold(arch_axis.size(), "architecture");

  const auto pick = [](std::size_t axis_size, std::size_t i) {
    return axis_size == 1 ? 0 : i;
  };
  points.reserve(length);
  std::vector<std::size_t> path_choice(n_paths, 0);
  for (std::size_t i = 0; i < length; ++i) {
    for (std::size_t p = 0; p < n_paths; ++p) {
      path_choice[p] = pick(spec.axes.node_paths[p].values.size(), i);
    }
    points.push_back(make_tree_point(
        spec, bytes_axis, arch_axis, path_choice, pick(bytes_axis.size(), i),
        pick(arch_axis.size(), i), points.size()));
  }
  return points;
}

}  // namespace

std::vector<SweepPoint> expand_sweep(const SweepSpec& spec) {
  if (spec.base_tree != nullptr) return expand_tree_sweep(spec);
  require(spec.axes.node_paths.empty(),
          "sweep '" + spec.id +
              "': path axes need a base tree (set 'tree' in the config)");
  const ResolvedAxes axes = resolve(spec);
  std::vector<SweepPoint> points;

  if (spec.mode == AxisMode::kCartesian) {
    points.reserve(axes.technologies.size() * axes.lambda_per_us.size() *
                   axes.clusters.size() * axes.message_bytes.size() *
                   axes.architectures.size() * axes.service_cv2.size() *
                   axes.arrival_ca2.size());
    for (std::size_t t = 0; t < axes.technologies.size(); ++t) {
      for (std::size_t l = 0; l < axes.lambda_per_us.size(); ++l) {
        for (std::size_t c = 0; c < axes.clusters.size(); ++c) {
          for (std::size_t m = 0; m < axes.message_bytes.size(); ++m) {
            for (std::size_t a = 0; a < axes.architectures.size(); ++a) {
              for (std::size_t v = 0; v < axes.service_cv2.size(); ++v) {
                for (std::size_t b = 0; b < axes.arrival_ca2.size(); ++b) {
                  points.push_back(make_point(spec, axes, t, l, c, m, a, v, b,
                                              points.size()));
                }
              }
            }
          }
        }
      }
    }
    return points;
  }

  // Zipped: all non-singleton axes share one length; singletons repeat.
  std::size_t length = 1;
  const auto fold = [&](std::size_t axis_size, const char* axis_name) {
    if (axis_size == 1) return;
    if (length == 1) {
      length = axis_size;
      return;
    }
    require(axis_size == length,
            "sweep '" + spec.id + "': zipped axis '" + axis_name + "' has " +
                std::to_string(axis_size) + " values but another axis has " +
                std::to_string(length));
  };
  fold(axes.technologies.size(), "technology");
  fold(axes.lambda_per_us.size(), "lambda");
  fold(axes.clusters.size(), "clusters");
  fold(axes.message_bytes.size(), "message_bytes");
  fold(axes.architectures.size(), "architecture");
  fold(axes.service_cv2.size(), "service_cv2");
  fold(axes.arrival_ca2.size(), "arrival_ca2");

  const auto pick = [](std::size_t axis_size, std::size_t i) {
    return axis_size == 1 ? 0 : i;
  };
  points.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    points.push_back(make_point(
        spec, axes, pick(axes.technologies.size(), i),
        pick(axes.lambda_per_us.size(), i), pick(axes.clusters.size(), i),
        pick(axes.message_bytes.size(), i),
        pick(axes.architectures.size(), i), pick(axes.service_cv2.size(), i),
        pick(axes.arrival_ca2.size(), i), points.size()));
  }
  return points;
}

}  // namespace hmcs::runner
