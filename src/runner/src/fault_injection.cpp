#include "hmcs/runner/fault_injection.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "hmcs/util/error.hpp"

namespace hmcs::runner {

FaultInjectionBackend::FaultInjectionBackend(Options options, std::string name)
    : options_(std::move(options)), name_(std::move(name)) {}

bool FaultInjectionBackend::faults(const std::vector<std::size_t>& set,
                                   std::size_t point,
                                   std::uint32_t attempt) const {
  if (std::find(set.begin(), set.end(), point) == set.end()) return false;
  return options_.heal_after_attempts == 0 ||
         attempt <= options_.heal_after_attempts;
}

PointResult FaultInjectionBackend::predict(
    const analytic::SystemConfig& config, const PointContext& ctx) const {
  {
    const std::scoped_lock lock(mutex_);
    calls_.push_back(Call{ctx.index, ctx.attempt, ctx.seed});
  }

  if (faults(options_.throw_config_on, ctx.index, ctx.attempt)) {
    throw ConfigError("fault injection: config fault at point " +
                      std::to_string(ctx.index));
  }
  if (faults(options_.throw_logic_on, ctx.index, ctx.attempt)) {
    throw LogicError("fault injection: logic fault at point " +
                     std::to_string(ctx.index));
  }
  if (faults(options_.hang_on, ctx.index, ctx.attempt)) {
    // Cooperative hang: behave like a simulator that never reaches its
    // message count, polling the cancel token on its rare path. The
    // 10 s fuse turns a missing/never-expiring token into a loud
    // failure instead of a wedged test suite.
    const auto fuse =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < fuse) {
      if (ctx.cancel != nullptr) ctx.cancel->check("FaultInjectionBackend");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    throw LogicError("fault injection: hang at point " +
                     std::to_string(ctx.index) +
                     " was never cancelled (no deadline?)");
  }
  if (faults(options_.nan_on, ctx.index, ctx.attempt)) {
    PointResult result;
    result.mean_latency_us = std::numeric_limits<double>::quiet_NaN();
    return result;
  }

  if (options_.inner != nullptr) return options_.inner->predict(config, ctx);
  PointResult result;
  result.mean_latency_us = static_cast<double>(config.clusters) * 100.0 +
                           config.message_bytes / 64.0 +
                           static_cast<double>(ctx.seed % 97);
  return result;
}

std::vector<FaultInjectionBackend::Call> FaultInjectionBackend::calls() const {
  std::vector<Call> log;
  {
    const std::scoped_lock lock(mutex_);
    log = calls_;
  }
  std::sort(log.begin(), log.end(), [](const Call& a, const Call& b) {
    return a.point != b.point ? a.point < b.point : a.attempt < b.attempt;
  });
  return log;
}

}  // namespace hmcs::runner
