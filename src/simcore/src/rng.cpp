#include "hmcs/simcore/rng.hpp"

#include <cmath>

#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // All-zero state is the one invalid state for xoshiro; splitmix64 can
  // produce it only for adversarial seeds, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ULL;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Top 53 bits -> [0, 1) double grid.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  require(bound > 0, "Rng::uniform_below: bound must be > 0");
  // Lemire's method: multiply-shift with rejection of the biased zone.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::exponential(double mean) {
  require(mean > 0.0, "Rng::exponential: mean must be > 0");
  // 1 - uniform() lies in (0, 1], so log() is finite.
  return -mean * std::log(1.0 - uniform());
}

bool Rng::bernoulli(double p) {
  require(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must be in [0, 1]");
  return uniform() < p;
}

Rng Rng::split() {
  Rng child(next_u64());
  return child;
}

}  // namespace hmcs::simcore
