#include "hmcs/simcore/batch_means.hpp"

#include <cmath>

#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

BatchMeans::BatchMeans(std::uint64_t batch_size) : batch_size_(batch_size) {
  require(batch_size >= 1, "BatchMeans: batch_size must be >= 1");
}

void BatchMeans::add(double x) {
  ++count_;
  current_sum_ += x;
  if (++current_count_ == batch_size_) {
    batch_means_.push_back(current_sum_ / static_cast<double>(batch_size_));
    current_sum_ = 0.0;
    current_count_ = 0;
  }
}

double BatchMeans::mean() const {
  require(!batch_means_.empty(), "BatchMeans::mean: no complete batches");
  double sum = 0.0;
  for (const double m : batch_means_) sum += m;
  return sum / static_cast<double>(batch_means_.size());
}

ConfidenceInterval BatchMeans::confidence_interval(double confidence) const {
  require(batch_means_.size() >= 2,
          "BatchMeans: needs >= 2 complete batches for an interval");
  Tally tally;
  for (const double m : batch_means_) tally.add(m);
  return tally.confidence_interval(confidence);
}

double BatchMeans::lag1_autocorrelation() const {
  // Degenerate series have no defined autocorrelation; return the
  // documented neutral value instead of 0/0 = NaN (which would flow
  // unflagged into SimResult obs fields and JSON artifacts). Callers
  // that need to distinguish "healthy" from "undefined" check
  // num_complete_batches() >= 3 first.
  if (batch_means_.size() < 3) return 0.0;
  const double grand = mean();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < batch_means_.size(); ++i) {
    const double di = batch_means_[i] - grand;
    den += di * di;
    if (i + 1 < batch_means_.size()) {
      num += di * (batch_means_[i + 1] - grand);
    }
  }
  // A constant series (den == 0 implies num == 0) is likewise undefined.
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace hmcs::simcore
