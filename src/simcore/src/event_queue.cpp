#include "hmcs/simcore/event_queue.hpp"

#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

EventId EventQueue::push(SimTime time, EventAction action) {
  require(static_cast<bool>(action), "EventQueue: action must be callable");
  const EventId id = next_id_++;
  heap_.push(HeapEntry{time, id});
  actions_.emplace(id, std::move(action));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = actions_.find(id);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::drop_dead_head() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

std::optional<SimTime> EventQueue::peek_time() {
  drop_dead_head();
  if (heap_.empty()) return std::nullopt;
  return heap_.top().time;
}

std::optional<EventQueue::Event> EventQueue::pop_next() {
  drop_dead_head();
  if (heap_.empty()) return std::nullopt;
  const HeapEntry entry = heap_.top();
  heap_.pop();
  const auto it = actions_.find(entry.id);
  ensure(it != actions_.end(), "EventQueue: live event without action");
  Event event{entry.time, entry.id, std::move(it->second)};
  actions_.erase(it);
  --live_count_;
  return event;
}

}  // namespace hmcs::simcore
