#include "hmcs/simcore/event_queue.hpp"

#include <algorithm>
#include <bit>

#include "hmcs/obs/metrics.hpp"

namespace hmcs::simcore {

std::uint32_t EventQueue::sweep_min() {
  // Rare fallback path: structural counters only, never per-push/pop —
  // the hot path stays free of shared-cache-line traffic.
  ++sweep_fallbacks_;
  HMCS_OBS_COUNTER_INC("simcore.event_queue.sweep_fallbacks");
  std::uint32_t best = kNoSlot;
  for (std::size_t bucket = 0; bucket < buckets_.size(); ++bucket) {
    std::uint32_t head = buckets_[bucket];
    while (head != kNoSlot && !is_live(slots_[head])) {
      buckets_[bucket] = slots_[head].next;
      retire_slot(head);
      --chained_count_;
      head = buckets_[bucket];
    }
    if (head == kNoSlot) continue;
    if (best == kNoSlot || before(slots_[head], slots_[best])) best = head;
  }
  if (best != kNoSlot) cursor_vb_ = slots_[best].virtual_bucket;
  return best;
}

double EventQueue::target_width() const {
  return std::max(2.0 * gap_ema_, kMinWidth);
}

void EventQueue::maybe_check_width() {
  // Population collapsed well below the bucket count: shrink.
  if (buckets_.size() > kInitialBuckets &&
      chained_count_ * 4 < buckets_.size()) {
    const std::size_t shrunk =
        std::bit_ceil(std::max(kInitialBuckets, chained_count_));
    rebuild(shrunk, has_gap_ema_ ? target_width() : width_);
    return;
  }
  // Periodically re-check the width against the observed density: a
  // stationary population never crosses a resize threshold, but its
  // event-time spacing can still drift from what the width was last
  // calibrated for.
  if (++pops_since_width_check_ < kWidthCheckInterval) return;
  pops_since_width_check_ = 0;
  if (!has_gap_ema_) return;
  const double target = target_width();
  if (width_ > 4.0 * target || width_ * 4.0 < target) {
    rebuild(buckets_.size(), target);
  }
}

void EventQueue::rebuild(std::size_t new_bucket_count, double new_width) {
  if (new_bucket_count == buckets_.size() && new_width == width_) {
    ++calendar_purges_;
    HMCS_OBS_COUNTER_INC("simcore.event_queue.calendar_purges");
  } else {
    ++calendar_resizes_;
    HMCS_OBS_COUNTER_INC("simcore.event_queue.calendar_resizes");
  }
  // Thread every chained slot onto one temporary list, freeing the
  // bucket heads.
  std::uint32_t all = kNoSlot;
  for (std::size_t bucket = 0; bucket < buckets_.size(); ++bucket) {
    std::uint32_t head = buckets_[bucket];
    buckets_[bucket] = kNoSlot;
    while (head != kNoSlot) {
      const std::uint32_t next = slots_[head].next;
      slots_[head].next = all;
      all = head;
      head = next;
    }
  }

  buckets_.assign(new_bucket_count, kNoSlot);
  bucket_mask_ = new_bucket_count - 1;
  set_width(new_width);
  chained_count_ = 0;

  // Relink live slots under the new geometry; collect cancelled ones —
  // a rebuild doubles as a tombstone purge.
  std::uint64_t min_vb = 0;
  bool any_live = false;
  while (all != kNoSlot) {
    const std::uint32_t next = slots_[all].next;
    SlotKey& s = slots_[all];
    if (!is_live(s)) {
      retire_slot(all);
    } else {
      s.virtual_bucket = virtual_bucket(s.time);
      link_into_bucket(all);
      ++chained_count_;
      if (!any_live || s.virtual_bucket < min_vb) {
        min_vb = s.virtual_bucket;
        any_live = true;
      }
    }
    all = next;
  }
  cursor_vb_ = any_live ? min_vb : 0;
}

}  // namespace hmcs::simcore
