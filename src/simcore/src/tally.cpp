#include "hmcs/simcore/tally.hpp"

#include <algorithm>
#include <cmath>

#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

namespace {

struct TRow {
  // Two-sided quantiles for confidence 0.90 / 0.95 / 0.99.
  double q90, q95, q99;
};

// df 1..30; beyond 30 the normal quantiles are within ~2% and we fall
// back to them (1.645 / 1.960 / 2.576).
constexpr TRow kTTable[30] = {
    {6.314, 12.706, 63.657}, {2.920, 4.303, 9.925},  {2.353, 3.182, 5.841},
    {2.132, 2.776, 4.604},   {2.015, 2.571, 4.032},  {1.943, 2.447, 3.707},
    {1.895, 2.365, 3.499},   {1.860, 2.306, 3.355},  {1.833, 2.262, 3.250},
    {1.812, 2.228, 3.169},   {1.796, 2.201, 3.106},  {1.782, 2.179, 3.055},
    {1.771, 2.160, 3.012},   {1.761, 2.145, 2.977},  {1.753, 2.131, 2.947},
    {1.746, 2.120, 2.921},   {1.740, 2.110, 2.898},  {1.734, 2.101, 2.878},
    {1.729, 2.093, 2.861},   {1.725, 2.086, 2.845},  {1.721, 2.080, 2.831},
    {1.717, 2.074, 2.819},   {1.714, 2.069, 2.807},  {1.711, 2.064, 2.797},
    {1.708, 2.060, 2.787},   {1.706, 2.056, 2.779},  {1.703, 2.052, 2.771},
    {1.701, 2.048, 2.763},   {1.699, 2.045, 2.756},  {1.697, 2.042, 2.750}};

double pick(const TRow& row, double confidence) {
  if (confidence == 0.90) return row.q90;
  if (confidence == 0.95) return row.q95;
  if (confidence == 0.99) return row.q99;
  hmcs::detail::throw_config_error(
      "student_t_quantile: supported confidence levels are 0.90/0.95/0.99",
      std::source_location::current());
}

}  // namespace

double student_t_quantile(double confidence, std::uint64_t degrees_of_freedom) {
  require(degrees_of_freedom >= 1, "student_t_quantile: df must be >= 1");
  if (degrees_of_freedom <= 30) return pick(kTTable[degrees_of_freedom - 1], confidence);
  return pick(TRow{1.645, 1.960, 2.576}, confidence);
}

void Tally::add(double x) {
  moments_.add(x);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  total_ += x;
}

void Tally::merge(const Tally& other) {
  if (other.count() == 0) return;
  moments_.merge(other.moments_);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  total_ += other.total_;
}

double Tally::min() const {
  require(count() > 0, "Tally::min: no samples");
  return min_;
}

double Tally::max() const {
  require(count() > 0, "Tally::max: no samples");
  return max_;
}

ConfidenceInterval Tally::confidence_interval(double confidence) const {
  require(count() > 1, "Tally::confidence_interval: needs >= 2 samples");
  const double t = student_t_quantile(confidence, count() - 1);
  const double half =
      t * stddev() / std::sqrt(static_cast<double>(count()));
  return ConfidenceInterval{mean() - half, mean() + half, half};
}

}  // namespace hmcs::simcore
