#include "hmcs/simcore/distributions.hpp"

#include <cmath>

#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

double variate_cv2(Rng& rng, double mean, double cv2) {
  require(mean >= 0.0, "distributions: mean must be >= 0");
  require(cv2 >= 0.0, "distributions: cv^2 must be >= 0");
  if (mean == 0.0) return 0.0;
  if (cv2 == 1.0) return rng.exponential(mean);
  if (cv2 == 0.0) return mean;
  if (cv2 < 1.0) {
    // Tijms' mixed Erlang: with probability p use k-1 phases, else k,
    // each phase exponential with rate mu. Matches mean and cv^2 exactly
    // for 1/k <= cv^2 < 1/(k-1).
    const double k = std::ceil(1.0 / cv2);
    const double p =
        (1.0 / (1.0 + cv2)) *
        (k * cv2 - std::sqrt(k * (1.0 + cv2) - k * k * cv2));
    const double mu = (k - p) / mean;  // per-phase rate
    const double phases = rng.bernoulli(p) ? k - 1.0 : k;
    double sum = 0.0;
    for (double i = 0.0; i < phases; i += 1.0) {
      sum += rng.exponential(1.0 / mu);
    }
    return sum;
  }
  // Balanced-means H2: branch i has probability p_i and mean m/(2 p_i),
  // so both branches carry half the mean. Matches mean and cv^2 exactly
  // for any cv^2 > 1.
  const double p1 = 0.5 * (1.0 + std::sqrt((cv2 - 1.0) / (cv2 + 1.0)));
  const bool first = rng.bernoulli(p1);
  const double branch_mean = mean / (2.0 * (first ? p1 : 1.0 - p1));
  return rng.exponential(branch_mean);
}

std::uint64_t poisson(Rng& rng, double mean) {
  require(mean >= 0.0, "distributions: poisson mean must be >= 0");
  if (mean == 0.0) return 0;
  // Knuth: count uniforms until their product drops below e^-mean.
  const double limit = std::exp(-mean);
  std::uint64_t count = 0;
  double product = rng.uniform();
  while (product >= limit) {
    ++count;
    product *= rng.uniform();
  }
  return count;
}

double Mmpp2::next_interarrival_us(Rng& rng) {
  double elapsed = 0.0;
  for (;;) {
    const double arrival = rate_[state_];
    const double leave = leave_[state_];
    const double total = arrival + leave;
    // leave rates are > 0, so total > 0 and the dwell is finite even
    // when the state's arrival rate is 0.
    const double wait = rng.exponential(1.0 / total);
    elapsed += wait;
    if (rng.bernoulli(arrival / total)) return elapsed;
    state_ = 1 - state_;  // the competing event was a state change
  }
}

}  // namespace hmcs::simcore
