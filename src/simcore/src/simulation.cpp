#include "hmcs/simcore/simulation.hpp"

#include <cmath>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

Simulator::~Simulator() { flush_obs_counters(); }

void Simulator::flush_obs_counters() {
  if (executed_ == obs_flushed_) return;
  HMCS_OBS_COUNTER_ADD("simcore.engine.events_dispatched",
                       executed_ - obs_flushed_);
  obs_flushed_ = executed_;
}

EventId Simulator::schedule_after(SimTime delay, EventAction action) {
  require(std::isfinite(delay) && delay >= 0.0,
          "Simulator: delay must be finite and non-negative");
  return queue_.push(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime at, EventAction action) {
  require(std::isfinite(at) && at >= now_,
          "Simulator: cannot schedule in the past");
  return queue_.push(at, std::move(action));
}

bool Simulator::step() {
  auto event = queue_.pop_next();
  if (!event) return false;
  ensure(event->time >= now_, "Simulator: time went backwards");
  now_ = event->time;
  ++executed_;
  if (executed_ - obs_flushed_ >= kObsFlushBatch) flush_obs_counters();
  event->action();
  return true;
}

std::uint64_t Simulator::run() {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!stop_requested_ && step()) ++count;
  return count;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!stop_requested_) {
    const auto next = queue_.peek_time();
    if (!next || *next > deadline) break;
    step();
    ++count;
  }
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace hmcs::simcore
