#include "hmcs/simcore/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs::simcore {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), bins_(num_bins, 0) {
  require(num_bins > 0, "Histogram: needs at least one bin");
  require(std::isfinite(lo) && std::isfinite(hi) && lo < hi,
          "Histogram: requires finite lo < hi");
  bin_width_ = (hi - lo) / static_cast<double>(num_bins);
}

void Histogram::add(double x) {
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  idx = std::min(idx, bins_.size() - 1);  // guard x just below hi_
  ++bins_[idx];
}

double Histogram::bin_lower(std::size_t i) const {
  require(i < bins_.size(), "Histogram: bin index out of range");
  return lo_ + static_cast<double>(i) * bin_width_;
}

double Histogram::bin_upper(std::size_t i) const {
  return bin_lower(i) + bin_width_;
}

double Histogram::quantile(double q) const {
  require(q >= 0.0 && q <= 1.0, "Histogram::quantile: q must be in [0, 1]");
  require(count_ > 0, "Histogram::quantile: no samples");
  const double target = q * static_cast<double>(count_);
  double cumulative = static_cast<double>(underflow_);
  if (target <= cumulative) return lo_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double in_bin = static_cast<double>(bins_[i]);
    if (cumulative + in_bin >= target && in_bin > 0.0) {
      const double fraction = (target - cumulative) / in_bin;
      return bin_lower(i) + fraction * bin_width_;
    }
    cumulative += in_bin;
  }
  return hi_;
}

std::string Histogram::render(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (const auto c : bins_) peak = std::max(peak, c);
  std::ostringstream os;
  if (underflow_ > 0) os << "  < " << format_compact(lo_) << ": " << underflow_ << "\n";
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(bins_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    os << "  [" << pad_left(format_compact(bin_lower(i), 4), 10) << ", "
       << pad_left(format_compact(bin_upper(i), 4), 10) << ") "
       << pad_left(std::to_string(bins_[i]), 8) << " "
       << std::string(std::max<std::size_t>(bar, 1), '#') << "\n";
  }
  if (overflow_ > 0) os << "  >= " << format_compact(hi_) << ": " << overflow_ << "\n";
  return os.str();
}

}  // namespace hmcs::simcore
