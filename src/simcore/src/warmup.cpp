#include "hmcs/simcore/warmup.hpp"

#include <cmath>
#include <limits>

#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

WarmupAnalysis mser_warmup(const std::vector<double>& samples,
                           std::size_t batch_size) {
  require(batch_size >= 1, "mser_warmup: batch size must be >= 1");
  const std::size_t num_batches = samples.size() / batch_size;
  require(num_batches >= 4, "mser_warmup: needs >= 4 complete batches");

  std::vector<double> batches(num_batches);
  for (std::size_t b = 0; b < num_batches; ++b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < batch_size; ++i) {
      sum += samples[b * batch_size + i];
    }
    batches[b] = sum / static_cast<double>(batch_size);
  }

  // Suffix sums for O(1) mean/variance of batches d..n-1.
  std::vector<double> suffix_sum(num_batches + 1, 0.0);
  std::vector<double> suffix_sq(num_batches + 1, 0.0);
  for (std::size_t b = num_batches; b-- > 0;) {
    suffix_sum[b] = suffix_sum[b + 1] + batches[b];
    suffix_sq[b] = suffix_sq[b + 1] + batches[b] * batches[b];
  }

  WarmupAnalysis analysis;
  analysis.batch_size = batch_size;
  analysis.num_batches = num_batches;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d <= num_batches / 2; ++d) {
    const double n = static_cast<double>(num_batches - d);
    const double mean = suffix_sum[d] / n;
    const double variance =
        std::fmax(0.0, suffix_sq[d] / n - mean * mean);
    const double mser = variance / (n * n);
    if (mser < best) {
      best = mser;
      analysis.truncation_batches = d;
      analysis.truncated_mean = mean;
      analysis.mser_statistic = mser;
    }
  }
  analysis.truncation_samples = analysis.truncation_batches * batch_size;
  return analysis;
}

}  // namespace hmcs::simcore
