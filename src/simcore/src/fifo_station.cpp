#include "hmcs/simcore/fifo_station.hpp"

#include <utility>

#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

FifoStation::FifoStation(Simulator& sim, std::string name, ServiceSampler sampler)
    : sim_(sim), name_(std::move(name)), sampler_(std::move(sampler)) {
  require(static_cast<bool>(sampler_), "FifoStation: sampler must be callable");
}

void FifoStation::arrive(std::uint64_t job_id) {
  ++arrivals_;
  number_in_system_.add(sim_.now(), 1.0);
  queue_.push_back(Job{job_id, sim_.now()});
  if (!busy_) begin_service();
}

void FifoStation::begin_service() {
  ensure(!queue_.empty(), "FifoStation: begin_service with empty queue");
  ensure(!busy_, "FifoStation: begin_service while busy");
  Job job = queue_.front();
  queue_.pop_front();
  busy_ = true;
  busy_signal_.update(sim_.now(), 1.0);

  const SimTime wait = sim_.now() - job.arrival_time;
  const SimTime service = sampler_(job);
  require(service >= 0.0, "FifoStation: sampled negative service time");
  sim_.schedule_after(service, [this, job, wait, service] {
    complete_service(job, wait, service);
  });
}

void FifoStation::complete_service(Job job, SimTime wait, SimTime service) {
  busy_ = false;
  busy_signal_.update(sim_.now(), 0.0);
  number_in_system_.add(sim_.now(), -1.0);
  ++departures_;
  wait_times_.add(wait);
  service_times_.add(service);
  response_times_.add(wait + service);

  if (!queue_.empty()) begin_service();

  if (on_departure_) {
    on_departure_(Departure{job, wait, service, wait + service});
  }
}

void FifoStation::reset_statistics() {
  wait_times_ = Tally{};
  service_times_ = Tally{};
  response_times_ = Tally{};
  arrivals_ = 0;
  departures_ = 0;
  number_in_system_.reset_window(sim_.now());
  busy_signal_.reset_window(sim_.now());
}

}  // namespace hmcs::simcore
