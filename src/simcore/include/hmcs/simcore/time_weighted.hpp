#pragma once

/// \file time_weighted.hpp
/// Time-weighted average of a piecewise-constant signal — the right
/// estimator for queue lengths and server utilisation, where the value
/// persists for an interval rather than being sampled per event.

#include "hmcs/simcore/time.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

class TimeWeighted {
 public:
  /// Starts tracking at `start_time` with initial `value`.
  explicit TimeWeighted(SimTime start_time = 0.0, double value = 0.0)
      : last_time_(start_time), start_time_(start_time), value_(value) {}

  /// Records that the signal changed to `value` at time `now` (>= the
  /// previous update time).
  void update(SimTime now, double value) {
    require(now >= last_time_, "TimeWeighted: time went backwards");
    area_ += value_ * (now - last_time_);
    last_time_ = now;
    value_ = value;
  }

  /// Adds `delta` to the current value at time `now`.
  void add(SimTime now, double delta) { update(now, value_ + delta); }

  double current() const { return value_; }

  /// Average over [start_time, now]. `now` must be >= the last update.
  double average(SimTime now) const {
    require(now >= last_time_, "TimeWeighted: time went backwards");
    const SimTime span = now - start_time_;
    if (span <= 0.0) return value_;
    return (area_ + value_ * (now - last_time_)) / span;
  }

  /// Discards history and restarts the average window at `now` (used to
  /// drop warm-up transients).
  void reset_window(SimTime now) {
    require(now >= last_time_, "TimeWeighted: time went backwards");
    start_time_ = now;
    last_time_ = now;
    area_ = 0.0;
  }

 private:
  SimTime last_time_;
  SimTime start_time_;
  double value_;
  double area_ = 0.0;
};

}  // namespace hmcs::simcore
