#pragma once

/// \file fifo_station.hpp
/// A FIFO single-server service station living inside a Simulator — the
/// building block for the paper's queueing-network simulators, where each
/// communication network (ICN1, ECN1, ICN2) is one such centre.
///
/// Jobs carry an opaque payload (std::uint64_t id chosen by the client);
/// when a job finishes service the station invokes the departure callback
/// with the job and its measured waiting/service times. Service times are
/// drawn per job from a caller-supplied sampler so exponential
/// (paper assumption), deterministic, or arbitrary distributions plug in
/// without the station knowing.

#include <cstdint>
#include <string>

#include "hmcs/simcore/inline_function.hpp"
#include "hmcs/simcore/ring_buffer.hpp"
#include "hmcs/simcore/simulation.hpp"
#include "hmcs/simcore/tally.hpp"
#include "hmcs/simcore/time_weighted.hpp"

namespace hmcs::simcore {

class FifoStation {
 public:
  struct Job {
    std::uint64_t id = 0;
    SimTime arrival_time = 0.0;
  };

  struct Departure {
    Job job;
    SimTime wait_time;     ///< time spent queued before service
    SimTime service_time;  ///< sampled service duration
    SimTime response_time; ///< wait + service
  };

  /// Draws the service duration for a job about to enter service; the
  /// job is passed so samplers can depend on per-message attributes
  /// (e.g. message size looked up by id). Both hooks are InlineFunctions:
  /// fn-ptr dispatch with inline capture storage, so the per-job sampler
  /// call and departure notification never touch the heap.
  using ServiceSampler = InlineFunction<SimTime(const Job&)>;
  using DepartureCallback = InlineFunction<void(const Departure&)>;

  /// `name` labels the station in statistics reports.
  FifoStation(Simulator& sim, std::string name, ServiceSampler sampler);

  void set_departure_callback(DepartureCallback cb) { on_departure_ = std::move(cb); }

  /// Enqueues a job at the current simulation time.
  void arrive(std::uint64_t job_id);

  const std::string& name() const { return name_; }
  std::size_t queue_length() const { return queue_.size() + (busy_ ? 1u : 0u); }
  bool busy() const { return busy_; }

  /// Observation statistics.
  const Tally& wait_times() const { return wait_times_; }
  const Tally& service_times() const { return service_times_; }
  const Tally& response_times() const { return response_times_; }
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t departures() const { return departures_; }

  /// Time-averaged number in system (queue + in service) and fraction of
  /// time the server was busy, both over the observation window.
  double average_number_in_system() const { return number_in_system_.average(sim_.now()); }
  double utilization() const { return busy_signal_.average(sim_.now()); }

  /// Drops all accumulated statistics (warm-up handling); jobs in flight
  /// are unaffected.
  void reset_statistics();

 private:
  void begin_service();
  void complete_service(Job job, SimTime wait, SimTime service);

  Simulator& sim_;
  std::string name_;
  ServiceSampler sampler_;
  DepartureCallback on_departure_;

  RingBuffer<Job> queue_;
  bool busy_ = false;

  Tally wait_times_;
  Tally service_times_;
  Tally response_times_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t departures_ = 0;
  TimeWeighted number_in_system_;
  TimeWeighted busy_signal_;
};

}  // namespace hmcs::simcore
