#pragma once

/// \file time.hpp
/// Simulation time. hmcs uses a double measured in microseconds (see
/// hmcs/util/units.hpp for the unit system). A dedicated alias keeps
/// signatures self-documenting.

namespace hmcs::simcore {

using SimTime = double;

/// Sentinel for "no deadline" in run_until().
inline constexpr SimTime kTimeInfinity = 1e300;

}  // namespace hmcs::simcore
