#pragma once

/// \file tally.hpp
/// Sample tally: Welford moments plus min/max and confidence intervals.
/// This is the "sink module" statistic of the paper's simulators — every
/// completed message deposits its latency here.

#include <cstdint>
#include <limits>

#include "hmcs/simcore/welford.hpp"

namespace hmcs::simcore {

/// Two-sided confidence interval [lower, upper] around the sample mean.
struct ConfidenceInterval {
  double lower;
  double upper;
  double half_width;
};

/// Student-t quantile for a two-sided interval at the given confidence
/// level (supported: 0.90, 0.95, 0.99) and degrees of freedom. Uses an
/// exact table for small df and the normal quantile beyond it.
double student_t_quantile(double confidence, std::uint64_t degrees_of_freedom);

class Tally {
 public:
  void add(double x);
  void merge(const Tally& other);

  std::uint64_t count() const { return moments_.count(); }
  double mean() const { return moments_.mean(); }
  double variance() const { return moments_.variance_sample(); }
  double stddev() const { return moments_.stddev_sample(); }
  double min() const;
  double max() const;
  double total() const { return total_; }

  /// Confidence interval assuming i.i.d. samples. For correlated series
  /// (steady-state simulation output) use BatchMeans instead.
  ConfidenceInterval confidence_interval(double confidence = 0.95) const;

 private:
  Welford moments_;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double total_ = 0.0;
};

}  // namespace hmcs::simcore
