#pragma once

/// \file event_queue.hpp
/// The pending-event set of the discrete-event engine, built for
/// allocation-free, hash-free, O(1) steady state:
///
///  * Events live in a slot pool recycled through an intrusive free
///    list. Steady-state push/pop never allocates — the pool and bucket
///    array only grow when the number of simultaneously pending events
///    exceeds every previous high-water mark.
///  * An EventId is a generation-tagged slot reference (generation in the
///    high 32 bits, slot index in the low 32). cancel(id) is an O(1) array
///    probe — the generation mismatch of a retired slot rejects stale ids —
///    so no hash map or hash set is involved anywhere.
///  * Ordering comes from a calendar queue (Brown 1988): a power-of-two
///    array of buckets, each an intrusive singly-linked list of slots
///    sorted by (time, sequence). An event's *virtual bucket* is the
///    integer floor(time / width); its physical bucket is that number
///    modulo the array size, so each lap of the array is one "year" of
///    simulated time. For the roughly stationary event populations a
///    discrete-event simulation produces, push and pop are O(1) — no
///    O(log n) sift chains of unpredictable branches, which is what makes
///    this several times faster than any binary/d-ary heap at realistic
///    horizons (a 4-ary indexed-heap prototype measured ~150 ns/op at a
///    16k-event horizon; the calendar queue runs the same churn in a
///    fraction of that).
///  * All year/bucket decisions compare *integer* virtual bucket numbers
///    computed exactly once per event at push time, so floating-point
///    boundary drift can never reorder two events: the pop order is the
///    exact total order (time, then push sequence), bit-for-bit
///    reproducible. Same-time events fire in scheduling order.
///  * The payload is an InlineFunction (fn-ptr dispatch, inline capture
///    storage) instead of std::function, so scheduling a lambda never
///    touches the heap either.
///
/// Cancellation is lazy in the calendar but eager for resources:
/// cancel(id) destroys the action immediately and marks the slot dead; the
/// dead entry is unlinked when the dequeue scan reaches it, which is when
/// the slot returns to the free list and its generation advances.
///
/// The bucket width adapts to the observed event-time density: a running
/// average of positive dequeue gaps re-parameterizes the calendar whenever
/// the population crosses a resize threshold or the width drifts far from
/// the density (checked every few thousand dequeues), keeping ~1-2 events
/// per occupied bucket.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "hmcs/simcore/inline_function.hpp"
#include "hmcs/simcore/time.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

/// Generation-tagged slot reference: (generation << 32) | slot.
using EventId = std::uint64_t;
using EventAction = InlineFunction<void()>;

class EventQueue {
 public:
  EventQueue() = default;

  /// Not copyable (actions may own resources); movable.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  EventQueue(EventQueue&&) = default;
  EventQueue& operator=(EventQueue&&) = default;

  /// Inserts an event; returns an id usable with cancel().
  EventId push(SimTime time, EventAction action) {
    require(static_cast<bool>(action), "EventQueue: action must be callable");
    if (buckets_.empty()) {
      buckets_.assign(kInitialBuckets, kNoSlot);
      bucket_mask_ = kInitialBuckets - 1;
    }

    const std::uint32_t slot = acquire_slot();
    SlotKey& s = slots_[slot];
    actions_[slot] = std::move(action);
    s.time = time;
    s.seq = next_seq_++;
    s.virtual_bucket = virtual_bucket(time);
    s.gen_live |= 1u;  // mark live, generation unchanged
    link_into_bucket(slot);

    if (chained_count_ == 0 || s.virtual_bucket < cursor_vb_) {
      cursor_vb_ = s.virtual_bucket;  // keep the cursor at/before the minimum
    }
    ++chained_count_;
    ++live_count_;

    if (chained_count_ > 2 * buckets_.size()) {
      // When tombstones dominate, purge in place instead of growing —
      // otherwise a cancel-heavy workload would ratchet the bucket array
      // up forever while the live population stays flat.
      const std::size_t tombstones = chained_count_ - live_count_;
      const std::size_t new_buckets =
          tombstones >= live_count_ / 2 ? buckets_.size() : 2 * buckets_.size();
      rebuild(new_buckets, has_gap_ema_ ? target_width() : width_);
    }
    return make_id(generation(s), slot);
  }

  /// Marks an event as cancelled. Returns false if the id was already
  /// executed, cancelled, or never existed (harmless either way).
  bool cancel(EventId id) {
    const std::uint32_t slot = slot_of(id);
    if (slot >= slots_.size()) return false;
    SlotKey& s = slots_[slot];
    if (!is_live(s) || generation(s) != generation_of(id)) return false;
    // Release resources immediately; the calendar entry is unlinked
    // lazily when the dequeue scan reaches it (that is when the slot is
    // recycled).
    actions_[slot].reset();
    s.gen_live &= ~1u;
    --live_count_;
    return true;
  }

  /// Time of the earliest live event, or nullopt if empty.
  std::optional<SimTime> peek_time() {
    if (live_count_ == 0) return std::nullopt;
    const std::uint32_t slot = find_min();
    ensure(slot != kNoSlot, "EventQueue: live events missing from calendar");
    return slots_[slot].time;
  }

  struct Event {
    SimTime time;
    EventId id;
    EventAction action;
  };

  /// Removes and returns the earliest live event; nullopt if empty.
  std::optional<Event> pop_next() {
    if (live_count_ == 0) return std::nullopt;
    const std::uint32_t slot = find_min();
    ensure(slot != kNoSlot, "EventQueue: live events missing from calendar");

    SlotKey& s = slots_[slot];
    const std::size_t bucket =
        static_cast<std::size_t>(s.virtual_bucket) & bucket_mask_;
    buckets_[bucket] = s.next;  // find_min() leaves the minimum at its head
    --chained_count_;

    Event event{s.time, make_id(generation(s), slot),
                std::move(actions_[slot])};

    // Width calibration: the mean gap between consecutive dequeues tracks
    // the head-of-queue event density. Only positive gaps carry a density
    // signal — zero gaps are simultaneous events (free in one bucket) and
    // negative ones mean a later push rewound time below an earlier pop.
    // The average is seeded from the first real gap, never from zero, so
    // an early rebuild cannot collapse the width before any data exists.
    if (has_pop_gap_) {
      const double gap = event.time - last_pop_time_;
      if (gap > 0.0) {
        gap_ema_ = has_gap_ema_ ? gap_ema_ + (gap - gap_ema_) * 0.03125 : gap;
        has_gap_ema_ = true;
      }
    }
    last_pop_time_ = event.time;
    has_pop_gap_ = true;

    retire_slot(slot);
    --live_count_;
    maybe_check_width();
    return event;
  }

  /// Number of live (non-cancelled) events.
  std::size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// Total events ever pushed (diagnostic).
  std::uint64_t total_pushed() const { return next_seq_; }

  /// Size of the slot pool (diagnostic): the high-water mark of events
  /// simultaneously pending, independent of how many were ever pushed.
  std::size_t slot_capacity() const { return slots_.size(); }

  /// Number of calendar buckets (diagnostic).
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Calendar re-parameterizations that changed the bucket count or
  /// width (diagnostic; rare in steady state).
  std::uint64_t calendar_resizes() const { return calendar_resizes_; }

  /// Rebuilds triggered purely to purge cancellation tombstones — the
  /// bucket geometry stayed put (diagnostic).
  std::uint64_t calendar_purges() const { return calendar_purges_; }

  /// Full-calendar sweeps taken when a whole year of buckets was empty
  /// (diagnostic; the O(buckets) fallback of find_min).
  std::uint64_t sweep_fallbacks() const { return sweep_fallbacks_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Virtual bucket numbers are clamped here so time/width can never
  /// overflow the integer conversion (kTimeInfinity included).
  static constexpr std::uint64_t kMaxVirtualBucket = 1ULL << 62;
  static constexpr std::size_t kInitialBuckets = 16;
  static constexpr double kMinWidth = 1e-9;
  /// Dequeues between width-drift checks.
  static constexpr std::uint64_t kWidthCheckInterval = 4096;

  /// Hot per-slot state, exactly 32 bytes: everything chain walks and
  /// dequeue scans touch. The action payloads live in a parallel cold
  /// array (`actions_`) that is only accessed once per push and once per
  /// pop/cancel, so walking a chain streams two keys per cache line
  /// instead of dragging 48-byte capture buffers through the cache.
  struct SlotKey {
    SimTime time = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t virtual_bucket = 0;
    std::uint32_t next = kNoSlot;  // bucket chain when queued, free list after
    std::uint32_t gen_live = 0;    // generation << 1 | live
  };
  static_assert(sizeof(SlotKey) == 32);

  static bool is_live(const SlotKey& s) { return (s.gen_live & 1u) != 0; }
  static std::uint32_t generation(const SlotKey& s) { return s.gen_live >> 1; }

  /// The exact total order of the queue.
  static bool before(const SlotKey& a, const SlotKey& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;  // FIFO among equal times
  }

  static EventId make_id(std::uint32_t generation, std::uint32_t slot) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// floor(time * (1/width)), clamped to [0, 2^62]. Multiplying by the
  /// stored reciprocal replaces a division on the push path; any fixed
  /// monotone map works because the result is computed exactly once per
  /// event per calendar geometry and only compared as an integer.
  std::uint64_t virtual_bucket(SimTime time) const {
    const double scaled = time * inv_width_;
    if (!(scaled > 0.0)) return 0;  // clamps negatives (and NaN) low
    if (scaled >= static_cast<double>(kMaxVirtualBucket)) {
      return kMaxVirtualBucket;  // far-future overflow guard (kTimeInfinity)
    }
    return static_cast<std::uint64_t>(scaled);
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next;
      return slot;
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
    ensure(slot != kNoSlot, "EventQueue: slot pool exhausted");
    slots_.emplace_back();
    actions_.emplace_back();
    return slot;
  }

  /// Returns the slot to the free list and invalidates outstanding ids.
  void retire_slot(std::uint32_t slot) {
    SlotKey& s = slots_[slot];
    actions_[slot].reset();
    // Drop the live bit and advance the generation so stale ids fail the
    // generation probe.
    s.gen_live = (generation(s) + 1) << 1;
    s.next = free_head_;
    free_head_ = slot;
  }

  /// Links `slot` into its bucket's (time, seq)-sorted chain.
  void link_into_bucket(std::uint32_t slot) {
    SlotKey& s = slots_[slot];
    const std::size_t bucket =
        static_cast<std::size_t>(s.virtual_bucket) & bucket_mask_;
    std::uint32_t* link = &buckets_[bucket];
    while (*link != kNoSlot && before(slots_[*link], s)) {
      link = &slots_[*link].next;
    }
    s.next = *link;
    *link = slot;
  }

  /// Advances the cursor to the bucket holding the earliest event and
  /// unlinks dead heads on the way. Returns that head slot, or kNoSlot.
  std::uint32_t find_min() {
    std::size_t steps = 0;
    for (;;) {
      const std::size_t bucket =
          static_cast<std::size_t>(cursor_vb_) & bucket_mask_;
      std::uint32_t head = buckets_[bucket];
      while (head != kNoSlot && !is_live(slots_[head])) {
        buckets_[bucket] = slots_[head].next;
        retire_slot(head);
        --chained_count_;
        head = buckets_[bucket];
      }
      if (chained_count_ == 0) return kNoSlot;
      // A head from this virtual bucket is the global minimum: every
      // earlier virtual bucket has already been scanned empty, and chains
      // are (time, seq)-sorted. Heads from a later lap are skipped.
      if (head != kNoSlot && slots_[head].virtual_bucket == cursor_vb_) {
        return head;
      }
      ++cursor_vb_;
      if (++steps > buckets_.size()) return sweep_min();
    }
  }

  void set_width(double width) {
    width_ = width;
    inv_width_ = 1.0 / width;
  }

  /// Full sweep over all bucket heads — the rare fallback when a whole
  /// calendar year is empty (events clustered far beyond the cursor).
  std::uint32_t sweep_min();
  double target_width() const;
  void maybe_check_width();
  /// Re-parameterizes the calendar (bucket count and/or width) and
  /// relinks every queued slot.
  void rebuild(std::size_t new_bucket_count, double new_width);

  std::vector<SlotKey> slots_;
  std::vector<EventAction> actions_;  // parallel to slots_
  std::vector<std::uint32_t> buckets_;
  std::size_t bucket_mask_ = 0;
  double width_ = 1.0;
  double inv_width_ = 1.0;
  /// Virtual bucket the dequeue scan is currently parked on; invariant:
  /// no live event has a smaller virtual bucket (pushes rewind it).
  std::uint64_t cursor_vb_ = 0;

  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  /// Slots chained in buckets (live + cancelled-but-not-yet-collected).
  std::size_t chained_count_ = 0;

  std::uint64_t calendar_resizes_ = 0;
  std::uint64_t calendar_purges_ = 0;
  std::uint64_t sweep_fallbacks_ = 0;

  /// Running mean of positive consecutive-dequeue time gaps; drives the
  /// width. Seeded from the first observed gap, not from zero.
  double gap_ema_ = 0.0;
  SimTime last_pop_time_ = 0.0;
  bool has_pop_gap_ = false;
  bool has_gap_ema_ = false;
  std::uint64_t pops_since_width_check_ = 0;
};

}  // namespace hmcs::simcore
