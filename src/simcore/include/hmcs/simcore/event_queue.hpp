#pragma once

/// \file event_queue.hpp
/// The pending-event set of the discrete-event engine: a binary min-heap
/// ordered by (time, sequence number). The sequence number makes
/// same-time events fire in scheduling order, which keeps runs exactly
/// reproducible regardless of heap internals.
///
/// Cancellation is lazy: cancel(id) marks the id and pop_next() discards
/// marked events when they surface. This is O(1) per cancel and keeps the
/// heap free of tombstone compaction logic.

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hmcs/simcore/time.hpp"

namespace hmcs::simcore {

using EventId = std::uint64_t;
using EventAction = std::function<void()>;

class EventQueue {
 public:
  EventQueue() = default;

  /// Not copyable (actions may own resources); movable.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  EventQueue(EventQueue&&) = default;
  EventQueue& operator=(EventQueue&&) = default;

  /// Inserts an event; returns an id usable with cancel().
  EventId push(SimTime time, EventAction action);

  /// Marks an event as cancelled. Returns false if the id was already
  /// executed, cancelled, or never existed (harmless either way).
  bool cancel(EventId id);

  /// Time of the earliest live event, or nullopt if empty.
  std::optional<SimTime> peek_time();

  struct Event {
    SimTime time;
    EventId id;
    EventAction action;
  };

  /// Removes and returns the earliest live event; nullopt if empty.
  std::optional<Event> pop_next();

  /// Number of live (non-cancelled) events.
  std::size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// Total events ever pushed (diagnostic).
  std::uint64_t total_pushed() const { return next_id_; }

 private:
  struct HeapEntry {
    SimTime time;
    EventId id;
  };
  struct HeapOrder {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among equal times
    }
  };

  void drop_dead_head();

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapOrder> heap_;
  std::unordered_set<EventId> cancelled_;
  // Actions are stored separately so cancel() can release resources
  // immediately rather than when the tombstone surfaces.
  std::unordered_map<EventId, EventAction> actions_;
  EventId next_id_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace hmcs::simcore
