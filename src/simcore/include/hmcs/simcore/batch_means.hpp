#pragma once

/// \file batch_means.hpp
/// Batch-means confidence intervals for steady-state (autocorrelated)
/// simulation output. Consecutive observations of a queueing simulation
/// are strongly correlated, so the i.i.d. interval of Tally is too
/// narrow; grouping the series into long batches and treating the batch
/// means as (approximately) independent fixes that.

#include <cstdint>
#include <vector>

#include "hmcs/simcore/tally.hpp"

namespace hmcs::simcore {

class BatchMeans {
 public:
  /// `batch_size` observations per batch (>= 1). Partial final batches
  /// are excluded from the interval.
  explicit BatchMeans(std::uint64_t batch_size);

  void add(double x);

  std::uint64_t batch_size() const { return batch_size_; }
  std::uint64_t num_complete_batches() const { return batch_means_.size(); }
  std::uint64_t count() const { return count_; }

  /// Grand mean over all complete batches.
  double mean() const;

  /// CI over the batch means; requires >= 2 complete batches.
  ConfidenceInterval confidence_interval(double confidence = 0.95) const;

  const std::vector<double>& batch_means() const { return batch_means_; }

  /// Lag-1 autocorrelation of the batch means — a diagnostic for whether
  /// the batch size is large enough (|r1| well below ~0.2 is healthy).
  /// Degenerate inputs — fewer than 3 complete batches, or a constant
  /// series (zero batch-mean variance) — have no defined value and
  /// return 0.0; callers that must distinguish "healthy" from
  /// "undefined" gate on num_complete_batches() >= 3.
  double lag1_autocorrelation() const;

 private:
  std::uint64_t batch_size_;
  std::uint64_t count_ = 0;
  double current_sum_ = 0.0;
  std::uint64_t current_count_ = 0;
  std::vector<double> batch_means_;
};

}  // namespace hmcs::simcore
