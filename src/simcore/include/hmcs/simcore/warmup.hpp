#pragma once

/// \file warmup.hpp
/// MSER (Marginal Standard Error Rule) warm-up truncation: given the raw
/// output series of a steady-state simulation, find the truncation point
/// that minimises the standard error of the remaining mean. The paper
/// (like much of its era) discards a fixed warm-up count; MSER gives a
/// data-driven check that the chosen count was enough — the simulator
/// tests use it to validate the default warm-up of the §6 protocol.
///
/// Implementation follows White's MSER-m: the series is averaged into
/// batches of m (MSER-5 uses m = 5) and the truncation point d minimises
///
///     MSER(d) = S²(d) / (n - d)²
///
/// over the first half of the batched series, where S²(d) is the sample
/// variance of batches d..n-1.

#include <cstdint>
#include <vector>

namespace hmcs::simcore {

struct WarmupAnalysis {
  /// Batches to discard (multiply by batch_size for raw samples).
  std::size_t truncation_batches = 0;
  std::size_t truncation_samples = 0;
  /// Mean over the retained batches.
  double truncated_mean = 0.0;
  /// The minimised MSER statistic.
  double mser_statistic = 0.0;
  std::size_t batch_size = 1;
  std::size_t num_batches = 0;
};

/// Runs MSER-m on `samples`. Requires at least 4 complete batches.
/// Candidate truncation points cover the first half of the batch series
/// (the standard guard against degenerate all-but-tail truncation).
WarmupAnalysis mser_warmup(const std::vector<double>& samples,
                           std::size_t batch_size = 5);

}  // namespace hmcs::simcore
