#pragma once

/// \file simulation.hpp
/// The discrete-event simulation executive: a virtual clock plus the
/// pending-event set. Components schedule callbacks at absolute times or
/// after delays; run() executes events in time order until a stop
/// condition is met.
///
/// The executive is deliberately single-threaded: discrete-event
/// simulations of queueing networks are causality-ordered, and the runs
/// in this repo each take milliseconds. Parallelism in the experiment
/// layer comes from running independent replications on independent
/// Simulator instances.

#include <cstdint>

#include "hmcs/simcore/event_queue.hpp"
#include "hmcs/simcore/time.hpp"

namespace hmcs::simcore {

class Simulator {
 public:
  Simulator() = default;

  /// Flushes the batched events-dispatched count to the global metrics
  /// registry (see step()).
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time (microseconds).
  SimTime now() const { return now_; }

  /// Schedules `action` to run after `delay` (>= 0) time units.
  EventId schedule_after(SimTime delay, EventAction action);

  /// Schedules `action` at absolute time `at` (>= now()).
  EventId schedule_at(SimTime at, EventAction action);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Executes the next event. Returns false if the queue was empty.
  bool step();

  /// Runs until the queue drains or stop() is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs until the clock would pass `deadline` (events at exactly
  /// `deadline` are executed), the queue drains, or stop() is called.
  std::uint64_t run_until(SimTime deadline);

  /// Requests that run()/run_until() return after the current event.
  void stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

  /// Read-only view of the pending-event set for diagnostics
  /// (total_pushed, slot_capacity, bucket_count, calendar counters).
  const EventQueue& queue() const { return queue_; }

 private:
  /// Publishes executed-event deltas to the global metrics registry in
  /// batches: one relaxed atomic add per kObsFlushBatch events, so
  /// concurrent simulators never contend on the shared counter line.
  void flush_obs_counters();

  static constexpr std::uint64_t kObsFlushBatch = 4096;

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  std::uint64_t obs_flushed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace hmcs::simcore
