#pragma once

/// \file rng.hpp
/// Random-number generation for the simulators.
///
/// We implement xoshiro256** (Blackman & Vigna) seeded through splitmix64
/// instead of relying on std::mt19937_64 + std::*_distribution because
/// the standard distributions are implementation-defined: identical seeds
/// produce different streams across standard libraries. The simulator's
/// regression tests pin exact sample sequences, so the whole stack must
/// be deterministic.
///
/// Rng satisfies std::uniform_random_bit_generator, so it can still be
/// plugged into <random> utilities when bit-exactness is not needed.

#include <cstdint>
#include <limits>

namespace hmcs::simcore {

/// splitmix64: used to expand a single 64-bit seed into engine state.
/// Passes into every state expansion path so that seeds 0, 1, 2, ... give
/// well-decorrelated streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator with 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9b1f8d52c3a0e17dULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound) using Lemire's multiply-shift
  /// rejection method (unbiased). bound must be > 0.
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed sample with the given mean (inverse-CDF
  /// on a (0,1] uniform so the result is always finite). mean must be > 0.
  double exponential(double mean);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Derives an independent stream (for per-component sub-generators).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace hmcs::simcore
