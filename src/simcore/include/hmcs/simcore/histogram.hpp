#pragma once

/// \file histogram.hpp
/// Fixed-width histogram with under/overflow bins and linear-interpolated
/// quantile estimation. Used to inspect latency distributions beyond the
/// mean the paper reports (tail behaviour of blocking networks).

#include <cstdint>
#include <string>
#include <vector>

namespace hmcs::simcore {

class Histogram {
 public:
  /// Bins [lo, hi) into `num_bins` equal-width buckets; samples below lo
  /// or at/above hi land in dedicated underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double x);

  std::uint64_t count() const { return count_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::size_t num_bins() const { return bins_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return bins_.at(i); }
  double bin_lower(std::size_t i) const;
  double bin_upper(std::size_t i) const;

  /// Estimated quantile q in [0, 1] by linear interpolation within the
  /// containing bin. Underflow clamps to lo, overflow to hi.
  double quantile(double q) const;

  /// Compact textual rendering (one line per non-empty bin with a bar).
  std::string render(std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace hmcs::simcore
