#pragma once

/// \file distributions.hpp
/// Service and arrival processes beyond the exponential: cv^2-matched
/// service samplers (deterministic, mixed Erlang, balanced-means H2) and
/// a 2-state Markov-modulated Poisson arrival process. These realise the
/// workload scenarios the analytic layer approximates with Allen-Cunneen
/// (hmcs/analytic/workload.hpp), so the DES can cross-validate them.
///
/// All samplers draw from the deterministic Rng (rng.hpp); regression
/// tests pin exact sequences, so the draw pattern per variate is part of
/// the contract: variate_cv2 at cv2 == 1 makes exactly one exponential
/// draw, bit-identical to calling rng.exponential(mean) directly.

#include <cstdint>

#include "hmcs/simcore/rng.hpp"

namespace hmcs::simcore {

/// Draws a non-negative variate with the given mean and squared
/// coefficient of variation:
///
///   cv2 == 0      deterministic (no draw)
///   0 < cv2 < 1   Tijms' mixed Erlang(k-1, k) moment match
///   cv2 == 1      exponential — exactly one rng.exponential(mean) draw
///   cv2 > 1       balanced-means two-phase hyperexponential (H2)
///
/// mean must be >= 0 (a zero mean returns 0 without drawing, matching
/// the zero-service fast path in the station samplers); cv2 must be >= 0.
double variate_cv2(Rng& rng, double mean, double cv2);

/// Poisson(mean) sample via Knuth's product-of-uniforms method. Exact
/// for the small means it is used with (expected failures during one
/// service time, mean = S/mtbf << 1); cost is O(mean) draws.
std::uint64_t poisson(Rng& rng, double mean);

/// Two-state Markov-modulated Poisson process: arrivals are Poisson at
/// `base_rate` in state 0 and `burst_rate` in state 1; the modulator
/// leaves state i at rate `leave[i]`. Sampled by competing exponentials,
/// so each interarrival makes one exponential + one bernoulli draw per
/// dwell segment. Per-source modulator state lives in this object.
class Mmpp2 {
 public:
  /// Rates are per microsecond; arrival rates may be 0, leave rates must
  /// be > 0 (the analytic resolver guarantees both).
  Mmpp2(double base_rate, double burst_rate, double leave_base,
        double leave_burst)
      : rate_{base_rate, burst_rate}, leave_{leave_base, leave_burst} {}

  /// Starts the modulator in the burst state (used to seed sources from
  /// the stationary distribution: bernoulli(burst_fraction)).
  void set_bursty(bool bursty) { state_ = bursty ? 1 : 0; }
  bool bursty() const { return state_ == 1; }

  /// Time to the next arrival from now, advancing the modulator through
  /// however many state changes occur first.
  double next_interarrival_us(Rng& rng);

 private:
  double rate_[2];
  double leave_[2];
  int state_ = 0;
};

}  // namespace hmcs::simcore
