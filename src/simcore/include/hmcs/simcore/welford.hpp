#pragma once

/// \file welford.hpp
/// Welford's online algorithm for mean and variance. Numerically stable
/// for long simulation runs (summing 10^7 latencies naively loses digits
/// once the running sum dwarfs individual samples).

#include <cmath>
#include <cstdint>

#include "hmcs/util/error.hpp"

namespace hmcs::simcore {

class Welford {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Merges another accumulator (Chan et al. parallel combination).
  void merge(const Welford& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
  }

  std::uint64_t count() const { return count_; }

  double mean() const {
    require(count_ > 0, "Welford::mean: no samples");
    return mean_;
  }

  /// Population variance (divides by n).
  double variance_population() const {
    require(count_ > 0, "Welford::variance: no samples");
    return m2_ / static_cast<double>(count_);
  }

  /// Sample variance (divides by n-1).
  double variance_sample() const {
    require(count_ > 1, "Welford::variance_sample: needs >= 2 samples");
    return m2_ / static_cast<double>(count_ - 1);
  }

  double stddev_sample() const { return std::sqrt(variance_sample()); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace hmcs::simcore
