#pragma once

/// \file ring_buffer.hpp
/// A growable single-ended FIFO over one flat std::vector — the engine's
/// replacement for std::deque in per-station job queues.
///
/// libstdc++'s deque allocates a 512-byte chunk the moment the first
/// element arrives and walks a map of chunk pointers on every access; a
/// power-of-two ring buffer keeps the whole queue in one contiguous block,
/// indexes with a mask, and only ever allocates when the population
/// exceeds the previous high-water mark. T must be cheaply movable and
/// default-constructible (the slots of a fresh capacity block are
/// value-initialized).

#include <cstddef>
#include <utility>
#include <vector>

namespace hmcs::simcore {

template <class T>
class RingBuffer {
 public:
  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }
  std::size_t capacity() const noexcept { return buf_.size(); }

  void push_back(T value) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  T& front() noexcept { return buf_[head_]; }
  const T& front() const noexcept { return buf_[head_]; }

  /// Precondition: !empty(). The vacated slot keeps a moved-from T.
  void pop_front() noexcept {
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() noexcept {
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t next_capacity = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(next_capacity);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = next_capacity - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace hmcs::simcore
