#pragma once

/// \file inline_function.hpp
/// A move-only callable wrapper with fixed inline storage — the engine's
/// replacement for std::function on the discrete-event hot path.
///
/// std::function type-erases through a heap allocation whenever the
/// callable outgrows its (implementation-defined, ~16 byte) small-buffer;
/// every scheduled event in the old engine paid that allocation. An
/// InlineFunction instead embeds the callable in a fixed-capacity buffer
/// inside the object itself and dispatches through two raw function
/// pointers (invoke + lifecycle manager). Callables that do not fit are
/// rejected at compile time, so the "did this allocate?" question has a
/// static answer: never.
///
/// Trivially copyable callables (the common case: lambdas capturing
/// pointers, indices, and doubles) get a null manager and are relocated
/// with memcpy. Non-trivial callables (e.g. a test capturing a
/// std::function) still work — they are moved/destroyed through the
/// manager — but stay allocation-free as long as they fit the buffer.

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hmcs::simcore {

inline constexpr std::size_t kInlineFunctionCapacity = 48;

template <class Signature, std::size_t Capacity = kInlineFunctionCapacity>
class InlineFunction;

template <class R, class... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= Capacity,
                  "callable too large for InlineFunction inline storage; "
                  "shrink the capture or raise the capacity parameter");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "callable is over-aligned for InlineFunction storage");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    invoke_ = [](void* storage, Args... args) -> R {
      return (*std::launder(reinterpret_cast<D*>(storage)))(
          std::forward<Args>(args)...);
    };
    if constexpr (!std::is_trivially_copyable_v<D> ||
                  !std::is_trivially_destructible_v<D>) {
      manage_ = [](Op op, void* self, void* other) {
        D* target = std::launder(reinterpret_cast<D*>(self));
        if (op == Op::kRelocateFrom) {
          D* source = std::launder(reinterpret_cast<D*>(other));
          ::new (self) D(std::move(*source));
          source->~D();
        } else {
          target->~D();
        }
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroys the held callable (if any); *this becomes empty.
  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  enum class Op : unsigned char { kRelocateFrom, kDestroy };
  using Invoke = R (*)(void*, Args...);
  using Manage = void (*)(Op, void*, void*);

  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) {
      manage_(Op::kRelocateFrom, storage_, other.storage_);
    } else if (invoke_ != nullptr) {
      std::memcpy(storage_, other.storage_, Capacity);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace hmcs::simcore
