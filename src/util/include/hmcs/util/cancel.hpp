#pragma once

/// \file cancel.hpp
/// Cooperative cancellation: a token combining an externally settable
/// cancel flag with an optional wall-clock deadline, checkable from any
/// thread. Long-running loops poll it on their rare path (every few
/// thousand events) and unwind with hmcs::Cancelled or
/// hmcs::DeadlineExceeded — the two outcomes are distinct because the
/// sweep runner treats them differently (skip-and-resume vs timed-out).
///
/// Tokens chain: a per-cell token constructed with a parent observes
/// the parent's cancel flag too, so one SIGINT-driven sweep token stops
/// every in-flight cell without the runner having to reach into worker
/// stacks. cancel() is a single relaxed atomic store and is async-
/// signal-safe; deadline reads cost one steady_clock::now(), which is
/// why callers poll on their rare path only.

#include <atomic>
#include <chrono>

#include "hmcs/util/error.hpp"

namespace hmcs::util {

class CancelToken {
 public:
  CancelToken() = default;
  /// A child token: cancelled() is true when either this token or
  /// `parent` was cancelled. `parent` must outlive this token.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Async-signal-safe (one atomic store).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }

  /// Arms the wall-clock deadline `budget_ms` milliseconds from now;
  /// <= 0 disarms it. Not thread-safe against concurrent check() — arm
  /// the token before handing it to the worker.
  void set_deadline_after_ms(double budget_ms) {
    if (budget_ms <= 0.0) {
      has_deadline_ = false;
      return;
    }
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(budget_ms));
  }

  bool deadline_passed() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// True when the work should stop for either reason.
  bool expired() const { return cancelled() || deadline_passed(); }

  /// Polling helper for cooperative loops: throws hmcs::Cancelled when
  /// the flag (or a parent's) is set, hmcs::DeadlineExceeded when the
  /// deadline passed, otherwise returns. `who` names the loop in the
  /// exception message.
  void check(const char* who) const {
    if (cancelled()) {
      throw hmcs::Cancelled(std::string(who) + ": cancelled");
    }
    if (deadline_passed()) {
      throw hmcs::DeadlineExceeded(std::string(who) +
                                   ": wall-clock deadline exceeded");
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  const CancelToken* parent_ = nullptr;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace hmcs::util
