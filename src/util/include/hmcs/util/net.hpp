#pragma once

/// \file net.hpp
/// EINTR- and partial-transfer-safe wrappers over the blocking socket
/// calls shared by the serve tier's TCP server and its clients
/// (hmcs_loadgen, hmcs_top). POSIX allows send()/recv() to transfer
/// fewer bytes than asked and to fail spuriously with EINTR when a
/// signal lands; every call site must loop, and a call site that
/// doesn't is a latent bug that only fires under signal load (exactly
/// when a drain is in progress). Centralising the loops makes the
/// hardening auditable in one place.

#include <cstddef>
#include <string_view>

#include <sys/types.h>

namespace hmcs::util {

/// Writes all of `data` to `fd` (MSG_NOSIGNAL; a dead peer yields an
/// error return, never SIGPIPE). Retries EINTR and short writes.
/// Returns true when every byte was accepted by the kernel, false on
/// any other error (errno is preserved from the failing call).
bool send_all(int fd, std::string_view data);

/// Reads up to `capacity` bytes into `buffer`, retrying EINTR.
/// Returns the byte count (> 0), 0 on orderly peer shutdown, or -1 on
/// error (errno preserved; EAGAIN/EWOULDBLOCK are returned as -1 and
/// left for the caller's poll loop to interpret).
ssize_t recv_some(int fd, char* buffer, std::size_t capacity);

}  // namespace hmcs::util
