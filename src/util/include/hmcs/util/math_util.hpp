#pragma once

/// \file math_util.hpp
/// Small integer/floating-point helpers shared by the topology and
/// analytic libraries (ceiling division, ceiling logarithms, comparisons
/// with tolerance).

#include <cmath>
#include <cstdint>
#include <limits>

#include "hmcs/util/error.hpp"

namespace hmcs {

/// Ceiling of a/b. Overflow-safe (never computes a + b). Returns 0 when
/// b == 0 so degenerate configurations surface as obviously-wrong sizes
/// rather than UB.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  if (b == 0 || a == 0) return 0;
  return (a - 1) / b + 1;
}

/// True if v is a power of two (v > 0).
constexpr bool is_power_of_two(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// ceil(log(x)/log(base)) computed purely with integer arithmetic:
/// the smallest e >= 0 such that base^e >= x. Requires base >= 2, x >= 1.
inline std::uint32_t ceil_log(std::uint64_t base, std::uint64_t x) {
  require(base >= 2, "ceil_log: base must be >= 2");
  require(x >= 1, "ceil_log: x must be >= 1");
  std::uint32_t e = 0;
  std::uint64_t p = 1;
  while (p < x) {
    // Guard against overflow before multiplying.
    if (p > std::numeric_limits<std::uint64_t>::max() / base) {
      return e + 1;
    }
    p *= base;
    ++e;
  }
  return e;
}

/// Relative closeness with absolute-floor tolerance; symmetric in a, b.
inline bool approx_equal(double a, double b, double rel_tol = 1e-9,
                         double abs_tol = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= rel_tol * scale;
}

/// Relative error of `measured` against `expected` (0 when both are 0).
inline double relative_error(double measured, double expected) {
  if (expected == 0.0) return measured == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::fabs(measured - expected) / std::fabs(expected);
}

}  // namespace hmcs
