#pragma once

/// \file keyvalue.hpp
/// Minimal configuration-file format: one `key = value` per line, `#`
/// comments, blank lines ignored. Keys are unique; order is preserved
/// for error reporting. This is deliberately not INI (no sections) —
/// hmcs configs are flat.

#include <optional>
#include <string>
#include <vector>

namespace hmcs {

class KeyValueFile {
 public:
  /// Parses text; throws ConfigError with a line number on syntax errors
  /// or duplicate keys.
  static KeyValueFile parse(const std::string& text);

  /// Reads and parses a file; throws ConfigError if unreadable.
  static KeyValueFile load(const std::string& path);

  bool has(const std::string& key) const;
  /// Value lookup; throws ConfigError naming the key when missing.
  const std::string& get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key) const;
  long long get_int(const std::string& key) const;

  /// Keys in file order.
  const std::vector<std::string>& keys() const { return order_; }

  /// Keys present in the file but not in `known` — for strict loaders
  /// that reject typos.
  std::vector<std::string> unknown_keys(
      const std::vector<std::string>& known) const;

 private:
  std::vector<std::string> order_;
  std::vector<std::string> values_;

  std::optional<std::size_t> index_of(const std::string& key) const;
};

}  // namespace hmcs
