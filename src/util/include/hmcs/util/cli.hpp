#pragma once

/// \file cli.hpp
/// A small command-line option parser for the example and benchmark
/// binaries. Supports `--name value`, `--name=value`, and boolean flags
/// (`--verbose`). Unknown options are an error so typos in experiment
/// scripts fail loudly instead of silently using defaults.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hmcs {

class CliParser {
 public:
  /// `description` is printed by help_text() above the option list.
  explicit CliParser(std::string program, std::string description);

  /// Registers an option. `help` appears in help_text(); `default_value`
  /// (if any) is reported there too and returned when unset.
  void add_option(const std::string& name, const std::string& help,
                  std::optional<std::string> default_value = std::nullopt);
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Throws ConfigError on unknown options, missing values,
  /// or malformed input. Returns false if `--help` was requested (caller
  /// should print help_text() and exit 0).
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  long long get_int(const std::string& name) const;
  /// Like get_int but rejects negative values, so counts and seeds fail
  /// loudly instead of wrapping through an unsigned cast.
  unsigned long long get_uint(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Positional arguments left after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string help_text() const;

 private:
  struct Option {
    std::string help;
    std::optional<std::string> default_value;
    bool is_flag = false;
  };

  const Option& find_declared(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<std::string> declaration_order_;
  std::map<std::string, Option> declared_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hmcs
