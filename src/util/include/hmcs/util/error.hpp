#pragma once

/// \file error.hpp
/// Error types and precondition checking used across all hmcs libraries.
///
/// The library reports user-facing configuration problems with
/// hmcs::ConfigError and internal invariant violations with
/// hmcs::LogicError. HMCS_REQUIRE is used at public API boundaries where
/// the failure is attributable to the caller's input; it always throws
/// (never compiled out) because every caller of this library is a
/// modelling tool where a silently wrong configuration is worse than an
/// exception.

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hmcs {

/// Base class for all exceptions thrown by the hmcs libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An invalid user-supplied configuration (bad parameter values,
/// inconsistent system description, unstable queueing inputs, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated; indicates a bug in hmcs itself.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// A cooperative wall-clock deadline expired (util::CancelToken). The
/// sweep runner maps this to CellStatus::kTimedOut rather than a
/// failure: the configuration may be fine, it just did not finish in
/// the time budget.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// Execution was cancelled from outside (SIGINT, a parent token). The
/// interrupted work is incomplete, not wrong; the sweep runner leaves
/// such cells kSkipped so a resumed run re-executes them.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_config_error(
    std::string_view message, const std::source_location& loc) {
  throw ConfigError(std::string(loc.file_name()) + ":" +
                    std::to_string(loc.line()) + ": " + std::string(message));
}

[[noreturn]] inline void throw_logic_error(
    std::string_view message, const std::source_location& loc) {
  throw LogicError(std::string(loc.file_name()) + ":" +
                   std::to_string(loc.line()) + ": " + std::string(message));
}

}  // namespace detail

/// Validates a caller-supplied precondition; throws ConfigError on failure.
inline void require(bool condition, std::string_view message,
                    const std::source_location& loc =
                        std::source_location::current()) {
  if (!condition) detail::throw_config_error(message, loc);
}

/// Checks an internal invariant; throws LogicError on failure.
inline void ensure(bool condition, std::string_view message,
                   const std::source_location& loc =
                       std::source_location::current()) {
  if (!condition) detail::throw_logic_error(message, loc);
}

}  // namespace hmcs
