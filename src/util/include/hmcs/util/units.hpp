#pragma once

/// \file units.hpp
/// Unit conventions and conversion helpers.
///
/// All quantities inside hmcs use a single coherent unit system chosen so
/// the paper's Table 2 values are directly usable:
///
///   time       : microseconds (us)
///   bandwidth  : bytes per microsecond  — numerically equal to MB/s,
///                since 1 MB/s = 1e6 bytes / 1e6 us = 1 byte/us
///   rate       : messages per microsecond
///   size       : bytes
///
/// Helper functions convert between human-facing units (ms, seconds,
/// msg/s) and the internal ones. They are constexpr so model parameters
/// can be compile-time constants.

namespace hmcs::units {

inline constexpr double kUsPerMs = 1e3;
inline constexpr double kUsPerSecond = 1e6;

/// Milliseconds -> microseconds.
constexpr double ms_to_us(double ms) { return ms * kUsPerMs; }

/// Microseconds -> milliseconds.
constexpr double us_to_ms(double us) { return us / kUsPerMs; }

/// Seconds -> microseconds.
constexpr double s_to_us(double s) { return s * kUsPerSecond; }

/// Microseconds -> seconds.
constexpr double us_to_s(double us) { return us / kUsPerSecond; }

/// Megabytes per second -> bytes per microsecond (identity by design,
/// kept explicit so call sites document their source unit).
constexpr double mbps_to_bytes_per_us(double mbps) { return mbps; }

/// Messages per second -> messages per microsecond.
constexpr double per_s_to_per_us(double per_s) { return per_s / kUsPerSecond; }

/// Messages per millisecond -> messages per microsecond.
constexpr double per_ms_to_per_us(double per_ms) { return per_ms / kUsPerMs; }

/// Messages per microsecond -> messages per second.
constexpr double per_us_to_per_s(double per_us) { return per_us * kUsPerSecond; }

}  // namespace hmcs::units
