#pragma once

/// \file json.hpp
/// A minimal JSON writer (no parsing, no DOM): enough to serialise
/// configurations and results for downstream tooling without pulling in
/// a dependency. Values are emitted in insertion order; strings are
/// escaped per RFC 8259; non-finite doubles are emitted as null (JSON
/// has no inf/nan).
///
///   JsonWriter json;
///   json.begin_object();
///   json.key("clusters").value(8);
///   json.key("latency_ms").value(31.4);
///   json.key("series").begin_array().value(1.0).value(2.0).end_array();
///   json.end_object();
///   std::string text = json.str();

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hmcs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object and followed by
  /// exactly one value (or container).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int32_t number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(std::uint32_t number) { return value(static_cast<std::uint64_t>(number)); }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Finished document. Throws LogicError if containers are unbalanced.
  std::string str() const;

  static std::string escape(std::string_view text);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();
  JsonWriter& emit(const std::string& text);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool expecting_value_ = false;  // a key was just written
  bool complete_ = false;
};

}  // namespace hmcs
