#pragma once

/// \file json.hpp
/// A minimal JSON writer plus a small read-back parser: enough to
/// serialise configurations and results for downstream tooling — and to
/// load them back for round-trip tests and report post-processing —
/// without pulling in a dependency. Values are emitted in insertion
/// order; strings are escaped per RFC 8259; non-finite doubles are
/// emitted as null (JSON has no inf/nan). The parser accepts exactly
/// RFC 8259 documents (no comments, no trailing commas) and keeps
/// object members in document order.
///
///   JsonWriter json;
///   json.begin_object();
///   json.key("clusters").value(8);
///   json.key("latency_ms").value(31.4);
///   json.key("series").begin_array().value(1.0).value(2.0).end_array();
///   json.end_object();
///   std::string text = json.str();

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hmcs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object and followed by
  /// exactly one value (or container).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int32_t number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(std::uint32_t number) { return value(static_cast<std::uint64_t>(number)); }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Finished document. Throws LogicError if containers are unbalanced.
  std::string str() const;

  static std::string escape(std::string_view text);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();
  JsonWriter& emit(const std::string& text);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool expecting_value_ = false;  // a key was just written
  bool complete_ = false;
};

/// A parsed JSON value. Deliberately a plain open struct (no variant
/// gymnastics): exactly one of the payload members is meaningful per
/// `type`, and the typed accessors throw hmcs::ConfigError on kind
/// mismatch so test assertions fail with a message instead of reading
/// a default.
struct JsonValue {
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;  ///< array elements
  /// Object members in document order (duplicate keys are rejected).
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Object member by key, or nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Object member by key; throws when absent.
  const JsonValue& at(std::string_view key) const;
  /// Array element by index; throws when out of range.
  const JsonValue& at(std::size_t index) const;
  /// Array/object element count; 0 for scalars.
  std::size_t size() const;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Throws hmcs::ConfigError with an offset
/// on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace hmcs
