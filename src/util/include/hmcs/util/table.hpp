#pragma once

/// \file table.hpp
/// A minimal ASCII table printer used by the benchmark harnesses and
/// examples to emit paper-style result tables.
///
/// Usage:
///   Table t({"C", "Analysis (ms)", "Simulation (ms)"});
///   t.add_row({"4", "1.234", "1.301"});
///   std::cout << t.render();

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hmcs {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are
  /// headers (throws ConfigError otherwise).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats numeric cells with the given precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return headers_.size(); }

  /// Renders the table with a header separator and right-aligned cells.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace hmcs
