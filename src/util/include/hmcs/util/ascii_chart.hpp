#pragma once

/// \file ascii_chart.hpp
/// Terminal line-chart renderer: the figure harnesses echo the paper's
/// plots directly in the bench output so the curve shape (knee at C=16,
/// blocking blow-up, M=512 under M=1024) is visible without replotting
/// the CSVs.
///
///   AsciiChart chart(64, 16);
///   chart.add_series("analysis", {1.0, 2.0, ...}, '*');
///   chart.add_series("simulation", {1.1, 2.1, ...}, 'o');
///   std::cout << chart.render({"1", "2", "4", ...}, "latency (ms)");

#include <cstdint>
#include <string>
#include <vector>

namespace hmcs {

class AsciiChart {
 public:
  /// Plot area of `width` x `height` characters (axes/labels extra).
  AsciiChart(std::size_t width, std::size_t height);

  /// Adds a series; all series must have equal point counts (checked at
  /// render). Points are placed at equally spaced x positions.
  void add_series(std::string label, std::vector<double> values, char marker);

  /// Renders with a y axis scaled [0, max], sparse x tick labels, and a
  /// legend line. Colliding markers from different series print '#'.
  std::string render(const std::vector<std::string>& x_labels,
                     const std::string& y_label) const;

 private:
  struct Series {
    std::string label;
    std::vector<double> values;
    char marker;
  };

  std::size_t width_;
  std::size_t height_;
  std::vector<Series> series_;
};

}  // namespace hmcs
