#pragma once

/// \file string_util.hpp
/// String formatting helpers for the reporting layer (tables, CSV, CLI).

#include <string>
#include <string_view>
#include <vector>

namespace hmcs {

/// Formats a double with `precision` digits after the decimal point.
std::string format_fixed(double value, int precision);

/// Formats a double compactly: fixed notation with trailing zeros
/// trimmed, switching to scientific for very small/large magnitudes.
std::string format_compact(double value, int significant_digits = 6);

/// Left/right pads `s` with spaces to `width` characters. Strings that
/// are already wider are returned unchanged.
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double/integer, throwing hmcs::ConfigError with the offending
/// text on failure (std::stod's exceptions lose that context).
double parse_double(std::string_view s);
long long parse_int(std::string_view s);

}  // namespace hmcs
