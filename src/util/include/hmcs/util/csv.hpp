#pragma once

/// \file csv.hpp
/// CSV writer used by the benchmark harnesses so every figure's series
/// can be re-plotted outside the repo (the paper's figures are line
/// charts; we emit the points as CSV alongside the ASCII table).

#include <string>
#include <vector>

namespace hmcs {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);
  void add_numeric_row(const std::vector<double>& cells);

  /// Serialises with RFC-4180-style quoting of cells containing
  /// commas/quotes/newlines.
  std::string to_string() const;

  /// Writes to `path`, throwing hmcs::Error if the file cannot be written.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hmcs
