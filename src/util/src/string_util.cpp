#include "hmcs/util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "hmcs/util/error.hpp"

namespace hmcs {

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_compact(double value, int significant_digits) {
  if (value == 0.0) return "0";
  const double mag = std::fabs(value);
  char buf[64];
  if (mag >= 1e9 || mag < 1e-4) {
    std::snprintf(buf, sizeof(buf), "%.*g", significant_digits, value);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.*g", significant_digits, value);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return std::string(s.substr(begin, end - begin));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view s) {
  const std::string t = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  require(ec == std::errc() && ptr == t.data() + t.size(),
          "not a valid number: '" + t + "'");
  return value;
}

long long parse_int(std::string_view s) {
  const std::string t = trim(s);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  require(ec == std::errc() && ptr == t.data() + t.size(),
          "not a valid integer: '" + t + "'");
  return value;
}

}  // namespace hmcs
