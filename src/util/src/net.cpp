#include "hmcs/util/net.hpp"

#include <cerrno>

#include <sys/socket.h>

namespace hmcs::util {

bool send_all(int fd, std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t sent = ::send(fd, data.data() + written,
                                data.size() - written, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(sent);
  }
  return true;
}

ssize_t recv_some(int fd, char* buffer, std::size_t capacity) {
  for (;;) {
    const ssize_t received = ::recv(fd, buffer, capacity, 0);
    if (received < 0 && errno == EINTR) continue;
    return received;
  }
}

}  // namespace hmcs::util
