#include "hmcs/util/keyvalue.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs {

KeyValueFile KeyValueFile::parse(const std::string& text) {
  KeyValueFile out;
  std::size_t line_number = 0;
  for (const std::string& raw_line : split(text, '\n')) {
    ++line_number;
    std::string line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    require(eq != std::string::npos,
            "config line " + std::to_string(line_number) +
                ": expected 'key = value', got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    require(!key.empty(), "config line " + std::to_string(line_number) +
                              ": empty key");
    require(!out.index_of(key).has_value(),
            "config line " + std::to_string(line_number) +
                ": duplicate key '" + key + "'");
    out.order_.push_back(key);
    out.values_.push_back(value);
  }
  return out;
}

KeyValueFile KeyValueFile::load(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "config: cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::optional<std::size_t> KeyValueFile::index_of(const std::string& key) const {
  const auto it = std::find(order_.begin(), order_.end(), key);
  if (it == order_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - order_.begin());
}

bool KeyValueFile::has(const std::string& key) const {
  return index_of(key).has_value();
}

const std::string& KeyValueFile::get(const std::string& key) const {
  const auto index = index_of(key);
  require(index.has_value(), "config: missing key '" + key + "'");
  return values_[*index];
}

std::string KeyValueFile::get_or(const std::string& key,
                                 const std::string& fallback) const {
  const auto index = index_of(key);
  return index ? values_[*index] : fallback;
}

double KeyValueFile::get_double(const std::string& key) const {
  return parse_double(get(key));
}

long long KeyValueFile::get_int(const std::string& key) const {
  return parse_int(get(key));
}

std::vector<std::string> KeyValueFile::unknown_keys(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const std::string& key : order_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

}  // namespace hmcs
