#include "hmcs/util/csv.hpp"

#include <fstream>
#include <sstream>

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs {

namespace {

std::string escape_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "CsvWriter: needs at least one column");
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  require(cells.size() == headers_.size(),
          "CsvWriter: row width does not match header width");
  rows_.push_back(cells);
}

void CsvWriter::add_numeric_row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(format_compact(v, 9));
  add_row(formatted);
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << escape_cell(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "CsvWriter: cannot open '" + path + "' for writing");
  out << to_string();
  require(out.good(), "CsvWriter: failed writing '" + path + "'");
}

}  // namespace hmcs
