#include "hmcs/util/json.hpp"

#include <cmath>
#include <cstdio>

#include "hmcs/util/error.hpp"

namespace hmcs {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  ensure(!complete_, "JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Frame::kObject) {
    ensure(expecting_value_, "JsonWriter: object value requires key() first");
    expecting_value_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
}

JsonWriter& JsonWriter::emit(const std::string& text) {
  before_value();
  out_ += text;
  if (stack_.empty()) {
    complete_ = true;
  } else {
    has_items_.back() = true;
  }
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  if (!stack_.empty()) has_items_.back() = true;
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  if (!stack_.empty()) has_items_.back() = true;
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ensure(!stack_.empty() && stack_.back() == Frame::kObject,
         "JsonWriter: end_object without open object");
  ensure(!expecting_value_, "JsonWriter: dangling key");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) complete_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ensure(!stack_.empty() && stack_.back() == Frame::kArray,
         "JsonWriter: end_array without open array");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) complete_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  ensure(!stack_.empty() && stack_.back() == Frame::kObject,
         "JsonWriter: key() outside an object");
  ensure(!expecting_value_, "JsonWriter: two keys in a row");
  if (has_items_.back()) out_ += ',';
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  return emit('"' + escape(text) + '"');
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  return emit(buf);
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  return emit(std::to_string(number));
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  return emit(std::to_string(number));
}

JsonWriter& JsonWriter::value(bool flag) { return emit(flag ? "true" : "false"); }

JsonWriter& JsonWriter::null() { return emit("null"); }

std::string JsonWriter::str() const {
  ensure(stack_.empty() && complete_,
         "JsonWriter: document incomplete (unbalanced containers)");
  return out_;
}

}  // namespace hmcs
