#include "hmcs/util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "hmcs/util/error.hpp"

namespace hmcs {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  ensure(!complete_, "JsonWriter: document already complete");
  if (stack_.empty()) return;  // root value
  if (stack_.back() == Frame::kObject) {
    ensure(expecting_value_, "JsonWriter: object value requires key() first");
    expecting_value_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
}

JsonWriter& JsonWriter::emit(const std::string& text) {
  before_value();
  out_ += text;
  if (stack_.empty()) {
    complete_ = true;
  } else {
    has_items_.back() = true;
  }
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  if (!stack_.empty()) has_items_.back() = true;
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  if (!stack_.empty()) has_items_.back() = true;
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ensure(!stack_.empty() && stack_.back() == Frame::kObject,
         "JsonWriter: end_object without open object");
  ensure(!expecting_value_, "JsonWriter: dangling key");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) complete_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ensure(!stack_.empty() && stack_.back() == Frame::kArray,
         "JsonWriter: end_array without open array");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) complete_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  ensure(!stack_.empty() && stack_.back() == Frame::kObject,
         "JsonWriter: key() outside an object");
  ensure(!expecting_value_, "JsonWriter: two keys in a row");
  if (has_items_.back()) out_ += ',';
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  return emit('"' + escape(text) + '"');
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  return emit(buf);
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  return emit(std::to_string(number));
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  return emit(std::to_string(number));
}

JsonWriter& JsonWriter::value(bool flag) { return emit(flag ? "true" : "false"); }

JsonWriter& JsonWriter::null() { return emit("null"); }

std::string JsonWriter::str() const {
  ensure(stack_.empty() && complete_,
         "JsonWriter: document incomplete (unbalanced containers)");
  return out_;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

bool JsonValue::as_bool() const {
  require(is_bool(), "JsonValue: not a boolean");
  return bool_value;
}

double JsonValue::as_number() const {
  require(is_number(), "JsonValue: not a number");
  return number_value;
}

const std::string& JsonValue::as_string() const {
  require(is_string(), "JsonValue: not a string");
  return string_value;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  require(value != nullptr,
          "JsonValue: missing object member '" + std::string(key) + "'");
  return *value;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  require(is_array(), "JsonValue: not an array");
  require(index < items.size(), "JsonValue: array index out of range");
  return items[index];
}

std::size_t JsonValue::size() const {
  if (is_array()) return items.size();
  if (is_object()) return members.size();
  return 0;
}

namespace {

/// Recursive-descent RFC 8259 parser over a string_view with an explicit
/// cursor; errors report the byte offset.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    check(pos_ == text_.size(), "trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(std::string_view message) const {
    require(false, "parse_json: " + std::string(message) + " at offset " +
                       std::to_string(pos_));
    // require(false, ...) always throws; unreachable.
    throw LogicError("parse_json: unreachable");
  }
  void check(bool condition, std::string_view message) const {
    if (!condition) fail(message);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const {
    check(!at_end(), "unexpected end of input");
    return text_[pos_];
  }
  char take() {
    const char ch = peek();
    ++pos_;
    return ch;
  }
  void skip_whitespace() {
    while (!at_end()) {
      const char ch = text_[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }
  void expect_literal(std::string_view literal) {
    check(text_.substr(pos_, literal.size()) == literal,
          "invalid literal");
    pos_ += literal.size();
  }

  JsonValue parse_value() {
    check(depth_ < kMaxDepth, "nesting too deep");
    skip_whitespace();
    const char ch = peek();
    switch (ch) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue value;
        value.type = JsonValue::Type::kString;
        value.string_value = parse_string();
        return value;
      }
      case 't': {
        expect_literal("true");
        JsonValue value;
        value.type = JsonValue::Type::kBool;
        value.bool_value = true;
        return value;
      }
      case 'f': {
        expect_literal("false");
        JsonValue value;
        value.type = JsonValue::Type::kBool;
        return value;
      }
      case 'n':
        expect_literal("null");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    ++depth_;
    take();  // '{'
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    skip_whitespace();
    if (peek() == '}') {
      take();
      --depth_;
      return value;
    }
    for (;;) {
      skip_whitespace();
      check(peek() == '"', "expected object key");
      std::string key = parse_string();
      check(value.find(key) == nullptr, "duplicate object key");
      skip_whitespace();
      check(take() == ':', "expected ':' after object key");
      value.members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char next = take();
      if (next == '}') break;
      check(next == ',', "expected ',' or '}' in object");
    }
    --depth_;
    return value;
  }

  JsonValue parse_array() {
    ++depth_;
    take();  // '['
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    skip_whitespace();
    if (peek() == ']') {
      take();
      --depth_;
      return value;
    }
    for (;;) {
      value.items.push_back(parse_value());
      skip_whitespace();
      const char next = take();
      if (next == ']') break;
      check(next == ',', "expected ',' or ']' in array");
    }
    --depth_;
    return value;
  }

  std::string parse_string() {
    check(take() == '"', "expected string");
    std::string out;
    for (;;) {
      const char ch = take();
      if (ch == '"') return out;
      check(static_cast<unsigned char>(ch) >= 0x20,
            "unescaped control character in string");
      if (ch != '\\') {
        out += ch;
        continue;
      }
      const char escape = take();
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = take();
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences; good enough for the metric
          // and trace names this parser reads back).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && text_[pos_] == '-') ++pos_;
    check(!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9',
          "invalid number");
    if (text_[pos_] == '0') {
      ++pos_;  // RFC 8259: no leading zeros — "0" ends the integer part
    } else {
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!at_end() && text_[pos_] == '.') {
      ++pos_;
      check(!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "digit required after decimal point");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      check(!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "digit required in exponent");
      while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    // strtod reports overflow via ERANGE + ±HUGE_VAL; accepting it would
    // silently turn "1e999" into inf and poison every config or journal
    // that round-trips through this parser. Underflow (ERANGE with a
    // denormal/zero result) is a faithful nearest representation and is
    // allowed. The whole token must be consumed — the grammar above
    // guarantees it, but a strtod disagreement means a parser bug, not
    // a caller error.
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    check(end == token.c_str() + token.size(), "invalid number");
    if (errno == ERANGE &&
        (parsed == HUGE_VAL || parsed == -HUGE_VAL)) {
      pos_ = start;  // report the error at the start of the number
      fail("number out of range ('" + token + "')");
    }
    value.number_value = parsed;
    return value;
  }

  static constexpr std::size_t kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace hmcs
