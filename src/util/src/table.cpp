#include "hmcs/util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "Table: row width does not match header width");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(format_fixed(v, precision));
  add_row(std::move(formatted));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << pad_left(row[c], widths[c]);
    }
    os << " |\n";
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.render();
}

}  // namespace hmcs
