#include "hmcs/util/cli.hpp"

#include <sstream>

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name, const std::string& help,
                           std::optional<std::string> default_value) {
  require(!declared_.contains(name), "CLI: duplicate option --" + name);
  declared_[name] = Option{help, std::move(default_value), false};
  declaration_order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  require(!declared_.contains(name), "CLI: duplicate flag --" + name);
  declared_[name] = Option{help, std::nullopt, true};
  declaration_order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    const bool has_inline_value = eq != std::string_view::npos;
    const std::string name(has_inline_value ? body.substr(0, eq) : body);

    const auto it = declared_.find(name);
    require(it != declared_.end(), "CLI: unknown option --" + name);
    if (it->second.is_flag) {
      require(!has_inline_value, "CLI: flag --" + name + " takes no value");
      values_.insert_or_assign(name, std::string("1"));
      continue;
    }
    std::string value;
    if (has_inline_value) {
      value = std::string(body.substr(eq + 1));
    } else {
      require(i + 1 < argc, "CLI: option --" + name + " expects a value");
      value = std::string(argv[++i]);
    }
    values_.insert_or_assign(name, std::move(value));
  }
  return true;
}

const CliParser::Option& CliParser::find_declared(const std::string& name) const {
  const auto it = declared_.find(name);
  require(it != declared_.end(), "CLI: option --" + name + " was never declared");
  return it->second;
}

bool CliParser::has(const std::string& name) const {
  find_declared(name);
  return values_.contains(name);
}

std::string CliParser::get_string(const std::string& name) const {
  const Option& opt = find_declared(name);
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  require(opt.default_value.has_value(),
          "CLI: option --" + name + " is required but was not given");
  return *opt.default_value;
}

double CliParser::get_double(const std::string& name) const {
  return parse_double(get_string(name));
}

long long CliParser::get_int(const std::string& name) const {
  return parse_int(get_string(name));
}

unsigned long long CliParser::get_uint(const std::string& name) const {
  const long long value = parse_int(get_string(name));
  require(value >= 0, "CLI: option --" + name + " must be >= 0, got " +
                          std::to_string(value));
  return static_cast<unsigned long long>(value);
}

bool CliParser::get_flag(const std::string& name) const {
  const Option& opt = find_declared(name);
  require(opt.is_flag, "CLI: --" + name + " is not a flag");
  return values_.contains(name);
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : declaration_order_) {
    const Option& opt = declared_.at(name);
    os << "  --" << pad_right(name, 24) << opt.help;
    if (opt.default_value) os << " (default: " << *opt.default_value << ")";
    os << "\n";
  }
  os << "  --" << pad_right("help", 24) << "print this message\n";
  return os.str();
}

}  // namespace hmcs
