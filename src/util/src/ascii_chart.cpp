#include "hmcs/util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs {

AsciiChart::AsciiChart(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  require(width >= 8 && height >= 4, "AsciiChart: plot area too small");
}

void AsciiChart::add_series(std::string label, std::vector<double> values,
                            char marker) {
  require(!values.empty(), "AsciiChart: series needs points");
  for (const double v : values) {
    require(std::isfinite(v) && v >= 0.0,
            "AsciiChart: values must be finite and >= 0");
  }
  series_.push_back(Series{std::move(label), std::move(values), marker});
}

std::string AsciiChart::render(const std::vector<std::string>& x_labels,
                               const std::string& y_label) const {
  require(!series_.empty(), "AsciiChart: nothing to render");
  const std::size_t points = series_.front().values.size();
  for (const Series& series : series_) {
    require(series.values.size() == points,
            "AsciiChart: series lengths differ");
  }
  require(x_labels.size() == points, "AsciiChart: x label count mismatch");

  double peak = 0.0;
  for (const Series& series : series_) {
    for (const double v : series.values) peak = std::max(peak, v);
  }
  if (peak <= 0.0) peak = 1.0;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  auto column_of = [&](std::size_t index) {
    if (points == 1) return width_ / 2;
    return index * (width_ - 1) / (points - 1);
  };
  auto row_of = [&](double value) {
    const double fraction = value / peak;
    const auto from_bottom = static_cast<std::size_t>(
        std::lround(fraction * static_cast<double>(height_ - 1)));
    return height_ - 1 - std::min(from_bottom, height_ - 1);
  };

  for (const Series& series : series_) {
    for (std::size_t i = 0; i < points; ++i) {
      char& cell = grid[row_of(series.values[i])][column_of(i)];
      if (cell == ' ' || cell == series.marker) {
        cell = series.marker;
      } else {
        cell = '#';  // collision between different series
      }
    }
  }

  // Y-axis labels on a fixed-width gutter, ticks every quarter.
  const std::size_t gutter = 10;
  std::ostringstream os;
  os << std::string(gutter + 1, ' ') << y_label << " (0.." << format_compact(peak, 4)
     << ")\n";
  for (std::size_t row = 0; row < height_; ++row) {
    std::string label(gutter, ' ');
    const bool tick = row == 0 || row == height_ - 1 ||
                      row == height_ / 2 ||
                      row == height_ / 4 ||
                      row == (3 * height_) / 4;
    if (tick) {
      const double value =
          peak * static_cast<double>(height_ - 1 - row) /
          static_cast<double>(height_ - 1);
      label = pad_left(format_compact(value, 4), gutter);
    }
    os << label << " |" << grid[row] << "\n";
  }
  os << std::string(gutter, ' ') << " +" << std::string(width_, '-') << "\n";

  // Sparse x labels: first, middle, last (and as many in between as
  // fit). A little slack past the plot edge lets the last label print.
  std::string x_row(gutter + 2 + width_ + 8, ' ');
  for (std::size_t i = 0; i < points; ++i) {
    // Label every point if space allows, else every other.
    const std::size_t column = gutter + 2 + column_of(i);
    const std::string& text = x_labels[i];
    if (column + text.size() <= x_row.size()) {
      bool free = true;
      for (std::size_t k = 0; k < text.size() + 1 && column + k < x_row.size();
           ++k) {
        if (x_row[column + k] != ' ') free = false;
      }
      if (free) x_row.replace(column, text.size(), text);
    }
  }
  os << x_row << "\n";

  os << std::string(gutter + 2, ' ');
  for (std::size_t s = 0; s < series_.size(); ++s) {
    if (s != 0) os << "   ";
    os << series_[s].marker << " = " << series_[s].label;
  }
  os << "  (# = overlap)\n";
  return os.str();
}

}  // namespace hmcs
