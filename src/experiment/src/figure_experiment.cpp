#include "hmcs/experiment/figure_experiment.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <ostream>

#include "hmcs/runner/sweep_runner.hpp"
#include "hmcs/util/ascii_chart.hpp"
#include "hmcs/util/json.hpp"

#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/table.hpp"
#include "hmcs/util/units.hpp"

namespace hmcs::experiment {

namespace {

FigureSpec base_spec(std::string id, std::string title,
                     analytic::HeterogeneityCase hetero,
                     analytic::NetworkArchitecture arch) {
  FigureSpec spec;
  spec.id = std::move(id);
  spec.title = std::move(title);
  spec.hetero = hetero;
  spec.architecture = arch;
  return spec;
}

}  // namespace

FigureSpec figure4_spec() {
  return base_spec("fig4",
                   "Figure 4: latency vs clusters, non-blocking, Case-1",
                   analytic::HeterogeneityCase::kCase1,
                   analytic::NetworkArchitecture::kNonBlocking);
}

FigureSpec figure5_spec() {
  return base_spec("fig5",
                   "Figure 5: latency vs clusters, non-blocking, Case-2",
                   analytic::HeterogeneityCase::kCase2,
                   analytic::NetworkArchitecture::kNonBlocking);
}

FigureSpec figure6_spec() {
  return base_spec("fig6", "Figure 6: latency vs clusters, blocking, Case-1",
                   analytic::HeterogeneityCase::kCase1,
                   analytic::NetworkArchitecture::kBlocking);
}

FigureSpec figure7_spec() {
  return base_spec("fig7", "Figure 7: latency vs clusters, blocking, Case-2",
                   analytic::HeterogeneityCase::kCase2,
                   analytic::NetworkArchitecture::kBlocking);
}

FigureResult run_figure(const FigureSpec& spec) {
  require(!spec.message_sizes.empty(), "run_figure: needs message sizes");
  FigureResult result;
  result.spec = spec;

  // A figure is one declarative sweep: the technology case and the
  // architecture are singleton axes, clusters × message sizes span the
  // grid (cluster-major, size-minor — the runner's cartesian order).
  // The per-point seed chain is the runner's default, seeded from the
  // figure's base sim seed, so the series is bit-identical to the
  // pre-runner harness.
  runner::SweepSpec sweep;
  sweep.id = spec.id;
  sweep.title = spec.title;
  sweep.axes.technologies = {runner::technology_case(spec.hetero)};
  sweep.axes.lambda_per_us = {spec.rate_per_us};
  sweep.axes.clusters = spec.cluster_counts;  // empty = paper sweep
  sweep.axes.message_bytes = spec.message_sizes;
  sweep.axes.architectures = {spec.architecture};
  sweep.total_nodes = spec.total_nodes;
  sweep.base_seed = spec.sim_options.seed;

  std::vector<std::shared_ptr<runner::Backend>> backends;
  backends.push_back(
      std::make_shared<runner::AnalyticBackend>(spec.model_options));
  if (spec.run_simulation) {
    runner::DesBackend::Options des;
    des.sim = spec.sim_options;
    des.replications = std::max<std::uint32_t>(1, spec.replications);
    backends.push_back(std::make_shared<runner::DesBackend>(des));
  }

  runner::RunnerOptions options;
  options.trace = spec.trace;
  const runner::SweepResult grid = runner::run_sweep(sweep, backends, options);

  result.points.reserve(grid.points.size());
  for (const runner::SweepPoint& grid_point : grid.points) {
    FigurePoint point;
    point.clusters = grid_point.clusters;
    point.message_bytes = grid_point.message_bytes;
    point.analysis_ms =
        units::us_to_ms(grid.at(grid_point.index, 0).mean_latency_us);
    if (spec.run_simulation) {
      const runner::PointResult& sim_cell = grid.at(grid_point.index, 1);
      point.simulation_ms = units::us_to_ms(sim_cell.mean_latency_us);
      point.simulation_ci_half_ms = units::us_to_ms(sim_cell.ci_half_us);
      point.relative_error =
          relative_error(point.analysis_ms, point.simulation_ms);
    }
    result.points.push_back(point);
  }

  if (spec.run_simulation) {
    double error_sum = 0.0;
    for (const FigurePoint& point : result.points) {
      error_sum += point.relative_error;
      result.max_relative_error =
          std::max(result.max_relative_error, point.relative_error);
    }
    result.mean_relative_error =
        error_sum / static_cast<double>(result.points.size());
  }
  return result;
}

std::string render_figure_table(const FigureResult& result) {
  std::vector<std::string> headers{"Clusters"};
  for (const double bytes : result.spec.message_sizes) {
    const std::string m = format_compact(bytes, 6);
    headers.push_back("Analysis M=" + m + " (ms)");
    if (result.spec.run_simulation) {
      headers.push_back("Simulation M=" + m + " (ms)");
      headers.push_back("RelErr M=" + m);
    }
  }
  Table table(headers);

  // Points are ordered cluster-major, size-minor by construction.
  const std::size_t sizes = result.spec.message_sizes.size();
  for (std::size_t i = 0; i < result.points.size(); i += sizes) {
    std::vector<std::string> row{std::to_string(result.points[i].clusters)};
    for (std::size_t s = 0; s < sizes; ++s) {
      const FigurePoint& point = result.points[i + s];
      row.push_back(format_fixed(point.analysis_ms, 3));
      if (result.spec.run_simulation) {
        row.push_back(format_fixed(point.simulation_ms, 3) + " ±" +
                      format_fixed(point.simulation_ci_half_ms, 3));
        row.push_back(format_fixed(point.relative_error * 100.0, 1) + "%");
      }
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

CsvWriter figure_csv(const FigureResult& result) {
  CsvWriter csv({"clusters", "message_bytes", "analysis_ms", "simulation_ms",
                 "simulation_ci_half_ms", "relative_error"});
  for (const FigurePoint& point : result.points) {
    csv.add_numeric_row({static_cast<double>(point.clusters),
                         point.message_bytes, point.analysis_ms,
                         point.simulation_ms, point.simulation_ci_half_ms,
                         point.relative_error});
  }
  return csv;
}

std::string figure_json(const FigureResult& result) {
  JsonWriter json;
  json.begin_object();
  json.key("id").value(result.spec.id);
  json.key("title").value(result.spec.title);
  json.key("scenario").value(analytic::to_string(result.spec.hetero));
  json.key("architecture")
      .value(analytic::to_string(result.spec.architecture));
  json.key("total_nodes").value(result.spec.total_nodes);
  json.key("rate_per_s")
      .value(units::per_us_to_per_s(result.spec.rate_per_us));
  json.key("replications").value(result.spec.replications);
  json.key("mean_relative_error").value(result.mean_relative_error);
  json.key("max_relative_error").value(result.max_relative_error);
  json.key("points").begin_array();
  for (const FigurePoint& point : result.points) {
    json.begin_object();
    json.key("clusters").value(point.clusters);
    json.key("message_bytes").value(point.message_bytes);
    json.key("analysis_ms").value(point.analysis_ms);
    json.key("simulation_ms").value(point.simulation_ms);
    json.key("simulation_ci_half_ms").value(point.simulation_ci_half_ms);
    json.key("relative_error").value(point.relative_error);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void print_figure_report(std::ostream& os, const FigureResult& result,
                         const std::string& csv_dir,
                         const std::string& json_dir) {
  os << "== " << result.spec.title << " ==\n";
  os << "architecture: " << analytic::to_string(result.spec.architecture)
     << ", scenario: " << analytic::to_string(result.spec.hetero)
     << ", N=" << result.spec.total_nodes << ", lambda="
     << format_compact(units::per_us_to_per_s(result.spec.rate_per_us))
     << " msg/s/node\n\n";
  os << render_figure_table(result);

  // Echo the paper's plot: one chart per message size, analysis vs
  // simulation series over the cluster sweep.
  const std::size_t sizes = result.spec.message_sizes.size();
  const std::size_t sweep_points = result.points.size() / sizes;
  std::vector<std::string> x_labels;
  for (std::size_t i = 0; i < result.points.size(); i += sizes) {
    x_labels.push_back(std::to_string(result.points[i].clusters));
  }
  for (std::size_t s = 0; s < sizes; ++s) {
    std::vector<double> analysis(sweep_points);
    std::vector<double> simulation(sweep_points);
    for (std::size_t i = 0; i < sweep_points; ++i) {
      analysis[i] = result.points[i * sizes + s].analysis_ms;
      simulation[i] = result.points[i * sizes + s].simulation_ms;
    }
    AsciiChart chart(64, 14);
    chart.add_series("analysis", std::move(analysis), '*');
    if (result.spec.run_simulation) {
      chart.add_series("simulation", std::move(simulation), 'o');
    }
    os << "\nM = " << format_compact(result.spec.message_sizes[s], 6)
       << " bytes:\n"
       << chart.render(x_labels, "latency ms");
  }

  if (result.spec.run_simulation) {
    os << "\nanalysis vs simulation: mean relative error "
       << format_fixed(result.mean_relative_error * 100.0, 1) << "%, max "
       << format_fixed(result.max_relative_error * 100.0, 1) << "%\n";
  }
  if (!csv_dir.empty()) {
    const std::string path = csv_dir + "/" + result.spec.id + ".csv";
    figure_csv(result).write_file(path);
    os << "series written to " << path << "\n";
  }
  if (!json_dir.empty()) {
    const std::string path = json_dir + "/" + result.spec.id + ".json";
    std::ofstream out(path);
    require(out.good(), "print_figure_report: cannot write '" + path + "'");
    out << figure_json(result) << "\n";
    os << "record written to " << path << "\n";
  }
  os << "\n";
}

}  // namespace hmcs::experiment
