#pragma once

/// \file figure_experiment.hpp
/// The figure-regeneration harness. Each of the paper's Figures 4-7 is a
/// sweep over the cluster count (1..256 by powers of two) at two message
/// sizes, plotting analytical vs simulated mean message latency. This
/// module runs one such sweep and renders it as a paper-style table plus
/// a CSV series, and reports analysis/simulation agreement — the paper's
/// validation claim.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/obs/trace.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/csv.hpp"

namespace hmcs::experiment {

struct FigureSpec {
  std::string id;     ///< e.g. "fig4"
  std::string title;  ///< printed heading
  analytic::HeterogeneityCase hetero = analytic::HeterogeneityCase::kCase1;
  analytic::NetworkArchitecture architecture =
      analytic::NetworkArchitecture::kNonBlocking;
  /// Plotted series, largest first to match the paper's legend order.
  std::vector<double> message_sizes = {1024.0, 512.0};
  std::vector<std::uint32_t> cluster_counts;  ///< empty = paper sweep
  std::uint32_t total_nodes = analytic::kPaperTotalNodes;
  double rate_per_us = analytic::kPaperRatePerUs;
  analytic::ModelOptions model_options;
  sim::SimOptions sim_options;
  bool run_simulation = true;
  /// >1 switches the simulation series to independent replications with
  /// CIs across replication means (see replication.hpp).
  std::uint32_t replications = 1;
  /// Observability: when non-null, every sweep point records a wall-clock
  /// span under pid 1 (tid = worker lane), and each point's simulator
  /// inherits this session with a distinct pid (2 + point index) so
  /// simulated-time phase spans and sampler counter tracks land in their
  /// own Perfetto process group. sim_options.obs.sample_interval_us
  /// controls whether counter tracks are sampled at all.
  std::shared_ptr<obs::TraceSession> trace;
};

/// The paper's four validation figures.
FigureSpec figure4_spec();  ///< non-blocking, Case 1
FigureSpec figure5_spec();  ///< non-blocking, Case 2
FigureSpec figure6_spec();  ///< blocking, Case 1
FigureSpec figure7_spec();  ///< blocking, Case 2

struct FigurePoint {
  std::uint32_t clusters = 0;
  double message_bytes = 0.0;
  double analysis_ms = 0.0;
  double simulation_ms = 0.0;
  double simulation_ci_half_ms = 0.0;
  /// |simulation - analysis| / simulation (the paper's accuracy notion).
  double relative_error = 0.0;
};

struct FigureResult {
  FigureSpec spec;
  std::vector<FigurePoint> points;
  double mean_relative_error = 0.0;
  double max_relative_error = 0.0;
};

FigureResult run_figure(const FigureSpec& spec);

/// Paper-style table: one row per cluster count, analysis & simulation
/// columns per message size.
std::string render_figure_table(const FigureResult& result);

CsvWriter figure_csv(const FigureResult& result);

/// Machine-readable record of the sweep (spec echo + all points).
std::string figure_json(const FigureResult& result);

/// Renders the table, the agreement summary, and (when the directories
/// are non-empty) writes `<csv_dir>/<id>.csv` / `<json_dir>/<id>.json`.
void print_figure_report(std::ostream& os, const FigureResult& result,
                         const std::string& csv_dir = "",
                         const std::string& json_dir = "");

}  // namespace hmcs::experiment
