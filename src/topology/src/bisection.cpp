#include "hmcs/topology/bisection.hpp"

#include <vector>

#include "hmcs/topology/maxflow.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace hmcs::topology {

std::uint64_t measured_bisection_cables(const Graph& graph) {
  const std::vector<NodeId> endpoints = graph.endpoints();
  require(endpoints.size() >= 2,
          "measured_bisection_cables: needs >= 2 endpoints");

  const std::size_t n = graph.num_nodes();
  const std::size_t source = n;
  const std::size_t sink = n + 1;
  MaxFlow flow(n + 2);

  for (const Link& link : graph.links()) {
    flow.add_undirected_edge(link.a, link.b, link.multiplicity);
  }

  // "Infinite" capacity that cannot bottleneck: more than all cables.
  const std::uint64_t inf = graph.total_cables() + 1;
  const std::size_t half = endpoints.size() / 2;
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    if (i < half) {
      flow.add_edge(source, endpoints[i], inf);
    } else {
      flow.add_edge(endpoints[i], sink, inf);
    }
  }
  return flow.solve(source, sink);
}

bool has_full_bisection(const Graph& graph) {
  const std::uint64_t n = graph.endpoints().size();
  return measured_bisection_cables(graph) >= ceil_div(n, 2);
}

}  // namespace hmcs::topology
