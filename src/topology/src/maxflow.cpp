#include "hmcs/topology/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "hmcs/util/error.hpp"

namespace hmcs::topology {

MaxFlow::MaxFlow(std::size_t num_vertices)
    : adjacency_(num_vertices), level_(num_vertices), next_edge_(num_vertices) {}

void MaxFlow::add_edge(std::size_t u, std::size_t v, std::uint64_t capacity) {
  require(u < adjacency_.size() && v < adjacency_.size(),
          "MaxFlow: vertex out of range");
  require(u != v, "MaxFlow: self-edges are not allowed");
  require(!solved_, "MaxFlow: cannot add edges after solve()");
  adjacency_[u].push_back(Edge{static_cast<std::uint32_t>(v), capacity,
                               static_cast<std::uint32_t>(adjacency_[v].size())});
  adjacency_[v].push_back(Edge{static_cast<std::uint32_t>(u), 0,
                               static_cast<std::uint32_t>(adjacency_[u].size() - 1)});
}

void MaxFlow::add_undirected_edge(std::size_t u, std::size_t v,
                                  std::uint64_t capacity) {
  require(u < adjacency_.size() && v < adjacency_.size(),
          "MaxFlow: vertex out of range");
  require(u != v, "MaxFlow: self-edges are not allowed");
  require(!solved_, "MaxFlow: cannot add edges after solve()");
  adjacency_[u].push_back(Edge{static_cast<std::uint32_t>(v), capacity,
                               static_cast<std::uint32_t>(adjacency_[v].size())});
  adjacency_[v].push_back(Edge{static_cast<std::uint32_t>(u), capacity,
                               static_cast<std::uint32_t>(adjacency_[u].size() - 1)});
}

bool MaxFlow::build_levels(std::size_t source, std::size_t sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<std::size_t> frontier;
  level_[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop();
    for (const Edge& e : adjacency_[v]) {
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        frontier.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

std::uint64_t MaxFlow::push(std::size_t v, std::size_t sink, std::uint64_t limit) {
  if (v == sink) return limit;
  for (std::size_t& i = next_edge_[v]; i < adjacency_[v].size(); ++i) {
    Edge& e = adjacency_[v][i];
    if (e.capacity == 0 || level_[e.to] != level_[v] + 1) continue;
    const std::uint64_t pushed = push(e.to, sink, std::min(limit, e.capacity));
    if (pushed == 0) continue;
    e.capacity -= pushed;
    adjacency_[e.to][e.reverse_index].capacity += pushed;
    return pushed;
  }
  return 0;
}

std::uint64_t MaxFlow::solve(std::size_t source, std::size_t sink) {
  require(source < adjacency_.size() && sink < adjacency_.size(),
          "MaxFlow: vertex out of range");
  require(source != sink, "MaxFlow: source and sink must differ");
  require(!solved_, "MaxFlow: solve() may be called only once");
  solved_ = true;
  source_ = source;

  std::uint64_t flow = 0;
  while (build_levels(source, sink)) {
    std::fill(next_edge_.begin(), next_edge_.end(), 0);
    while (const std::uint64_t pushed =
               push(source, sink, std::numeric_limits<std::uint64_t>::max())) {
      flow += pushed;
    }
  }
  return flow;
}

std::vector<bool> MaxFlow::min_cut_source_side() const {
  require(solved_, "MaxFlow: min_cut_source_side requires solve() first");
  std::vector<bool> reachable(adjacency_.size(), false);
  std::queue<std::size_t> frontier;
  reachable[source_] = true;
  frontier.push(source_);
  while (!frontier.empty()) {
    const std::size_t v = frontier.front();
    frontier.pop();
    for (const Edge& e : adjacency_[v]) {
      if (e.capacity > 0 && !reachable[e.to]) {
        reachable[e.to] = true;
        frontier.push(e.to);
      }
    }
  }
  return reachable;
}

}  // namespace hmcs::topology
