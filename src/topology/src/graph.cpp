#include "hmcs/topology/graph.hpp"

#include <algorithm>

#include "hmcs/util/error.hpp"

namespace hmcs::topology {

NodeId Graph::add_node(NodeKind kind, std::uint32_t stage, std::uint32_t index) {
  nodes_.push_back(Node{kind, stage, index});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Graph::add_link(NodeId a, NodeId b, std::uint32_t multiplicity) {
  require(a < nodes_.size() && b < nodes_.size(), "Graph: link endpoint out of range");
  require(a != b, "Graph: self-links are not allowed");
  require(multiplicity > 0, "Graph: link multiplicity must be > 0");
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  for (auto& link : links_) {
    if (link.a == lo && link.b == hi) {
      link.multiplicity += multiplicity;
      return;
    }
  }
  links_.push_back(Link{lo, hi, multiplicity});
}

const Node& Graph::node(NodeId id) const {
  require(id < nodes_.size(), "Graph: node id out of range");
  return nodes_[id];
}

std::size_t Graph::count_nodes(NodeKind kind) const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.kind == kind) ++n;
  }
  return n;
}

std::uint64_t Graph::total_cables() const {
  std::uint64_t total = 0;
  for (const auto& link : links_) total += link.multiplicity;
  return total;
}

std::uint64_t Graph::degree(NodeId id) const {
  require(id < nodes_.size(), "Graph: node id out of range");
  std::uint64_t d = 0;
  for (const auto& link : links_) {
    if (link.a == id || link.b == id) d += link.multiplicity;
  }
  return d;
}

std::vector<NodeId> Graph::endpoints() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == NodeKind::kEndpoint) out.push_back(id);
  }
  return out;
}

std::uint64_t Graph::cut_cables(const std::vector<bool>& in_left) const {
  require(in_left.size() == nodes_.size(),
          "Graph::cut_cables: membership vector size mismatch");
  std::uint64_t cut = 0;
  for (const auto& link : links_) {
    if (in_left[link.a] != in_left[link.b]) cut += link.multiplicity;
  }
  return cut;
}

}  // namespace hmcs::topology
