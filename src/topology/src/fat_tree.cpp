#include "hmcs/topology/fat_tree.hpp"

#include <algorithm>
#include <vector>

#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace hmcs::topology {

FatTree::FatTree(std::uint64_t num_endpoints, std::uint32_t radix)
    : num_endpoints_(num_endpoints), radix_(radix) {
  require(num_endpoints >= 1, "FatTree: needs at least one endpoint");
  require(radix >= 4 && radix % 2 == 0,
          "FatTree: radix must be even and >= 4 (ports split into UL/DL)");
  if (num_endpoints_ <= 1) {
    num_stages_ = 0;
  } else {
    // eq. (12): smallest d with (Pr/2)^d >= ceil(N/2), at least 1.
    num_stages_ = std::max<std::uint32_t>(
        1, ceil_log(half_radix(), ceil_div(num_endpoints_, 2)));
  }
}

std::uint64_t FatTree::switches_in_stage(std::uint32_t stage) const {
  require(stage >= 1 && stage <= num_stages_, "FatTree: stage out of range");
  if (stage == num_stages_) return ceil_div(num_endpoints_, radix_);
  return ceil_div(num_endpoints_, half_radix());
}

std::uint64_t FatTree::num_switches() const {
  std::uint64_t total = 0;
  for (std::uint32_t s = 1; s <= num_stages_; ++s) total += switches_in_stage(s);
  return total;
}

std::uint64_t FatTree::bisection_width() const {
  if (num_endpoints_ <= 1) return 0;
  return ceil_div(num_endpoints_, 2);
}

std::uint64_t FatTree::block_size(std::uint32_t stage) const {
  // Endpoints under one stage-s subtree: m^s, except the top stage which
  // always spans the full machine (its switches have Pr down-links and
  // collectively reach every pod).
  if (stage >= num_stages_) return num_endpoints_;
  std::uint64_t span = 1;
  for (std::uint32_t i = 0; i < stage; ++i) span *= half_radix();
  return std::min(span, num_endpoints_);
}

std::uint64_t FatTree::subtree_span(std::uint32_t stage) const {
  require(stage >= 1 && stage <= std::max<std::uint32_t>(num_stages_, 1),
          "FatTree: stage out of range");
  // A one-stage network is a single switch with Pr down-links.
  if (num_stages_ <= 1) return num_endpoints_;
  return block_size(stage);
}

std::uint32_t FatTree::switch_traversals(std::uint64_t src, std::uint64_t dst) const {
  require(src < num_endpoints_ && dst < num_endpoints_,
          "FatTree: endpoint index out of range");
  if (src == dst) return 0;
  for (std::uint32_t s = 1; s <= num_stages_; ++s) {
    const std::uint64_t span = subtree_span(s);
    if (src / span == dst / span) return 2 * s - 1;
  }
  ensure(false, "FatTree: endpoints never meet — broken stage math");
  return 0;
}

std::uint32_t FatTree::worst_case_traversals() const {
  if (num_stages_ == 0) return 0;
  return 2 * num_stages_ - 1;
}

double FatTree::average_traversals() const {
  require(num_endpoints_ >= 2, "FatTree: average needs >= 2 endpoints");
  const double n = static_cast<double>(num_endpoints_);
  const double total_pairs = n * (n - 1.0);

  // P(meet at stage <= s) * total_pairs = ordered pairs inside a common
  // stage-s block; exact stage-s pair count is the difference of
  // consecutive cumulative counts.
  auto ordered_pairs_within_blocks = [&](std::uint64_t span) {
    const std::uint64_t full_blocks = num_endpoints_ / span;
    const std::uint64_t remainder = num_endpoints_ % span;
    const double fs = static_cast<double>(span);
    const double fr = static_cast<double>(remainder);
    return static_cast<double>(full_blocks) * fs * (fs - 1.0) + fr * (fr - 1.0);
  };

  double expectation = 0.0;
  double cumulative = 0.0;
  for (std::uint32_t s = 1; s <= num_stages_; ++s) {
    const double within = ordered_pairs_within_blocks(subtree_span(s));
    const double exactly_here = within - cumulative;
    cumulative = within;
    expectation += exactly_here * static_cast<double>(2 * s - 1);
  }
  ensure(approx_equal(cumulative, total_pairs, 1e-9),
         "FatTree: pair accounting does not cover all pairs");
  return expectation / total_pairs;
}

bool FatTree::is_uniform() const {
  // d <= 1 implies N <= Pr: one switch, trivially regular wiring.
  if (num_stages_ <= 1) return true;
  if (num_endpoints_ % radix_ != 0) return false;
  std::uint64_t pod = 1;
  for (std::uint32_t i = 0; i + 1 < num_stages_; ++i) pod *= half_radix();
  return num_endpoints_ % pod == 0;
}

Graph FatTree::build_graph() const {
  Graph g;
  std::vector<NodeId> endpoint_ids;
  endpoint_ids.reserve(num_endpoints_);
  for (std::uint64_t e = 0; e < num_endpoints_; ++e) {
    endpoint_ids.push_back(
        g.add_node(NodeKind::kEndpoint, 0, static_cast<std::uint32_t>(e)));
  }
  if (num_stages_ == 0) return g;

  const std::uint32_t m = half_radix();
  std::vector<std::vector<NodeId>> stage_ids(num_stages_ + 1);
  for (std::uint32_t s = 1; s <= num_stages_; ++s) {
    const std::uint64_t count = switches_in_stage(s);
    stage_ids[s].reserve(count);
    for (std::uint64_t j = 0; j < count; ++j) {
      stage_ids[s].push_back(
          g.add_node(NodeKind::kSwitch, s, static_cast<std::uint32_t>(j)));
    }
  }

  // Endpoints to stage 1: blocks of m down-links (Pr when d == 1, where
  // the only stage is the all-down-link top stage).
  const std::uint64_t leaf_block = (num_stages_ == 1) ? radix_ : m;
  for (std::uint64_t e = 0; e < num_endpoints_; ++e) {
    const std::uint64_t sw = std::min<std::uint64_t>(e / leaf_block,
                                                     stage_ids[1].size() - 1);
    g.add_link(endpoint_ids[e], stage_ids[1][sw]);
  }

  // Middle stages: butterfly wiring inside each pod. A stage-s pod spans
  // subtree_span(s+1) endpoints and contains `sub = span(s+1)/span(s)`
  // groups of `per = span(s)/m^(s-1)`-indexed switches; up-link l of the
  // switch at (group i, position p) goes to the stage-(s+1) switch at
  // position l*per_group + p of the same pod.
  for (std::uint32_t s = 1; s + 1 <= num_stages_; ++s) {
    const std::uint64_t lower_count = stage_ids[s].size();
    const std::uint64_t upper_count = stage_ids[s + 1].size();
    if (s + 1 == num_stages_) {
      // Top stage: round-robin stripe every up-link across all top
      // switches (each top switch has Pr down-links, reaching all pods).
      for (std::uint64_t j = 0; j < lower_count; ++j) {
        for (std::uint32_t l = 0; l < m; ++l) {
          const std::uint64_t target = (j * m + l) % upper_count;
          g.add_link(stage_ids[s][j], stage_ids[s + 1][target]);
        }
      }
      continue;
    }
    // Butterfly wiring within each pod (pod = one span-m^(s+1) block).
    // per_sub = m^(s-1) is the number of stage-s switches in one
    // span-m^s subtree; a pod holds m such subtrees, so pod_lower = m^s
    // stage-s switches — and the same number of stage-(s+1) switches.
    // Up-link l of the switch at (subtree i, position p) reaches the
    // stage-(s+1) switch at local index l*per_sub + p, which gives every
    // upper switch one down-link into each of the pod's m subtrees.
    std::uint64_t per_sub = 1;
    for (std::uint32_t i = 1; i < s; ++i) per_sub *= m;
    const std::uint64_t pod_lower = per_sub * m;
    for (std::uint64_t j = 0; j < lower_count; ++j) {
      const std::uint64_t pod = j / pod_lower;
      const std::uint64_t position = (j % pod_lower) % per_sub;
      for (std::uint32_t l = 0; l < m; ++l) {
        std::uint64_t target = pod * pod_lower + l * per_sub + position;
        target = std::min(target, upper_count - 1);
        g.add_link(stage_ids[s][j], stage_ids[s + 1][target]);
      }
    }
  }
  return g;
}

}  // namespace hmcs::topology
