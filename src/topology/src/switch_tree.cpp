#include "hmcs/topology/switch_tree.hpp"

#include <vector>

#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace hmcs::topology {

SwitchTree::SwitchTree(std::uint32_t levels, std::uint32_t endpoints_per_leaf)
    : levels_(levels), endpoints_per_leaf_(endpoints_per_leaf) {
  require(levels >= 1 && levels <= 32, "SwitchTree: levels must be in [1, 32]");
  require(endpoints_per_leaf >= 1, "SwitchTree: needs >= 1 endpoint per leaf");
}

std::uint64_t SwitchTree::bisection_width() const {
  if (levels_ == 1) return ceil_div(num_endpoints(), 2);
  return 1;
}

std::uint64_t SwitchTree::leaf_of(std::uint64_t endpoint) const {
  require(endpoint < num_endpoints(), "SwitchTree: endpoint out of range");
  return endpoint / endpoints_per_leaf_;
}

std::uint64_t SwitchTree::switch_traversals(std::uint64_t src,
                                            std::uint64_t dst) const {
  if (src == dst) return 0;
  // Heap indexing: leaf i is switch (num_leaves()-1) + i in a 1-based
  // heap numbering; walk both up to their common ancestor.
  std::uint64_t a = num_leaves() + leaf_of(src);  // 1-based heap index
  std::uint64_t b = num_leaves() + leaf_of(dst);
  std::uint64_t crossed = 0;
  while (a != b) {
    if (a > b) {
      a /= 2;
    } else {
      b /= 2;
    }
    ++crossed;
  }
  // `crossed` edges were climbed in total; switches on the path =
  // climbed edges + 1 (the common ancestor), except the same-leaf case.
  return crossed + 1;
}

Graph SwitchTree::build_graph() const {
  Graph g;
  std::vector<NodeId> endpoint_ids;
  for (std::uint64_t e = 0; e < num_endpoints(); ++e) {
    endpoint_ids.push_back(
        g.add_node(NodeKind::kEndpoint, 0, static_cast<std::uint32_t>(e)));
  }
  // Switches in heap order: index h in [1, 2^levels - 1], level =
  // floor(log2 h) + 1 counted from the root.
  const std::uint64_t switch_count = num_switches();
  std::vector<NodeId> switch_ids(switch_count + 1);
  for (std::uint64_t h = 1; h <= switch_count; ++h) {
    std::uint32_t level = 0;
    for (std::uint64_t v = h; v > 0; v /= 2) ++level;
    switch_ids[h] = g.add_node(NodeKind::kSwitch, level,
                               static_cast<std::uint32_t>(h));
    if (h > 1) g.add_link(switch_ids[h / 2], switch_ids[h]);
  }
  for (std::uint64_t e = 0; e < num_endpoints(); ++e) {
    const std::uint64_t leaf_heap = num_leaves() + leaf_of(e);
    g.add_link(endpoint_ids[e], switch_ids[leaf_heap]);
  }
  return g;
}

}  // namespace hmcs::topology
