#include "hmcs/topology/linear_array.hpp"

#include <algorithm>
#include <cstdlib>

#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace hmcs::topology {

LinearArray::LinearArray(std::uint64_t num_endpoints, std::uint32_t radix)
    : num_endpoints_(num_endpoints), radix_(radix) {
  require(num_endpoints >= 1, "LinearArray: needs at least one endpoint");
  require(radix >= 3, "LinearArray: radix must be >= 3");
}

std::uint64_t LinearArray::num_switches() const {
  return ceil_div(num_endpoints_, radix_);
}

std::uint64_t LinearArray::switch_of(std::uint64_t endpoint) const {
  require(endpoint < num_endpoints_, "LinearArray: endpoint out of range");
  return std::min(endpoint / radix_, num_switches() - 1);
}

std::uint64_t LinearArray::switch_traversals(std::uint64_t src,
                                             std::uint64_t dst) const {
  if (src == dst) return 0;
  const std::uint64_t a = switch_of(src);
  const std::uint64_t b = switch_of(dst);
  return (a > b ? a - b : b - a) + 1;
}

double LinearArray::paper_average_traversals() const {
  return (static_cast<double>(num_switches()) + 1.0) / 3.0;
}

double LinearArray::average_traversals() const {
  require(num_endpoints_ >= 2, "LinearArray: average needs >= 2 endpoints");
  // Sum |sw(i)-sw(j)| + 1 over ordered distinct pairs, grouping
  // endpoints by switch: n_a endpoints on switch a.
  const std::uint64_t k = num_switches();
  std::vector<double> occupancy(k, 0.0);
  for (std::uint64_t s = 0; s + 1 < k; ++s) occupancy[s] = static_cast<double>(radix_);
  occupancy[k - 1] =
      static_cast<double>(num_endpoints_ - (k - 1) * radix_);

  const double n = static_cast<double>(num_endpoints_);
  double weighted_distance = 0.0;
  double same_switch_pairs = 0.0;
  for (std::uint64_t a = 0; a < k; ++a) {
    same_switch_pairs += occupancy[a] * (occupancy[a] - 1.0);
    for (std::uint64_t b = a + 1; b < k; ++b) {
      weighted_distance += 2.0 * occupancy[a] * occupancy[b] *
                           static_cast<double>(b - a);
    }
  }
  const double total_pairs = n * (n - 1.0);
  // Every distinct pair crosses at least one switch.
  return (weighted_distance + total_pairs) / total_pairs;
}

std::uint64_t LinearArray::bisection_width() const {
  if (num_endpoints_ <= 1) return 0;
  if (num_switches() <= 1) return ceil_div(num_endpoints_, 2);
  return 1;
}

Graph LinearArray::build_graph() const {
  Graph g;
  std::vector<NodeId> endpoint_ids;
  endpoint_ids.reserve(num_endpoints_);
  for (std::uint64_t e = 0; e < num_endpoints_; ++e) {
    endpoint_ids.push_back(
        g.add_node(NodeKind::kEndpoint, 0, static_cast<std::uint32_t>(e)));
  }
  const std::uint64_t k = num_switches();
  std::vector<NodeId> switch_ids;
  switch_ids.reserve(k);
  for (std::uint64_t s = 0; s < k; ++s) {
    switch_ids.push_back(
        g.add_node(NodeKind::kSwitch, 1, static_cast<std::uint32_t>(s)));
  }
  for (std::uint64_t e = 0; e < num_endpoints_; ++e) {
    g.add_link(endpoint_ids[e], switch_ids[switch_of(e)]);
  }
  for (std::uint64_t s = 0; s + 1 < k; ++s) {
    g.add_link(switch_ids[s], switch_ids[s + 1]);
  }
  return g;
}

}  // namespace hmcs::topology
