#include "hmcs/topology/torus.hpp"

#include <algorithm>

#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace hmcs::topology {

Torus::Torus(std::uint32_t arity, std::uint32_t dimensions,
             std::uint32_t endpoints_per_switch)
    : arity_(arity),
      dimensions_(dimensions),
      endpoints_per_switch_(endpoints_per_switch) {
  require(arity >= 2, "Torus: arity must be >= 2");
  require(dimensions >= 1, "Torus: dimensions must be >= 1");
  require(endpoints_per_switch >= 1, "Torus: needs >= 1 endpoint per switch");
  // Keep k^n within a practical simulation size.
  double size = 1.0;
  for (std::uint32_t d = 0; d < dimensions; ++d) {
    size *= static_cast<double>(arity);
    require(size <= 1e6, "Torus: k^n too large (over 1e6 switches)");
  }
}

std::uint64_t Torus::num_switches() const {
  std::uint64_t total = 1;
  for (std::uint32_t d = 0; d < dimensions_; ++d) total *= arity_;
  return total;
}

std::uint64_t Torus::bisection_width() const {
  std::uint64_t cross_section = 1;  // k^(n-1)
  for (std::uint32_t d = 0; d + 1 < dimensions_; ++d) cross_section *= arity_;
  if (arity_ == 2) return cross_section;  // wrap == direct link
  return 2 * cross_section;
}

std::vector<std::uint32_t> Torus::coordinates(std::uint64_t switch_index) const {
  require(switch_index < num_switches(), "Torus: switch index out of range");
  std::vector<std::uint32_t> coords(dimensions_);
  for (std::uint32_t d = 0; d < dimensions_; ++d) {
    coords[d] = static_cast<std::uint32_t>(switch_index % arity_);
    switch_index /= arity_;
  }
  return coords;
}

std::uint64_t Torus::switch_distance(std::uint64_t a, std::uint64_t b) const {
  const std::vector<std::uint32_t> ca = coordinates(a);
  const std::vector<std::uint32_t> cb = coordinates(b);
  std::uint64_t distance = 0;
  for (std::uint32_t d = 0; d < dimensions_; ++d) {
    const std::uint32_t direct =
        ca[d] > cb[d] ? ca[d] - cb[d] : cb[d] - ca[d];
    distance += std::min<std::uint32_t>(direct, arity_ - direct);
  }
  return distance;
}

std::uint64_t Torus::switch_of(std::uint64_t endpoint) const {
  require(endpoint < num_endpoints(), "Torus: endpoint out of range");
  return endpoint / endpoints_per_switch_;
}

std::uint64_t Torus::switch_traversals(std::uint64_t src,
                                       std::uint64_t dst) const {
  if (src == dst) return 0;
  return switch_distance(switch_of(src), switch_of(dst)) + 1;
}

double Torus::average_traversals() const {
  require(num_endpoints() >= 2, "Torus: average needs >= 2 endpoints");
  // Mean Lee distance over ordered switch pairs, computed per dimension:
  // for a ring of k, the average |i-j| wrap distance over all ordered
  // pairs (including i==j) is (k/2)*(k/2)/k ... computed exactly below.
  double mean_ring = 0.0;
  for (std::uint32_t delta = 1; delta < arity_; ++delta) {
    mean_ring += static_cast<double>(
        std::min<std::uint32_t>(delta, arity_ - delta));
  }
  mean_ring /= static_cast<double>(arity_);  // E[dist] per dimension, pair
                                             // with independent uniform coords
  const double switches = static_cast<double>(num_switches());
  const double per_switch = static_cast<double>(endpoints_per_switch_);
  const double n = static_cast<double>(num_endpoints());

  // E[traversals | distinct endpoints]:
  //   same switch pairs -> 1;  different switch -> E[dist | s1 != s2] + 1.
  const double p_same_switch = (per_switch - 1.0) / (n - 1.0);
  const double mean_dist_uncond = static_cast<double>(dimensions_) * mean_ring;
  // E[dist] over ordered switch pairs including equal switches; condition
  // on inequality: P(equal) = 1/switches.
  const double mean_dist_distinct =
      mean_dist_uncond / (1.0 - 1.0 / switches);
  return p_same_switch * 1.0 + (1.0 - p_same_switch) * (mean_dist_distinct + 1.0);
}

Graph Torus::build_graph() const {
  Graph g;
  std::vector<NodeId> endpoint_ids;
  endpoint_ids.reserve(num_endpoints());
  for (std::uint64_t e = 0; e < num_endpoints(); ++e) {
    endpoint_ids.push_back(
        g.add_node(NodeKind::kEndpoint, 0, static_cast<std::uint32_t>(e)));
  }
  const std::uint64_t switches = num_switches();
  std::vector<NodeId> switch_ids;
  switch_ids.reserve(switches);
  for (std::uint64_t s = 0; s < switches; ++s) {
    switch_ids.push_back(
        g.add_node(NodeKind::kSwitch, 1, static_cast<std::uint32_t>(s)));
  }
  for (std::uint64_t e = 0; e < num_endpoints(); ++e) {
    g.add_link(endpoint_ids[e], switch_ids[switch_of(e)]);
  }
  // +1 neighbour per dimension (wrap); for k == 2 the +1 and -1
  // neighbours coincide, so this adds each link exactly once.
  std::uint64_t stride = 1;
  for (std::uint32_t d = 0; d < dimensions_; ++d) {
    for (std::uint64_t s = 0; s < switches; ++s) {
      const std::uint64_t coord = (s / stride) % arity_;
      const std::uint64_t next_coord = (coord + 1) % arity_;
      if (arity_ == 2 && coord == 1) continue;  // already linked from 0
      const std::uint64_t neighbour = s - coord * stride + next_coord * stride;
      g.add_link(switch_ids[s], switch_ids[neighbour]);
    }
    stride *= arity_;
  }
  return g;
}

}  // namespace hmcs::topology
