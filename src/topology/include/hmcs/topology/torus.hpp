#pragma once

/// \file torus.hpp
/// k-ary n-cube (torus) of switches — the topology family of the paper's
/// reference [20] (Sarbazi-Azad et al., "Analysis of k-ary n-cubes") and
/// the natural middle ground in the bisection spectrum of Section 5.1:
///
///   chain (bisection 1)  <  torus (2 k^(n-1))  <  fat-tree (N/2, full)
///
/// Each of the k^n switches hosts `endpoints_per_switch` processors and
/// links to two neighbours per dimension (wrap-around). Used with the
/// switch-level simulator to place a third point on the Section 5
/// blocking/non-blocking axis.

#include <cstdint>
#include <vector>

#include "hmcs/topology/graph.hpp"

namespace hmcs::topology {

class Torus {
 public:
  /// `arity` k >= 2, `dimensions` n >= 1, k^n switches total (capped so
  /// the node count stays sane), `endpoints_per_switch` >= 1.
  Torus(std::uint32_t arity, std::uint32_t dimensions,
        std::uint32_t endpoints_per_switch);

  std::uint32_t arity() const { return arity_; }
  std::uint32_t dimensions() const { return dimensions_; }
  std::uint64_t num_switches() const;
  std::uint64_t num_endpoints() const {
    return num_switches() * endpoints_per_switch_;
  }

  /// Standard k-ary n-cube bisection width: 2 * k^(n-1) links for even
  /// k (each of the k^(n-1) rows contributes two wrap links across the
  /// cut); for k == 2 the pairs coincide, giving k^(n-1). For odd k no
  /// perfectly balanced plane cut exists and the true width is slightly
  /// larger; the even-k expression is reported as the reference value.
  std::uint64_t bisection_width() const;

  /// Shortest torus (Lee) distance between two switches.
  std::uint64_t switch_distance(std::uint64_t a, std::uint64_t b) const;

  /// Switches crossed endpoint-to-endpoint: distance + 1 (0 for self).
  std::uint64_t switch_traversals(std::uint64_t src, std::uint64_t dst) const;

  /// Exact mean of switch_traversals over uniform distinct pairs.
  double average_traversals() const;

  /// Coordinates of a switch (least-significant dimension first).
  std::vector<std::uint32_t> coordinates(std::uint64_t switch_index) const;

  /// Explicit instance: endpoints first (grouped by switch), then the
  /// switches in lexicographic coordinate order. Links: endpoint links
  /// plus two per dimension per switch (one +1 neighbour each; k == 2
  /// collapses the pair to a single link).
  Graph build_graph() const;

 private:
  std::uint64_t switch_of(std::uint64_t endpoint) const;

  std::uint32_t arity_;
  std::uint32_t dimensions_;
  std::uint32_t endpoints_per_switch_;
};

}  // namespace hmcs::topology
