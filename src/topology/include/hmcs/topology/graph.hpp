#pragma once

/// \file graph.hpp
/// An undirected multigraph describing a concrete interconnect instance:
/// endpoint nodes (processors) and switch nodes joined by links. Parallel
/// links are first-class because fat-tree wirings routinely run several
/// cables between the same pair of switches.

#include <cstdint>
#include <string>
#include <vector>

namespace hmcs::topology {

enum class NodeKind : std::uint8_t { kEndpoint, kSwitch };

using NodeId = std::uint32_t;

struct Node {
  NodeKind kind;
  /// Stage number for switches (1 = closest to endpoints); 0 for endpoints.
  std::uint32_t stage;
  /// Index within its kind/stage (diagnostic).
  std::uint32_t index;
};

struct Link {
  NodeId a;
  NodeId b;
  /// Number of parallel cables aggregated in this record.
  std::uint32_t multiplicity;
};

class Graph {
 public:
  NodeId add_node(NodeKind kind, std::uint32_t stage, std::uint32_t index);

  /// Adds `multiplicity` parallel links between a and b (merging into an
  /// existing record when one exists).
  void add_link(NodeId a, NodeId b, std::uint32_t multiplicity = 1);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }
  const Node& node(NodeId id) const;
  const std::vector<Link>& links() const { return links_; }

  std::size_t count_nodes(NodeKind kind) const;

  /// Total cable count (sum of multiplicities).
  std::uint64_t total_cables() const;

  /// Degree of a node counting multiplicities.
  std::uint64_t degree(NodeId id) const;

  /// Endpoint ids in creation order.
  std::vector<NodeId> endpoints() const;

  /// Number of cables with one end in `left_set` membership and the other
  /// outside of it (the cut size for a node bipartition).
  std::uint64_t cut_cables(const std::vector<bool>& in_left) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
};

}  // namespace hmcs::topology
