#pragma once

/// \file bisection.hpp
/// Measured bisection analysis: computes, on a concrete Graph instance,
/// the minimum number of cables separating the first half of the
/// endpoints from the second half (max-flow/min-cut). This is how the
/// test suite verifies Theorem 1 ("a multi-stage fat-tree is a network
/// with full bisection bandwidth") and the linear array's width of 1 on
/// the actual wiring rather than on the closed forms alone.

#include <cstdint>

#include "hmcs/topology/graph.hpp"

namespace hmcs::topology {

/// Minimum cable cut separating endpoints [0, N/2) from [N/2, N) in the
/// canonical index split — the split used in the paper's Theorem 1 proof.
/// Requires at least two endpoints.
std::uint64_t measured_bisection_cables(const Graph& graph);

/// Definition 1: full bisection bandwidth means the halves are joined by
/// at least N/2 single-link bandwidths.
bool has_full_bisection(const Graph& graph);

}  // namespace hmcs::topology
