#pragma once

/// \file switch_tree.hpp
/// A complete binary tree of switches — the paper's Section 5.1 example
/// of a bisection-width-1 topology ("the bisection width of a tree is 1,
/// since if either link connected to the root is removed the tree is
/// split into two subtrees"). Included to exercise the bisection
/// machinery on a third topology shape.

#include <cstdint>

#include "hmcs/topology/graph.hpp"

namespace hmcs::topology {

class SwitchTree {
 public:
  /// A tree with 2^levels - 1 switches; endpoints hang off the leaf
  /// switches, `endpoints_per_leaf` each. levels >= 1.
  SwitchTree(std::uint32_t levels, std::uint32_t endpoints_per_leaf);

  std::uint32_t levels() const { return levels_; }
  std::uint64_t num_switches() const { return (1ULL << levels_) - 1; }
  std::uint64_t num_leaves() const { return 1ULL << (levels_ - 1); }
  std::uint64_t num_endpoints() const {
    return num_leaves() * endpoints_per_leaf_;
  }

  /// 1 for any tree with >= 2 levels; a single-switch "tree" is a star
  /// whose bisection is limited by the endpoint links.
  std::uint64_t bisection_width() const;

  /// Switches crossed between two endpoints: path through the lowest
  /// common ancestor (0 when src == dst).
  std::uint64_t switch_traversals(std::uint64_t src, std::uint64_t dst) const;

  /// Explicit instance: endpoints first, then switches level by level
  /// from the root.
  Graph build_graph() const;

 private:
  std::uint64_t leaf_of(std::uint64_t endpoint) const;

  std::uint32_t levels_;
  std::uint32_t endpoints_per_leaf_;
};

}  // namespace hmcs::topology
