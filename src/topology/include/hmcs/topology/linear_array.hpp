#pragma once

/// \file linear_array.hpp
/// The paper's blocking interconnect: a chain ("linear array") of
/// cascaded Pr-port switches (Section 5.3). Each switch devotes up to two
/// ports to its chain neighbours and the rest to endpoints.
///
/// Closed forms implemented here:
///   eq. (17)  number of switches        k = ceil(N/Pr)
///   eq. (19)  average traversed switches ~ (k+1)/3 (paper approximation)
///   bisection width = 1 (cut the middle chain link), hence no full
///   bisection bandwidth and a non-zero blocking term (eq. 20).

#include <cstdint>

#include "hmcs/topology/graph.hpp"

namespace hmcs::topology {

class LinearArray {
 public:
  /// `num_endpoints` >= 1; `radix` (Pr) >= 3 so a switch can host
  /// endpoints and two chain neighbours. Endpoints are striped onto the
  /// chain in blocks of Pr, matching eq. (17).
  LinearArray(std::uint64_t num_endpoints, std::uint32_t radix);

  std::uint64_t num_endpoints() const { return num_endpoints_; }
  std::uint32_t radix() const { return radix_; }

  /// eq. (17).
  std::uint64_t num_switches() const;

  /// Index of the switch hosting endpoint e.
  std::uint64_t switch_of(std::uint64_t endpoint) const;

  /// Switches crossed by a message from src to dst: |sw(src)-sw(dst)|+1
  /// (0 when src == dst).
  std::uint64_t switch_traversals(std::uint64_t src, std::uint64_t dst) const;

  /// The paper's average-case figure used in eq. (19): (k+1)/3.
  double paper_average_traversals() const;

  /// Exact expectation of switch_traversals over uniformly random
  /// distinct endpoint pairs.
  double average_traversals() const;

  /// 1 for k >= 2 (the weakest chain link); for a single switch the
  /// chain degenerates to a star whose bisection is limited by endpoint
  /// links, reported as ceil(N/2).
  std::uint64_t bisection_width() const;

  bool is_full_bisection() const { return num_switches() <= 1; }

  /// Explicit instance: endpoints 0..N-1 first, then the k chain
  /// switches left to right with single links between neighbours.
  Graph build_graph() const;

 private:
  std::uint64_t num_endpoints_;
  std::uint32_t radix_;
};

}  // namespace hmcs::topology
