#pragma once

/// \file maxflow.hpp
/// Dinic's maximum-flow algorithm. Used to *measure* the bisection
/// bandwidth of constructed interconnect graphs: max-flow between the two
/// endpoint halves equals (by max-flow/min-cut) the minimum number of
/// cables whose removal separates them, which is exactly the paper's
/// bisection-width notion for the canonical half/half split (Theorem 1,
/// Definition 1).

#include <cstdint>
#include <vector>

namespace hmcs::topology {

class MaxFlow {
 public:
  explicit MaxFlow(std::size_t num_vertices);

  /// Adds a directed edge u -> v with the given capacity.
  void add_edge(std::size_t u, std::size_t v, std::uint64_t capacity);

  /// Adds an undirected edge (capacity in both directions).
  void add_undirected_edge(std::size_t u, std::size_t v, std::uint64_t capacity);

  /// Computes the maximum s -> t flow. May be called once per instance.
  std::uint64_t solve(std::size_t source, std::size_t sink);

  /// After solve(): vertices reachable from the source in the residual
  /// graph (the source side of a minimum cut).
  std::vector<bool> min_cut_source_side() const;

 private:
  struct Edge {
    std::uint32_t to;
    std::uint64_t capacity;
    std::uint32_t reverse_index;
  };

  bool build_levels(std::size_t source, std::size_t sink);
  std::uint64_t push(std::size_t v, std::size_t sink, std::uint64_t limit);

  std::vector<std::vector<Edge>> adjacency_;
  std::vector<int> level_;
  std::vector<std::size_t> next_edge_;
  std::size_t source_ = 0;
  bool solved_ = false;
};

}  // namespace hmcs::topology
