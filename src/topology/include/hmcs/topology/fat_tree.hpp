#pragma once

/// \file fat_tree.hpp
/// The paper's non-blocking interconnect: a multi-stage fat-tree built
/// from Pr-port switches (Section 5.2, Figure 3). Middle stages split
/// their ports evenly into Pr/2 down-links and Pr/2 up-links; the top
/// stage is all down-links.
///
/// Closed forms implemented here:
///   eq. (12)  number of stages      d = ceil(log_{Pr/2}(N/2))
///   eq. (13)  number of switches    k = (d-1)*ceil(N/(Pr/2)) + ceil(N/Pr)
///   eq. (14)  bisection width       ceil(N/2)   (Theorem 1)
///
/// Beyond the closed forms, build_graph() wires an explicit instance
/// (butterfly wiring inside pods, round-robin striping to the top stage)
/// so tests can verify Proposition 1 and Theorem 1 on the actual graph
/// via max-flow/min-cut rather than trusting the algebra.

#include <cstdint>

#include "hmcs/topology/graph.hpp"

namespace hmcs::topology {

class FatTree {
 public:
  /// `num_endpoints` >= 1; `radix` (Pr) even and >= 4.
  FatTree(std::uint64_t num_endpoints, std::uint32_t radix);

  std::uint64_t num_endpoints() const { return num_endpoints_; }
  std::uint32_t radix() const { return radix_; }
  std::uint32_t half_radix() const { return radix_ / 2; }

  /// eq. (12); 0 when the network has <= 1 endpoint (no switches needed).
  std::uint32_t num_stages() const { return num_stages_; }

  /// eq. (13) summed from switches_in_stage().
  std::uint64_t num_switches() const;

  /// Switch count of stage s in [1, num_stages()].
  std::uint64_t switches_in_stage(std::uint32_t stage) const;

  /// eq. (14): ceil(N/2); 0 for a single endpoint.
  std::uint64_t bisection_width() const;

  /// Theorem 1: a fat-tree always offers full bisection bandwidth.
  static constexpr bool is_full_bisection() { return true; }

  /// Endpoints covered by one stage-s subtree (the locality granularity
  /// used for per-pair hop counts). Stage d covers all endpoints.
  std::uint64_t subtree_span(std::uint32_t stage) const;

  /// Exact number of switches a message crosses from src to dst
  /// (0 when src == dst; 2s-1 where s is the meet stage otherwise).
  std::uint32_t switch_traversals(std::uint64_t src, std::uint64_t dst) const;

  /// The paper's conservative per-message figure, eq. (11): 2d-1.
  std::uint32_t worst_case_traversals() const;

  /// Expected switch_traversals over uniformly random distinct pairs
  /// (an exact sum, not sampled). Basis for the "exact hops vs paper's
  /// worst case" ablation.
  double average_traversals() const;

  /// True when N is an exact multiple of both Pr and (Pr/2)^(d-1), i.e.
  /// every switch port is used and the wiring below is perfectly regular.
  bool is_uniform() const;

  /// Explicit instance. Endpoint node ids are 0..N-1 in order; switches
  /// follow, stage by stage.
  Graph build_graph() const;

 private:
  std::uint64_t block_size(std::uint32_t stage) const;

  std::uint64_t num_endpoints_;
  std::uint32_t radix_;
  std::uint32_t num_stages_;
};

}  // namespace hmcs::topology
