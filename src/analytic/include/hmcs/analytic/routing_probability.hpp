#pragma once

/// \file routing_probability.hpp
/// eq. (8): the probability P that a processor's uniformly chosen
/// destination lies outside its own cluster,
///
///     P = (C-1) * N0 / (C * N0 - 1)
///
/// i.e. (nodes outside my cluster) / (all nodes but me), per assumption 3.

#include <cstdint>

namespace hmcs::analytic {

/// Requires C >= 1, N0 >= 1, and C*N0 >= 2 unless the system is a single
/// node (C=1, N0=1), where P is defined as 0 (no destinations exist).
double inter_cluster_probability(std::uint32_t clusters,
                                 std::uint32_t nodes_per_cluster);

}  // namespace hmcs::analytic
