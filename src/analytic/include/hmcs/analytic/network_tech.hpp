#pragma once

/// \file network_tech.hpp
/// Network technology descriptions: per-link latency (alpha) and
/// bandwidth (1/beta), the heterogeneity knobs of the model (eq. 10:
/// T_ij = alpha_ij + M * beta_ij). Presets carry the paper's Table 2
/// values; Myrinet and Infiniband figures (from the same era's published
/// measurements) are included for design-space exploration beyond the
/// paper's two technologies.

#include <string>

namespace hmcs::analytic {

struct NetworkTechnology {
  std::string name;
  /// alpha: per-message latency in microseconds.
  double latency_us = 0.0;
  /// 1/beta: bandwidth in bytes per microsecond (numerically MB/s).
  double bandwidth_bytes_per_us = 0.0;

  /// beta: time to move one byte, in microseconds.
  double byte_time_us() const { return 1.0 / bandwidth_bytes_per_us; }

  /// eq. (10): raw link transmission time for an M-byte message.
  double transmission_time_us(double message_bytes) const {
    return latency_us + message_bytes * byte_time_us();
  }
};

/// Table 2: Gigabit Ethernet — 80 us latency, 94 MB/s.
NetworkTechnology gigabit_ethernet();

/// Table 2: Fast Ethernet — 50 us latency, 10.5 MB/s.
NetworkTechnology fast_ethernet();

/// Myrinet 2000 (Lobosco et al. 2002 measurements): ~9 us, ~230 MB/s.
NetworkTechnology myrinet();

/// Infiniband 4x SDR era figures: ~6 us, ~700 MB/s.
NetworkTechnology infiniband();

/// Validates a custom technology (positive bandwidth, non-negative
/// latency); throws hmcs::ConfigError with the technology name otherwise.
void validate(const NetworkTechnology& tech);

}  // namespace hmcs::analytic
