#pragma once

/// \file config_io.hpp
/// Loading a SystemConfig from a key=value file (see
/// examples/configs/*.cfg for complete samples):
///
///   clusters              = 8
///   nodes_per_cluster     = 32
///   architecture          = non-blocking        # or: blocking
///   icn1                  = gigabit-ethernet    # preset, or custom:
///   ecn1                  = custom:MyNet,25,120 # name,latency_us,MB/s
///   icn2                  = fast-ethernet
///   message_bytes         = 1024
///   generation_rate_per_s = 250
///   switch_ports          = 24                  # optional (default 24)
///   switch_latency_us     = 10                  # optional (default 10)
///
/// Unknown keys are rejected so typos fail loudly.

#include <string>

#include "hmcs/analytic/system_config.hpp"
#include "hmcs/util/keyvalue.hpp"

namespace hmcs::analytic {

/// Parses a technology spec: a preset name ("gigabit-ethernet",
/// "fast-ethernet", "myrinet", "infiniband") or
/// "custom:<name>,<latency_us>,<bandwidth MB/s>".
NetworkTechnology parse_technology(const std::string& spec);

/// Parses "non-blocking"/"fat-tree" or "blocking"/"chain"; throws
/// hmcs::ConfigError on anything else.
NetworkArchitecture parse_architecture(const std::string& spec);

SystemConfig system_config_from(const KeyValueFile& file);
SystemConfig load_system_config(const std::string& path);

}  // namespace hmcs::analytic
