#pragma once

/// \file model_tree.hpp
/// Recursive topology description: the compositional generalisation of
/// the paper's fixed two-stage HMCS. A ModelNode is either a *leaf* — a
/// group of processors attached to its parent's network, all generating
/// at one Poisson rate — or an *internal* node — a network technology
/// joining heterogeneous children, with an *egress* network connecting
/// the whole subtree to its parent's network (the generalisation of the
/// paper's ECN1; the root has no parent and therefore no egress).
///
/// The paper's HMCS is the depth-2 special case
///
///     root(ICN2) -> C x [cluster(ICN1, egress=ECN1) -> leaf(N0, lambda)]
///
/// and the heterogeneous Cluster-of-Clusters model is the same shape
/// with per-child sizes/technologies/rates. `from_system` /
/// `from_cluster_of_clusters` lower those configs onto trees, and
/// `as_system_config` / `as_cluster_of_clusters` recognise trees of
/// exactly those shapes so the solvers can dispatch flat-shaped trees to
/// the scalar pipeline bit-identically (docs/COMPOSITION.md).
///
/// Endpoint convention (DESIGN.md note 3, generalised): a node's network
/// joins its children — a leaf child contributes its processor count, an
/// internal child contributes 1 (the subtree talks through one egress
/// port). The egress network of a node serves the same device population
/// as its internal network.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hmcs/analytic/cluster_of_clusters.hpp"
#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/analytic/system_config.hpp"

namespace hmcs::analytic {

struct ModelNode {
  /// Optional human label; never affects the model or canonical keys of
  /// lowered (flat-shaped) trees.
  std::string name;

  /// Internal nodes: the network joining this node's children.
  NetworkTechnology network;
  /// Internal non-root nodes: the boundary network to the parent level
  /// (the generalised ECN1). Ignored at the root and on leaves.
  NetworkTechnology egress;
  /// Empty for leaves; non-empty for internal nodes.
  std::vector<ModelNode> children;

  /// Leaves: processor-group size (>= 1).
  std::uint32_t processors = 0;
  /// Leaves: per-processor Poisson generation rate, messages/us (>= 0).
  double generation_rate_per_us = 0.0;

  bool is_leaf() const { return children.empty(); }

  static ModelNode leaf(std::uint32_t processors, double rate_per_us,
                        std::string name = {});
  /// Root-style internal node (no egress).
  static ModelNode internal(NetworkTechnology network,
                            std::vector<ModelNode> children,
                            std::string name = {});
  /// Non-root internal node with an egress boundary network.
  static ModelNode internal(NetworkTechnology network,
                            NetworkTechnology egress,
                            std::vector<ModelNode> children,
                            std::string name = {});
};

/// A complete model: the topology tree plus the shared fabric/workload
/// parameters that the paper keeps global (assumptions 5-6 generalise
/// per-subtree; switch fabric and message size stay system-wide).
struct ModelTree {
  ModelNode root;
  SwitchParams switch_params;
  NetworkArchitecture architecture = NetworkArchitecture::kNonBlocking;
  /// M: fixed message length in bytes (assumption 6).
  double message_bytes = 1024.0;
  /// Heavy-traffic workload scenario (workload.hpp), tree-wide: applies
  /// to every centre and every leaf source. from_cluster_of_clusters
  /// leaves it default (the CoC surface stays exponential-only).
  WorkloadScenario scenario;

  /// N: all processors in the tree.
  std::uint64_t total_processors() const;
  /// Network levels on the deepest root-to-leaf path (flat HMCS = 2).
  std::uint32_t depth() const;

  /// Throws hmcs::ConfigError when any field is out of domain: the root
  /// must be internal, internal nodes need >= 1 child and valid
  /// networks, leaves need >= 1 processors and a finite rate >= 0.
  void validate() const;

  static ModelTree from_system(const SystemConfig& config);
  static ModelTree from_cluster_of_clusters(
      const ClusterOfClustersConfig& config);

  /// Recognises the exact two-stage homogeneous shape produced by
  /// `from_system` (every root child an internal node over one leaf, all
  /// children identical) and returns the equivalent flat config;
  /// std::nullopt for any other shape. Solvers use this to route
  /// flat-shaped trees through the scalar pipeline bit-identically.
  std::optional<SystemConfig> as_system_config() const;
  /// Same recognition with per-child heterogeneity allowed — the
  /// Cluster-of-Clusters shape.
  std::optional<ClusterOfClustersConfig> as_cluster_of_clusters() const;
};

// --- Flattened traversal ----------------------------------------------------

/// One internal node in DFS pre-order (parents precede children, so
/// index 0 is the root and bottom-up passes iterate indices descending).
struct FlatNode {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t parent = npos;  ///< index into FlatTreeView::nodes
  const ModelNode* node = nullptr;
  std::string path;  ///< "root", "root.children[1]", ...

  /// S(u): processors in this node's subtree.
  std::uint64_t subtree_processors = 0;
  /// gen(u): aggregate generation rate of the subtree, messages/us.
  double subtree_generation_rate = 0.0;
  /// Devices attached to this node's network (leaf children contribute
  /// their processor count, internal children contribute 1).
  std::uint64_t attached_endpoints = 0;

  std::vector<std::size_t> internal_children;  ///< indices into nodes
  std::vector<std::size_t> leaf_children;      ///< indices into leaves
};

struct FlatLeaf {
  std::size_t parent = 0;  ///< index into FlatTreeView::nodes
  std::uint32_t processors = 0;
  double rate_per_us = 0.0;
  std::string path;
};

/// The shared flattening both the analytic solver (tree_model.cpp) and
/// the validation DES (sim/tree_sim.cpp) consume, so their node
/// numbering, subtree aggregates, and endpoint counts cannot drift.
struct FlatTreeView {
  std::vector<FlatNode> nodes;   ///< internal nodes, DFS pre-order
  std::vector<FlatLeaf> leaves;  ///< DFS order
  std::uint64_t total_processors = 0;
  double total_generation_rate = 0.0;
};

/// Validates the tree and flattens it.
FlatTreeView flatten(const ModelTree& tree);

/// One queueing centre: an internal node's network, or a non-root
/// internal node's egress. DFS pre-order, network before egress — the
/// flat lowering yields [ICN2, ICN1_0, ECN1_0, ICN1_1, ECN1_1, ...].
struct TreeCenter {
  std::size_t node = 0;  ///< index into FlatTreeView::nodes
  bool egress = false;
  std::string path;  ///< node path + ".icn" or ".egress"
  ServiceTimeBreakdown service;
};

std::vector<TreeCenter> tree_centers(const ModelTree& tree,
                                     const FlatTreeView& view);

// --- Exchangeability --------------------------------------------------------

/// True when every internal node's children are mutually identical
/// (recursively: same sizes, rates, and technologies). The tree's
/// automorphism group then acts transitively on processors — every
/// customer is statistically identical — which is exactly the
/// precondition for the single-class station-class MVA path
/// (SourceThrottling::kExactMva) to be exact.
bool is_uniform_tree(const ModelTree& tree);

// --- Node-path targeting ----------------------------------------------------

/// Numeric field addressing for sweep axes and tooling. Grammar:
///
///   root(.children[<index>])* . <field>
///
/// with <field> one of
///   icn.latency_us | icn.bandwidth_mb_per_s | icn.bandwidth      (internal)
///   egress.latency_us | egress.bandwidth_mb_per_s | egress.bandwidth
///                                                      (internal non-root)
///   processors | generation_rate_per_us | lambda_per_s           (leaf)
///
/// bandwidth is in MB/s (numerically bytes/us); lambda_per_s converts to
/// the internal messages/us. Throws hmcs::ConfigError on a malformed
/// path, an out-of-range index, or a field that does not apply to the
/// addressed node.
double tree_path_value(const ModelTree& tree, std::string_view path);
void set_tree_path(ModelTree& tree, std::string_view path, double value);

}  // namespace hmcs::analytic
