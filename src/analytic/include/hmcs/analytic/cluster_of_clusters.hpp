#pragma once

/// \file cluster_of_clusters.hpp
/// Heterogeneous Cluster-of-Clusters model — the generalisation the paper
/// names as future work ("propose a similar model to another class of
/// multi-cluster systems, Cluster-of-Clusters"). Clusters may differ in
/// size, network technology, and per-processor generation rate.
///
/// Derivation (uniform destinations over all other nodes, assumption 3):
///   P_i        = (N - N_i) / (N - 1)                 per-cluster eq. (8)
///   lambda_I1i = N_i (1 - P_i) lam_i                 local traffic
///   out_i      = N_i P_i lam_i                       egress of cluster i
///   in_i       = sum_{j != i} N_j lam_j N_i/(N-1)    ingress of cluster i
///   lambda_E1i = out_i + in_i
///   lambda_I2  = sum_i out_i
/// A message from cluster j to cluster i costs W_E1j + W_I2 + W_E1i; a
/// local one costs W_I1j. The blocked-source fixed point scales every
/// cluster's rate by a common factor phi = (N - L)/N (eq. 7 with the
/// consistent ECN1 queue-length accounting — each centre counted once).
///
/// With identical clusters this model reduces exactly to the
/// Super-Cluster model (QueueLengthRule::kConsistent); the test suite
/// pins that reduction.
///
/// Since the recursive-tree refactor this config is a thin *view*: it
/// lowers onto a depth-2 ModelTree (model_tree.hpp) and
/// predict_cluster_of_clusters delegates to predict_model_tree
/// (tree_model.hpp), which owns the derivation above as its depth-2
/// special case. Homogeneous instances dispatch further down to the
/// scalar SystemConfig pipeline, making the Super-Cluster reduction
/// exact. See docs/COMPOSITION.md.

#include <cstdint>
#include <vector>

#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/analytic/system_config.hpp"

namespace hmcs::analytic {

struct ClusterSpec {
  std::uint32_t nodes = 1;         ///< N_i
  NetworkTechnology icn1;          ///< intra-cluster network of cluster i
  NetworkTechnology ecn1;          ///< egress network of cluster i
  /// Per-processor generation rate of this cluster's processors
  /// (heterogeneous processors generate at different rates).
  double generation_rate_per_us = 0.25e-3;
};

struct ClusterOfClustersConfig {
  std::vector<ClusterSpec> clusters;
  NetworkTechnology icn2;
  SwitchParams switch_params;
  NetworkArchitecture architecture = NetworkArchitecture::kNonBlocking;
  double message_bytes = 1024.0;

  std::uint64_t total_nodes() const;
  void validate() const;

  /// A homogeneous instance mirroring `config` (for reduction tests).
  static ClusterOfClustersConfig from_super_cluster(const SystemConfig& config);
};

/// How the heterogeneous prediction handles the blocked-source effect.
enum class HeteroSolver {
  /// Open Jackson centres + the eq. (7)-style throttle factor — the
  /// direct generalisation of the paper's method.
  kOpenFixedPoint,
  /// Multi-class Bard-Schweitzer approximate MVA of the closed network:
  /// one class per cluster (own population, think time, visit ratios).
  /// More accurate near saturation, like kExactMva is for the
  /// homogeneous model (exact multi-class MVA is intractable: its state
  /// space is the product of class populations).
  kApproxMva,
};

struct HeteroCenterState {
  double arrival_rate;
  double service_rate;
  double utilization;
  double response_time_us;
  double queue_length;
};

struct HeteroLatencyPrediction {
  /// Generation-weighted mean latency over all source clusters.
  double mean_latency_us;
  /// Mean latency of messages originating in each cluster.
  std::vector<double> per_cluster_latency_us;
  /// Common throttle factor phi applied to every cluster's rate.
  double effective_rate_scale;
  double total_queue_length;
  bool fixed_point_converged;
  std::uint32_t fixed_point_iterations;

  std::vector<HeteroCenterState> icn1;  ///< one per cluster
  std::vector<HeteroCenterState> ecn1;  ///< one per cluster
  HeteroCenterState icn2;
};

HeteroLatencyPrediction predict_cluster_of_clusters(
    const ClusterOfClustersConfig& config,
    HeteroSolver solver = HeteroSolver::kOpenFixedPoint);

}  // namespace hmcs::analytic
