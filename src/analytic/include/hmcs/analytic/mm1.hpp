#pragma once

/// \file mm1.hpp
/// M/M/1 service-centre formulas used by the Jackson-network model. The
/// paper models every communication network as an exponential
/// single-server queue; eq. (16) is the response time W = 1/(mu-lambda).

#include <cmath>
#include <limits>

#include "hmcs/util/error.hpp"

namespace hmcs::analytic::mm1 {

/// Offered load rho = lambda/mu. Requires mu > 0, lambda >= 0.
inline double utilization(double lambda, double mu) {
  require(mu > 0.0, "mm1: service rate must be > 0");
  require(lambda >= 0.0, "mm1: arrival rate must be >= 0");
  return lambda / mu;
}

inline bool is_stable(double lambda, double mu) {
  return utilization(lambda, mu) < 1.0;
}

/// eq. (16): mean response time (wait + service). Infinite when the
/// centre is saturated (lambda >= mu) — callers that iterate the
/// effective-rate fixed point rely on this growing without bound rather
/// than throwing.
inline double response_time(double lambda, double mu) {
  if (!is_stable(lambda, mu)) return std::numeric_limits<double>::infinity();
  return 1.0 / (mu - lambda);
}

/// Mean waiting time in queue only: W - 1/mu.
inline double waiting_time(double lambda, double mu) {
  const double w = response_time(lambda, mu);
  return std::isinf(w) ? w : w - 1.0 / mu;
}

/// Mean number in system L = rho/(1-rho) (Little: L = lambda * W).
inline double number_in_system(double lambda, double mu) {
  const double rho = utilization(lambda, mu);
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return rho / (1.0 - rho);
}

/// Mean number waiting in queue Lq = rho^2/(1-rho).
inline double number_in_queue(double lambda, double mu) {
  const double rho = utilization(lambda, mu);
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return rho * rho / (1.0 - rho);
}

}  // namespace hmcs::analytic::mm1

/// G/G/1 approximation via Allen–Cunneen: both the arrival process
/// (squared coefficient of variation ca2 of the interarrival times) and
/// the service time (cs2) are general. The queueing term scales with
/// (ca2+cs2)/2; it is exact for M/G/1 (ca2 = 1, Pollaczek–Khinchine)
/// and therefore for M/M/1 (ca2 = cs2 = 1), and a well-tested heavy-
/// traffic approximation elsewhere (error vanishes as rho -> 1).
namespace hmcs::analytic::gg1 {

/// Mean response time W = S + rho*S*(ca2+cs2) / (2(1-rho)). Infinite
/// when the centre is saturated — the effective-rate fixed point relies
/// on this growing without bound rather than throwing.
inline double response_time(double lambda, double mu, double ca2,
                            double cs2) {
  require(ca2 >= 0.0, "gg1: arrival ca^2 must be >= 0");
  require(cs2 >= 0.0, "gg1: service cs^2 must be >= 0");
  const double rho = mm1::utilization(lambda, mu);
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  const double service = 1.0 / mu;
  return service + rho * service * (ca2 + cs2) / (2.0 * (1.0 - rho));
}

/// Mean number in system by Little's law.
inline double number_in_system(double lambda, double mu, double ca2,
                               double cs2) {
  const double w = response_time(lambda, mu, ca2, cs2);
  return std::isinf(w) ? w : lambda * w;
}

}  // namespace hmcs::analytic::gg1

/// M/G/1 specialisation via Pollaczek-Khinchine: the service time has
/// squared coefficient of variation cv2 (1 = exponential, recovering
/// M/M/1; 0 = deterministic, M/D/1, halving the queueing term). This is
/// Allen–Cunneen at ca2 = 1 — (1+cv2) and (ca2+cv2) are the same
/// floating-point sum there, so the delegation is bit-identical.
namespace hmcs::analytic::mg1 {

/// Mean response time W = S + rho*S*(1+cv2) / (2(1-rho)).
inline double response_time(double lambda, double mu, double cv2) {
  return gg1::response_time(lambda, mu, 1.0, cv2);
}

/// Mean number in system by Little's law.
inline double number_in_system(double lambda, double mu, double cv2) {
  return gg1::number_in_system(lambda, mu, 1.0, cv2);
}

}  // namespace hmcs::analytic::mg1
