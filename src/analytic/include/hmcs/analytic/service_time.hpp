#pragma once

/// \file service_time.hpp
/// Mean service time of one communication network, Section 5:
///
///   non-blocking fat-tree, eq. (11):
///       T = alpha + (2d-1) alpha_sw + M beta,        T_B = 0
///   blocking linear array, eqs. (19)-(21):
///       T = alpha + ((k+1)/3) alpha_sw + (N/2) M beta
///       (the (N/2-1) M beta blocking term of eq. (20) folded into the
///        M beta transmission term)
///
/// `endpoints` is the number of devices attached to *that* network: N0
/// for a cluster's ICN1/ECN1, C for the second-stage ICN2 (DESIGN.md
/// note 3). The returned breakdown keeps the terms separate so tests and
/// documentation can reference each physical contribution.

#include <cstdint>

#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/analytic/system_config.hpp"

namespace hmcs::analytic {

struct ServiceTimeBreakdown {
  double link_latency_us;     ///< alpha
  double switch_latency_us;   ///< (2d-1) alpha_sw  or  ((k+1)/3) alpha_sw
  double transmission_us;     ///< M beta
  double blocking_us;         ///< eq. (20); 0 for non-blocking networks

  double total_us() const {
    return link_latency_us + switch_latency_us + transmission_us + blocking_us;
  }
  /// Service rate mu = 1/T in messages per microsecond.
  double service_rate() const { return 1.0 / total_us(); }
};

/// Computes the mean service time of a network with `endpoints` attached
/// devices. A single-endpoint network never carries traffic; it is given
/// a pure link time (alpha + M beta) so its service rate stays finite.
ServiceTimeBreakdown network_service_time(const NetworkTechnology& tech,
                                          std::uint64_t endpoints,
                                          const SwitchParams& sw,
                                          NetworkArchitecture architecture,
                                          double message_bytes);

/// All three centres of a SystemConfig at once.
struct CenterServiceTimes {
  ServiceTimeBreakdown icn1;
  ServiceTimeBreakdown ecn1;
  ServiceTimeBreakdown icn2;
};

CenterServiceTimes center_service_times(const SystemConfig& config);

}  // namespace hmcs::analytic
