#pragma once

/// \file tree_model.hpp
/// The analytic model evaluated over a recursive ModelTree — the
/// compositional generalisation of the paper's pipeline
/// (docs/COMPOSITION.md):
///
///   routing     eq. (8) generalises to uniform-destination counting per
///               level: a message from leaf group a meets its
///               destination at ancestor v with probability
///               (S(v) - S(below)) / (N - 1), where S(below) is the
///               subtree the message came up through (1 for the source
///               processor itself at the first level);
///   arrivals    eqs. (1)-(5) generalise to bottom-up aggregation: a
///               node's network carries the traffic its children send
///               past each other, an egress carries its subtree's exit
///               plus entry traffic;
///   fixed point eqs. (6)-(7) generalise to a throttle factor phi on
///               every leaf rate (the same blocked-source argument);
///   latency     eq. (15) generalises to a sum over the source leaf's
///               ancestors of P(LCA = v) * (egress climb + W_net(v) +
///               expected egress descent).
///
/// SourceThrottling::kExactMva maps to exact station-class MVA when the
/// tree is uniform (is_uniform_tree — all customers exchangeable) and to
/// the multi-class Bard-Schweitzer AMVA otherwise, one class per leaf.
///
/// Trees of exactly the flat two-stage shape are dispatched to the
/// scalar SystemConfig pipeline (bit-identical results); set
/// TreeModelOptions::exact_lowering = false to force the generic
/// recursion, whose results agree to rounding, not bit-for-bit.

#include <cstdint>
#include <string>
#include <vector>

#include "hmcs/analytic/fixed_point.hpp"
#include "hmcs/analytic/model_tree.hpp"

namespace hmcs::analytic {

struct TreeModelOptions {
  FixedPointOptions fixed_point;
  /// Dispatch flat-shaped trees (as_system_config) to the scalar solver
  /// for bit-identical predictions. The generic recursion is only used
  /// when this is false or the tree does not lower.
  bool exact_lowering = true;
};

/// One queueing centre of the solved tree, in tree_centers order.
struct TreeCenterPrediction {
  std::string path;  ///< node path + ".icn" or ".egress"
  bool egress = false;
  double arrival_rate;      ///< messages/us at the effective rate
  double service_rate;      ///< mu = 1/T
  double utilization;       ///< rho
  double response_time_us;  ///< W
  double queue_length;      ///< L
};

struct TreeLatencyPrediction {
  /// Generation-weighted mean latency over all source leaves.
  double mean_latency_us;
  /// Mean latency of messages originating in each leaf (DFS order).
  std::vector<double> per_leaf_latency_us;
  /// Aggregate offered generation rate of the whole tree, messages/us.
  double lambda_offered_total;
  /// Common throttle factor phi applied to every leaf's rate.
  double effective_rate_scale;
  double total_queue_length;
  bool fixed_point_converged;
  std::uint64_t fixed_point_iterations;
  /// True when the tree was recognised as flat-shaped and evaluated by
  /// the scalar pipeline (bit-identical to predict_latency).
  bool lowered_to_flat;

  std::vector<TreeCenterPrediction> centers;
};

/// Solves the model for one tree. Throws hmcs::ConfigError for invalid
/// trees; saturation is not an error (the fixed point throttles below
/// it). The MVA paths additionally require every leaf generation rate
/// to be > 0 (all-zero trees fall back to the no-load open solution).
TreeLatencyPrediction predict_model_tree(const ModelTree& tree,
                                         const TreeModelOptions& options = {});

}  // namespace hmcs::analytic
