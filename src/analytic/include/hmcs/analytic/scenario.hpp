#pragma once

/// \file scenario.hpp
/// The paper's validation scenarios (Tables 1 and 2): a 256-node system,
/// 24-port/10 us switches, and two network-heterogeneity cases —
///
///   Case 1: ICN1 = Gigabit Ethernet, ECN1 & ICN2 = Fast Ethernet
///   Case 2: ICN1 = Fast Ethernet,    ECN1 & ICN2 = Gigabit Ethernet
///
/// See DESIGN.md note 4 on the generation-rate unit: the headline
/// experiments run at 0.25 msg/ms; kPaperLiteralRate gives the text's
/// 0.25 msg/s for the low-load ablation.

#include <cstdint>

#include "hmcs/analytic/system_config.hpp"

namespace hmcs::analytic {

enum class HeterogeneityCase { kCase1, kCase2 };

const char* to_string(HeterogeneityCase c);

/// Table 2 constants.
inline constexpr std::uint32_t kPaperTotalNodes = 256;
inline constexpr std::uint32_t kPaperSwitchPorts = 24;
inline constexpr double kPaperSwitchLatencyUs = 10.0;
/// Headline rate: 0.25 msg/ms = 2.5e-4 msg/us.
inline constexpr double kPaperRatePerUs = 0.25e-3;
/// The literal Table 2 reading: 0.25 msg/s.
inline constexpr double kPaperLiteralRatePerUs = 0.25e-6;

/// Builds the paper configuration for a given cluster count. `clusters`
/// must divide `total_nodes` (assumption 5: equal cluster sizes).
SystemConfig paper_scenario(HeterogeneityCase hetero, std::uint32_t clusters,
                            NetworkArchitecture architecture,
                            double message_bytes,
                            std::uint32_t total_nodes = kPaperTotalNodes,
                            double rate_per_us = kPaperRatePerUs);

/// The cluster-count sweep of Figures 4-7: 1, 2, 4, ..., 256.
const std::uint32_t* paper_cluster_sweep(std::size_t* count);

}  // namespace hmcs::analytic
