#pragma once

/// \file serialize.hpp
/// JSON serialisation of configurations and predictions, for downstream
/// tooling (plotting the figure series, archiving experiment records).
/// Output is stable: keys in declaration order, units spelled out in
/// key names.

#include <string>

#include "hmcs/analytic/cluster_of_clusters.hpp"
#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/model_tree.hpp"
#include "hmcs/analytic/system_config.hpp"
#include "hmcs/analytic/tree_model.hpp"
#include "hmcs/util/json.hpp"

namespace hmcs::analytic {

/// Appends the technology as a JSON object to an open writer position.
void write_json(JsonWriter& json, const NetworkTechnology& tech);

void write_json(JsonWriter& json, const SystemConfig& config);
void write_json(JsonWriter& json, const CenterPrediction& center);
void write_json(JsonWriter& json, const LatencyPrediction& prediction);
void write_json(JsonWriter& json, const ClusterOfClustersConfig& config);
void write_json(JsonWriter& json, const HeteroLatencyPrediction& prediction);
/// Canonical recursive schema (docs/COMPOSITION.md): keys in declaration
/// order, node names emitted only when non-empty, rates spelled as
/// lambda_per_s — the same schema tree_io.hpp parses, so
/// parse -> write -> parse round-trips and hmcs_serve can use the writer
/// as a canonical cache key for nested configs.
void write_json(JsonWriter& json, const ModelNode& node, bool root);
void write_json(JsonWriter& json, const ModelTree& tree);
void write_json(JsonWriter& json, const TreeLatencyPrediction& prediction);

/// Convenience: a standalone document.
std::string to_json(const SystemConfig& config);
std::string to_json(const LatencyPrediction& prediction);
std::string to_json(const ClusterOfClustersConfig& config);
std::string to_json(const HeteroLatencyPrediction& prediction);
std::string to_json(const ModelTree& tree);
std::string to_json(const TreeLatencyPrediction& prediction);

}  // namespace hmcs::analytic
