#pragma once

/// \file arrival_rates.hpp
/// Jackson-network arrival rates at the three service centres,
/// eqs. (1)-(5). All rates are aggregate per centre (one ICN1 and one
/// ECN1 per cluster; a single ICN2), in messages per microsecond.

#include <cstdint>

namespace hmcs::analytic {

struct ArrivalRates {
  double icn1;          ///< eq. (1):  N0 (1-P) lambda
  double ecn1_forward;  ///< eq. (2):  N0 P lambda
  double ecn1_return;   ///< eq. (4):  lambda_I2 / C = N0 P lambda
  double ecn1;          ///< eq. (5):  2 N0 P lambda
  double icn2;          ///< eq. (3):  C N0 P lambda
};

/// `lambda` is the per-processor generation rate (effective rate when the
/// blocked-source fixed point is active); `p` is eq. (8)'s inter-cluster
/// probability.
ArrivalRates compute_arrival_rates(std::uint32_t clusters,
                                   std::uint32_t nodes_per_cluster, double p,
                                   double lambda);

}  // namespace hmcs::analytic
