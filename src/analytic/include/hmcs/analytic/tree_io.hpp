#pragma once

/// \file tree_io.hpp
/// Parsing a recursive ModelTree from the nested JSON config schema
/// (docs/COMPOSITION.md), used by hmcs_serve request bodies and by
/// sweep configs:
///
///   {
///     "tree": {
///       "network": "fast-ethernet",          // or {"name","latency_us",
///       "children": [                        //     "bandwidth_mb_per_s"}
///         {
///           "network": "gigabit-ethernet",
///           "egress": "custom:Uplink,25,120",
///           "children": [{"processors": 32, "lambda_per_s": 250}]
///         },
///         ...
///       ]
///     },
///     "architecture": "non-blocking",        // optional (default)
///     "message_bytes": 1024,                 // optional
///     "switch_ports": 24,                    // optional
///     "switch_latency_us": 10                // optional
///   }
///
/// Internal nodes carry "network", "children", and (except at the root)
/// "egress"; leaves carry "processors" and "lambda_per_s". Every level
/// accepts an optional "name" and rejects unknown members, mirroring the
/// flat serve schema, so typos fail loudly in both. Technology strings
/// use the config_io vocabulary (presets or "custom:Name,lat_us,MB/s").

#include <string>

#include "hmcs/analytic/model_tree.hpp"
#include "hmcs/util/json.hpp"

namespace hmcs::analytic {

/// True when `config` is an object carrying a "tree" member — the
/// discriminator between the nested and the flat config schemas.
bool is_tree_config(const JsonValue& config);

/// Parses the nested schema above. `where` names the enclosing context
/// in error messages (e.g. "'config'"). Validates the parsed tree.
ModelTree model_tree_from_json(const JsonValue& config,
                               const std::string& where = "'config'");

/// Parses a complete JSON document with the same schema.
ModelTree load_model_tree(const std::string& text,
                          const std::string& where = "'config'");

}  // namespace hmcs::analytic
