#pragma once

/// \file system_config.hpp
/// The HMSCS system description shared by the analytical model and the
/// validation simulator: C clusters of N0 nodes, three network roles
/// (ICN1 within a cluster, ECN1 out of a cluster, ICN2 between clusters),
/// the switch fabric parameters, and the workload (fixed message size M,
/// per-processor Poisson generation rate lambda).

#include <cstdint>

#include "hmcs/analytic/network_tech.hpp"
#include "hmcs/analytic/workload.hpp"

namespace hmcs::analytic {

/// Section 5's two interconnect architectures.
enum class NetworkArchitecture {
  kNonBlocking,  ///< multi-stage fat-tree, full bisection, T_B = 0
  kBlocking,     ///< linear switch array, bisection 1, T_B = (N/2-1)M*beta
};

const char* to_string(NetworkArchitecture arch);

/// Table 2's switch fabric: Pr ports, 10 us traversal latency.
struct SwitchParams {
  std::uint32_t ports = 24;
  double latency_us = 10.0;
};

struct SystemConfig {
  /// C: number of clusters (>= 1).
  std::uint32_t clusters = 1;
  /// N0: processors per cluster (>= 1); assumption 5 makes them equal.
  std::uint32_t nodes_per_cluster = 1;

  NetworkTechnology icn1;  ///< intra-cluster network
  NetworkTechnology ecn1;  ///< cluster egress network
  NetworkTechnology icn2;  ///< second-stage inter-cluster network

  SwitchParams switch_params;
  NetworkArchitecture architecture = NetworkArchitecture::kNonBlocking;

  /// M: fixed message length in bytes (assumption 6).
  double message_bytes = 1024.0;

  /// lambda: per-processor message generation rate, in messages per
  /// microsecond (assumption 1; Poisson under the default scenario).
  /// See DESIGN.md on the paper's "0.25 msg/sec" unit reconciliation.
  double generation_rate_per_us = 0.25e-3;

  /// Heavy-traffic workload scenario (workload.hpp): service-time cv^2,
  /// arrival burstiness, failure/repair. Defaults reproduce the paper's
  /// exponential model exactly.
  WorkloadScenario scenario;

  /// N = C * N0.
  std::uint64_t total_nodes() const {
    return static_cast<std::uint64_t>(clusters) * nodes_per_cluster;
  }

  /// Throws hmcs::ConfigError when any field is out of domain.
  void validate() const;
};

}  // namespace hmcs::analytic
