#pragma once

/// \file latency_distribution.hpp
/// Beyond the mean: the full message-latency distribution.
///
/// An M/M/1 FCFS sojourn time is exactly Exp(mu - lambda). A local
/// message's latency is therefore exponential; a remote one is the sum
/// ECN1 + ICN2 + ECN1 — hypoexponential with rates
/// (r_E1, r_I2, r_E1) — and the overall latency is the P-weighted
/// mixture. This module evaluates that mixture's CDF in closed form
/// (partial fractions, including the repeated-pole ECN1 case) and
/// extracts percentiles by bisection.
///
/// Approximation notes:
///  * Sojourn times of consecutive centres on a customer's path are
///    treated as independent — exact for tandem M/M/1 queues fed by
///    Poisson arrivals (Burke/Reich), a standard approximation here.
///  * The Exp(1/W) sojourn shape holds for open M/M/1 centres, i.e. at
///    light-to-moderate load. In a deeply saturated *closed* system the
///    latency distribution concentrates (nearly all N sources queue at
///    the bottleneck and drain deterministically), so these percentiles
///    overstate the spread there. Check `reliable()` — it flags
///    predictions whose busiest traversed centre exceeds 90%
///    utilisation. The integration test pins the model against the
///    simulator's percentiles in the regime where it is reliable.

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/system_config.hpp"

namespace hmcs::analytic {

struct LatencyDistribution {
  /// P(latency <= t_us). t < 0 yields 0.
  double cdf(double t_us) const;

  /// Inverse CDF by bisection; q in (0, 1).
  double quantile(double q) const;

  /// Convenience percentiles.
  double p50_us() const { return quantile(0.50); }
  double p95_us() const { return quantile(0.95); }
  double p99_us() const { return quantile(0.99); }

  /// Mean of the mixture (equals eq. (15) by construction).
  double mean_us() const;

  /// False when the prediction came from a near-saturated centre (> 90%
  /// utilisation), where the exponential-sojourn shape no longer holds
  /// for the closed system (see the header note).
  bool reliable = true;

  // --- mixture parameters (exposed for tests) -----------------------------
  double local_weight = 0.0;   ///< 1 - P
  double local_rate = 0.0;     ///< mu_I1 - lambda_I1
  double remote_weight = 0.0;  ///< P
  double ecn1_rate = 0.0;      ///< mu_E1 - lambda_E1 (two visits)
  double icn2_rate = 0.0;      ///< mu_I2 - lambda_I2
};

/// Builds the distribution from a solved prediction (use any solver;
/// rates come from the prediction's per-centre response times). Requires
/// every traversed centre to be stable at the solution.
LatencyDistribution latency_distribution(const LatencyPrediction& prediction);

/// One-call helper: solve (exact MVA by default — its per-centre waits
/// are the closed network's) and build the distribution.
LatencyDistribution predict_latency_distribution(
    const SystemConfig& config,
    SourceThrottling method = SourceThrottling::kExactMva);

}  // namespace hmcs::analytic
