#pragma once

/// \file mva.hpp
/// Exact Mean Value Analysis for single-class closed product-form
/// queueing networks (Reiser & Lavenberg). The simulated system *is*
/// such a network: N processors cycle through an exponential think stage
/// (mean 1/lambda) and FCFS exponential service centres, so MVA computes
/// its exact steady-state means.
///
/// The paper instead approximates the closed behaviour with the
/// open-network eqs. (6)-(7); SourceThrottling::kExactMva lets the
/// latency model use this solver, and the ablation bench quantifies how
/// much accuracy the paper's approximation gives away (it is substantial
/// near saturation, e.g. the C=2 point of Figure 4).

#include <cstdint>
#include <vector>

namespace hmcs::analytic {

struct MvaStation {
  /// Expected visits per customer cycle (may be 0 for unused centres).
  double visit_ratio = 0.0;
  /// Service rate mu in messages per microsecond.
  double service_rate = 0.0;
};

struct MvaResult {
  /// System throughput X(N): completed cycles per microsecond.
  double throughput = 0.0;
  /// Per-station mean response time per visit (W_i), microseconds.
  std::vector<double> response_time_us;
  /// Per-station mean number in system (L_i).
  std::vector<double> queue_length;
  /// Mean time per cycle spent in queueing stations:
  /// sum_i v_i W_i = N/X - Z.
  double total_residence_us = 0.0;
};

/// Runs the exact MVA recursion for `population` customers over the
/// given stations plus one delay (think) stage of `think_time_us`.
/// Requires population >= 1, think_time_us >= 0, every service_rate > 0,
/// every visit_ratio >= 0.
MvaResult solve_closed_mva(const std::vector<MvaStation>& stations,
                           double think_time_us, std::uint64_t population);

// --- Multi-class approximate MVA --------------------------------------------

/// One customer class: a cluster's processors in the heterogeneous
/// model. All classes share the stations (service rates are per-station)
/// but differ in population, think time, and visit ratios.
struct MvaClass {
  std::uint64_t population = 0;
  double think_time_us = 0.0;
  /// Visits per cycle at each station; size must match the station list.
  std::vector<double> visit_ratios;
};

struct MultiClassMvaResult {
  /// Per-class throughput X_c (cycles per microsecond).
  std::vector<double> throughput;
  /// response_time_us[c][i]: class-c mean response per visit at station i.
  std::vector<std::vector<double>> response_time_us;
  /// queue_length[i]: total customers at station i (all classes).
  std::vector<double> queue_length;
  std::uint32_t iterations = 0;
  bool converged = false;
};

/// Bard-Schweitzer approximate MVA for multi-class closed networks:
/// fixed-point iteration on L with the (N_c-1)/N_c self-exclusion
/// correction. Typical accuracy is within a few percent of exact MVA,
/// whose multi-class recursion costs prod_c (N_c+1) states and is
/// infeasible beyond toy populations. Service rates must be > 0;
/// classes with zero population are rejected.
MultiClassMvaResult solve_multiclass_amva(
    const std::vector<double>& station_service_rates,
    const std::vector<MvaClass>& classes, double tolerance = 1e-10,
    std::uint32_t max_iterations = 10000);

// --- HMSCS-shaped network ---------------------------------------------------

struct SystemConfig;   // system_config.hpp
struct CenterServiceTimes;  // service_time.hpp

/// Station layout of the HMSCS closed network: C ICN1 stations (visit
/// ratio (1-P)/C each), C ECN1 stations (2P/C each, covering the source
/// and destination ECN1 visits of a remote message), one ICN2 (P).
struct HmcsMvaLayout {
  std::vector<MvaStation> stations;
  std::size_t icn1_index = 0;  ///< first ICN1 station
  std::size_t ecn1_index = 0;  ///< first ECN1 station
  std::size_t icn2_index = 0;
};

HmcsMvaLayout build_hmcs_mva_layout(const SystemConfig& config,
                                    const CenterServiceTimes& service);

}  // namespace hmcs::analytic
