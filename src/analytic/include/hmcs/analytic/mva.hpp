#pragma once

/// \file mva.hpp
/// Exact Mean Value Analysis for single-class closed product-form
/// queueing networks (Reiser & Lavenberg). The simulated system *is*
/// such a network: N processors cycle through an exponential think stage
/// (mean 1/lambda) and FCFS exponential service centres, so MVA computes
/// its exact steady-state means.
///
/// The paper instead approximates the closed behaviour with the
/// open-network eqs. (6)-(7); SourceThrottling::kExactMva lets the
/// latency model use this solver, and the ablation bench quantifies how
/// much accuracy the paper's approximation gives away (it is substantial
/// near saturation, e.g. the C=2 point of Figure 4).

#include <cstdint>
#include <vector>

namespace hmcs::util {
class CancelToken;  // util/cancel.hpp
}

namespace hmcs::analytic {

struct MvaStation {
  /// Expected visits per customer cycle (may be 0 for unused centres).
  double visit_ratio = 0.0;
  /// Service rate mu in messages per microsecond.
  double service_rate = 0.0;
};

struct MvaResult {
  /// System throughput X(N): completed cycles per microsecond.
  double throughput = 0.0;
  /// Per-station mean response time per visit (W_i), microseconds.
  std::vector<double> response_time_us;
  /// Per-station mean number in system (L_i).
  std::vector<double> queue_length;
  /// Mean time per cycle spent in queueing stations:
  /// sum_i v_i W_i = N/X - Z.
  double total_residence_us = 0.0;
};

/// Runs the exact MVA recursion for `population` customers over the
/// given stations plus one delay (think) stage of `think_time_us`.
/// Requires population >= 1, think_time_us >= 0, every service_rate > 0,
/// every visit_ratio >= 0. The recursion is O(population * stations);
/// `cancel` (when non-null) is polled every 4096 population steps so
/// per-cell deadlines bound even huge populations (docs/ROBUSTNESS.md).
MvaResult solve_closed_mva(const std::vector<MvaStation>& stations,
                           double think_time_us, std::uint64_t population,
                           const util::CancelToken* cancel = nullptr);

// --- Station-class MVA ------------------------------------------------------

/// A class of `multiplicity` identical stations (same per-station visit
/// ratio and service rate). Exchangeability makes the exact MVA
/// recursion symmetric across the members of a class: every member has
/// the same queue length at every population, so the recursion only
/// needs one update per class instead of one per station. The HMCS
/// layout (C ICN1 + C ECN1 + 1 ICN2) collapses from 2C+1 stations to 3
/// classes — an asymptotic win in C for the O(N * stations) recursion.
struct MvaStationClass {
  /// Visit ratio of *each* member station (not the class aggregate).
  double visit_ratio = 0.0;
  double service_rate = 0.0;
  std::uint64_t multiplicity = 1;
};

struct MvaClassResult {
  /// System throughput X(N): completed cycles per microsecond.
  double throughput = 0.0;
  /// Per-class mean response time per visit at one member station (us).
  std::vector<double> response_time_us;
  /// Per-class mean number in system at *one* member station.
  std::vector<double> queue_length;
  /// sum_k m_k v_k W_k = N/X - Z, identical to MvaResult's definition.
  double total_residence_us = 0.0;
};

/// Exact MVA over station classes: algebraically identical to expanding
/// every class into `multiplicity` stations and running
/// solve_closed_mva, but costs O(population * classes). Floating-point
/// results agree with the expanded recursion to <= 1e-12 relative error
/// (the class path sums a class's cycle contribution as m*v*W where the
/// scalar path adds v*W m times). Same preconditions as
/// solve_closed_mva, plus multiplicity >= 1.
MvaClassResult solve_closed_mva_classes(
    const std::vector<MvaStationClass>& classes, double think_time_us,
    std::uint64_t population, const util::CancelToken* cancel = nullptr);

// --- Multi-class approximate MVA --------------------------------------------

/// One customer class: a cluster's processors in the heterogeneous
/// model. All classes share the stations (service rates are per-station)
/// but differ in population, think time, and visit ratios.
struct MvaClass {
  std::uint64_t population = 0;
  double think_time_us = 0.0;
  /// Visits per cycle at each station; size must match the station list.
  std::vector<double> visit_ratios;
};

struct MultiClassMvaResult {
  /// Per-class throughput X_c (cycles per microsecond).
  std::vector<double> throughput;
  /// response_time_us[c][i]: class-c mean response per visit at station i.
  std::vector<std::vector<double>> response_time_us;
  /// queue_length[i]: total customers at station i (all classes).
  std::vector<double> queue_length;
  std::uint32_t iterations = 0;
  bool converged = false;
};

/// Bard-Schweitzer approximate MVA for multi-class closed networks:
/// fixed-point iteration on L with the (N_c-1)/N_c self-exclusion
/// correction. Typical accuracy is within a few percent of exact MVA,
/// whose multi-class recursion costs prod_c (N_c+1) states and is
/// infeasible beyond toy populations. Service rates must be > 0;
/// classes with zero population are rejected.
MultiClassMvaResult solve_multiclass_amva(
    const std::vector<double>& station_service_rates,
    const std::vector<MvaClass>& classes, double tolerance = 1e-10,
    std::uint32_t max_iterations = 10000);

// --- HMSCS-shaped network ---------------------------------------------------

struct SystemConfig;   // system_config.hpp
struct CenterServiceTimes;  // service_time.hpp

/// Station layout of the HMSCS closed network: C ICN1 stations (visit
/// ratio (1-P)/C each), C ECN1 stations (2P/C each, covering the source
/// and destination ECN1 visits of a remote message), one ICN2 (P).
struct HmcsMvaLayout {
  std::vector<MvaStation> stations;
  std::size_t icn1_index = 0;  ///< first ICN1 station
  std::size_t ecn1_index = 0;  ///< first ECN1 station
  std::size_t icn2_index = 0;
};

HmcsMvaLayout build_hmcs_mva_layout(const SystemConfig& config,
                                    const CenterServiceTimes& service);

/// Class-collapsed HMCS layout: class 0 = the C ICN1 stations, class 1 =
/// the C ECN1 stations, class 2 = the single ICN2. Expanding it
/// reproduces build_hmcs_mva_layout station by station.
struct HmcsMvaClassLayout {
  std::vector<MvaStationClass> classes;
  std::size_t icn1_class = 0;
  std::size_t ecn1_class = 1;
  std::size_t icn2_class = 2;
};

HmcsMvaClassLayout build_hmcs_mva_class_layout(const SystemConfig& config,
                                               const CenterServiceTimes& service);

}  // namespace hmcs::analytic
