#pragma once

/// \file latency_model.hpp
/// The end-to-end analytical model (Section 4): combines the routing
/// probability (eq. 8), Jackson arrival rates (eqs. 1-5), per-network
/// service times (Section 5), the blocked-source fixed point (eqs. 6-7),
/// and eq. (15)
///
///     T_W = (1-P) W_I1 + P (W_I2 + 2 W_E1)
///
/// into a mean-message-latency prediction with full per-centre
/// diagnostics. This is the paper's primary deliverable.

#include <cstdint>

#include "hmcs/analytic/arrival_rates.hpp"
#include "hmcs/analytic/fixed_point.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/analytic/system_config.hpp"

namespace hmcs::analytic {

struct ModelOptions {
  FixedPointOptions fixed_point;
};

/// Per-service-centre view of the solved network.
struct CenterPrediction {
  double arrival_rate;      ///< messages/us at lambda_effective
  double service_rate;      ///< mu = 1/T
  double utilization;       ///< rho
  double response_time_us;  ///< W = 1/(mu - lambda), eq. (16)
  double queue_length;      ///< L = rho/(1-rho)
};

struct LatencyPrediction {
  /// eq. (15) evaluated at the effective rate: the headline number.
  double mean_latency_us;

  double inter_cluster_probability;  ///< eq. (8)
  double lambda_offered;             ///< configured per-processor rate
  double lambda_effective;           ///< eq. (7) fixed point
  double total_queue_length;         ///< eq. (6) at the fixed point
  bool fixed_point_converged;
  /// Solver iterations; the exact-MVA path reports its population steps
  /// here, so the field is 64-bit (total_nodes may exceed 2^32).
  std::uint64_t fixed_point_iterations;

  CenterPrediction icn1;
  CenterPrediction ecn1;
  CenterPrediction icn2;
  CenterServiceTimes service_times;
};

/// Solves the model for one configuration. Throws hmcs::ConfigError for
/// invalid configurations; a saturated system is *not* an error — the
/// fixed point throttles lambda_effective below saturation, exactly the
/// behaviour assumption 4 models.
LatencyPrediction predict_latency(const SystemConfig& config,
                                  const ModelOptions& options = {});

struct HmcsMvaClassLayout;  // mva.hpp
struct MvaClassResult;      // mva.hpp

namespace detail {

/// Epilogue shared by predict_latency and the batch solver
/// (batch_solver.hpp): assembles the full prediction from an
/// already-solved open-network fixed point. Keeping one implementation
/// guarantees the batch path's per-cell post-processing is bit-identical
/// to the scalar path's.
/// `options` carries the distribution parameters (service cs^2, arrival
/// ca^2, failure/repair) applied to every centre.
LatencyPrediction finish_open_prediction(const SystemConfig& config, double p,
                                         const CenterServiceTimes& service,
                                         const FixedPointResult& fixed_point,
                                         const FixedPointOptions& options);

/// Same, for the kExactMva path: assembles the prediction from the
/// solved station-class MVA recursion.
LatencyPrediction finish_mva_prediction(const SystemConfig& config, double p,
                                        const CenterServiceTimes& service,
                                        const HmcsMvaClassLayout& layout,
                                        const MvaClassResult& mva);

}  // namespace detail

}  // namespace hmcs::analytic
