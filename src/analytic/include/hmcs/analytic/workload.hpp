#pragma once

/// \file workload.hpp
/// Heavy-traffic workload scenarios (docs/WORKLOADS.md): non-exponential
/// service (G/G/1 via Allen–Cunneen, mm1.hpp), bursty arrivals (a
/// 2-state Markov-modulated Poisson process reduced to an effective
/// interarrival ca^2), and failure/repair performability (preemptive-
/// resume breakdowns folded into an effective completion-time
/// distribution, à la the Beowulf performability literature). The
/// defaults — cv^2 = 1, Poisson arrivals, no failures — reproduce the
/// paper's exponential model exactly, and every serialisation surface
/// collapses them onto the pre-scenario schema so existing cache keys
/// and snapshots stay valid.

#include <optional>

#include "hmcs/util/json.hpp"

namespace hmcs::analytic {

/// 2-state MMPP arrival burstiness, parameterised so the *mean* rate is
/// whatever the config already says (generation_rate_per_us): the
/// process alternates between a base state and a burst state whose rate
/// is `burst_ratio` times the base rate; `burst_fraction` is the
/// long-run fraction of time spent bursting, and `burst_dwell_us` the
/// mean dwell time per burst. burst_ratio = 1 degenerates to Poisson.
struct MmppArrivals {
  double burst_ratio = 4.0;
  double burst_fraction = 0.1;
  double burst_dwell_us = 1000.0;

  void validate() const;
};

/// MMPP resolved against a mean rate: per-state arrival rates and
/// state-leaving rates (all per microsecond).
struct MmppRates {
  double base_rate;    ///< r0: arrival rate in the base state
  double burst_rate;   ///< r1: arrival rate in the burst state
  double leave_base;   ///< s0: base -> burst switching rate
  double leave_burst;  ///< s1: burst -> base switching rate
};

/// Solves for the per-state rates so that the time-stationary mean of
/// the MMPP equals `mean_rate_per_us`. Requires mean_rate_per_us >= 0
/// (rates are all 0 at 0).
MmppRates resolve_mmpp(const MmppArrivals& mmpp, double mean_rate_per_us);

/// Squared coefficient of variation of the MMPP interarrival times at
/// the given mean rate, via the exact 2-phase Markovian-arrival-process
/// moments. >= 1, rate-dependent (burstiness matters more when bursts
/// hold many arrivals); -> 1 as mean_rate -> 0. Returns 1 when the
/// mean rate is 0.
double mmpp_arrival_scv(const MmppArrivals& mmpp, double mean_rate_per_us);

/// Per-centre breakdown/repair: Poisson failures at rate 1/mtbf_us
/// strike a centre while it serves; each costs an exponential repair
/// with mean mttr_us, after which service resumes where it left off
/// (preemptive resume). Availability A = mtbf/(mtbf+mttr).
struct FailureRepair {
  double mtbf_us = 1e6;
  double mttr_us = 1e3;

  double availability() const { return mtbf_us / (mtbf_us + mttr_us); }
  void validate() const;
};

/// The full scenario attached to a SystemConfig/ModelTree. `mmpp`
/// engaged overrides `arrival_ca2` (the effective ca^2 is derived per
/// arrival rate); both default to the paper's exponential model.
struct WorkloadScenario {
  /// Squared coefficient of variation of every centre's service time
  /// (1 = exponential, 0 = deterministic, >1 = hyperexponential).
  double service_cv2 = 1.0;
  /// Interarrival-time ca^2 fed to the Allen–Cunneen term when `mmpp`
  /// is not engaged (1 = Poisson).
  double arrival_ca2 = 1.0;
  std::optional<MmppArrivals> mmpp;
  std::optional<FailureRepair> failure;

  /// True for the paper's exponential model: every serialiser skips the
  /// scenario entirely in that case, keeping canonical keys byte-
  /// identical to the pre-scenario schema.
  bool is_default() const;
  void validate() const;
};

bool operator==(const MmppArrivals& a, const MmppArrivals& b);
bool operator==(const FailureRepair& a, const FailureRepair& b);
bool operator==(const WorkloadScenario& a, const WorkloadScenario& b);

/// Parses the "workload" JSON object (docs/WORKLOADS.md):
///   {"service_cv2": 4.0,
///    "arrival_ca2": 2.0 | "mmpp": {"burst_ratio":..., "burst_fraction":...,
///                                  "burst_dwell_us":...},
///    "failure": {"mtbf_us":..., "mttr_us":...}}
/// Every member optional; unknown members rejected; "arrival_ca2" and
/// "mmpp" are mutually exclusive.
WorkloadScenario workload_from_json(const JsonValue& value);

/// Canonical writer (declaration order, defaults explicit) used for
/// cache keys: emits service_cv2, then mmpp or arrival_ca2, then
/// failure only when engaged — so spelling a default explicitly
/// collapses onto the same bytes. Callers gate on is_default().
void write_json(JsonWriter& json, const WorkloadScenario& scenario);

}  // namespace hmcs::analytic
