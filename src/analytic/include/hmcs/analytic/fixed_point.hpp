#pragma once

/// \file fixed_point.hpp
/// The blocked-source correction, eqs. (6)-(7). Assumption 4 says a
/// processor with a request in flight generates nothing, so the offered
/// rate lambda must be deflated by the fraction of processors currently
/// waiting:
///
///     L        = C (2 L_E1 + L_I1) + L_I2          (eq. 6)
///     lambda'  = lambda (N - L) / N                (eq. 7)
///
/// iterated to a fixed point. The paper iterates eq. (7) directly
/// (Picard); that recurrence oscillates once any centre saturates (L
/// snaps between ~0 and ~N), so we also provide a bisection solver on
/// the monotone root function
///
///     g(x) = lambda (N - L(x))/N - x,
///
/// which always converges: g(0+) > 0, g(lambda) <= 0, and L(x) is
/// non-decreasing. kPicard reproduces the paper's procedure (with
/// optional damping); kBisection is the library default; kNone disables
/// the correction entirely (for the ablation bench).

#include <cstdint>
#include <vector>

#include "hmcs/analytic/service_time.hpp"
#include "hmcs/analytic/system_config.hpp"
#include "hmcs/analytic/workload.hpp"

namespace hmcs::util {
class CancelToken;  // util/cancel.hpp
}

namespace hmcs::analytic {

enum class SourceThrottling {
  kNone,       ///< no blocked-source correction (ablation baseline)
  kPicard,     ///< the paper's eq. (7) iteration (with optional damping)
  kBisection,  ///< robust root solve of the same fixed point (default)
  /// Exact Mean Value Analysis of the underlying closed network — more
  /// accurate than the paper's open-network approximation near
  /// saturation; see mva.hpp.
  kExactMva,
};

/// How eq. (6) counts the two ECN1 visits; see DESIGN.md note 1.
enum class QueueLengthRule {
  kPaperEq6,    ///< literal eq. (6): L = C (2 L_E1 + L_I1) + L_I2
  kConsistent,  ///< L_E1 already covers both visits: C (L_E1 + L_I1) + L_I2
};

struct FixedPointOptions {
  SourceThrottling method = SourceThrottling::kBisection;
  QueueLengthRule queue_rule = QueueLengthRule::kPaperEq6;
  /// Squared coefficient of variation of the centres' service times
  /// (Pollaczek-Khinchine): 1 = exponential (the paper's assumption),
  /// 0 = deterministic. Honoured by the open-network solvers; the MVA
  /// solver requires exponential service (product form) and rejects
  /// other values.
  double service_cv2 = 1.0;
  /// Squared coefficient of variation of the interarrival times
  /// (Allen–Cunneen, gg1 in mm1.hpp): 1 = Poisson (the paper's
  /// assumption). Like service_cv2, the MVA solver rejects non-default
  /// values. Usually derived from a WorkloadScenario via with_scenario.
  double arrival_ca2 = 1.0;
  /// Failure/repair performability (workload.hpp): when failure_mtbf_us
  /// > 0, every centre suffers Poisson breakdowns at rate 1/mtbf during
  /// service, each costing an exponential repair with mean mttr, with
  /// preemptive resume. The open-network solvers fold this into an
  /// effective completion-time distribution (effective_service below);
  /// the MVA solver rejects it. 0 = disabled.
  double failure_mtbf_us = 0.0;
  double failure_mttr_us = 0.0;
  /// Convergence tolerance on lambda_eff, relative to lambda.
  double tolerance = 1e-12;
  std::uint32_t max_iterations = 200;
  /// Picard damping: next = damping*candidate + (1-damping)*previous.
  /// 1.0 is the paper's undamped recurrence.
  double picard_damping = 0.5;
  /// Observability: when non-null, the solver appends one dimensionless
  /// residual per iteration — |next - current| / lambda for Picard, the
  /// bracket width (hi - lo) / lambda for bisection (which therefore
  /// halves every entry). kNone/kExactMva record nothing. The vector is
  /// cleared first, so one buffer can be reused across solves.
  std::vector<double>* residual_trace = nullptr;
  /// Cooperative cancellation/deadline token, polled by the iterative
  /// solvers once per iteration and by the exact-MVA recursion every
  /// 4096 population steps, so per-cell deadlines (docs/ROBUSTNESS.md)
  /// bound even total_nodes = 2^20 MVA solves. Null = not cancellable.
  const util::CancelToken* cancel = nullptr;
};

struct FixedPointResult {
  /// The self-consistent effective per-processor rate.
  double lambda_effective;
  /// L at lambda_effective, capped at N (all processors blocked).
  double total_queue_length;
  /// Iterations of the chosen solver. The exact-MVA path reports its
  /// population steps here (one recursion step per customer), which is
  /// why the field is 64-bit: total_nodes is a std::uint64_t and
  /// populations >= 2^32 must not truncate.
  std::uint64_t iterations;
  bool converged;
};

/// Total waiting-processor count L(lambda_eff) per the chosen rule,
/// capped at N; N when any centre is saturated at that rate.
/// `service_cv2` selects the Pollaczek-Khinchine queue length (1 =
/// exponential = the paper's eq. 16 behaviour).
double total_queue_length(const SystemConfig& config,
                          const CenterServiceTimes& service,
                          double lambda_effective, QueueLengthRule rule,
                          double service_cv2 = 1.0);

/// Same, driven by the full distribution parameters in `options`
/// (queue rule, service cs^2, arrival ca^2, failure/repair).
double total_queue_length(const SystemConfig& config,
                          const CenterServiceTimes& service,
                          double lambda_effective,
                          const FixedPointOptions& options);

FixedPointResult solve_effective_rate(const SystemConfig& config,
                                      const CenterServiceTimes& service,
                                      const FixedPointOptions& options = {});

/// A centre's effective completion-time distribution once breakdowns
/// are folded in (workload.hpp FailureRepair, preemptive resume):
/// completion rate mu*A (A = mtbf/(mtbf+mttr)) and inflated cs^2. The
/// exact two-moment composition — DES cross-validation inflates each
/// service draw by its Poisson repair cost, realising this very
/// distribution. Identity when failures are disabled.
struct EffectiveService {
  double mu;
  double cs2;
};

inline EffectiveService effective_service(double mu, double cs2,
                                          const FixedPointOptions& options) {
  if (options.failure_mtbf_us <= 0.0 || options.failure_mttr_us <= 0.0) {
    return {mu, cs2};
  }
  const double availability =
      options.failure_mtbf_us /
      (options.failure_mtbf_us + options.failure_mttr_us);
  return {mu * availability,
          cs2 + 2.0 * availability * availability * options.failure_mttr_us *
                    options.failure_mttr_us * mu / options.failure_mtbf_us};
}

/// Folds a WorkloadScenario (workload.hpp) into solver options. Each
/// scenario field overrides the corresponding options field only when
/// the scenario's is non-default, so callers that set service_cv2 etc.
/// directly on the options keep working under a default scenario. An
/// engaged MMPP resolves to an effective arrival ca^2 at the given
/// per-source mean rate (held fixed through the fixed point).
FixedPointOptions with_scenario(const FixedPointOptions& options,
                                const WorkloadScenario& scenario,
                                double mean_rate_per_us);

}  // namespace hmcs::analytic
