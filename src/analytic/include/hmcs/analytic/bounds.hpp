#pragma once

/// \file bounds.hpp
/// Operational asymptotic bounds for the closed HMSCS network (Denning &
/// Buzen): cheap sanity envelopes around any solver's output.
///
/// With per-station demands D_i = v_i / mu_i, total demand D = sum D_i,
/// bottleneck demand D_max = max D_i, think time Z and population N:
///
///   throughput  X(N) <= min( N / (D + Z),  1 / D_max )
///   latency     R(N) >= max( D,  N * D_max - Z )
///
/// The model's predictions (and the simulator's measurements) must lie
/// inside these envelopes; the property tests enforce exactly that, and
/// capacity_planning uses the bottleneck bound as a free upper estimate.

#include <cstdint>

#include "hmcs/analytic/service_time.hpp"
#include "hmcs/analytic/system_config.hpp"

namespace hmcs::analytic {

struct AsymptoticBounds {
  /// Sum of visit-weighted service demands over the message path (us).
  double total_demand_us = 0.0;
  /// The bottleneck station's demand (us).
  double bottleneck_demand_us = 0.0;
  /// Index label of the bottleneck: "ICN1", "ECN1", or "ICN2".
  const char* bottleneck = "";
  /// Upper bound on per-processor throughput (messages/us).
  double throughput_upper_per_us = 0.0;
  /// Lower bound on mean message latency (us).
  double latency_lower_us = 0.0;
};

/// Bounds for a Super-Cluster configuration. The per-station demands use
/// the same visit ratios as the MVA layout: (1-P)/C per ICN1, 2P/C per
/// ECN1, P at ICN2 — all multiplied by N customers when forming the
/// per-station saturation condition.
AsymptoticBounds compute_bounds(const SystemConfig& config);

/// Same, from precomputed service times (avoids recomputation in loops).
AsymptoticBounds compute_bounds(const SystemConfig& config,
                                const CenterServiceTimes& service);

}  // namespace hmcs::analytic
