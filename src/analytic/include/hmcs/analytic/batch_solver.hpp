#pragma once

/// \file batch_solver.hpp
/// Structure-of-arrays batch evaluation of the analytic model. Sweeps
/// and the serving tier evaluate dense grids of configurations that
/// share almost everything — the fixed-point solver is the hot path
/// (BENCH_serve.json / BENCH_sweep.json), and solving the grid one
/// scalar cell at a time repeats validation, eq. (8), Section 5 service
/// times, and the MVA layout for every cell.
///
/// The batch solvers hoist that shared precomputation out of the
/// per-cell loop and advance *all* active cells one solver iteration per
/// sweep over flat arrays (vectorisable; cells retire as they converge).
/// Cells are grouped into contiguous runs sharing a topology (equal in
/// everything but the generation rate); a group of one costs a scalar
/// solve, so heterogeneous grids are never penalised.
///
/// Numerical contract (docs/PERFORMANCE.md):
///  - warm_start = false: the per-cell iterate sequence is arithmetic-
///    identical to the scalar solver's — results are bit-identical.
///  - warm_start = true (default): anchor cells (every kWarmStride-th
///    cell of a group) solve cold; the cells between them start from
///    their anchor's solved fixed point (continuation along the grid
///    axis). The iterate *trajectory* changes, the fixed point does not:
///    converged cells agree with the scalar solver within the solver
///    tolerance. Non-converged cells are trajectory-dependent; studies
///    that must reproduce them exactly disable warm starts.
///
/// FixedPointOptions::residual_trace is ignored by the batch path (one
/// buffer cannot hold interleaved traces); everything else — method,
/// queue rule, tolerance, damping, cv², cancel token — behaves as in
/// solve_effective_rate.

#include <cstdint>
#include <vector>

#include "hmcs/analytic/fixed_point.hpp"
#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/system_config.hpp"

namespace hmcs::analytic {

struct BatchOptions {
  /// Continuation warm starts (see file comment). Disable for
  /// bit-identical-to-scalar iterate trajectories.
  bool warm_start = true;
};

/// Anchor stride of the warm-start scheme: cells 0, 8, 16, ... of a
/// group solve cold in lockstep, then the cells between them solve in a
/// second lockstep pass started from their preceding anchor's solution.
inline constexpr std::size_t kWarmStride = 8;

/// A structure-of-arrays rate grid: cell i is `base` with
/// generation_rate_per_us replaced by rates_per_us[i]. Everything else —
/// topology, technologies, architecture, message size — is shared, so
/// validation, eq. (8), service times, and the MVA class layout are
/// computed once for the whole grid. base's own rate field is ignored.
struct RateGrid {
  SystemConfig base;
  std::vector<double> rates_per_us;
};

/// Solves the blocked-source fixed point for every cell of the grid.
/// Output order matches rates_per_us. Throws hmcs::ConfigError for an
/// invalid base or a non-finite/negative cell rate, and Cancelled /
/// DeadlineExceeded through FixedPointOptions::cancel.
std::vector<FixedPointResult> solve_effective_rate_batch(
    const RateGrid& grid, const FixedPointOptions& options = {},
    const BatchOptions& batch = {});

/// Batch predict_latency over an arbitrary config list: contiguous runs
/// of configs sharing a topology are solved through the SoA core (with
/// the kExactMva path evaluating the station-class MVA recursion for
/// all cells of a run in lockstep); per-cell post-processing goes
/// through the same epilogue as the scalar predict_latency. Output
/// order matches input order.
std::vector<LatencyPrediction> predict_latency_batch(
    const SystemConfig* const* configs, std::size_t count,
    const ModelOptions& options = {}, const BatchOptions& batch = {});

/// Convenience overload for value vectors (tests, bench drivers).
std::vector<LatencyPrediction> predict_latency_batch(
    const std::vector<SystemConfig>& configs, const ModelOptions& options = {},
    const BatchOptions& batch = {});

}  // namespace hmcs::analytic
