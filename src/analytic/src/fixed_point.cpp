#include "hmcs/analytic/fixed_point.hpp"

#include <algorithm>
#include <cmath>

#include "hmcs/analytic/arrival_rates.hpp"
#include "hmcs/analytic/mm1.hpp"
#include "hmcs/analytic/mva.hpp"
#include "hmcs/analytic/routing_probability.hpp"
#include "hmcs/obs/metrics.hpp"
#include "hmcs/util/cancel.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

double total_queue_length(const SystemConfig& config,
                          const CenterServiceTimes& service,
                          double lambda_effective, QueueLengthRule rule,
                          double service_cv2) {
  FixedPointOptions options;
  options.queue_rule = rule;
  options.service_cv2 = service_cv2;
  return total_queue_length(config, service, lambda_effective, options);
}

double total_queue_length(const SystemConfig& config,
                          const CenterServiceTimes& service,
                          double lambda_effective,
                          const FixedPointOptions& options) {
  require(lambda_effective >= 0.0, "total_queue_length: rate must be >= 0");
  const double n = static_cast<double>(config.total_nodes());
  const double p =
      inter_cluster_probability(config.clusters, config.nodes_per_cluster);
  const ArrivalRates rates = compute_arrival_rates(
      config.clusters, config.nodes_per_cluster, p, lambda_effective);

  // Breakdowns inflate every centre's completion time (same cv^2 knob
  // the samplers realise); identity when failures are disabled.
  const EffectiveService icn1 = effective_service(
      service.icn1.service_rate(), options.service_cv2, options);
  const EffectiveService ecn1 = effective_service(
      service.ecn1.service_rate(), options.service_cv2, options);
  const EffectiveService icn2 = effective_service(
      service.icn2.service_rate(), options.service_cv2, options);
  const double ca2 = options.arrival_ca2;
  const double l_icn1 =
      gg1::number_in_system(rates.icn1, icn1.mu, ca2, icn1.cs2);
  const double l_ecn1 =
      gg1::number_in_system(rates.ecn1, ecn1.mu, ca2, ecn1.cs2);
  const double l_icn2 =
      gg1::number_in_system(rates.icn2, icn2.mu, ca2, icn2.cs2);
  if (std::isinf(l_icn1) || std::isinf(l_ecn1) || std::isinf(l_icn2)) {
    return n;  // a saturated centre eventually blocks every source
  }

  const double c = static_cast<double>(config.clusters);
  const double ecn1_weight =
      (options.queue_rule == QueueLengthRule::kPaperEq6) ? 2.0 : 1.0;
  const double total = c * (ecn1_weight * l_ecn1 + l_icn1) + l_icn2;
  return std::min(total, n);
}

FixedPointOptions with_scenario(const FixedPointOptions& options,
                                const WorkloadScenario& scenario,
                                double mean_rate_per_us) {
  FixedPointOptions out = options;
  if (scenario.service_cv2 != 1.0) out.service_cv2 = scenario.service_cv2;
  if (scenario.mmpp.has_value()) {
    // Evaluated once at the offered per-source rate and held fixed
    // through the fixed point: the modulation is a property of the
    // sources, not of the throttled throughput.
    out.arrival_ca2 = mmpp_arrival_scv(*scenario.mmpp, mean_rate_per_us);
  } else if (scenario.arrival_ca2 != 1.0) {
    out.arrival_ca2 = scenario.arrival_ca2;
  }
  if (scenario.failure.has_value()) {
    out.failure_mtbf_us = scenario.failure->mtbf_us;
    out.failure_mttr_us = scenario.failure->mttr_us;
  }
  return out;
}

namespace {

FixedPointResult solve_none(const SystemConfig& config,
                            const CenterServiceTimes& service,
                            const FixedPointOptions& options) {
  return FixedPointResult{
      config.generation_rate_per_us,
      total_queue_length(config, service, config.generation_rate_per_us,
                         options),
      0, true};
}

/// lambda == 0 short-circuit shared by the iterative solvers: a source
/// that never generates has lambda_eff = 0 and an empty system, and the
/// solvers' lambda-relative residuals and tolerances (|next - current| /
/// lambda, tolerance * lambda) are 0/0 = NaN and a vacuous `<= 0` test
/// there. Converged at 0 in 0 iterations, by definition.
FixedPointResult zero_rate_result() { return FixedPointResult{0.0, 0.0, 0, true}; }

FixedPointResult solve_picard(const SystemConfig& config,
                              const CenterServiceTimes& service,
                              const FixedPointOptions& options) {
  const double lambda = config.generation_rate_per_us;
  if (lambda == 0.0) return zero_rate_result();
  const double n = static_cast<double>(config.total_nodes());
  double current = lambda;
  double queue = 0.0;
  for (std::uint32_t i = 1; i <= options.max_iterations; ++i) {
    if (options.cancel != nullptr) options.cancel->check("fixed_point");
    queue = total_queue_length(config, service, current, options);
    const double candidate = lambda * (n - queue) / n;
    const double next = options.picard_damping * candidate +
                        (1.0 - options.picard_damping) * current;
    if (options.residual_trace != nullptr) {
      options.residual_trace->push_back(std::fabs(next - current) / lambda);
    }
    if (std::fabs(next - current) <= options.tolerance * lambda) {
      return FixedPointResult{next,
                              total_queue_length(config, service, next,
                                                 options),
                              i, true};
    }
    current = next;
  }
  return FixedPointResult{current, queue, options.max_iterations, false};
}

FixedPointResult solve_bisection(const SystemConfig& config,
                                 const CenterServiceTimes& service,
                                 const FixedPointOptions& options) {
  const double lambda = config.generation_rate_per_us;
  if (lambda == 0.0) return zero_rate_result();
  const double n = static_cast<double>(config.total_nodes());
  auto g = [&](double x) {
    return lambda * (n - total_queue_length(config, service, x, options)) /
               n -
           x;
  };

  // g(lambda) <= 0 always; if g(lambda) == 0 the system is load-free.
  if (g(lambda) >= 0.0) {
    return FixedPointResult{
        lambda,
        total_queue_length(config, service, lambda, options), 1, true};
  }

  double lo = 0.0;  // g(0+) = lambda > 0
  double hi = lambda;
  std::uint32_t iterations = 0;
  while (iterations < options.max_iterations &&
         (hi - lo) > options.tolerance * lambda) {
    if (options.cancel != nullptr) options.cancel->check("fixed_point");
    ++iterations;
    const double mid = 0.5 * (lo + hi);
    if (g(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (options.residual_trace != nullptr) {
      options.residual_trace->push_back((hi - lo) / lambda);
    }
  }
  // Report the stable side of the bracket (queue length finite).
  const double solution = lo;
  return FixedPointResult{
      solution,
      total_queue_length(config, service, solution, options),
      iterations, (hi - lo) <= options.tolerance * lambda};
}

FixedPointResult solve_mva(const SystemConfig& config,
                           const CenterServiceTimes& service,
                           const FixedPointOptions& options) {
  if (config.generation_rate_per_us == 0.0) return zero_rate_result();
  // Station-class recursion: the C ICN1 (and C ECN1) stations are
  // identical, so the 2C+1-station network collapses to 3 classes and
  // the O(N * stations) recursion to O(N * 3) (docs/PERFORMANCE.md).
  const HmcsMvaClassLayout layout =
      build_hmcs_mva_class_layout(config, service);
  const double think = 1.0 / config.generation_rate_per_us;
  const MvaClassResult mva = solve_closed_mva_classes(
      layout.classes, think, config.total_nodes(), options.cancel);
  double total_queue = 0.0;
  for (std::size_t i = 0; i < layout.classes.size(); ++i) {
    total_queue += static_cast<double>(layout.classes[i].multiplicity) *
                   mva.queue_length[i];
  }
  // The recursion runs one step per customer: report the population as
  // the iteration count (64-bit — populations >= 2^32 must not wrap).
  return FixedPointResult{
      mva.throughput / static_cast<double>(config.total_nodes()), total_queue,
      config.total_nodes(), true};
}

}  // namespace

FixedPointResult solve_effective_rate(const SystemConfig& config,
                                      const CenterServiceTimes& service,
                                      const FixedPointOptions& options) {
  config.validate();
  require(options.tolerance > 0.0, "fixed_point: tolerance must be > 0");
  require(options.max_iterations >= 1, "fixed_point: needs >= 1 iteration");
  require(options.picard_damping > 0.0 && options.picard_damping <= 1.0,
          "fixed_point: damping must be in (0, 1]");
  require(options.service_cv2 >= 0.0, "fixed_point: cv^2 must be >= 0");
  require(options.arrival_ca2 >= 0.0, "fixed_point: ca^2 must be >= 0");
  require(options.failure_mtbf_us >= 0.0 && options.failure_mttr_us >= 0.0,
          "fixed_point: failure mtbf/mttr must be >= 0");
  require(options.method != SourceThrottling::kExactMva ||
              options.service_cv2 == 1.0,
          "fixed_point: exact MVA requires exponential service (cv^2 = 1)");
  require(options.method != SourceThrottling::kExactMva ||
              (options.arrival_ca2 == 1.0 &&
               (options.failure_mtbf_us <= 0.0 ||
                options.failure_mttr_us <= 0.0)),
          "fixed_point: exact MVA requires Poisson arrivals and no "
          "failure/repair (product form)");
  if (options.residual_trace != nullptr) options.residual_trace->clear();

  const auto instrumented = [&options](FixedPointResult result) {
    HMCS_OBS_COUNTER_INC("analytic.fixed_point.solves");
    HMCS_OBS_COUNTER_ADD("analytic.fixed_point.iterations", result.iterations);
    if (!result.converged) {
      HMCS_OBS_COUNTER_INC("analytic.fixed_point.nonconverged");
    }
    HMCS_OBS_STAT_OBSERVE("analytic.fixed_point.iterations_per_solve",
                          result.iterations);
    if (options.residual_trace != nullptr &&
        !options.residual_trace->empty()) {
      HMCS_OBS_GAUGE_SET("analytic.fixed_point.last_residual",
                         options.residual_trace->back());
    }
    return result;
  };

  switch (options.method) {
    case SourceThrottling::kNone:
      return instrumented(solve_none(config, service, options));
    case SourceThrottling::kPicard:
      return instrumented(solve_picard(config, service, options));
    case SourceThrottling::kBisection:
      return instrumented(solve_bisection(config, service, options));
    case SourceThrottling::kExactMva:
      return instrumented(solve_mva(config, service, options));
  }
  ensure(false, "fixed_point: unknown method");
  return {};
}

}  // namespace hmcs::analytic
