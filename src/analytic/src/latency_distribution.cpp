#include "hmcs/analytic/latency_distribution.hpp"

#include <cmath>

#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

namespace {

/// CDF of Erlang-2(a) + Exp(b) at t, for a != b, via partial fractions
/// of a^2 b / ((s+a)^2 (s+b)):
///   f(t) = A e^{-at} + B t e^{-at} + C e^{-bt}
///   A = -a^2 b/(b-a)^2,  B = a^2 b/(b-a),  C = a^2 b/(a-b)^2.
double erlang2_plus_exp_cdf(double a, double b, double t) {
  if (t <= 0.0) return 0.0;
  // Repeated-pole degeneracy: nudge b (documented approximation; the
  // perturbation is far below every other error source here).
  if (std::fabs(a - b) < 1e-9 * a) b = a * (1.0 + 1e-6);
  const double d = b - a;
  const double common = a * a * b;
  const double coeff_a = -common / (d * d);
  const double coeff_b = common / d;
  const double coeff_c = common / (d * d);
  const double eat = std::exp(-a * t);
  const double ebt = std::exp(-b * t);
  const double cdf = coeff_a * (1.0 - eat) / a +
                     coeff_b * (1.0 - eat * (1.0 + a * t)) / (a * a) +
                     coeff_c * (1.0 - ebt) / b;
  // Clamp tiny numerical excursions.
  return std::fmin(1.0, std::fmax(0.0, cdf));
}

}  // namespace

double LatencyDistribution::cdf(double t_us) const {
  if (t_us <= 0.0) return 0.0;
  double value = 0.0;
  if (local_weight > 0.0) {
    value += local_weight * (1.0 - std::exp(-local_rate * t_us));
  }
  if (remote_weight > 0.0) {
    value += remote_weight * erlang2_plus_exp_cdf(ecn1_rate, icn2_rate, t_us);
  }
  return value;
}

double LatencyDistribution::quantile(double q) const {
  require(q > 0.0 && q < 1.0, "LatencyDistribution: q must be in (0, 1)");
  double hi = mean_us();
  require(hi > 0.0, "LatencyDistribution: degenerate distribution");
  while (cdf(hi) < q) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double LatencyDistribution::mean_us() const {
  double mean = 0.0;
  if (local_weight > 0.0) mean += local_weight / local_rate;
  if (remote_weight > 0.0) {
    mean += remote_weight * (2.0 / ecn1_rate + 1.0 / icn2_rate);
  }
  return mean;
}

LatencyDistribution latency_distribution(const LatencyPrediction& prediction) {
  LatencyDistribution dist;
  const double p = prediction.inter_cluster_probability;
  dist.local_weight = 1.0 - p;
  dist.remote_weight = p;
  // Each centre's sojourn is approximated Exp(1/W); W comes from
  // whichever solver produced the prediction.
  if (dist.local_weight > 0.0) {
    require(std::isfinite(prediction.icn1.response_time_us) &&
                prediction.icn1.response_time_us > 0.0,
            "latency_distribution: ICN1 is saturated");
    dist.local_rate = 1.0 / prediction.icn1.response_time_us;
  }
  if (dist.remote_weight > 0.0) {
    require(std::isfinite(prediction.ecn1.response_time_us) &&
                std::isfinite(prediction.icn2.response_time_us) &&
                prediction.ecn1.response_time_us > 0.0 &&
                prediction.icn2.response_time_us > 0.0,
            "latency_distribution: a remote-path centre is saturated");
    dist.ecn1_rate = 1.0 / prediction.ecn1.response_time_us;
    dist.icn2_rate = 1.0 / prediction.icn2.response_time_us;
  }
  double busiest = 0.0;
  if (dist.local_weight > 0.0) {
    busiest = std::fmax(busiest, prediction.icn1.utilization);
  }
  if (dist.remote_weight > 0.0) {
    busiest = std::fmax(busiest, prediction.ecn1.utilization);
    busiest = std::fmax(busiest, prediction.icn2.utilization);
  }
  dist.reliable = busiest <= 0.9;
  return dist;
}

LatencyDistribution predict_latency_distribution(const SystemConfig& config,
                                                 SourceThrottling method) {
  ModelOptions options;
  options.fixed_point.method = method;
  return latency_distribution(predict_latency(config, options));
}

}  // namespace hmcs::analytic
