#include "hmcs/analytic/scenario.hpp"

#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

const char* to_string(HeterogeneityCase c) {
  switch (c) {
    case HeterogeneityCase::kCase1:
      return "Case 1 (ICN1=GE, ECN1/ICN2=FE)";
    case HeterogeneityCase::kCase2:
      return "Case 2 (ICN1=FE, ECN1/ICN2=GE)";
  }
  return "unknown";
}

SystemConfig paper_scenario(HeterogeneityCase hetero, std::uint32_t clusters,
                            NetworkArchitecture architecture,
                            double message_bytes, std::uint32_t total_nodes,
                            double rate_per_us) {
  require(clusters >= 1, "paper_scenario: clusters must be >= 1");
  require(total_nodes >= 1 && total_nodes % clusters == 0,
          "paper_scenario: clusters must divide the total node count "
          "(assumption 5: equal-size clusters)");

  SystemConfig config;
  config.clusters = clusters;
  config.nodes_per_cluster = total_nodes / clusters;
  if (hetero == HeterogeneityCase::kCase1) {
    config.icn1 = gigabit_ethernet();
    config.ecn1 = fast_ethernet();
    config.icn2 = fast_ethernet();
  } else {
    config.icn1 = fast_ethernet();
    config.ecn1 = gigabit_ethernet();
    config.icn2 = gigabit_ethernet();
  }
  config.switch_params = SwitchParams{kPaperSwitchPorts, kPaperSwitchLatencyUs};
  config.architecture = architecture;
  config.message_bytes = message_bytes;
  config.generation_rate_per_us = rate_per_us;
  config.validate();
  return config;
}

const std::uint32_t* paper_cluster_sweep(std::size_t* count) {
  static constexpr std::uint32_t kSweep[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  if (count != nullptr) *count = sizeof(kSweep) / sizeof(kSweep[0]);
  return kSweep;
}

}  // namespace hmcs::analytic
