#include "hmcs/analytic/model_tree.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

#include "hmcs/util/error.hpp"
#include "hmcs/util/units.hpp"

namespace hmcs::analytic {

ModelNode ModelNode::leaf(std::uint32_t processors, double rate_per_us,
                          std::string name) {
  ModelNode node;
  node.name = std::move(name);
  node.processors = processors;
  node.generation_rate_per_us = rate_per_us;
  return node;
}

ModelNode ModelNode::internal(NetworkTechnology network,
                              std::vector<ModelNode> children,
                              std::string name) {
  ModelNode node;
  node.name = std::move(name);
  node.network = std::move(network);
  node.children = std::move(children);
  return node;
}

ModelNode ModelNode::internal(NetworkTechnology network,
                              NetworkTechnology egress,
                              std::vector<ModelNode> children,
                              std::string name) {
  ModelNode node = internal(std::move(network), std::move(children),
                            std::move(name));
  node.egress = std::move(egress);
  return node;
}

namespace {

bool same_technology(const NetworkTechnology& a, const NetworkTechnology& b) {
  return a.name == b.name && a.latency_us == b.latency_us &&
         a.bandwidth_bytes_per_us == b.bandwidth_bytes_per_us;
}

std::uint64_t node_processors(const ModelNode& node) {
  if (node.is_leaf()) return node.processors;
  std::uint64_t total = 0;
  for (const auto& child : node.children) total += node_processors(child);
  return total;
}

std::uint32_t node_depth(const ModelNode& node) {
  if (node.is_leaf()) return 0;
  std::uint32_t deepest = 0;
  for (const auto& child : node.children) {
    deepest = std::max(deepest, node_depth(child));
  }
  return deepest + 1;
}

void validate_node(const ModelNode& node, bool root, const std::string& path) {
  if (node.is_leaf()) {
    require(!root, "ModelTree: the root must be an internal (network) node");
    require(node.processors >= 1,
            "ModelTree: leaf '" + path + "' needs >= 1 processors");
    require(std::isfinite(node.generation_rate_per_us) &&
                node.generation_rate_per_us >= 0.0,
            "ModelTree: leaf '" + path +
                "' needs a finite generation rate >= 0");
    return;
  }
  analytic::validate(node.network);
  if (!root) analytic::validate(node.egress);
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    validate_node(node.children[i], false,
                  path + ".children[" + std::to_string(i) + "]");
  }
}

/// Exact, locale-independent rendering so signature equality is exactly
/// bit equality of the underlying doubles.
void append_double(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  out += buffer;
}

void append_technology(std::string& out, const NetworkTechnology& tech) {
  out += tech.name;
  out += '@';
  append_double(out, tech.latency_us);
  out += ',';
  append_double(out, tech.bandwidth_bytes_per_us);
}

/// Canonical structural signature; returns false as soon as any internal
/// node has non-identical children (the subtree is then not uniform).
bool uniform_signature(const ModelNode& node, bool root, std::string& sig) {
  if (node.is_leaf()) {
    sig = "L(" + std::to_string(node.processors) + ",";
    append_double(sig, node.generation_rate_per_us);
    sig += ')';
    return true;
  }
  std::string first;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    std::string child_sig;
    if (!uniform_signature(node.children[i], false, child_sig)) return false;
    if (i == 0) {
      first = std::move(child_sig);
    } else if (child_sig != first) {
      return false;
    }
  }
  sig = "I(";
  append_technology(sig, node.network);
  if (!root) {
    sig += '|';
    append_technology(sig, node.egress);
  }
  sig += "|x" + std::to_string(node.children.size()) + ":" + first + ")";
  return true;
}

}  // namespace

std::uint64_t ModelTree::total_processors() const {
  return node_processors(root);
}

std::uint32_t ModelTree::depth() const { return node_depth(root); }

void ModelTree::validate() const {
  validate_node(root, /*root=*/true, "root");
  require(switch_params.ports >= 4 && switch_params.ports % 2 == 0,
          "ModelTree: switch ports must be even and >= 4");
  require(switch_params.latency_us >= 0.0,
          "ModelTree: switch latency must be >= 0");
  require(message_bytes > 0.0, "ModelTree: message size must be > 0");
  scenario.validate();
}

ModelTree ModelTree::from_system(const SystemConfig& config) {
  config.validate();
  std::vector<ModelNode> clusters;
  clusters.reserve(config.clusters);
  for (std::uint32_t i = 0; i < config.clusters; ++i) {
    std::vector<ModelNode> group;
    group.push_back(ModelNode::leaf(config.nodes_per_cluster,
                                    config.generation_rate_per_us));
    clusters.push_back(
        ModelNode::internal(config.icn1, config.ecn1, std::move(group)));
  }
  ModelTree tree;
  tree.root = ModelNode::internal(config.icn2, std::move(clusters));
  tree.switch_params = config.switch_params;
  tree.architecture = config.architecture;
  tree.message_bytes = config.message_bytes;
  tree.scenario = config.scenario;
  return tree;
}

ModelTree ModelTree::from_cluster_of_clusters(
    const ClusterOfClustersConfig& config) {
  config.validate();
  std::vector<ModelNode> clusters;
  clusters.reserve(config.clusters.size());
  for (const ClusterSpec& spec : config.clusters) {
    std::vector<ModelNode> group;
    group.push_back(
        ModelNode::leaf(spec.nodes, spec.generation_rate_per_us));
    clusters.push_back(
        ModelNode::internal(spec.icn1, spec.ecn1, std::move(group)));
  }
  ModelTree tree;
  tree.root = ModelNode::internal(config.icn2, std::move(clusters));
  tree.switch_params = config.switch_params;
  tree.architecture = config.architecture;
  tree.message_bytes = config.message_bytes;
  return tree;
}

std::optional<ClusterOfClustersConfig> ModelTree::as_cluster_of_clusters()
    const {
  if (root.is_leaf()) return std::nullopt;
  ClusterOfClustersConfig out;
  out.clusters.reserve(root.children.size());
  for (const ModelNode& child : root.children) {
    if (child.is_leaf() || child.children.size() != 1 ||
        !child.children.front().is_leaf()) {
      return std::nullopt;
    }
    const ModelNode& leaf = child.children.front();
    out.clusters.push_back(ClusterSpec{leaf.processors, child.network,
                                       child.egress,
                                       leaf.generation_rate_per_us});
  }
  out.icn2 = root.network;
  out.switch_params = switch_params;
  out.architecture = architecture;
  out.message_bytes = message_bytes;
  return out;
}

std::optional<SystemConfig> ModelTree::as_system_config() const {
  const auto coc = as_cluster_of_clusters();
  if (!coc) return std::nullopt;
  if (coc->clusters.size() >
      std::numeric_limits<std::uint32_t>::max()) {
    return std::nullopt;
  }
  const ClusterSpec& first = coc->clusters.front();
  for (const ClusterSpec& spec : coc->clusters) {
    if (spec.nodes != first.nodes ||
        spec.generation_rate_per_us != first.generation_rate_per_us ||
        !same_technology(spec.icn1, first.icn1) ||
        !same_technology(spec.ecn1, first.ecn1)) {
      return std::nullopt;
    }
  }
  SystemConfig config;
  config.clusters = static_cast<std::uint32_t>(coc->clusters.size());
  config.nodes_per_cluster = first.nodes;
  config.icn1 = first.icn1;
  config.ecn1 = first.ecn1;
  config.icn2 = coc->icn2;
  config.switch_params = switch_params;
  config.architecture = architecture;
  config.message_bytes = message_bytes;
  config.generation_rate_per_us = first.generation_rate_per_us;
  config.scenario = scenario;
  return config;
}

FlatTreeView flatten(const ModelTree& tree) {
  tree.validate();
  FlatTreeView view;
  // DFS pre-order; push_back may reallocate, so the node is re-indexed
  // (never held by reference) across child recursion.
  auto walk = [&](auto&& self, const ModelNode& node, std::size_t parent,
                  const std::string& path) -> std::size_t {
    const std::size_t index = view.nodes.size();
    view.nodes.emplace_back();
    view.nodes[index].parent = parent;
    view.nodes[index].node = &node;
    view.nodes[index].path = path;

    std::uint64_t processors = 0;
    double rate = 0.0;
    std::uint64_t endpoints = 0;
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      const ModelNode& child = node.children[i];
      const std::string child_path =
          path + ".children[" + std::to_string(i) + "]";
      if (child.is_leaf()) {
        view.nodes[index].leaf_children.push_back(view.leaves.size());
        view.leaves.push_back(FlatLeaf{index, child.processors,
                                       child.generation_rate_per_us,
                                       child_path});
        processors += child.processors;
        rate += static_cast<double>(child.processors) *
                child.generation_rate_per_us;
        endpoints += child.processors;
      } else {
        const std::size_t child_index = self(self, child, index, child_path);
        view.nodes[index].internal_children.push_back(child_index);
        processors += view.nodes[child_index].subtree_processors;
        rate += view.nodes[child_index].subtree_generation_rate;
        endpoints += 1;
      }
    }
    view.nodes[index].subtree_processors = processors;
    view.nodes[index].subtree_generation_rate = rate;
    view.nodes[index].attached_endpoints = endpoints;
    return index;
  };
  walk(walk, tree.root, FlatNode::npos, "root");
  view.total_processors = view.nodes.front().subtree_processors;
  view.total_generation_rate = view.nodes.front().subtree_generation_rate;
  return view;
}

std::vector<TreeCenter> tree_centers(const ModelTree& tree,
                                     const FlatTreeView& view) {
  std::vector<TreeCenter> centers;
  centers.reserve(2 * view.nodes.size());
  for (std::size_t u = 0; u < view.nodes.size(); ++u) {
    const FlatNode& node = view.nodes[u];
    TreeCenter network;
    network.node = u;
    network.egress = false;
    network.path = node.path + ".icn";
    network.service = network_service_time(
        node.node->network, node.attached_endpoints, tree.switch_params,
        tree.architecture, tree.message_bytes);
    centers.push_back(std::move(network));
    if (node.parent != FlatNode::npos) {
      TreeCenter egress;
      egress.node = u;
      egress.egress = true;
      egress.path = node.path + ".egress";
      egress.service = network_service_time(
          node.node->egress, node.attached_endpoints, tree.switch_params,
          tree.architecture, tree.message_bytes);
      centers.push_back(std::move(egress));
    }
  }
  return centers;
}

bool is_uniform_tree(const ModelTree& tree) {
  std::string sig;
  return uniform_signature(tree.root, /*root=*/true, sig);
}

namespace {

const ModelNode* resolve_path(const ModelNode& root, std::string_view path,
                              std::string_view& field, bool& is_root) {
  const std::string shown(path);
  require(path.substr(0, 4) == "root",
          "tree path '" + shown + "' must start with 'root'");
  const ModelNode* node = &root;
  is_root = true;
  std::size_t pos = 4;
  while (pos < path.size() && path.compare(pos, 10, ".children[") == 0) {
    pos += 10;
    const std::size_t end = path.find(']', pos);
    require(end != std::string_view::npos && end > pos,
            "tree path '" + shown + "': malformed child index");
    std::uint64_t index = 0;
    for (std::size_t d = pos; d < end; ++d) {
      const char c = path[d];
      require(c >= '0' && c <= '9',
              "tree path '" + shown + "': malformed child index");
      index = index * 10 + static_cast<std::uint64_t>(c - '0');
      require(index <= std::numeric_limits<std::uint32_t>::max(),
              "tree path '" + shown + "': child index out of range");
    }
    require(index < node->children.size(),
            "tree path '" + shown + "': child index " +
                std::to_string(index) + " out of range (node has " +
                std::to_string(node->children.size()) + " children)");
    node = &node->children[index];
    is_root = false;
    pos = end + 1;
  }
  require(pos < path.size() && path[pos] == '.',
          "tree path '" + shown + "' needs a field (e.g. .icn.latency_us)");
  field = path.substr(pos + 1);
  require(!field.empty(), "tree path '" + shown + "' needs a field");
  return node;
}

/// Maps a field name onto the addressed technology member; nullptr when
/// the field is not a technology field.
double* technology_field(ModelNode& node, bool is_root, std::string_view field,
                         const std::string& shown) {
  const bool egress = field.starts_with("egress.");
  const bool icn = field.starts_with("icn.");
  if (!egress && !icn) return nullptr;
  require(!node.is_leaf(), "tree path '" + shown + "': leaf nodes have no '" +
                               std::string(egress ? "egress" : "icn") + "'");
  require(!(egress && is_root),
          "tree path '" + shown + "': the root has no egress");
  NetworkTechnology& tech = egress ? node.egress : node.network;
  const std::string_view member = field.substr(egress ? 7 : 4);
  if (member == "latency_us") return &tech.latency_us;
  if (member == "bandwidth_mb_per_s" || member == "bandwidth") {
    return &tech.bandwidth_bytes_per_us;
  }
  require(false, "tree path '" + shown + "': unknown technology field '" +
                     std::string(member) + "'");
  return nullptr;
}

}  // namespace

double tree_path_value(const ModelTree& tree, std::string_view path) {
  const std::string shown(path);
  std::string_view field;
  bool is_root = false;
  // resolve_path only reads; the const_cast lets one technology_field
  // helper serve both the getter and the setter.
  ModelNode* node = const_cast<ModelNode*>(
      resolve_path(tree.root, path, field, is_root));
  if (field == "processors") {
    require(node->is_leaf(),
            "tree path '" + shown + "': 'processors' needs a leaf");
    return static_cast<double>(node->processors);
  }
  if (field == "generation_rate_per_us" || field == "lambda_per_s") {
    require(node->is_leaf(),
            "tree path '" + shown + "': generation rate needs a leaf");
    return field == "lambda_per_s"
               ? units::per_us_to_per_s(node->generation_rate_per_us)
               : node->generation_rate_per_us;
  }
  const double* member = technology_field(*node, is_root, field, shown);
  require(member != nullptr,
          "tree path '" + shown + "': unknown field '" + std::string(field) +
              "'");
  return *member;
}

void set_tree_path(ModelTree& tree, std::string_view path, double value) {
  const std::string shown(path);
  require(std::isfinite(value),
          "tree path '" + shown + "': value must be finite");
  std::string_view field;
  bool is_root = false;
  ModelNode* node = const_cast<ModelNode*>(
      resolve_path(tree.root, path, field, is_root));
  if (field == "processors") {
    require(node->is_leaf(),
            "tree path '" + shown + "': 'processors' needs a leaf");
    require(value >= 1.0 && value == std::floor(value) &&
                value <= static_cast<double>(
                             std::numeric_limits<std::uint32_t>::max()),
            "tree path '" + shown +
                "': 'processors' needs a positive integer");
    node->processors = static_cast<std::uint32_t>(value);
    return;
  }
  if (field == "generation_rate_per_us" || field == "lambda_per_s") {
    require(node->is_leaf(),
            "tree path '" + shown + "': generation rate needs a leaf");
    require(value >= 0.0,
            "tree path '" + shown + "': generation rate must be >= 0");
    node->generation_rate_per_us =
        field == "lambda_per_s" ? units::per_s_to_per_us(value) : value;
    return;
  }
  double* member = technology_field(*node, is_root, field, shown);
  require(member != nullptr,
          "tree path '" + shown + "': unknown field '" + std::string(field) +
              "'");
  *member = value;
}

}  // namespace hmcs::analytic
