#include "hmcs/analytic/tree_io.hpp"

#include <cmath>
#include <initializer_list>
#include <limits>

#include "hmcs/analytic/config_io.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/units.hpp"

namespace hmcs::analytic {

bool is_tree_config(const JsonValue& config) {
  return config.is_object() && config.find("tree") != nullptr;
}

namespace {

void reject_unknown(const JsonValue& object,
                    std::initializer_list<std::string_view> known,
                    const std::string& where) {
  for (const auto& [key, value] : object.members) {
    (void)value;
    bool recognised = false;
    for (const std::string_view candidate : known) {
      if (key == candidate) {
        recognised = true;
        break;
      }
    }
    require(recognised,
            "tree config: unknown key '" + key + "' in " + where);
  }
}

double number_member(const JsonValue& object, std::string_view key,
                     double fallback) {
  const JsonValue* member = object.find(key);
  return member == nullptr ? fallback : member->as_number();
}

std::uint32_t uint_member(const JsonValue& object, std::string_view key,
                          std::uint32_t fallback, const std::string& where) {
  const JsonValue* member = object.find(key);
  if (member == nullptr) return fallback;
  const double number = member->as_number();
  require(number >= 0.0 && number == std::floor(number) &&
              number <= static_cast<double>(
                            std::numeric_limits<std::uint32_t>::max()),
          "tree config: '" + std::string(key) + "' in " + where +
              " must be a non-negative integer");
  return static_cast<std::uint32_t>(number);
}

NetworkTechnology technology_entry(const JsonValue& entry,
                                   const std::string& where) {
  if (entry.is_string()) return parse_technology(entry.as_string());
  require(entry.is_object(),
          "tree config: a technology at " + where +
              " must be a preset/custom string or an object");
  reject_unknown(entry, {"name", "latency_us", "bandwidth_mb_per_s"}, where);
  NetworkTechnology tech;
  const JsonValue* name = entry.find("name");
  tech.name = name != nullptr ? name->as_string() : "custom";
  tech.latency_us = entry.at("latency_us").as_number();
  tech.bandwidth_bytes_per_us = entry.at("bandwidth_mb_per_s").as_number();
  return tech;
}

ModelNode node_from_json(const JsonValue& entry, bool root,
                         const std::string& path) {
  require(entry.is_object(),
          "tree config: node at " + path + " must be an object");
  const bool internal = entry.find("network") != nullptr ||
                        entry.find("egress") != nullptr ||
                        entry.find("children") != nullptr;
  ModelNode node;
  if (const JsonValue* name = entry.find("name")) {
    node.name = name->as_string();
  }

  if (!internal) {
    reject_unknown(entry, {"name", "processors", "lambda_per_s"}, path);
    node.processors =
        uint_member(entry, "processors", 0, path);
    require(node.processors >= 1,
            "tree config: leaf at " + path + " needs 'processors' >= 1");
    node.generation_rate_per_us = units::per_s_to_per_us(
        number_member(entry, "lambda_per_s",
                      units::per_us_to_per_s(kPaperRatePerUs)));
    return node;
  }

  reject_unknown(entry, {"name", "network", "egress", "children"}, path);
  const JsonValue* network = entry.find("network");
  require(network != nullptr,
          "tree config: internal node at " + path + " needs a 'network'");
  node.network = technology_entry(*network, path + ".network");

  const JsonValue* egress = entry.find("egress");
  if (root) {
    require(egress == nullptr,
            "tree config: the root has no parent, so no 'egress'");
  } else {
    require(egress != nullptr,
            "tree config: internal node at " + path + " needs an 'egress'");
    node.egress = technology_entry(*egress, path + ".egress");
  }

  const JsonValue* children = entry.find("children");
  require(children != nullptr && children->is_array() &&
              children->size() >= 1,
          "tree config: internal node at " + path +
              " needs a non-empty 'children' array");
  node.children.reserve(children->size());
  for (std::size_t i = 0; i < children->size(); ++i) {
    node.children.push_back(
        node_from_json(children->at(i), /*root=*/false,
                       path + ".children[" + std::to_string(i) + "]"));
  }
  return node;
}

}  // namespace

ModelTree model_tree_from_json(const JsonValue& config,
                               const std::string& where) {
  require(config.is_object(), "tree config: " + where + " must be an object");
  reject_unknown(config,
                 {"tree", "architecture", "message_bytes", "switch_ports",
                  "switch_latency_us", "workload"},
                 where);
  const JsonValue* root = config.find("tree");
  require(root != nullptr, "tree config: " + where + " needs a 'tree'");

  ModelTree tree;
  tree.root = node_from_json(*root, /*root=*/true, "root");
  if (const JsonValue* architecture = config.find("architecture")) {
    tree.architecture = parse_architecture(architecture->as_string());
  }
  tree.message_bytes = number_member(config, "message_bytes", 1024.0);
  tree.switch_params.ports =
      uint_member(config, "switch_ports", kPaperSwitchPorts, where);
  tree.switch_params.latency_us =
      number_member(config, "switch_latency_us", kPaperSwitchLatencyUs);
  if (const JsonValue* workload = config.find("workload")) {
    tree.scenario = workload_from_json(*workload);
  }
  tree.validate();
  return tree;
}

ModelTree load_model_tree(const std::string& text, const std::string& where) {
  return model_tree_from_json(parse_json(text), where);
}

}  // namespace hmcs::analytic
