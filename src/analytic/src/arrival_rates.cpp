#include "hmcs/analytic/arrival_rates.hpp"

#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

ArrivalRates compute_arrival_rates(std::uint32_t clusters,
                                   std::uint32_t nodes_per_cluster, double p,
                                   double lambda) {
  require(clusters >= 1, "arrival_rates: C must be >= 1");
  require(nodes_per_cluster >= 1, "arrival_rates: N0 must be >= 1");
  require(p >= 0.0 && p <= 1.0, "arrival_rates: P must be in [0, 1]");
  require(lambda >= 0.0, "arrival_rates: lambda must be >= 0");

  const double n0 = static_cast<double>(nodes_per_cluster);
  const double c = static_cast<double>(clusters);

  ArrivalRates rates{};
  rates.icn1 = n0 * (1.0 - p) * lambda;          // eq. (1)
  rates.ecn1_forward = n0 * p * lambda;          // eq. (2)
  rates.icn2 = c * n0 * p * lambda;              // eq. (3)
  rates.ecn1_return = rates.icn2 / c;            // eq. (4)
  rates.ecn1 = rates.ecn1_forward + rates.ecn1_return;  // eq. (5)
  return rates;
}

}  // namespace hmcs::analytic
