#include "hmcs/analytic/service_time.hpp"

#include "hmcs/topology/fat_tree.hpp"
#include "hmcs/topology/linear_array.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

ServiceTimeBreakdown network_service_time(const NetworkTechnology& tech,
                                          std::uint64_t endpoints,
                                          const SwitchParams& sw,
                                          NetworkArchitecture architecture,
                                          double message_bytes) {
  validate(tech);
  require(endpoints >= 1, "network_service_time: endpoints must be >= 1");
  require(message_bytes > 0.0, "network_service_time: message size must be > 0");

  ServiceTimeBreakdown out{};
  out.link_latency_us = tech.latency_us;
  out.transmission_us = message_bytes * tech.byte_time_us();

  if (endpoints == 1) {
    // Degenerate network (e.g. ECN1 of a one-node cluster): no switching
    // fabric and no contention; arrival rate at such a centre is also 0.
    return out;
  }

  switch (architecture) {
    case NetworkArchitecture::kNonBlocking: {
      const topology::FatTree tree(endpoints, sw.ports);
      const double stages = static_cast<double>(tree.num_stages());
      out.switch_latency_us = (2.0 * stages - 1.0) * sw.latency_us;  // eq. (11)
      break;
    }
    case NetworkArchitecture::kBlocking: {
      const topology::LinearArray chain(endpoints, sw.ports);
      const double k = static_cast<double>(chain.num_switches());
      out.switch_latency_us = (k + 1.0) / 3.0 * sw.latency_us;  // eq. (19)
      const double n = static_cast<double>(endpoints);
      // eq. (20): (N/2 - 1) further message times while the single
      // bisection link drains the other contenders.
      out.blocking_us = (n / 2.0 - 1.0) * out.transmission_us;
      break;
    }
  }
  return out;
}

CenterServiceTimes center_service_times(const SystemConfig& config) {
  config.validate();
  CenterServiceTimes out{};
  out.icn1 = network_service_time(config.icn1, config.nodes_per_cluster,
                                  config.switch_params, config.architecture,
                                  config.message_bytes);
  out.ecn1 = network_service_time(config.ecn1, config.nodes_per_cluster,
                                  config.switch_params, config.architecture,
                                  config.message_bytes);
  out.icn2 = network_service_time(config.icn2, config.clusters,
                                  config.switch_params, config.architecture,
                                  config.message_bytes);
  return out;
}

}  // namespace hmcs::analytic
