#include "hmcs/analytic/cluster_of_clusters.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hmcs/analytic/model_tree.hpp"
#include "hmcs/analytic/tree_model.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

std::uint64_t ClusterOfClustersConfig::total_nodes() const {
  std::uint64_t total = 0;
  for (const auto& cluster : clusters) total += cluster.nodes;
  return total;
}

void ClusterOfClustersConfig::validate() const {
  require(!clusters.empty(), "ClusterOfClusters: needs at least one cluster");
  for (const auto& cluster : clusters) {
    require(cluster.nodes >= 1, "ClusterOfClusters: every cluster needs nodes");
    analytic::validate(cluster.icn1);
    analytic::validate(cluster.ecn1);
    require(std::isfinite(cluster.generation_rate_per_us) &&
                cluster.generation_rate_per_us > 0.0,
            "ClusterOfClusters: generation rate must be > 0");
  }
  analytic::validate(icn2);
  require(switch_params.ports >= 4 && switch_params.ports % 2 == 0,
          "ClusterOfClusters: switch ports must be even and >= 4");
  require(switch_params.latency_us >= 0.0,
          "ClusterOfClusters: switch latency must be >= 0");
  require(message_bytes > 0.0, "ClusterOfClusters: message size must be > 0");
}

ClusterOfClustersConfig ClusterOfClustersConfig::from_super_cluster(
    const SystemConfig& config) {
  const auto lowered = ModelTree::from_system(config).as_cluster_of_clusters();
  ensure(lowered.has_value(),
         "ClusterOfClusters: from_system must lower to the two-stage shape");
  return *lowered;
}

namespace {

HeteroCenterState center_state(const TreeCenterPrediction& center) {
  HeteroCenterState state{};
  state.arrival_rate = center.arrival_rate;
  state.service_rate = center.service_rate;
  state.utilization = center.utilization;
  state.response_time_us = center.response_time_us;
  state.queue_length = center.queue_length;
  return state;
}

}  // namespace

HeteroLatencyPrediction predict_cluster_of_clusters(
    const ClusterOfClustersConfig& config, HeteroSolver solver) {
  config.validate();

  // The whole derivation lives in the recursive tree solver now
  // (tree_model.cpp); this config is its depth-2 special case. The
  // solver dispatches homogeneous instances to the scalar SystemConfig
  // pipeline, which is what makes the Super-Cluster reduction exact.
  TreeModelOptions options;
  if (solver == HeteroSolver::kApproxMva) {
    options.fixed_point.method = SourceThrottling::kExactMva;
  } else {
    options.fixed_point.method = SourceThrottling::kBisection;
    options.fixed_point.queue_rule = QueueLengthRule::kConsistent;
  }
  const TreeLatencyPrediction tree = predict_model_tree(
      ModelTree::from_cluster_of_clusters(config), options);

  const std::size_t c = config.clusters.size();
  ensure(tree.centers.size() == 1 + 2 * c && tree.per_leaf_latency_us.size() == c,
         "ClusterOfClusters: unexpected tree centre layout");

  HeteroLatencyPrediction out{};
  out.mean_latency_us = tree.mean_latency_us;
  out.per_cluster_latency_us = tree.per_leaf_latency_us;
  out.effective_rate_scale = tree.effective_rate_scale;
  out.total_queue_length = tree.total_queue_length;
  out.fixed_point_converged = tree.fixed_point_converged;
  out.fixed_point_iterations = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(tree.fixed_point_iterations,
                              std::numeric_limits<std::uint32_t>::max()));
  out.icn2 = center_state(tree.centers[0]);
  out.icn1.reserve(c);
  out.ecn1.reserve(c);
  for (std::size_t i = 0; i < c; ++i) {
    out.icn1.push_back(center_state(tree.centers[1 + 2 * i]));
    out.ecn1.push_back(center_state(tree.centers[2 + 2 * i]));
  }
  return out;
}

}  // namespace hmcs::analytic
