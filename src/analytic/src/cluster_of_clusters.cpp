#include "hmcs/analytic/cluster_of_clusters.hpp"

#include <algorithm>
#include <cmath>

#include "hmcs/analytic/mm1.hpp"
#include "hmcs/analytic/mva.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

std::uint64_t ClusterOfClustersConfig::total_nodes() const {
  std::uint64_t total = 0;
  for (const auto& cluster : clusters) total += cluster.nodes;
  return total;
}

void ClusterOfClustersConfig::validate() const {
  require(!clusters.empty(), "ClusterOfClusters: needs at least one cluster");
  for (const auto& cluster : clusters) {
    require(cluster.nodes >= 1, "ClusterOfClusters: every cluster needs nodes");
    analytic::validate(cluster.icn1);
    analytic::validate(cluster.ecn1);
    require(std::isfinite(cluster.generation_rate_per_us) &&
                cluster.generation_rate_per_us > 0.0,
            "ClusterOfClusters: generation rate must be > 0");
  }
  analytic::validate(icn2);
  require(switch_params.ports >= 4 && switch_params.ports % 2 == 0,
          "ClusterOfClusters: switch ports must be even and >= 4");
  require(switch_params.latency_us >= 0.0,
          "ClusterOfClusters: switch latency must be >= 0");
  require(message_bytes > 0.0, "ClusterOfClusters: message size must be > 0");
}

ClusterOfClustersConfig ClusterOfClustersConfig::from_super_cluster(
    const SystemConfig& config) {
  config.validate();
  ClusterOfClustersConfig out;
  out.clusters.assign(config.clusters,
                      ClusterSpec{config.nodes_per_cluster, config.icn1,
                                  config.ecn1, config.generation_rate_per_us});
  out.icn2 = config.icn2;
  out.switch_params = config.switch_params;
  out.architecture = config.architecture;
  out.message_bytes = config.message_bytes;
  return out;
}

namespace {

struct SolvedState {
  std::vector<double> icn1_rates;
  std::vector<double> ecn1_rates;
  double icn2_rate;
  double total_queue_length;
  bool saturated;
};

/// Arrival rates and queue lengths at throttle factor `phi`.
SolvedState evaluate(const ClusterOfClustersConfig& config,
                     const std::vector<ServiceTimeBreakdown>& icn1_service,
                     const std::vector<ServiceTimeBreakdown>& ecn1_service,
                     const ServiceTimeBreakdown& icn2_service, double phi) {
  const std::size_t c = config.clusters.size();
  const double n = static_cast<double>(config.total_nodes());

  SolvedState state{};
  state.icn1_rates.resize(c);
  state.ecn1_rates.resize(c);

  double icn2_rate = 0.0;
  std::vector<double> out_rate(c);
  std::vector<double> generated(c);
  for (std::size_t i = 0; i < c; ++i) {
    const auto& cluster = config.clusters[i];
    const double ni = static_cast<double>(cluster.nodes);
    const double pi = (n <= 1.0) ? 0.0 : (n - ni) / (n - 1.0);
    generated[i] = ni * cluster.generation_rate_per_us * phi;
    state.icn1_rates[i] = generated[i] * (1.0 - pi);
    out_rate[i] = generated[i] * pi;
    icn2_rate += out_rate[i];
  }
  // Ingress to cluster i: every remote message from j lands in i with
  // probability N_i/(N-1) (uniform over the N-1 non-self nodes; by
  // symmetry this sums to N_i * P_i * lam_i for homogeneous rates).
  for (std::size_t i = 0; i < c; ++i) {
    const double ni = static_cast<double>(config.clusters[i].nodes);
    double ingress = 0.0;
    for (std::size_t j = 0; j < c; ++j) {
      if (j == i) continue;
      ingress += generated[j] * ni / (n - 1.0);
    }
    state.ecn1_rates[i] = out_rate[i] + ingress;
  }
  state.icn2_rate = icn2_rate;

  double total = 0.0;
  bool saturated = false;
  auto accumulate = [&](double rate, const ServiceTimeBreakdown& service) {
    const double l = mm1::number_in_system(rate, service.service_rate());
    if (std::isinf(l)) {
      saturated = true;
    } else {
      total += l;
    }
  };
  for (std::size_t i = 0; i < c; ++i) {
    accumulate(state.icn1_rates[i], icn1_service[i]);
    accumulate(state.ecn1_rates[i], ecn1_service[i]);
  }
  accumulate(state.icn2_rate, icn2_service);
  state.saturated = saturated;
  state.total_queue_length = saturated ? n : std::min(total, n);
  return state;
}

HeteroCenterState solve_center(double rate, const ServiceTimeBreakdown& service) {
  HeteroCenterState out{};
  out.arrival_rate = rate;
  out.service_rate = service.service_rate();
  out.utilization = mm1::utilization(rate, out.service_rate);
  out.response_time_us = mm1::response_time(rate, out.service_rate);
  out.queue_length = mm1::number_in_system(rate, out.service_rate);
  return out;
}

/// Multi-class AMVA path: stations [ICN1_0..ICN1_{C-1}, ECN1_0..,
/// ICN2]; one class per cluster. See HeteroSolver::kApproxMva.
HeteroLatencyPrediction predict_amva(
    const ClusterOfClustersConfig& config,
    const std::vector<ServiceTimeBreakdown>& icn1_service,
    const std::vector<ServiceTimeBreakdown>& ecn1_service,
    const ServiceTimeBreakdown& icn2_service) {
  const std::size_t c = config.clusters.size();
  const double n = static_cast<double>(config.total_nodes());
  const std::size_t stations = 2 * c + 1;
  const std::size_t icn2_index = 2 * c;

  std::vector<double> rates(stations);
  for (std::size_t i = 0; i < c; ++i) {
    rates[i] = icn1_service[i].service_rate();
    rates[c + i] = ecn1_service[i].service_rate();
  }
  rates[icn2_index] = icn2_service.service_rate();

  std::vector<MvaClass> classes(c);
  for (std::size_t src = 0; src < c; ++src) {
    const auto& cluster = config.clusters[src];
    const double ni = static_cast<double>(cluster.nodes);
    const double pi = (n <= 1.0) ? 0.0 : (n - ni) / (n - 1.0);
    MvaClass& cls = classes[src];
    cls.population = cluster.nodes;
    cls.think_time_us = 1.0 / cluster.generation_rate_per_us;
    cls.visit_ratios.assign(stations, 0.0);
    cls.visit_ratios[src] = 1.0 - pi;        // own ICN1
    cls.visit_ratios[c + src] += pi;         // own ECN1, outbound
    if (pi > 0.0) {
      for (std::size_t dst = 0; dst < c; ++dst) {
        if (dst == src) continue;
        const double nd = static_cast<double>(config.clusters[dst].nodes);
        cls.visit_ratios[c + dst] += pi * nd / (n - ni);  // landing ECN1
      }
      cls.visit_ratios[icn2_index] = pi;
    }
  }

  const MultiClassMvaResult mva = solve_multiclass_amva(rates, classes);

  HeteroLatencyPrediction out{};
  out.fixed_point_converged = mva.converged;
  out.fixed_point_iterations = mva.iterations;
  out.total_queue_length = 0.0;
  for (const double l : mva.queue_length) out.total_queue_length += l;

  auto center_state = [&](std::size_t index) {
    HeteroCenterState state{};
    state.service_rate = rates[index];
    double weighted_response = 0.0;
    for (std::size_t cls = 0; cls < c; ++cls) {
      const double arrival =
          mva.throughput[cls] * classes[cls].visit_ratios[index];
      state.arrival_rate += arrival;
      weighted_response += arrival * mva.response_time_us[cls][index];
    }
    state.utilization = state.arrival_rate / state.service_rate;
    state.response_time_us = state.arrival_rate > 0.0
                                 ? weighted_response / state.arrival_rate
                                 : 1.0 / state.service_rate;
    state.queue_length = mva.queue_length[index];
    return state;
  };
  out.icn1.reserve(c);
  out.ecn1.reserve(c);
  for (std::size_t i = 0; i < c; ++i) {
    out.icn1.push_back(center_state(i));
    out.ecn1.push_back(center_state(c + i));
  }
  out.icn2 = center_state(icn2_index);

  out.per_cluster_latency_us.resize(c);
  double delivered = 0.0;
  double offered = 0.0;
  double weighted_latency = 0.0;
  for (std::size_t cls = 0; cls < c; ++cls) {
    // Per-message latency = cycle residence = N_c/X_c - Z_c.
    const double latency =
        static_cast<double>(classes[cls].population) / mva.throughput[cls] -
        classes[cls].think_time_us;
    out.per_cluster_latency_us[cls] = latency;
    weighted_latency += mva.throughput[cls] * latency;
    delivered += mva.throughput[cls];
    offered += static_cast<double>(config.clusters[cls].nodes) *
               config.clusters[cls].generation_rate_per_us;
  }
  out.mean_latency_us = weighted_latency / delivered;
  out.effective_rate_scale = delivered / offered;
  return out;
}

}  // namespace

HeteroLatencyPrediction predict_cluster_of_clusters(
    const ClusterOfClustersConfig& config, HeteroSolver solver) {
  config.validate();
  const std::size_t c = config.clusters.size();
  const double n = static_cast<double>(config.total_nodes());

  std::vector<ServiceTimeBreakdown> icn1_service(c);
  std::vector<ServiceTimeBreakdown> ecn1_service(c);
  for (std::size_t i = 0; i < c; ++i) {
    icn1_service[i] = network_service_time(
        config.clusters[i].icn1, config.clusters[i].nodes,
        config.switch_params, config.architecture, config.message_bytes);
    ecn1_service[i] = network_service_time(
        config.clusters[i].ecn1, config.clusters[i].nodes,
        config.switch_params, config.architecture, config.message_bytes);
  }
  const ServiceTimeBreakdown icn2_service =
      network_service_time(config.icn2, c, config.switch_params,
                           config.architecture, config.message_bytes);

  if (solver == HeteroSolver::kApproxMva) {
    return predict_amva(config, icn1_service, ecn1_service, icn2_service);
  }

  // Bisection on phi in (0, 1]: g(phi) = (N - L(phi))/N - phi is
  // decreasing with g(0+) > 0.
  auto g = [&](double phi) {
    const SolvedState s =
        evaluate(config, icn1_service, ecn1_service, icn2_service, phi);
    return (n - s.total_queue_length) / n - phi;
  };

  constexpr double kTolerance = 1e-12;
  constexpr std::uint32_t kMaxIterations = 200;
  double phi = 1.0;
  std::uint32_t iterations = 0;
  bool converged = true;
  if (g(1.0) < 0.0) {
    double lo = 0.0;
    double hi = 1.0;
    while (iterations < kMaxIterations && (hi - lo) > kTolerance) {
      ++iterations;
      const double mid = 0.5 * (lo + hi);
      if (g(mid) > 0.0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    phi = lo;
    converged = (hi - lo) <= kTolerance;
  }

  const SolvedState state =
      evaluate(config, icn1_service, ecn1_service, icn2_service, phi);

  HeteroLatencyPrediction out{};
  out.effective_rate_scale = phi;
  out.total_queue_length = state.total_queue_length;
  out.fixed_point_converged = converged;
  out.fixed_point_iterations = iterations;
  out.icn1.reserve(c);
  out.ecn1.reserve(c);
  for (std::size_t i = 0; i < c; ++i) {
    out.icn1.push_back(solve_center(state.icn1_rates[i], icn1_service[i]));
    out.ecn1.push_back(solve_center(state.ecn1_rates[i], ecn1_service[i]));
  }
  out.icn2 = solve_center(state.icn2_rate, icn2_service);

  // Latency of a message from cluster j: local with probability 1-P_j,
  // else to cluster i with conditional probability N_i/(N-N_j).
  out.per_cluster_latency_us.resize(c);
  double weighted_sum = 0.0;
  double weight_total = 0.0;
  for (std::size_t j = 0; j < c; ++j) {
    const double nj = static_cast<double>(config.clusters[j].nodes);
    const double pj = (n <= 1.0) ? 0.0 : (n - nj) / (n - 1.0);
    double latency = (pj < 1.0) ? (1.0 - pj) * out.icn1[j].response_time_us : 0.0;
    if (pj > 0.0) {
      double remote = 0.0;
      for (std::size_t i = 0; i < c; ++i) {
        if (i == j) continue;
        const double ni = static_cast<double>(config.clusters[i].nodes);
        const double q = ni / (n - nj);
        remote += q * (out.ecn1[j].response_time_us + out.icn2.response_time_us +
                       out.ecn1[i].response_time_us);
      }
      latency += pj * remote;
    }
    out.per_cluster_latency_us[j] = latency;
    const double weight = nj * config.clusters[j].generation_rate_per_us;
    weighted_sum += weight * latency;
    weight_total += weight;
  }
  ensure(weight_total > 0.0, "ClusterOfClusters: zero total generation rate");
  out.mean_latency_us = weighted_sum / weight_total;
  return out;
}

}  // namespace hmcs::analytic
