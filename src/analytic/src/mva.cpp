#include "hmcs/analytic/mva.hpp"

#include <algorithm>
#include <cmath>

#include "hmcs/analytic/routing_probability.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/analytic/system_config.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

MvaResult solve_closed_mva(const std::vector<MvaStation>& stations,
                           double think_time_us, std::uint64_t population) {
  require(population >= 1, "mva: population must be >= 1");
  require(std::isfinite(think_time_us) && think_time_us >= 0.0,
          "mva: think time must be >= 0");
  for (const MvaStation& station : stations) {
    require(std::isfinite(station.visit_ratio) && station.visit_ratio >= 0.0,
            "mva: visit ratios must be >= 0");
    require(std::isfinite(station.service_rate) && station.service_rate > 0.0,
            "mva: service rates must be > 0");
  }

  const std::size_t m = stations.size();
  MvaResult result;
  result.response_time_us.assign(m, 0.0);
  result.queue_length.assign(m, 0.0);

  // Exact recursion: W_i(n) = (1 + L_i(n-1)) / mu_i;
  // X(n) = n / (Z + sum_i v_i W_i(n)); L_i(n) = X(n) v_i W_i(n).
  for (std::uint64_t n = 1; n <= population; ++n) {
    double cycle = think_time_us;
    for (std::size_t i = 0; i < m; ++i) {
      result.response_time_us[i] =
          (1.0 + result.queue_length[i]) / stations[i].service_rate;
      cycle += stations[i].visit_ratio * result.response_time_us[i];
    }
    ensure(cycle > 0.0, "mva: degenerate zero cycle time");
    result.throughput = static_cast<double>(n) / cycle;
    for (std::size_t i = 0; i < m; ++i) {
      result.queue_length[i] = result.throughput * stations[i].visit_ratio *
                               result.response_time_us[i];
    }
  }

  result.total_residence_us = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    result.total_residence_us +=
        stations[i].visit_ratio * result.response_time_us[i];
  }
  return result;
}

MultiClassMvaResult solve_multiclass_amva(
    const std::vector<double>& station_service_rates,
    const std::vector<MvaClass>& classes, double tolerance,
    std::uint32_t max_iterations) {
  const std::size_t m = station_service_rates.size();
  const std::size_t k = classes.size();
  require(m >= 1, "amva: needs at least one station");
  require(k >= 1, "amva: needs at least one class");
  require(tolerance > 0.0, "amva: tolerance must be > 0");
  require(max_iterations >= 1, "amva: needs >= 1 iteration");
  for (const double mu : station_service_rates) {
    require(std::isfinite(mu) && mu > 0.0, "amva: service rates must be > 0");
  }
  for (const MvaClass& cls : classes) {
    require(cls.population >= 1, "amva: class populations must be >= 1");
    require(std::isfinite(cls.think_time_us) && cls.think_time_us >= 0.0,
            "amva: think times must be >= 0");
    require(cls.visit_ratios.size() == m,
            "amva: visit-ratio vector must match station count");
    for (const double v : cls.visit_ratios) {
      require(std::isfinite(v) && v >= 0.0, "amva: visit ratios must be >= 0");
    }
  }

  MultiClassMvaResult result;
  result.throughput.assign(k, 0.0);
  result.response_time_us.assign(k, std::vector<double>(m, 0.0));
  result.queue_length.assign(m, 0.0);

  // Per-class per-station queue lengths, seeded with the class spread
  // evenly over its visited stations (the standard Schweitzer start).
  std::vector<std::vector<double>> l(k, std::vector<double>(m, 0.0));
  for (std::size_t c = 0; c < k; ++c) {
    double visited = 0.0;
    for (const double v : classes[c].visit_ratios) visited += (v > 0.0);
    if (visited == 0.0) continue;
    for (std::size_t i = 0; i < m; ++i) {
      if (classes[c].visit_ratios[i] > 0.0) {
        l[c][i] = static_cast<double>(classes[c].population) / visited;
      }
    }
  }

  std::uint32_t iteration = 0;
  for (; iteration < max_iterations; ++iteration) {
    // Schweitzer estimate of the queue a class-c arrival sees at i:
    // everyone else's queue plus (N_c-1)/N_c of its own class's.
    double delta = 0.0;
    std::vector<std::vector<double>> next(k, std::vector<double>(m, 0.0));
    for (std::size_t c = 0; c < k; ++c) {
      const double population = static_cast<double>(classes[c].population);
      const double self_factor = (population - 1.0) / population;
      double cycle = classes[c].think_time_us;
      for (std::size_t i = 0; i < m; ++i) {
        double seen = self_factor * l[c][i];
        for (std::size_t other = 0; other < k; ++other) {
          if (other != c) seen += l[other][i];
        }
        result.response_time_us[c][i] =
            (1.0 + seen) / station_service_rates[i];
        cycle += classes[c].visit_ratios[i] * result.response_time_us[c][i];
      }
      ensure(cycle > 0.0, "amva: degenerate zero cycle time");
      result.throughput[c] = population / cycle;
      for (std::size_t i = 0; i < m; ++i) {
        next[c][i] = result.throughput[c] * classes[c].visit_ratios[i] *
                     result.response_time_us[c][i];
        delta = std::max(delta, std::fabs(next[c][i] - l[c][i]));
      }
    }
    l.swap(next);
    if (delta <= tolerance) {
      result.converged = true;
      break;
    }
  }
  result.iterations = iteration + 1;

  for (std::size_t i = 0; i < m; ++i) {
    double total = 0.0;
    for (std::size_t c = 0; c < k; ++c) total += l[c][i];
    result.queue_length[i] = total;
  }
  return result;
}

HmcsMvaLayout build_hmcs_mva_layout(const SystemConfig& config,
                                    const CenterServiceTimes& service) {
  config.validate();
  const double p =
      inter_cluster_probability(config.clusters, config.nodes_per_cluster);
  const double c = static_cast<double>(config.clusters);

  HmcsMvaLayout layout;
  layout.stations.reserve(2 * config.clusters + 1);
  layout.icn1_index = 0;
  for (std::uint32_t i = 0; i < config.clusters; ++i) {
    layout.stations.push_back(
        MvaStation{(1.0 - p) / c, service.icn1.service_rate()});
  }
  layout.ecn1_index = layout.stations.size();
  for (std::uint32_t i = 0; i < config.clusters; ++i) {
    layout.stations.push_back(
        MvaStation{2.0 * p / c, service.ecn1.service_rate()});
  }
  layout.icn2_index = layout.stations.size();
  layout.stations.push_back(MvaStation{p, service.icn2.service_rate()});
  return layout;
}

}  // namespace hmcs::analytic
