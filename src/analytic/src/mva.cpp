#include "hmcs/analytic/mva.hpp"

#include <algorithm>
#include <cmath>

#include "hmcs/analytic/routing_probability.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/analytic/system_config.hpp"
#include "hmcs/util/cancel.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

namespace {

/// Deadline/cancel poll cadence for the O(population) recursions — the
/// same rare-path granularity the simulators use (every 4096 events).
constexpr std::uint64_t kMvaCancelPollMask = 4095;

}  // namespace

MvaResult solve_closed_mva(const std::vector<MvaStation>& stations,
                           double think_time_us, std::uint64_t population,
                           const util::CancelToken* cancel) {
  require(population >= 1, "mva: population must be >= 1");
  require(std::isfinite(think_time_us) && think_time_us >= 0.0,
          "mva: think time must be >= 0");
  for (const MvaStation& station : stations) {
    require(std::isfinite(station.visit_ratio) && station.visit_ratio >= 0.0,
            "mva: visit ratios must be >= 0");
    require(std::isfinite(station.service_rate) && station.service_rate > 0.0,
            "mva: service rates must be > 0");
  }

  const std::size_t m = stations.size();
  MvaResult result;
  result.response_time_us.assign(m, 0.0);
  result.queue_length.assign(m, 0.0);

  // Exact recursion: W_i(n) = (1 + L_i(n-1)) / mu_i;
  // X(n) = n / (Z + sum_i v_i W_i(n)); L_i(n) = X(n) v_i W_i(n).
  for (std::uint64_t n = 1; n <= population; ++n) {
    if (cancel != nullptr && (n & kMvaCancelPollMask) == 1) {
      cancel->check("mva");
    }
    double cycle = think_time_us;
    for (std::size_t i = 0; i < m; ++i) {
      result.response_time_us[i] =
          (1.0 + result.queue_length[i]) / stations[i].service_rate;
      cycle += stations[i].visit_ratio * result.response_time_us[i];
    }
    ensure(cycle > 0.0, "mva: degenerate zero cycle time");
    result.throughput = static_cast<double>(n) / cycle;
    for (std::size_t i = 0; i < m; ++i) {
      result.queue_length[i] = result.throughput * stations[i].visit_ratio *
                               result.response_time_us[i];
    }
  }

  result.total_residence_us = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    result.total_residence_us +=
        stations[i].visit_ratio * result.response_time_us[i];
  }
  return result;
}

MvaClassResult solve_closed_mva_classes(
    const std::vector<MvaStationClass>& classes, double think_time_us,
    std::uint64_t population, const util::CancelToken* cancel) {
  require(population >= 1, "mva: population must be >= 1");
  require(std::isfinite(think_time_us) && think_time_us >= 0.0,
          "mva: think time must be >= 0");
  for (const MvaStationClass& cls : classes) {
    require(std::isfinite(cls.visit_ratio) && cls.visit_ratio >= 0.0,
            "mva: visit ratios must be >= 0");
    require(std::isfinite(cls.service_rate) && cls.service_rate > 0.0,
            "mva: service rates must be > 0");
    require(cls.multiplicity >= 1, "mva: class multiplicity must be >= 1");
  }

  const std::size_t k = classes.size();
  MvaClassResult result;
  result.response_time_us.assign(k, 0.0);
  result.queue_length.assign(k, 0.0);

  // The scalar recursion preserves equality across identical stations
  // (they start at L = 0 and receive identical updates), so one update
  // per class is exact; the class's cycle contribution is m_k v_k W_k.
  std::vector<double> class_visits(k);
  for (std::size_t i = 0; i < k; ++i) {
    class_visits[i] =
        static_cast<double>(classes[i].multiplicity) * classes[i].visit_ratio;
  }

  // W_i = (1 + L_i) * (1/mu_i) with the reciprocal hoisted: the O(N)
  // loop then carries one division (n / cycle) instead of k+1, which
  // shortens its loop-carried dependency chain by a division latency
  // per class. This is the one place the class path's arithmetic
  // deviates from the station recursion beyond association — it costs
  // an ulp on W and stays comfortably inside the <= 1e-12 contract.
  // The batch lockstep recursion (batch_solver.cpp) hoists the same
  // reciprocals in the same order, keeping the two paths bit-identical
  // to each other.
  std::vector<double> inv_rate(k);
  for (std::size_t i = 0; i < k; ++i) {
    inv_rate[i] = 1.0 / classes[i].service_rate;
  }

  if (k == 3) {
    // The HMCS layout (ICN1/ECN1/ICN2) always lands here; running the
    // recursion in registers frees it from vector loads/stores. Same
    // operations in the same order as the generic loop below, so the
    // result is bit-identical to it.
    const double s0 = inv_rate[0], s1 = inv_rate[1], s2 = inv_rate[2];
    const double v0 = classes[0].visit_ratio;
    const double v1 = classes[1].visit_ratio;
    const double v2 = classes[2].visit_ratio;
    const double cv0 = class_visits[0];
    const double cv1 = class_visits[1];
    const double cv2 = class_visits[2];
    double w0 = 0.0, w1 = 0.0, w2 = 0.0;
    double l0 = 0.0, l1 = 0.0, l2 = 0.0;
    double x = 0.0;
    for (std::uint64_t n = 1; n <= population; ++n) {
      if (cancel != nullptr && (n & kMvaCancelPollMask) == 1) {
        cancel->check("mva");
      }
      w0 = (1.0 + l0) * s0;
      w1 = (1.0 + l1) * s1;
      w2 = (1.0 + l2) * s2;
      double cycle = think_time_us;
      cycle += cv0 * w0;
      cycle += cv1 * w1;
      cycle += cv2 * w2;
      ensure(cycle > 0.0, "mva: degenerate zero cycle time");
      x = static_cast<double>(n) / cycle;
      l0 = x * v0 * w0;
      l1 = x * v1 * w1;
      l2 = x * v2 * w2;
    }
    result.response_time_us = {w0, w1, w2};
    result.queue_length = {l0, l1, l2};
    result.throughput = x;
  } else {
    for (std::uint64_t n = 1; n <= population; ++n) {
      if (cancel != nullptr && (n & kMvaCancelPollMask) == 1) {
        cancel->check("mva");
      }
      double cycle = think_time_us;
      for (std::size_t i = 0; i < k; ++i) {
        result.response_time_us[i] =
            (1.0 + result.queue_length[i]) * inv_rate[i];
        cycle += class_visits[i] * result.response_time_us[i];
      }
      ensure(cycle > 0.0, "mva: degenerate zero cycle time");
      result.throughput = static_cast<double>(n) / cycle;
      for (std::size_t i = 0; i < k; ++i) {
        result.queue_length[i] = result.throughput * classes[i].visit_ratio *
                                 result.response_time_us[i];
      }
    }
  }

  result.total_residence_us = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    result.total_residence_us += class_visits[i] * result.response_time_us[i];
  }
  return result;
}

MultiClassMvaResult solve_multiclass_amva(
    const std::vector<double>& station_service_rates,
    const std::vector<MvaClass>& classes, double tolerance,
    std::uint32_t max_iterations) {
  const std::size_t m = station_service_rates.size();
  const std::size_t k = classes.size();
  require(m >= 1, "amva: needs at least one station");
  require(k >= 1, "amva: needs at least one class");
  require(tolerance > 0.0, "amva: tolerance must be > 0");
  require(max_iterations >= 1, "amva: needs >= 1 iteration");
  for (const double mu : station_service_rates) {
    require(std::isfinite(mu) && mu > 0.0, "amva: service rates must be > 0");
  }
  for (const MvaClass& cls : classes) {
    require(cls.population >= 1, "amva: class populations must be >= 1");
    require(std::isfinite(cls.think_time_us) && cls.think_time_us >= 0.0,
            "amva: think times must be >= 0");
    require(cls.visit_ratios.size() == m,
            "amva: visit-ratio vector must match station count");
    for (const double v : cls.visit_ratios) {
      require(std::isfinite(v) && v >= 0.0, "amva: visit ratios must be >= 0");
    }
  }

  MultiClassMvaResult result;
  result.throughput.assign(k, 0.0);
  result.response_time_us.assign(k, std::vector<double>(m, 0.0));
  result.queue_length.assign(m, 0.0);

  // Per-class per-station queue lengths, seeded with the class spread
  // evenly over its visited stations (the standard Schweitzer start).
  std::vector<std::vector<double>> l(k, std::vector<double>(m, 0.0));
  for (std::size_t c = 0; c < k; ++c) {
    double visited = 0.0;
    for (const double v : classes[c].visit_ratios) visited += (v > 0.0);
    if (visited == 0.0) continue;
    for (std::size_t i = 0; i < m; ++i) {
      if (classes[c].visit_ratios[i] > 0.0) {
        l[c][i] = static_cast<double>(classes[c].population) / visited;
      }
    }
  }

  std::uint32_t iteration = 0;
  for (; iteration < max_iterations; ++iteration) {
    // Schweitzer estimate of the queue a class-c arrival sees at i:
    // everyone else's queue plus (N_c-1)/N_c of its own class's.
    double delta = 0.0;
    std::vector<std::vector<double>> next(k, std::vector<double>(m, 0.0));
    for (std::size_t c = 0; c < k; ++c) {
      const double population = static_cast<double>(classes[c].population);
      const double self_factor = (population - 1.0) / population;
      double cycle = classes[c].think_time_us;
      for (std::size_t i = 0; i < m; ++i) {
        double seen = self_factor * l[c][i];
        for (std::size_t other = 0; other < k; ++other) {
          if (other != c) seen += l[other][i];
        }
        result.response_time_us[c][i] =
            (1.0 + seen) / station_service_rates[i];
        cycle += classes[c].visit_ratios[i] * result.response_time_us[c][i];
      }
      ensure(cycle > 0.0, "amva: degenerate zero cycle time");
      result.throughput[c] = population / cycle;
      for (std::size_t i = 0; i < m; ++i) {
        next[c][i] = result.throughput[c] * classes[c].visit_ratios[i] *
                     result.response_time_us[c][i];
        delta = std::max(delta, std::fabs(next[c][i] - l[c][i]));
      }
    }
    l.swap(next);
    if (delta <= tolerance) {
      result.converged = true;
      break;
    }
  }
  result.iterations = iteration + 1;

  for (std::size_t i = 0; i < m; ++i) {
    double total = 0.0;
    for (std::size_t c = 0; c < k; ++c) total += l[c][i];
    result.queue_length[i] = total;
  }
  return result;
}

HmcsMvaLayout build_hmcs_mva_layout(const SystemConfig& config,
                                    const CenterServiceTimes& service) {
  config.validate();
  const double p =
      inter_cluster_probability(config.clusters, config.nodes_per_cluster);
  const double c = static_cast<double>(config.clusters);

  HmcsMvaLayout layout;
  layout.stations.reserve(2 * config.clusters + 1);
  layout.icn1_index = 0;
  for (std::uint32_t i = 0; i < config.clusters; ++i) {
    layout.stations.push_back(
        MvaStation{(1.0 - p) / c, service.icn1.service_rate()});
  }
  layout.ecn1_index = layout.stations.size();
  for (std::uint32_t i = 0; i < config.clusters; ++i) {
    layout.stations.push_back(
        MvaStation{2.0 * p / c, service.ecn1.service_rate()});
  }
  layout.icn2_index = layout.stations.size();
  layout.stations.push_back(MvaStation{p, service.icn2.service_rate()});
  return layout;
}

HmcsMvaClassLayout build_hmcs_mva_class_layout(
    const SystemConfig& config, const CenterServiceTimes& service) {
  config.validate();
  const double p =
      inter_cluster_probability(config.clusters, config.nodes_per_cluster);
  const double c = static_cast<double>(config.clusters);

  HmcsMvaClassLayout layout;
  layout.classes = {
      MvaStationClass{(1.0 - p) / c, service.icn1.service_rate(),
                      config.clusters},
      MvaStationClass{2.0 * p / c, service.ecn1.service_rate(),
                      config.clusters},
      MvaStationClass{p, service.icn2.service_rate(), 1},
  };
  return layout;
}

}  // namespace hmcs::analytic
