#include "hmcs/analytic/system_config.hpp"

#include <cmath>

#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

const char* to_string(NetworkArchitecture arch) {
  switch (arch) {
    case NetworkArchitecture::kNonBlocking:
      return "non-blocking (fat-tree)";
    case NetworkArchitecture::kBlocking:
      return "blocking (linear array)";
  }
  return "unknown";
}

void SystemConfig::validate() const {
  require(clusters >= 1, "SystemConfig: clusters must be >= 1");
  require(nodes_per_cluster >= 1, "SystemConfig: nodes_per_cluster must be >= 1");
  require(total_nodes() >= 1, "SystemConfig: system must have nodes");
  analytic::validate(icn1);
  analytic::validate(ecn1);
  analytic::validate(icn2);
  require(switch_params.ports >= 4 && switch_params.ports % 2 == 0,
          "SystemConfig: switch ports must be even and >= 4");
  require(std::isfinite(switch_params.latency_us) &&
              switch_params.latency_us >= 0.0,
          "SystemConfig: switch latency must be >= 0");
  require(std::isfinite(message_bytes) && message_bytes > 0.0,
          "SystemConfig: message size must be > 0");
  // Zero is a valid (if degenerate) rate: the analytic model is well
  // defined at zero load — lambda_eff = 0, empty centres, latency = the
  // no-load service time. The event-driven simulators cannot realise a
  // source that never generates and enforce > 0 at their own boundary.
  require(std::isfinite(generation_rate_per_us) &&
              generation_rate_per_us >= 0.0,
          "SystemConfig: generation rate must be >= 0");
  scenario.validate();
}

}  // namespace hmcs::analytic
