#include "hmcs/analytic/tree_model.hpp"

#include <algorithm>
#include <cmath>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/mm1.hpp"
#include "hmcs/analytic/mva.hpp"
#include "hmcs/util/cancel.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

namespace {

/// Per-node lookup of a node's network / egress centre in the
/// tree_centers vector (FlatNode::npos for the root's absent egress).
struct CenterIndex {
  std::vector<std::size_t> net;
  std::vector<std::size_t> egress;
};

CenterIndex index_centers(const FlatTreeView& view,
                          const std::vector<TreeCenter>& centers) {
  CenterIndex index;
  index.net.assign(view.nodes.size(), FlatNode::npos);
  index.egress.assign(view.nodes.size(), FlatNode::npos);
  for (std::size_t c = 0; c < centers.size(); ++c) {
    (centers[c].egress ? index.egress : index.net)[centers[c].node] = c;
  }
  return index;
}

/// Arrival rate of every centre at throttle factor `phi`, aligned with
/// the tree_centers vector. A node's network carries the traffic its
/// children send past each other (a leaf child excludes only the source
/// processor — intra-group messages still cross the network; an internal
/// child excludes its whole subtree, handled at a deeper LCA); an egress
/// carries the subtree's exit plus entry traffic.
std::vector<double> center_arrival_rates(const FlatTreeView& view,
                                         const std::vector<TreeCenter>& centers,
                                         double phi) {
  const double n = static_cast<double>(view.total_processors);
  const double total_gen = view.total_generation_rate * phi;
  std::vector<double> rates(centers.size(), 0.0);
  if (n <= 1.0) return rates;  // no destinations: nothing ever routes
  const double denom = n - 1.0;
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const FlatNode& node = view.nodes[centers[c].node];
    const double s_u = static_cast<double>(node.subtree_processors);
    double rate = 0.0;
    if (centers[c].egress) {
      const double gen_u = node.subtree_generation_rate * phi;
      rate = gen_u * (n - s_u) / denom + (total_gen - gen_u) * s_u / denom;
    } else {
      for (const std::size_t li : node.leaf_children) {
        const FlatLeaf& leaf = view.leaves[li];
        const double gen =
            static_cast<double>(leaf.processors) * leaf.rate_per_us * phi;
        rate += gen * (s_u - 1.0) / denom;
      }
      for (const std::size_t ci : node.internal_children) {
        const FlatNode& child = view.nodes[ci];
        const double gen = child.subtree_generation_rate * phi;
        rate += gen *
                static_cast<double>(node.subtree_processors -
                                    child.subtree_processors) /
                denom;
      }
    }
    rates[c] = rate;
  }
  return rates;
}

/// L(phi) per the chosen queue rule, capped at N; N when any centre is
/// saturated (mirrors analytic::total_queue_length and the
/// cluster-of-clusters evaluate()).
double queue_length_at(const FlatTreeView& view,
                       const std::vector<TreeCenter>& centers,
                       const FixedPointOptions& fp, double phi) {
  const std::vector<double> rates = center_arrival_rates(view, centers, phi);
  const double n = static_cast<double>(view.total_processors);
  double total = 0.0;
  bool saturated = false;
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const EffectiveService eff = effective_service(
        centers[c].service.service_rate(), fp.service_cv2, fp);
    const double l =
        gg1::number_in_system(rates[c], eff.mu, fp.arrival_ca2, eff.cs2);
    if (std::isinf(l)) {
      saturated = true;
    } else {
      const double weight =
          centers[c].egress && fp.queue_rule == QueueLengthRule::kPaperEq6
              ? 2.0
              : 1.0;
      total += weight * l;
    }
  }
  return saturated ? n : std::min(total, n);
}

struct TreePhi {
  double phi = 1.0;
  std::uint64_t iterations = 0;
  bool converged = true;
};

/// The blocked-source fixed point on the common throttle factor
/// phi in (0, 1]: g(phi) = (N - L(phi))/N - phi is decreasing with
/// g(0+) > 0, exactly the cluster-of-clusters solve shape.
TreePhi solve_phi(const FlatTreeView& view,
                  const std::vector<TreeCenter>& centers,
                  const FixedPointOptions& fp) {
  if (fp.residual_trace != nullptr) fp.residual_trace->clear();
  TreePhi out;
  if (view.total_generation_rate <= 0.0 ||
      fp.method == SourceThrottling::kNone) {
    return out;
  }
  const double n = static_cast<double>(view.total_processors);
  const auto g = [&](double phi) {
    return (n - queue_length_at(view, centers, fp, phi)) / n - phi;
  };

  if (fp.method == SourceThrottling::kPicard) {
    double phi = 1.0;
    bool converged = false;
    std::uint64_t iterations = 0;
    while (iterations < fp.max_iterations) {
      ++iterations;
      if (fp.cancel != nullptr) fp.cancel->check("tree_model");
      const double candidate =
          (n - queue_length_at(view, centers, fp, phi)) / n;
      const double next =
          fp.picard_damping * candidate + (1.0 - fp.picard_damping) * phi;
      const double residual = std::abs(next - phi);
      if (fp.residual_trace != nullptr) {
        fp.residual_trace->push_back(residual);
      }
      phi = next;
      if (residual <= fp.tolerance) {
        converged = true;
        break;
      }
    }
    out.phi = phi;
    out.iterations = iterations;
    out.converged = converged;
    return out;
  }

  // Bisection (default).
  if (g(1.0) >= 0.0) return out;  // unthrottled rate is self-consistent
  double lo = 0.0;
  double hi = 1.0;
  std::uint64_t iterations = 0;
  while (iterations < fp.max_iterations && (hi - lo) > fp.tolerance) {
    ++iterations;
    if (fp.cancel != nullptr) fp.cancel->check("tree_model");
    const double mid = 0.5 * (lo + hi);
    if (g(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (fp.residual_trace != nullptr) {
      fp.residual_trace->push_back(hi - lo);
    }
  }
  out.phi = lo;
  out.iterations = iterations;
  out.converged = (hi - lo) <= fp.tolerance;
  return out;
}

/// Mean latency of a message sourced in each leaf, given every centre's
/// response time W. The generalised eq. (15): sum over the source's
/// ancestors v of P(LCA = v) * (egress climb + W_net(v) + expected
/// egress descent), where the descent cost of landing in subtree u is
/// down(u) = W_egress(u) + sum_c (S(c)/S(u)) down(c) over internal
/// children (destinations in a leaf group attached to u's network are
/// delivered directly).
std::vector<double> assemble_leaf_latencies(
    const FlatTreeView& view, const CenterIndex& index,
    const std::vector<double>& response) {
  const double n = static_cast<double>(view.total_processors);
  std::vector<double> down(view.nodes.size(), 0.0);
  // Pre-order guarantees children follow their parent, so a descending
  // pass sees every child's down() before the parent needs it.
  for (std::size_t u = view.nodes.size(); u-- > 0;) {
    const FlatNode& node = view.nodes[u];
    if (node.parent == FlatNode::npos) continue;  // root: no egress
    double d = response[index.egress[u]];
    for (const std::size_t c : node.internal_children) {
      d += (static_cast<double>(view.nodes[c].subtree_processors) /
            static_cast<double>(node.subtree_processors)) *
           down[c];
    }
    down[u] = d;
  }

  std::vector<double> latencies(view.leaves.size(), 0.0);
  for (std::size_t a = 0; a < view.leaves.size(); ++a) {
    double climb = 0.0;
    double total = 0.0;
    std::size_t below = FlatNode::npos;  // path child at the current level
    for (std::size_t v = view.leaves[a].parent; v != FlatNode::npos;
         v = view.nodes[v].parent) {
      const FlatNode& node = view.nodes[v];
      const double excluded =
          below == FlatNode::npos
              ? 1.0
              : static_cast<double>(view.nodes[below].subtree_processors);
      const double reachable =
          static_cast<double>(node.subtree_processors) - excluded;
      const double p = n <= 1.0 ? 0.0 : reachable / (n - 1.0);
      // The p > 0 guard keeps zero-probability levels from poisoning the
      // sum when a saturated centre reports an infinite response time.
      if (p > 0.0) {
        double down_sum = 0.0;
        for (const std::size_t c : node.internal_children) {
          if (c == below) continue;
          down_sum +=
              static_cast<double>(view.nodes[c].subtree_processors) * down[c];
        }
        total += p * (climb + response[index.net[v]] + down_sum / reachable);
      }
      if (node.parent != FlatNode::npos) climb += response[index.egress[v]];
      below = v;
    }
    latencies[a] = total;
  }
  return latencies;
}

/// Offered-rate-weighted mean over source leaves (processor-weighted
/// when every rate is zero, where all latencies are no-load anyway).
double weighted_mean_latency(const FlatTreeView& view,
                             const std::vector<double>& per_leaf) {
  double weighted = 0.0;
  double weight_total = 0.0;
  for (std::size_t a = 0; a < view.leaves.size(); ++a) {
    const double weight =
        static_cast<double>(view.leaves[a].processors) *
        (view.total_generation_rate > 0.0 ? view.leaves[a].rate_per_us : 1.0);
    weighted += weight * per_leaf[a];
    weight_total += weight;
  }
  ensure(weight_total > 0.0, "tree_model: zero latency weight");
  return weighted / weight_total;
}

TreeLatencyPrediction predict_open(const FlatTreeView& view,
                                   const std::vector<TreeCenter>& centers,
                                   const CenterIndex& index,
                                   const FixedPointOptions& fp) {
  const TreePhi solved = solve_phi(view, centers, fp);
  const std::vector<double> rates =
      center_arrival_rates(view, centers, solved.phi);

  TreeLatencyPrediction out{};
  out.lowered_to_flat = false;
  out.lambda_offered_total = view.total_generation_rate;
  out.effective_rate_scale = solved.phi;
  out.total_queue_length = queue_length_at(view, centers, fp, solved.phi);
  out.fixed_point_converged = solved.converged;
  out.fixed_point_iterations = solved.iterations;

  std::vector<double> response(centers.size());
  out.centers.reserve(centers.size());
  for (std::size_t c = 0; c < centers.size(); ++c) {
    TreeCenterPrediction center{};
    center.path = centers[c].path;
    center.egress = centers[c].egress;
    center.arrival_rate = rates[c];
    const EffectiveService eff = effective_service(
        centers[c].service.service_rate(), fp.service_cv2, fp);
    center.service_rate = eff.mu;
    center.utilization = mm1::utilization(rates[c], eff.mu);
    center.response_time_us =
        gg1::response_time(rates[c], eff.mu, fp.arrival_ca2, eff.cs2);
    center.queue_length =
        gg1::number_in_system(rates[c], eff.mu, fp.arrival_ca2, eff.cs2);
    response[c] = center.response_time_us;
    out.centers.push_back(std::move(center));
  }

  out.per_leaf_latency_us = assemble_leaf_latencies(view, index, response);
  out.mean_latency_us = weighted_mean_latency(view, out.per_leaf_latency_us);
  return out;
}

/// Uniform trees: every customer is exchangeable, so the closed network
/// is single-class and exact station-class MVA applies. Centres with
/// bit-equal (visit ratio, service time) pairs collapse into one class —
/// symmetric siblings compute both through identical operation
/// sequences, so the collapse recovers PR 6's O(classes) recursion (the
/// flat layout's 2C+1 -> 3).
TreeLatencyPrediction predict_uniform_mva(const FlatTreeView& view,
                                          const std::vector<TreeCenter>& centers,
                                          const CenterIndex& index,
                                          const FixedPointOptions& fp) {
  const double total_gen = view.total_generation_rate;
  const std::vector<double> offered = center_arrival_rates(view, centers, 1.0);

  std::vector<MvaStationClass> classes;
  std::vector<std::size_t> class_of(centers.size());
  for (std::size_t c = 0; c < centers.size(); ++c) {
    const double visit = offered[c] / total_gen;
    const double rate = centers[c].service.service_rate();
    std::size_t k = 0;
    for (; k < classes.size(); ++k) {
      if (classes[k].visit_ratio == visit &&
          classes[k].service_rate == rate) {
        break;
      }
    }
    if (k == classes.size()) {
      classes.push_back(MvaStationClass{visit, rate, 1});
    } else {
      ++classes[k].multiplicity;
    }
    class_of[c] = k;
  }

  const double leaf_rate = view.leaves.front().rate_per_us;
  const std::uint64_t population = view.total_processors;
  const MvaClassResult mva = solve_closed_mva_classes(
      classes, 1.0 / leaf_rate, population, fp.cancel);

  TreeLatencyPrediction out{};
  out.lowered_to_flat = false;
  out.mean_latency_us = mva.total_residence_us;
  out.lambda_offered_total = total_gen;
  out.effective_rate_scale = mva.throughput / total_gen;
  out.fixed_point_converged = true;
  out.fixed_point_iterations = population;

  std::vector<double> response(centers.size());
  out.centers.reserve(centers.size());
  out.total_queue_length = 0.0;
  for (std::size_t c = 0; c < centers.size(); ++c) {
    TreeCenterPrediction center{};
    center.path = centers[c].path;
    center.egress = centers[c].egress;
    center.service_rate = centers[c].service.service_rate();
    center.arrival_rate = mva.throughput * classes[class_of[c]].visit_ratio;
    center.utilization = center.arrival_rate / center.service_rate;
    center.response_time_us = mva.response_time_us[class_of[c]];
    center.queue_length = mva.queue_length[class_of[c]];
    response[c] = center.response_time_us;
    out.total_queue_length += center.queue_length;
    out.centers.push_back(std::move(center));
  }

  out.per_leaf_latency_us = assemble_leaf_latencies(view, index, response);
  return out;
}

/// Heterogeneous trees: multi-class Bard-Schweitzer AMVA, one customer
/// class per leaf (own population, think time, visit ratios) — the
/// recursive generalisation of the cluster-of-clusters kApproxMva path.
TreeLatencyPrediction predict_tree_amva(const FlatTreeView& view,
                                        const std::vector<TreeCenter>& centers,
                                        const CenterIndex& index) {
  const double n = static_cast<double>(view.total_processors);
  for (const FlatLeaf& leaf : view.leaves) {
    require(leaf.rate_per_us > 0.0,
            "tree_model: the MVA path needs every leaf generation rate > 0 "
            "(use the open fixed point for idle leaves)");
  }

  std::vector<double> station_rates(centers.size());
  for (std::size_t c = 0; c < centers.size(); ++c) {
    station_rates[c] = centers[c].service.service_rate();
  }

  std::vector<bool> is_ancestor(view.nodes.size());
  std::vector<MvaClass> classes(view.leaves.size());
  for (std::size_t a = 0; a < view.leaves.size(); ++a) {
    MvaClass& cls = classes[a];
    cls.population = view.leaves[a].processors;
    cls.think_time_us = 1.0 / view.leaves[a].rate_per_us;
    cls.visit_ratios.assign(centers.size(), 0.0);
    if (n <= 1.0) continue;

    std::fill(is_ancestor.begin(), is_ancestor.end(), false);
    for (std::size_t v = view.leaves[a].parent; v != FlatNode::npos;
         v = view.nodes[v].parent) {
      is_ancestor[v] = true;
    }
    // Network visits: P(LCA = v) at each ancestor.
    std::size_t below = FlatNode::npos;
    for (std::size_t v = view.leaves[a].parent; v != FlatNode::npos;
         v = view.nodes[v].parent) {
      const double excluded =
          below == FlatNode::npos
              ? 1.0
              : static_cast<double>(view.nodes[below].subtree_processors);
      cls.visit_ratios[index.net[v]] =
          (static_cast<double>(view.nodes[v].subtree_processors) - excluded) /
          (n - 1.0);
      below = v;
    }
    // Egress visits: an ancestor's egress is crossed when the
    // destination is outside its subtree; a non-ancestor's when the
    // destination is inside it.
    for (std::size_t u = 0; u < view.nodes.size(); ++u) {
      if (view.nodes[u].parent == FlatNode::npos) continue;
      const double s_u =
          static_cast<double>(view.nodes[u].subtree_processors);
      cls.visit_ratios[index.egress[u]] =
          is_ancestor[u] ? (n - s_u) / (n - 1.0) : s_u / (n - 1.0);
    }
  }

  const MultiClassMvaResult mva =
      solve_multiclass_amva(station_rates, classes);

  TreeLatencyPrediction out{};
  out.lowered_to_flat = false;
  out.fixed_point_converged = mva.converged;
  out.fixed_point_iterations = mva.iterations;
  out.total_queue_length = 0.0;
  for (const double l : mva.queue_length) out.total_queue_length += l;

  out.centers.reserve(centers.size());
  for (std::size_t c = 0; c < centers.size(); ++c) {
    TreeCenterPrediction center{};
    center.path = centers[c].path;
    center.egress = centers[c].egress;
    center.service_rate = station_rates[c];
    double weighted_response = 0.0;
    for (std::size_t a = 0; a < classes.size(); ++a) {
      const double arrival = mva.throughput[a] * classes[a].visit_ratios[c];
      center.arrival_rate += arrival;
      weighted_response += arrival * mva.response_time_us[a][c];
    }
    center.utilization = center.arrival_rate / center.service_rate;
    center.response_time_us = center.arrival_rate > 0.0
                                  ? weighted_response / center.arrival_rate
                                  : 1.0 / center.service_rate;
    center.queue_length = mva.queue_length[c];
    out.centers.push_back(std::move(center));
  }

  out.per_leaf_latency_us.resize(view.leaves.size());
  double delivered = 0.0;
  double offered = 0.0;
  double weighted_latency = 0.0;
  for (std::size_t a = 0; a < view.leaves.size(); ++a) {
    // Per-message latency = cycle residence = N_a/X_a - Z_a.
    const double latency =
        static_cast<double>(classes[a].population) / mva.throughput[a] -
        classes[a].think_time_us;
    out.per_leaf_latency_us[a] = latency;
    weighted_latency += mva.throughput[a] * latency;
    delivered += mva.throughput[a];
    offered += static_cast<double>(view.leaves[a].processors) *
               view.leaves[a].rate_per_us;
  }
  out.mean_latency_us = weighted_latency / delivered;
  out.lambda_offered_total = offered;
  out.effective_rate_scale = delivered / offered;
  return out;
}

TreeLatencyPrediction from_flat_prediction(const SystemConfig& config,
                                           const LatencyPrediction& flat) {
  TreeLatencyPrediction out{};
  out.lowered_to_flat = true;
  out.mean_latency_us = flat.mean_latency_us;
  out.per_leaf_latency_us.assign(config.clusters, flat.mean_latency_us);
  out.lambda_offered_total =
      static_cast<double>(config.total_nodes()) * flat.lambda_offered;
  out.effective_rate_scale =
      flat.lambda_offered > 0.0 ? flat.lambda_effective / flat.lambda_offered
                                : 1.0;
  out.total_queue_length = flat.total_queue_length;
  out.fixed_point_converged = flat.fixed_point_converged;
  out.fixed_point_iterations = flat.fixed_point_iterations;

  const auto convert = [](const CenterPrediction& from, std::string path,
                          bool egress) {
    TreeCenterPrediction center{};
    center.path = std::move(path);
    center.egress = egress;
    center.arrival_rate = from.arrival_rate;
    center.service_rate = from.service_rate;
    center.utilization = from.utilization;
    center.response_time_us = from.response_time_us;
    center.queue_length = from.queue_length;
    return center;
  };
  out.centers.reserve(1 + 2 * static_cast<std::size_t>(config.clusters));
  out.centers.push_back(convert(flat.icn2, "root.icn", false));
  for (std::uint32_t i = 0; i < config.clusters; ++i) {
    const std::string base = "root.children[" + std::to_string(i) + "]";
    out.centers.push_back(convert(flat.icn1, base + ".icn", false));
    out.centers.push_back(convert(flat.ecn1, base + ".egress", true));
  }
  return out;
}

}  // namespace

TreeLatencyPrediction predict_model_tree(const ModelTree& tree,
                                         const TreeModelOptions& options) {
  tree.validate();
  if (options.exact_lowering) {
    if (const auto flat = tree.as_system_config()) {
      ModelOptions scalar;
      scalar.fixed_point = options.fixed_point;
      return from_flat_prediction(*flat, predict_latency(*flat, scalar));
    }
  }

  const FlatTreeView view = flatten(tree);
  const std::vector<TreeCenter> centers = tree_centers(tree, view);
  const CenterIndex index = index_centers(view, centers);
  // Fold the tree-wide workload scenario into the solver options; the
  // MMPP ca^2 is resolved at the processor-weighted mean source rate.
  const double mean_rate =
      view.total_processors > 0
          ? view.total_generation_rate /
                static_cast<double>(view.total_processors)
          : 0.0;
  const FixedPointOptions fp =
      with_scenario(options.fixed_point, tree.scenario, mean_rate);

  if (fp.method == SourceThrottling::kExactMva &&
      view.total_generation_rate > 0.0) {
    require(fp.service_cv2 == 1.0 && fp.arrival_ca2 == 1.0 &&
                (fp.failure_mtbf_us <= 0.0 || fp.failure_mttr_us <= 0.0),
            "tree_model: exact MVA requires exponential service, Poisson "
            "arrivals and no failure/repair (product form)");
    if (is_uniform_tree(tree)) {
      return predict_uniform_mva(view, centers, index, fp);
    }
    return predict_tree_amva(view, centers, index);
  }
  return predict_open(view, centers, index, fp);
}

}  // namespace hmcs::analytic
