#include "hmcs/analytic/batch_solver.hpp"

#include <algorithm>
#include <cmath>

#include "hmcs/analytic/mm1.hpp"
#include "hmcs/analytic/mva.hpp"
#include "hmcs/analytic/routing_probability.hpp"
#include "hmcs/obs/metrics.hpp"
#include "hmcs/util/cancel.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

namespace {

/// Everything of total_queue_length that does not depend on the cell's
/// rate, hoisted once per group. The arrival rates are linear in the
/// iterate x with the exact coefficients (and associativity) of
/// compute_arrival_rates, so queue_at() below is arithmetic-identical
/// to the scalar total_queue_length.
struct GroupConstants {
  double n = 0.0;    ///< total nodes
  double c = 0.0;    ///< clusters
  double p = 0.0;    ///< eq. (8)
  double a_icn1 = 0.0;   ///< N0 (1-P):   rate_icn1 = a_icn1 * x
  double a_ecn1f = 0.0;  ///< N0 P:       forward ECN1 rate = a_ecn1f * x
  double a_icn2 = 0.0;   ///< (C N0) P:   rate_icn2 = a_icn2 * x
  double mu_icn1 = 0.0;
  double mu_ecn1 = 0.0;
  double mu_icn2 = 0.0;
  double cs2_icn1 = 1.0;  ///< effective completion-time cs^2 (failures in)
  double cs2_ecn1 = 1.0;
  double cs2_icn2 = 1.0;
  double ecn1_weight = 0.0;  ///< 2 for kPaperEq6, 1 for kConsistent
};

GroupConstants make_constants(const SystemConfig& base,
                              const CenterServiceTimes& service,
                              const FixedPointOptions& options) {
  GroupConstants g;
  g.n = static_cast<double>(base.total_nodes());
  g.c = static_cast<double>(base.clusters);
  g.p = inter_cluster_probability(base.clusters, base.nodes_per_cluster);
  const double n0 = static_cast<double>(base.nodes_per_cluster);
  g.a_icn1 = n0 * (1.0 - g.p);
  g.a_ecn1f = n0 * g.p;
  g.a_icn2 = (g.c * n0) * g.p;
  // The failure/repair fold is the same effective_service call the
  // scalar path makes per evaluation, hoisted once per group — pure in
  // its inputs, so the hoist is bit-identical.
  const EffectiveService icn1 = effective_service(
      service.icn1.service_rate(), options.service_cv2, options);
  const EffectiveService ecn1 = effective_service(
      service.ecn1.service_rate(), options.service_cv2, options);
  const EffectiveService icn2 = effective_service(
      service.icn2.service_rate(), options.service_cv2, options);
  g.mu_icn1 = icn1.mu;
  g.mu_ecn1 = ecn1.mu;
  g.mu_icn2 = icn2.mu;
  g.cs2_icn1 = icn1.cs2;
  g.cs2_ecn1 = ecn1.cs2;
  g.cs2_icn2 = icn2.cs2;
  g.ecn1_weight =
      (options.queue_rule == QueueLengthRule::kPaperEq6) ? 2.0 : 1.0;
  return g;
}

/// Group-level scenario fold: service cv^2, failure/repair and a fixed
/// arrival ca^2 are rate-independent; an engaged MMPP's effective ca^2
/// depends on the cell's rate and is resolved per cell below.
FixedPointOptions fold_scenario(const FixedPointOptions& options,
                                const WorkloadScenario& scenario) {
  WorkloadScenario fixed = scenario;
  fixed.mmpp.reset();
  return with_scenario(options, fixed, 0.0);
}

/// The cell's effective arrival ca^2 — the same mmpp_arrival_scv call
/// the scalar with_scenario makes at this rate.
double cell_arrival_ca2(const FixedPointOptions& folded,
                        const WorkloadScenario& scenario, double rate) {
  return scenario.mmpp.has_value() ? mmpp_arrival_scv(*scenario.mmpp, rate)
                                   : folded.arrival_ca2;
}

/// eq. (6) at iterate x — bit-identical to total_queue_length(base with
/// rate x): same arrival-rate products, same M/G/1 calls, same sum
/// order, same saturation cap.
double queue_at(const GroupConstants& g, double ca2, double x) {
  const double rate_icn1 = g.a_icn1 * x;
  const double rate_icn2 = g.a_icn2 * x;
  const double rate_ecn1 = g.a_ecn1f * x + rate_icn2 / g.c;

  const double l_icn1 =
      gg1::number_in_system(rate_icn1, g.mu_icn1, ca2, g.cs2_icn1);
  const double l_ecn1 =
      gg1::number_in_system(rate_ecn1, g.mu_ecn1, ca2, g.cs2_ecn1);
  const double l_icn2 =
      gg1::number_in_system(rate_icn2, g.mu_icn2, ca2, g.cs2_icn2);
  if (std::isinf(l_icn1) || std::isinf(l_ecn1) || std::isinf(l_icn2)) {
    return g.n;  // a saturated centre eventually blocks every source
  }
  const double total = g.c * (g.ecn1_weight * l_ecn1 + l_icn1) + l_icn2;
  return std::min(total, g.n);
}

/// eq. (7) root function g(x); same expression as the scalar bisection.
double root_fn(const GroupConstants& g, double ca2, double lambda, double x) {
  return lambda * (g.n - queue_at(g, ca2, x)) / g.n - x;
}

FixedPointResult zero_rate_result() {
  return FixedPointResult{0.0, 0.0, 0, true};
}

void require_cell_rate(double rate) {
  require(std::isfinite(rate) && rate >= 0.0,
          "SystemConfig: generation rate must be >= 0");
}

// --- Picard -----------------------------------------------------------------

struct PicardSlot {
  std::size_t cell = 0;
  double lambda = 0.0;
  double ca2 = 1.0;
  double current = 0.0;
  double queue = 0.0;
};

/// Advances every slot one Picard step per sweep; converged slots retire
/// in place (stable compaction). State transitions mirror solve_picard
/// exactly: a converged cell reports the post-update iterate and the
/// queue at it; an exhausted cell reports the final iterate with the
/// queue of the previous one.
void picard_lockstep(const GroupConstants& g, const FixedPointOptions& options,
                     std::vector<PicardSlot> slots, FixedPointResult* out) {
  for (std::uint32_t iter = 1;
       iter <= options.max_iterations && !slots.empty(); ++iter) {
    if (options.cancel != nullptr) options.cancel->check("fixed_point");
    std::size_t keep = 0;
    for (PicardSlot& slot : slots) {
      slot.queue = queue_at(g, slot.ca2, slot.current);
      const double candidate = slot.lambda * (g.n - slot.queue) / g.n;
      const double next = options.picard_damping * candidate +
                          (1.0 - options.picard_damping) * slot.current;
      if (std::fabs(next - slot.current) <=
          options.tolerance * slot.lambda) {
        out[slot.cell] =
            FixedPointResult{next, queue_at(g, slot.ca2, next), iter, true};
      } else {
        slot.current = next;
        slots[keep++] = slot;
      }
    }
    slots.resize(keep);
  }
  for (const PicardSlot& slot : slots) {
    out[slot.cell] = FixedPointResult{slot.current, slot.queue,
                                      options.max_iterations, false};
  }
}

void solve_picard_batch(const GroupConstants& g,
                        const FixedPointOptions& options, bool warm_start,
                        const std::vector<double>& rates,
                        const std::vector<double>& ca2s,
                        FixedPointResult* out) {
  // Cells that iterate (rate > 0), in grid order.
  std::vector<std::size_t> active;
  active.reserve(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] == 0.0) {
      out[i] = zero_rate_result();
    } else {
      active.push_back(i);
    }
  }
  if (active.empty()) return;

  auto make_slot = [&](std::size_t cell, double start) {
    PicardSlot slot;
    slot.cell = cell;
    slot.lambda = rates[cell];
    slot.ca2 = ca2s[cell];
    slot.current = start;
    return slot;
  };

  if (!warm_start) {
    std::vector<PicardSlot> slots;
    slots.reserve(active.size());
    for (const std::size_t cell : active) {
      slots.push_back(make_slot(cell, rates[cell]));  // the scalar start
    }
    picard_lockstep(g, options, std::move(slots), out);
    return;
  }

  // Pass 1: anchors (every kWarmStride-th active cell) solve cold.
  std::vector<PicardSlot> anchors;
  for (std::size_t pos = 0; pos < active.size(); pos += kWarmStride) {
    anchors.push_back(make_slot(active[pos], rates[active[pos]]));
  }
  picard_lockstep(g, options, std::move(anchors), out);

  // Pass 2: the cells between anchors start from their preceding
  // anchor's solved fixed point (clamped into (0, lambda]; the fixed
  // point never exceeds the offered rate).
  std::vector<PicardSlot> followers;
  for (std::size_t pos = 0; pos < active.size(); ++pos) {
    if (pos % kWarmStride == 0) continue;
    const std::size_t cell = active[pos];
    const std::size_t anchor = active[pos - pos % kWarmStride];
    const double warm = out[anchor].lambda_effective;
    const double start =
        (warm > 0.0 && warm < rates[cell]) ? warm : rates[cell];
    followers.push_back(make_slot(cell, start));
  }
  picard_lockstep(g, options, std::move(followers), out);
}

// --- Bisection --------------------------------------------------------------

struct BisectionSlot {
  std::size_t cell = 0;
  double lambda = 0.0;
  double ca2 = 1.0;
  double lo = 0.0;
  double hi = 0.0;
  std::uint32_t iterations = 0;
};

void bisection_lockstep(const GroupConstants& g,
                        const FixedPointOptions& options,
                        std::vector<BisectionSlot> slots,
                        FixedPointResult* out) {
  while (!slots.empty()) {
    if (options.cancel != nullptr) options.cancel->check("fixed_point");
    std::size_t keep = 0;
    for (BisectionSlot& slot : slots) {
      if (slot.iterations >= options.max_iterations ||
          (slot.hi - slot.lo) <= options.tolerance * slot.lambda) {
        // Report the stable side of the bracket (queue length finite).
        out[slot.cell] = FixedPointResult{
            slot.lo, queue_at(g, slot.ca2, slot.lo), slot.iterations,
            (slot.hi - slot.lo) <= options.tolerance * slot.lambda};
        continue;
      }
      ++slot.iterations;
      const double mid = 0.5 * (slot.lo + slot.hi);
      if (root_fn(g, slot.ca2, slot.lambda, mid) > 0.0) {
        slot.lo = mid;
      } else {
        slot.hi = mid;
      }
      slots[keep++] = slot;
    }
    slots.resize(keep);
  }
}

void solve_bisection_batch(const GroupConstants& g,
                           const FixedPointOptions& options, bool warm_start,
                           const std::vector<double>& rates,
                           const std::vector<double>& ca2s,
                           FixedPointResult* out) {
  std::vector<std::size_t> active;
  active.reserve(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double lambda = rates[i];
    if (lambda == 0.0) {
      out[i] = zero_rate_result();
      continue;
    }
    // g(lambda) <= 0 always; g(lambda) == 0 means the system is
    // load-free — same short-circuit (and iteration count) as scalar.
    if (root_fn(g, ca2s[i], lambda, lambda) >= 0.0) {
      out[i] = FixedPointResult{lambda, queue_at(g, ca2s[i], lambda), 1, true};
      continue;
    }
    active.push_back(i);
  }
  if (active.empty()) return;

  auto cold_slot = [&](std::size_t cell) {
    BisectionSlot slot;
    slot.cell = cell;
    slot.lambda = rates[cell];
    slot.ca2 = ca2s[cell];
    slot.lo = 0.0;  // g(0+) = lambda > 0
    slot.hi = rates[cell];
    return slot;
  };

  if (!warm_start) {
    std::vector<BisectionSlot> slots;
    slots.reserve(active.size());
    for (const std::size_t cell : active) slots.push_back(cold_slot(cell));
    bisection_lockstep(g, options, std::move(slots), out);
    return;
  }

  std::vector<BisectionSlot> anchors;
  for (std::size_t pos = 0; pos < active.size(); pos += kWarmStride) {
    anchors.push_back(cold_slot(active[pos]));
  }
  bisection_lockstep(g, options, std::move(anchors), out);

  // Followers shrink the initial bracket around their anchor's root: a
  // probe pair at anchor*(1 ± 1e-3) usually straddles the neighbouring
  // cell's root, replacing ~10 halvings of [0, lambda] with 2 evals.
  // When it does not straddle, the probe signs still cut the bracket on
  // the correct side, so the result stays a valid bisection from a
  // narrower start — never an approximation.
  std::vector<BisectionSlot> followers;
  for (std::size_t pos = 0; pos < active.size(); ++pos) {
    if (pos % kWarmStride == 0) continue;
    BisectionSlot slot = cold_slot(active[pos]);
    const std::size_t anchor = active[pos - pos % kWarmStride];
    const double warm = out[anchor].lambda_effective;
    if (warm > 0.0 && warm < slot.lambda) {
      const double probe_lo = warm * (1.0 - 1e-3);
      const double probe_hi = std::min(slot.lambda, warm * (1.0 + 1e-3));
      if (probe_lo > 0.0 && root_fn(g, slot.ca2, slot.lambda, probe_lo) > 0.0) {
        slot.lo = probe_lo;
        if (root_fn(g, slot.ca2, slot.lambda, probe_hi) <= 0.0) {
          slot.hi = probe_hi;
        }
      } else if (probe_lo > 0.0) {
        slot.hi = probe_lo;
      }
    }
    followers.push_back(slot);
  }
  bisection_lockstep(g, options, std::move(followers), out);
}

// --- Exact MVA --------------------------------------------------------------

constexpr std::uint64_t kMvaCancelPollMask = 4095;

/// Station-class MVA recursion over all cells of a group in lockstep:
/// outer loop over the population, inner loop over cells (contiguous
/// per-cell state, vectorisable). Per cell this performs exactly the
/// arithmetic of solve_closed_mva_classes, so results are bit-identical
/// to per-cell scalar solves.
std::vector<MvaClassResult> mva_batch(
    const std::vector<MvaStationClass>& classes,
    const std::vector<double>& think_times, std::uint64_t population,
    const util::CancelToken* cancel) {
  const std::size_t k = classes.size();
  const std::size_t m = think_times.size();
  std::vector<double> class_visits(k);
  for (std::size_t i = 0; i < k; ++i) {
    class_visits[i] =
        static_cast<double>(classes[i].multiplicity) * classes[i].visit_ratio;
  }
  // Hoisted reciprocals, exactly as in solve_closed_mva_classes — the
  // scalar and lockstep recursions must stay bit-identical.
  std::vector<double> inv_rate(k);
  for (std::size_t i = 0; i < k; ++i) {
    inv_rate[i] = 1.0 / classes[i].service_rate;
  }

  // Cell-major state: w/l for cell j occupy [j*k, (j+1)*k).
  std::vector<double> w(m * k, 0.0);
  std::vector<double> l(m * k, 0.0);
  std::vector<double> x(m, 0.0);

  for (std::uint64_t n = 1; n <= population; ++n) {
    if (cancel != nullptr && (n & kMvaCancelPollMask) == 1) {
      cancel->check("mva");
    }
    const double customers = static_cast<double>(n);
    for (std::size_t j = 0; j < m; ++j) {
      double* wj = w.data() + j * k;
      double* lj = l.data() + j * k;
      double cycle = think_times[j];
      for (std::size_t i = 0; i < k; ++i) {
        wj[i] = (1.0 + lj[i]) * inv_rate[i];
        cycle += class_visits[i] * wj[i];
      }
      ensure(cycle > 0.0, "mva: degenerate zero cycle time");
      x[j] = customers / cycle;
      for (std::size_t i = 0; i < k; ++i) {
        lj[i] = x[j] * classes[i].visit_ratio * wj[i];
      }
    }
  }

  std::vector<MvaClassResult> results(m);
  for (std::size_t j = 0; j < m; ++j) {
    MvaClassResult& result = results[j];
    result.throughput = x[j];
    result.response_time_us.assign(w.begin() + static_cast<std::ptrdiff_t>(j * k),
                                   w.begin() + static_cast<std::ptrdiff_t>((j + 1) * k));
    result.queue_length.assign(l.begin() + static_cast<std::ptrdiff_t>(j * k),
                               l.begin() + static_cast<std::ptrdiff_t>((j + 1) * k));
    result.total_residence_us = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      result.total_residence_us +=
          class_visits[i] * result.response_time_us[i];
    }
  }
  return results;
}

/// The kExactMva cells of a group, solved in lockstep. Zero-rate cells
/// are handled by the caller. Returns results only for `cells`.
std::vector<MvaClassResult> solve_mva_cells(
    const SystemConfig& base, const CenterServiceTimes& service,
    const std::vector<double>& rates, const std::vector<std::size_t>& cells,
    const util::CancelToken* cancel, HmcsMvaClassLayout& layout_out) {
  layout_out = build_hmcs_mva_class_layout(base, service);
  std::vector<double> thinks;
  thinks.reserve(cells.size());
  for (const std::size_t cell : cells) thinks.push_back(1.0 / rates[cell]);
  return mva_batch(layout_out.classes, thinks, base.total_nodes(), cancel);
}

FixedPointResult mva_fixed_point(const HmcsMvaClassLayout& layout,
                                 const MvaClassResult& mva,
                                 std::uint64_t total_nodes) {
  double total_queue = 0.0;
  for (std::size_t i = 0; i < layout.classes.size(); ++i) {
    total_queue += static_cast<double>(layout.classes[i].multiplicity) *
                   mva.queue_length[i];
  }
  return FixedPointResult{
      mva.throughput / static_cast<double>(total_nodes), total_queue,
      total_nodes, true};
}

/// Same option validation as solve_effective_rate, hoisted per group.
void validate_options(const FixedPointOptions& options) {
  require(options.tolerance > 0.0, "fixed_point: tolerance must be > 0");
  require(options.max_iterations >= 1, "fixed_point: needs >= 1 iteration");
  require(options.picard_damping > 0.0 && options.picard_damping <= 1.0,
          "fixed_point: damping must be in (0, 1]");
  require(options.service_cv2 >= 0.0, "fixed_point: cv^2 must be >= 0");
  require(options.arrival_ca2 >= 0.0, "fixed_point: ca^2 must be >= 0");
  require(options.failure_mtbf_us >= 0.0 && options.failure_mttr_us >= 0.0,
          "fixed_point: failure mtbf/mttr must be >= 0");
  require(options.method != SourceThrottling::kExactMva ||
              options.service_cv2 == 1.0,
          "fixed_point: exact MVA requires exponential service (cv^2 = 1)");
  require(options.method != SourceThrottling::kExactMva ||
              (options.arrival_ca2 == 1.0 &&
               (options.failure_mtbf_us <= 0.0 ||
                options.failure_mttr_us <= 0.0)),
          "fixed_point: exact MVA requires Poisson arrivals and no "
          "failure/repair (product form)");
}

void record_batch_obs(const FixedPointResult* results, std::size_t count) {
  HMCS_OBS_COUNTER_INC("analytic.batch.groups");
  HMCS_OBS_COUNTER_ADD("analytic.batch.cells", count);
  HMCS_OBS_COUNTER_ADD("analytic.fixed_point.solves", count);
  std::uint64_t iterations = 0;
  std::uint64_t nonconverged = 0;
  for (std::size_t i = 0; i < count; ++i) {
    iterations += results[i].iterations;
    nonconverged += results[i].converged ? 0 : 1;
  }
  HMCS_OBS_COUNTER_ADD("analytic.fixed_point.iterations", iterations);
  if (nonconverged != 0) {
    HMCS_OBS_COUNTER_ADD("analytic.fixed_point.nonconverged", nonconverged);
  }
}

/// True when the two configs may share one group: equal in every model
/// input except the generation rate (names are labels, not numbers).
bool same_tech(const NetworkTechnology& a, const NetworkTechnology& b) {
  return a.latency_us == b.latency_us &&
         a.bandwidth_bytes_per_us == b.bandwidth_bytes_per_us;
}

bool same_topology(const SystemConfig& a, const SystemConfig& b) {
  return a.clusters == b.clusters &&
         a.nodes_per_cluster == b.nodes_per_cluster &&
         same_tech(a.icn1, b.icn1) && same_tech(a.ecn1, b.ecn1) &&
         same_tech(a.icn2, b.icn2) &&
         a.switch_params.ports == b.switch_params.ports &&
         a.switch_params.latency_us == b.switch_params.latency_us &&
         a.architecture == b.architecture &&
         a.message_bytes == b.message_bytes && a.scenario == b.scenario;
}

}  // namespace

std::vector<FixedPointResult> solve_effective_rate_batch(
    const RateGrid& grid, const FixedPointOptions& options,
    const BatchOptions& batch) {
  SystemConfig base = grid.base;
  base.generation_rate_per_us = 0.0;  // cell rates are validated below
  base.validate();
  // Fold the base config's workload scenario into the group's options;
  // an MMPP resolves to one effective ca^2 per cell (rate-dependent).
  const FixedPointOptions fp = fold_scenario(options, base.scenario);
  validate_options(fp);
  require(fp.method != SourceThrottling::kExactMva ||
              !base.scenario.mmpp.has_value(),
          "fixed_point: exact MVA requires Poisson arrivals and no "
          "failure/repair (product form)");
  for (const double rate : grid.rates_per_us) require_cell_rate(rate);

  std::vector<FixedPointResult> results(grid.rates_per_us.size());
  if (results.empty()) return results;

  const CenterServiceTimes service = center_service_times(base);
  const GroupConstants g = make_constants(base, service, fp);
  std::vector<double> ca2s(grid.rates_per_us.size(), fp.arrival_ca2);
  if (base.scenario.mmpp.has_value()) {
    for (std::size_t i = 0; i < grid.rates_per_us.size(); ++i) {
      ca2s[i] = cell_arrival_ca2(fp, base.scenario, grid.rates_per_us[i]);
    }
  }

  switch (fp.method) {
    case SourceThrottling::kNone:
      for (std::size_t i = 0; i < grid.rates_per_us.size(); ++i) {
        const double lambda = grid.rates_per_us[i];
        results[i] =
            FixedPointResult{lambda, queue_at(g, ca2s[i], lambda), 0, true};
      }
      break;
    case SourceThrottling::kPicard:
      solve_picard_batch(g, fp, batch.warm_start, grid.rates_per_us, ca2s,
                         results.data());
      break;
    case SourceThrottling::kBisection:
      solve_bisection_batch(g, fp, batch.warm_start, grid.rates_per_us, ca2s,
                            results.data());
      break;
    case SourceThrottling::kExactMva: {
      std::vector<std::size_t> cells;
      for (std::size_t i = 0; i < grid.rates_per_us.size(); ++i) {
        if (grid.rates_per_us[i] == 0.0) {
          results[i] = zero_rate_result();
        } else {
          cells.push_back(i);
        }
      }
      if (!cells.empty()) {
        HmcsMvaClassLayout layout;
        const std::vector<MvaClassResult> solved = solve_mva_cells(
            base, service, grid.rates_per_us, cells, fp.cancel, layout);
        for (std::size_t k = 0; k < cells.size(); ++k) {
          results[cells[k]] =
              mva_fixed_point(layout, solved[k], base.total_nodes());
        }
      }
      break;
    }
  }
  record_batch_obs(results.data(), results.size());
  return results;
}

std::vector<LatencyPrediction> predict_latency_batch(
    const SystemConfig* const* configs, std::size_t count,
    const ModelOptions& options, const BatchOptions& batch) {
  std::vector<LatencyPrediction> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; /* advanced below */) {
    require(configs[i] != nullptr, "predict_latency_batch: null config");
    std::size_t end = i + 1;
    while (end < count && configs[end] != nullptr &&
           same_topology(*configs[i], *configs[end])) {
      ++end;
    }

    const SystemConfig& base = *configs[i];
    base.validate();
    RateGrid grid;
    grid.base = base;
    grid.rates_per_us.reserve(end - i);
    for (std::size_t cell = i; cell < end; ++cell) {
      grid.rates_per_us.push_back(configs[cell]->generation_rate_per_us);
    }

    const double p =
        inter_cluster_probability(base.clusters, base.nodes_per_cluster);
    const CenterServiceTimes service = center_service_times(base);
    const FixedPointOptions group_fp =
        fold_scenario(options.fixed_point, base.scenario);
    // Per-cell epilogue options: only the MMPP-derived ca^2 varies.
    const auto cell_fp = [&](double rate) {
      FixedPointOptions fp = group_fp;
      fp.arrival_ca2 = cell_arrival_ca2(group_fp, base.scenario, rate);
      return fp;
    };

    if (options.fixed_point.method == SourceThrottling::kExactMva) {
      // Positive-rate cells take the closed-network MVA solution;
      // zero-rate cells route through the open-network epilogue with the
      // converged-at-zero fixed point — exactly predict_latency's split.
      validate_options(group_fp);
      require(!base.scenario.mmpp.has_value(),
              "fixed_point: exact MVA requires Poisson arrivals and no "
              "failure/repair (product form)");
      for (const double rate : grid.rates_per_us) require_cell_rate(rate);
      std::vector<std::size_t> cells;
      for (std::size_t k = 0; k < grid.rates_per_us.size(); ++k) {
        if (grid.rates_per_us[k] > 0.0) cells.push_back(k);
      }
      std::vector<LatencyPrediction> group(grid.rates_per_us.size());
      if (!cells.empty()) {
        HmcsMvaClassLayout layout;
        const std::vector<MvaClassResult> solved =
            solve_mva_cells(base, service, grid.rates_per_us, cells,
                            options.fixed_point.cancel, layout);
        for (std::size_t k = 0; k < cells.size(); ++k) {
          group[cells[k]] = detail::finish_mva_prediction(
              *configs[i + cells[k]], p, service, layout, solved[k]);
        }
      }
      for (std::size_t k = 0; k < group.size(); ++k) {
        if (grid.rates_per_us[k] == 0.0) {
          group[k] = detail::finish_open_prediction(
              *configs[i + k], p, service, zero_rate_result(),
              cell_fp(0.0));
        }
        out.push_back(std::move(group[k]));
      }
    } else {
      const std::vector<FixedPointResult> solved =
          solve_effective_rate_batch(grid, options.fixed_point, batch);
      for (std::size_t k = 0; k < solved.size(); ++k) {
        out.push_back(detail::finish_open_prediction(
            *configs[i + k], p, service, solved[k],
            cell_fp(grid.rates_per_us[k])));
      }
    }
    i = end;
  }
  return out;
}

std::vector<LatencyPrediction> predict_latency_batch(
    const std::vector<SystemConfig>& configs, const ModelOptions& options,
    const BatchOptions& batch) {
  std::vector<const SystemConfig*> pointers;
  pointers.reserve(configs.size());
  for (const SystemConfig& config : configs) pointers.push_back(&config);
  return predict_latency_batch(pointers.data(), pointers.size(), options,
                               batch);
}

}  // namespace hmcs::analytic
