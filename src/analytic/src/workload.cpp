#include "hmcs/analytic/workload.hpp"

#include <cmath>
#include <initializer_list>
#include <string>

#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

void MmppArrivals::validate() const {
  require(std::isfinite(burst_ratio) && burst_ratio >= 1.0,
          "workload: mmpp burst_ratio must be >= 1");
  require(std::isfinite(burst_fraction) && burst_fraction > 0.0 &&
              burst_fraction < 1.0,
          "workload: mmpp burst_fraction must be in (0, 1)");
  require(std::isfinite(burst_dwell_us) && burst_dwell_us > 0.0,
          "workload: mmpp burst_dwell_us must be > 0");
}

MmppRates resolve_mmpp(const MmppArrivals& mmpp, double mean_rate_per_us) {
  mmpp.validate();
  require(std::isfinite(mean_rate_per_us) && mean_rate_per_us >= 0.0,
          "workload: mmpp mean rate must be >= 0");
  // Stationary occupancy of the burst state is burst_fraction f, so the
  // base-state dwell follows from detailed balance: d0 = d1 (1-f)/f.
  // The time-stationary mean (1-f) r0 + f r1 with r1 = b r0 pins r0.
  const double f = mmpp.burst_fraction;
  const double base_dwell_us = mmpp.burst_dwell_us * (1.0 - f) / f;
  MmppRates rates;
  rates.leave_base = 1.0 / base_dwell_us;
  rates.leave_burst = 1.0 / mmpp.burst_dwell_us;
  rates.base_rate =
      mean_rate_per_us / (1.0 - f + mmpp.burst_ratio * f);
  rates.burst_rate = mmpp.burst_ratio * rates.base_rate;
  return rates;
}

double mmpp_arrival_scv(const MmppArrivals& mmpp, double mean_rate_per_us) {
  const MmppRates rates = resolve_mmpp(mmpp, mean_rate_per_us);
  if (mean_rate_per_us <= 0.0 || mmpp.burst_ratio == 1.0) return 1.0;
  // Exact MAP interarrival moments for the 2-state MMPP. With
  // -D0 = [[r0+s0, -s0], [-s1, r1+s1]] and the arrival-embedded
  // stationary vector pi_a ∝ (pi0 r0, pi1 r1):
  //   E[X]   = pi_a (-D0)^{-1} 1,
  //   E[X^2] = 2 pi_a (-D0)^{-2} 1,
  // so two 2x2 solves give the SCV = E[X^2]/E[X]^2 - 1.
  const double r0 = rates.base_rate, r1 = rates.burst_rate;
  const double s0 = rates.leave_base, s1 = rates.leave_burst;
  const double a = r0 + s0, b = -s0;
  const double c = -s1, d = r1 + s1;
  const double det = a * d - b * c;
  // det = r0 r1 + r0 s1 + r1 s0 > 0 whenever the mean rate is > 0.
  const auto solve = [&](double rhs0, double rhs1, double& y0, double& y1) {
    y0 = (d * rhs0 - b * rhs1) / det;
    y1 = (a * rhs1 - c * rhs0) / det;
  };
  const double pi1 = mmpp.burst_fraction;
  const double pi0 = 1.0 - pi1;
  const double pa0 = pi0 * r0 / mean_rate_per_us;
  const double pa1 = pi1 * r1 / mean_rate_per_us;
  double y0, y1;  // y = (-D0)^{-1} 1
  solve(1.0, 1.0, y0, y1);
  double z0, z1;  // z = (-D0)^{-1} y
  solve(y0, y1, z0, z1);
  const double mean = pa0 * y0 + pa1 * y1;
  const double second = 2.0 * (pa0 * z0 + pa1 * z1);
  return second / (mean * mean) - 1.0;
}

void FailureRepair::validate() const {
  require(std::isfinite(mtbf_us) && mtbf_us > 0.0,
          "workload: failure mtbf_us must be > 0");
  require(std::isfinite(mttr_us) && mttr_us >= 0.0,
          "workload: failure mttr_us must be >= 0");
}

bool WorkloadScenario::is_default() const {
  return service_cv2 == 1.0 && arrival_ca2 == 1.0 && !mmpp.has_value() &&
         !failure.has_value();
}

void WorkloadScenario::validate() const {
  require(std::isfinite(service_cv2) && service_cv2 >= 0.0,
          "workload: service_cv2 must be >= 0");
  require(std::isfinite(arrival_ca2) && arrival_ca2 >= 0.0,
          "workload: arrival_ca2 must be >= 0");
  require(!mmpp.has_value() || arrival_ca2 == 1.0,
          "workload: arrival_ca2 and mmpp are mutually exclusive");
  if (mmpp.has_value()) mmpp->validate();
  if (failure.has_value()) failure->validate();
}

bool operator==(const MmppArrivals& a, const MmppArrivals& b) {
  return a.burst_ratio == b.burst_ratio &&
         a.burst_fraction == b.burst_fraction &&
         a.burst_dwell_us == b.burst_dwell_us;
}

bool operator==(const FailureRepair& a, const FailureRepair& b) {
  return a.mtbf_us == b.mtbf_us && a.mttr_us == b.mttr_us;
}

bool operator==(const WorkloadScenario& a, const WorkloadScenario& b) {
  return a.service_cv2 == b.service_cv2 && a.arrival_ca2 == b.arrival_ca2 &&
         a.mmpp == b.mmpp && a.failure == b.failure;
}

namespace {

void reject_unknown(const JsonValue& object,
                    std::initializer_list<std::string_view> known,
                    const std::string& where) {
  for (const auto& [key, value] : object.members) {
    (void)value;
    bool recognised = false;
    for (const std::string_view candidate : known) {
      if (key == candidate) {
        recognised = true;
        break;
      }
    }
    require(recognised, "workload: unknown key '" + key + "' in " + where);
  }
}

}  // namespace

WorkloadScenario workload_from_json(const JsonValue& value) {
  require(value.is_object(), "workload: must be an object");
  reject_unknown(value, {"service_cv2", "arrival_ca2", "mmpp", "failure"},
                 "workload");
  WorkloadScenario scenario;
  if (const JsonValue* cv2 = value.find("service_cv2")) {
    scenario.service_cv2 = cv2->as_number();
  }
  if (const JsonValue* ca2 = value.find("arrival_ca2")) {
    require(value.find("mmpp") == nullptr,
            "workload: arrival_ca2 and mmpp are mutually exclusive");
    scenario.arrival_ca2 = ca2->as_number();
  }
  if (const JsonValue* mmpp = value.find("mmpp")) {
    require(mmpp->is_object(), "workload: mmpp must be an object");
    reject_unknown(*mmpp, {"burst_ratio", "burst_fraction", "burst_dwell_us"},
                   "workload.mmpp");
    MmppArrivals arrivals;
    if (const JsonValue* ratio = mmpp->find("burst_ratio")) {
      arrivals.burst_ratio = ratio->as_number();
    }
    if (const JsonValue* fraction = mmpp->find("burst_fraction")) {
      arrivals.burst_fraction = fraction->as_number();
    }
    if (const JsonValue* dwell = mmpp->find("burst_dwell_us")) {
      arrivals.burst_dwell_us = dwell->as_number();
    }
    scenario.mmpp = arrivals;
  }
  if (const JsonValue* failure = value.find("failure")) {
    require(failure->is_object(), "workload: failure must be an object");
    reject_unknown(*failure, {"mtbf_us", "mttr_us"}, "workload.failure");
    FailureRepair repair;
    repair.mtbf_us = failure->at("mtbf_us").as_number();
    repair.mttr_us = failure->at("mttr_us").as_number();
    scenario.failure = repair;
  }
  scenario.validate();
  return scenario;
}

void write_json(JsonWriter& json, const WorkloadScenario& scenario) {
  json.begin_object();
  json.key("service_cv2").value(scenario.service_cv2);
  if (scenario.mmpp.has_value()) {
    json.key("mmpp").begin_object();
    json.key("burst_ratio").value(scenario.mmpp->burst_ratio);
    json.key("burst_fraction").value(scenario.mmpp->burst_fraction);
    json.key("burst_dwell_us").value(scenario.mmpp->burst_dwell_us);
    json.end_object();
  } else {
    json.key("arrival_ca2").value(scenario.arrival_ca2);
  }
  if (scenario.failure.has_value()) {
    json.key("failure").begin_object();
    json.key("mtbf_us").value(scenario.failure->mtbf_us);
    json.key("mttr_us").value(scenario.failure->mttr_us);
    json.end_object();
  }
  json.end_object();
}

}  // namespace hmcs::analytic
