#include "hmcs/analytic/serialize.hpp"

#include "hmcs/util/units.hpp"

namespace hmcs::analytic {

void write_json(JsonWriter& json, const NetworkTechnology& tech) {
  json.begin_object();
  json.key("name").value(tech.name);
  json.key("latency_us").value(tech.latency_us);
  json.key("bandwidth_mb_per_s").value(tech.bandwidth_bytes_per_us);
  json.end_object();
}

void write_json(JsonWriter& json, const SystemConfig& config) {
  json.begin_object();
  json.key("clusters").value(config.clusters);
  json.key("nodes_per_cluster").value(config.nodes_per_cluster);
  json.key("icn1");
  write_json(json, config.icn1);
  json.key("ecn1");
  write_json(json, config.ecn1);
  json.key("icn2");
  write_json(json, config.icn2);
  json.key("switch_ports").value(config.switch_params.ports);
  json.key("switch_latency_us").value(config.switch_params.latency_us);
  json.key("architecture").value(to_string(config.architecture));
  json.key("message_bytes").value(config.message_bytes);
  json.key("generation_rate_per_us").value(config.generation_rate_per_us);
  // Emitted only when non-default: this document is the canonical cache
  // key body, and default-scenario configs must keep producing the exact
  // bytes they produced before workloads existed (warm caches, serve
  // snapshots).
  if (!config.scenario.is_default()) {
    json.key("workload");
    write_json(json, config.scenario);
  }
  json.end_object();
}

void write_json(JsonWriter& json, const CenterPrediction& center) {
  json.begin_object();
  json.key("arrival_rate_per_us").value(center.arrival_rate);
  json.key("service_rate_per_us").value(center.service_rate);
  json.key("utilization").value(center.utilization);
  json.key("response_time_us").value(center.response_time_us);
  json.key("queue_length").value(center.queue_length);
  json.end_object();
}

void write_json(JsonWriter& json, const LatencyPrediction& prediction) {
  json.begin_object();
  json.key("mean_latency_us").value(prediction.mean_latency_us);
  json.key("inter_cluster_probability")
      .value(prediction.inter_cluster_probability);
  json.key("lambda_offered_per_us").value(prediction.lambda_offered);
  json.key("lambda_effective_per_us").value(prediction.lambda_effective);
  json.key("total_queue_length").value(prediction.total_queue_length);
  json.key("fixed_point_converged").value(prediction.fixed_point_converged);
  json.key("fixed_point_iterations").value(prediction.fixed_point_iterations);
  json.key("icn1");
  write_json(json, prediction.icn1);
  json.key("ecn1");
  write_json(json, prediction.ecn1);
  json.key("icn2");
  write_json(json, prediction.icn2);
  json.end_object();
}

void write_json(JsonWriter& json, const ClusterOfClustersConfig& config) {
  json.begin_object();
  json.key("clusters").begin_array();
  for (const ClusterSpec& cluster : config.clusters) {
    json.begin_object();
    json.key("nodes").value(cluster.nodes);
    json.key("icn1");
    write_json(json, cluster.icn1);
    json.key("ecn1");
    write_json(json, cluster.ecn1);
    json.key("generation_rate_per_us").value(cluster.generation_rate_per_us);
    json.end_object();
  }
  json.end_array();
  json.key("icn2");
  write_json(json, config.icn2);
  json.key("switch_ports").value(config.switch_params.ports);
  json.key("switch_latency_us").value(config.switch_params.latency_us);
  json.key("architecture").value(to_string(config.architecture));
  json.key("message_bytes").value(config.message_bytes);
  json.end_object();
}

namespace {

void write_hetero_center(JsonWriter& json, const HeteroCenterState& center) {
  json.begin_object();
  json.key("arrival_rate_per_us").value(center.arrival_rate);
  json.key("utilization").value(center.utilization);
  json.key("response_time_us").value(center.response_time_us);
  json.key("queue_length").value(center.queue_length);
  json.end_object();
}

}  // namespace

void write_json(JsonWriter& json, const HeteroLatencyPrediction& prediction) {
  json.begin_object();
  json.key("mean_latency_us").value(prediction.mean_latency_us);
  json.key("per_cluster_latency_us").begin_array();
  for (const double latency : prediction.per_cluster_latency_us) {
    json.value(latency);
  }
  json.end_array();
  json.key("effective_rate_scale").value(prediction.effective_rate_scale);
  json.key("total_queue_length").value(prediction.total_queue_length);
  json.key("converged").value(prediction.fixed_point_converged);
  json.key("icn1").begin_array();
  for (const auto& center : prediction.icn1) write_hetero_center(json, center);
  json.end_array();
  json.key("ecn1").begin_array();
  for (const auto& center : prediction.ecn1) write_hetero_center(json, center);
  json.end_array();
  json.key("icn2");
  write_hetero_center(json, prediction.icn2);
  json.end_object();
}

void write_json(JsonWriter& json, const ModelNode& node, bool root) {
  json.begin_object();
  if (!node.name.empty()) json.key("name").value(node.name);
  if (node.is_leaf()) {
    json.key("processors").value(node.processors);
    json.key("lambda_per_s")
        .value(units::per_us_to_per_s(node.generation_rate_per_us));
  } else {
    json.key("network");
    write_json(json, node.network);
    if (!root) {
      json.key("egress");
      write_json(json, node.egress);
    }
    json.key("children").begin_array();
    for (const ModelNode& child : node.children) {
      write_json(json, child, /*root=*/false);
    }
    json.end_array();
  }
  json.end_object();
}

void write_json(JsonWriter& json, const ModelTree& tree) {
  json.begin_object();
  json.key("tree");
  write_json(json, tree.root, /*root=*/true);
  json.key("switch_ports").value(tree.switch_params.ports);
  json.key("switch_latency_us").value(tree.switch_params.latency_us);
  // The parseable token, not the display name: this document must
  // round-trip through tree_io's parse_architecture.
  json.key("architecture")
      .value(tree.architecture == NetworkArchitecture::kNonBlocking
                 ? "non-blocking"
                 : "blocking");
  json.key("message_bytes").value(tree.message_bytes);
  // Same canonical-key compatibility rule as the flat writer above.
  if (!tree.scenario.is_default()) {
    json.key("workload");
    write_json(json, tree.scenario);
  }
  json.end_object();
}

void write_json(JsonWriter& json, const TreeLatencyPrediction& prediction) {
  json.begin_object();
  json.key("mean_latency_us").value(prediction.mean_latency_us);
  json.key("per_leaf_latency_us").begin_array();
  for (const double latency : prediction.per_leaf_latency_us) {
    json.value(latency);
  }
  json.end_array();
  json.key("lambda_offered_total_per_us")
      .value(prediction.lambda_offered_total);
  json.key("effective_rate_scale").value(prediction.effective_rate_scale);
  json.key("total_queue_length").value(prediction.total_queue_length);
  json.key("converged").value(prediction.fixed_point_converged);
  json.key("iterations").value(prediction.fixed_point_iterations);
  json.key("lowered_to_flat").value(prediction.lowered_to_flat);
  json.key("centers").begin_array();
  for (const TreeCenterPrediction& center : prediction.centers) {
    json.begin_object();
    json.key("path").value(center.path);
    json.key("egress").value(center.egress);
    json.key("arrival_rate_per_us").value(center.arrival_rate);
    json.key("service_rate_per_us").value(center.service_rate);
    json.key("utilization").value(center.utilization);
    json.key("response_time_us").value(center.response_time_us);
    json.key("queue_length").value(center.queue_length);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

namespace {

template <typename T>
std::string document(const T& value) {
  JsonWriter json;
  write_json(json, value);
  return json.str();
}

}  // namespace

std::string to_json(const SystemConfig& config) { return document(config); }
std::string to_json(const LatencyPrediction& prediction) {
  return document(prediction);
}
std::string to_json(const ClusterOfClustersConfig& config) {
  return document(config);
}
std::string to_json(const HeteroLatencyPrediction& prediction) {
  return document(prediction);
}
std::string to_json(const ModelTree& tree) { return document(tree); }
std::string to_json(const TreeLatencyPrediction& prediction) {
  return document(prediction);
}

}  // namespace hmcs::analytic
