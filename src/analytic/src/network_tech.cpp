#include "hmcs/analytic/network_tech.hpp"

#include <cmath>

#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

NetworkTechnology gigabit_ethernet() { return {"Gigabit Ethernet", 80.0, 94.0}; }

NetworkTechnology fast_ethernet() { return {"Fast Ethernet", 50.0, 10.5}; }

NetworkTechnology myrinet() { return {"Myrinet", 9.0, 230.0}; }

NetworkTechnology infiniband() { return {"Infiniband", 6.0, 700.0}; }

void validate(const NetworkTechnology& tech) {
  require(!tech.name.empty(), "NetworkTechnology: name must not be empty");
  require(std::isfinite(tech.latency_us) && tech.latency_us >= 0.0,
          "NetworkTechnology '" + tech.name + "': latency must be >= 0");
  require(std::isfinite(tech.bandwidth_bytes_per_us) &&
              tech.bandwidth_bytes_per_us > 0.0,
          "NetworkTechnology '" + tech.name + "': bandwidth must be > 0");
}

}  // namespace hmcs::analytic
