#include "hmcs/analytic/routing_probability.hpp"

#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

double inter_cluster_probability(std::uint32_t clusters,
                                 std::uint32_t nodes_per_cluster) {
  require(clusters >= 1, "inter_cluster_probability: C must be >= 1");
  require(nodes_per_cluster >= 1, "inter_cluster_probability: N0 must be >= 1");
  const std::uint64_t total =
      static_cast<std::uint64_t>(clusters) * nodes_per_cluster;
  if (total <= 1) return 0.0;
  const double remote = static_cast<double>(
      static_cast<std::uint64_t>(clusters - 1) * nodes_per_cluster);
  return remote / static_cast<double>(total - 1);
}

}  // namespace hmcs::analytic
