#include "hmcs/analytic/bounds.hpp"

#include <algorithm>
#include <limits>

#include "hmcs/analytic/routing_probability.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

AsymptoticBounds compute_bounds(const SystemConfig& config) {
  return compute_bounds(config, center_service_times(config));
}

AsymptoticBounds compute_bounds(const SystemConfig& config,
                                const CenterServiceTimes& service) {
  config.validate();
  const double p =
      inter_cluster_probability(config.clusters, config.nodes_per_cluster);
  const double c = static_cast<double>(config.clusters);
  const double n = static_cast<double>(config.total_nodes());
  const double z = 1.0 / config.generation_rate_per_us;

  // Per-station demands (visit ratio x mean service time).
  const double icn1_station = (1.0 - p) / c * service.icn1.total_us();
  const double ecn1_station = 2.0 * p / c * service.ecn1.total_us();
  const double icn2_station = p * service.icn2.total_us();

  AsymptoticBounds bounds;
  bounds.total_demand_us =
      c * icn1_station + c * ecn1_station + icn2_station;

  bounds.bottleneck_demand_us = icn1_station;
  bounds.bottleneck = "ICN1";
  if (ecn1_station > bounds.bottleneck_demand_us) {
    bounds.bottleneck_demand_us = ecn1_station;
    bounds.bottleneck = "ECN1";
  }
  if (icn2_station > bounds.bottleneck_demand_us) {
    bounds.bottleneck_demand_us = icn2_station;
    bounds.bottleneck = "ICN2";
  }

  // System throughput bound, then per processor.
  const double x_population = n / (bounds.total_demand_us + z);
  const double x_bottleneck =
      bounds.bottleneck_demand_us > 0.0
          ? 1.0 / bounds.bottleneck_demand_us
          : std::numeric_limits<double>::infinity();
  bounds.throughput_upper_per_us =
      std::min(x_population, x_bottleneck) / n;

  bounds.latency_lower_us =
      std::max(bounds.total_demand_us,
               n * bounds.bottleneck_demand_us - z);
  return bounds;
}

}  // namespace hmcs::analytic
