#include "hmcs/analytic/config_io.hpp"

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"
#include "hmcs/util/units.hpp"

namespace hmcs::analytic {

NetworkTechnology parse_technology(const std::string& spec) {
  const std::string trimmed = trim(spec);
  if (trimmed == "gigabit-ethernet") return gigabit_ethernet();
  if (trimmed == "fast-ethernet") return fast_ethernet();
  if (trimmed == "myrinet") return myrinet();
  if (trimmed == "infiniband") return infiniband();
  if (starts_with(trimmed, "custom:")) {
    const auto fields = split(trimmed.substr(7), ',');
    require(fields.size() == 3,
            "technology '" + spec +
                "': custom needs <name>,<latency_us>,<bandwidth MB/s>");
    NetworkTechnology tech;
    tech.name = trim(fields[0]);
    tech.latency_us = parse_double(fields[1]);
    tech.bandwidth_bytes_per_us =
        units::mbps_to_bytes_per_us(parse_double(fields[2]));
    validate(tech);
    return tech;
  }
  detail::throw_config_error(
      "unknown technology '" + spec +
          "' (presets: gigabit-ethernet, fast-ethernet, myrinet, "
          "infiniband; or custom:<name>,<latency_us>,<MB/s>)",
      std::source_location::current());
}

NetworkArchitecture parse_architecture(const std::string& spec) {
  const std::string trimmed = trim(spec);
  if (trimmed == "non-blocking" || trimmed == "fat-tree") {
    return NetworkArchitecture::kNonBlocking;
  }
  if (trimmed == "blocking" || trimmed == "chain") {
    return NetworkArchitecture::kBlocking;
  }
  detail::throw_config_error(
      "config: architecture must be non-blocking|blocking, got '" + spec +
          "'",
      std::source_location::current());
}

SystemConfig system_config_from(const KeyValueFile& file) {
  const std::vector<std::string> known{
      "clusters",      "nodes_per_cluster", "architecture",
      "icn1",          "ecn1",              "icn2",
      "message_bytes", "generation_rate_per_s", "switch_ports",
      "switch_latency_us"};
  const auto unknown = file.unknown_keys(known);
  require(unknown.empty(),
          "config: unknown key '" + (unknown.empty() ? "" : unknown[0]) + "'");

  SystemConfig config;
  config.clusters = static_cast<std::uint32_t>(file.get_int("clusters"));
  config.nodes_per_cluster =
      static_cast<std::uint32_t>(file.get_int("nodes_per_cluster"));

  config.architecture = parse_architecture(file.get("architecture"));

  config.icn1 = parse_technology(file.get("icn1"));
  config.ecn1 = parse_technology(file.get("ecn1"));
  config.icn2 = parse_technology(file.get("icn2"));
  config.message_bytes = file.get_double("message_bytes");
  config.generation_rate_per_us =
      units::per_s_to_per_us(file.get_double("generation_rate_per_s"));
  config.switch_params.ports =
      static_cast<std::uint32_t>(parse_int(file.get_or("switch_ports", "24")));
  config.switch_params.latency_us =
      parse_double(file.get_or("switch_latency_us", "10"));
  config.validate();
  return config;
}

SystemConfig load_system_config(const std::string& path) {
  return system_config_from(KeyValueFile::load(path));
}

}  // namespace hmcs::analytic
