#include "hmcs/analytic/latency_model.hpp"

#include "hmcs/analytic/mm1.hpp"
#include "hmcs/analytic/mva.hpp"
#include "hmcs/analytic/routing_probability.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

namespace {

CenterPrediction solve_center(double arrival_rate, double service_rate,
                              const FixedPointOptions& options) {
  // Failure/repair inflates the completion-time distribution; the
  // reported service rate and utilization are the effective ones (the
  // same rates a breakdown-suffering DES measures).
  const EffectiveService effective =
      effective_service(service_rate, options.service_cv2, options);
  CenterPrediction out{};
  out.arrival_rate = arrival_rate;
  out.service_rate = effective.mu;
  out.utilization = mm1::utilization(arrival_rate, effective.mu);
  out.response_time_us = gg1::response_time(
      arrival_rate, effective.mu, options.arrival_ca2, effective.cs2);
  out.queue_length = gg1::number_in_system(
      arrival_rate, effective.mu, options.arrival_ca2, effective.cs2);
  return out;
}

}  // namespace

namespace detail {

LatencyPrediction finish_open_prediction(const SystemConfig& config, double p,
                                         const CenterServiceTimes& service,
                                         const FixedPointResult& fixed_point,
                                         const FixedPointOptions& options) {
  LatencyPrediction out{};
  out.lambda_offered = config.generation_rate_per_us;
  out.inter_cluster_probability = p;
  out.service_times = service;
  out.lambda_effective = fixed_point.lambda_effective;
  out.total_queue_length = fixed_point.total_queue_length;
  out.fixed_point_converged = fixed_point.converged;
  out.fixed_point_iterations = fixed_point.iterations;

  const ArrivalRates rates =
      compute_arrival_rates(config.clusters, config.nodes_per_cluster, p,
                            fixed_point.lambda_effective);
  out.icn1 = solve_center(rates.icn1, service.icn1.service_rate(), options);
  out.ecn1 = solve_center(rates.ecn1, service.ecn1.service_rate(), options);
  out.icn2 = solve_center(rates.icn2, service.icn2.service_rate(), options);

  // eq. (15). When P == 0 (single cluster) the remote centres never see
  // traffic; when N0 == 1 (fully dispersed) no traffic is local. Guard
  // the zero-weight terms so an untraversed centre's W cannot poison the
  // sum even in degenerate setups.
  const double local_term = (p < 1.0) ? (1.0 - p) * out.icn1.response_time_us : 0.0;
  const double remote_term =
      (p > 0.0) ? p * (out.icn2.response_time_us + 2.0 * out.ecn1.response_time_us)
                : 0.0;
  out.mean_latency_us = local_term + remote_term;
  return out;
}

/// kExactMva path: every per-centre quantity comes from the MVA solution
/// of the closed network — solved over the three station classes of the
/// HMCS layout (C identical ICN1, C identical ECN1, one ICN2) — rather
/// than from open M/M/1 formulas.
LatencyPrediction finish_mva_prediction(const SystemConfig& config, double p,
                                        const CenterServiceTimes& service,
                                        const HmcsMvaClassLayout& layout,
                                        const MvaClassResult& mva) {
  LatencyPrediction out{};
  out.lambda_offered = config.generation_rate_per_us;
  out.inter_cluster_probability = p;
  out.service_times = service;

  const double x = mva.throughput;  // system-wide cycles per us
  out.lambda_effective = x / static_cast<double>(config.total_nodes());
  out.fixed_point_converged = true;
  out.fixed_point_iterations = config.total_nodes();

  auto fill = [&](std::size_t cls) {
    CenterPrediction center{};
    center.arrival_rate = x * layout.classes[cls].visit_ratio;
    center.service_rate = layout.classes[cls].service_rate;
    center.utilization = center.arrival_rate / center.service_rate;
    center.response_time_us = mva.response_time_us[cls];
    center.queue_length = mva.queue_length[cls];
    return center;
  };
  out.icn1 = fill(layout.icn1_class);
  out.ecn1 = fill(layout.ecn1_class);
  out.icn2 = fill(layout.icn2_class);

  out.total_queue_length = 0.0;
  for (std::size_t cls = 0; cls < layout.classes.size(); ++cls) {
    out.total_queue_length +=
        static_cast<double>(layout.classes[cls].multiplicity) *
        mva.queue_length[cls];
  }

  // eq. (15) with MVA waiting times; identically sum_k m_k v_k W_k.
  out.mean_latency_us = mva.total_residence_us;
  return out;
}

}  // namespace detail

LatencyPrediction predict_latency(const SystemConfig& config,
                                  const ModelOptions& options) {
  config.validate();

  const double p =
      inter_cluster_probability(config.clusters, config.nodes_per_cluster);
  const CenterServiceTimes service = center_service_times(config);

  // Fold the config's workload scenario (non-exponential service, MMPP
  // burstiness, failure/repair) into the solver options; the default
  // scenario leaves them untouched.
  const FixedPointOptions fp_options = with_scenario(
      options.fixed_point, config.scenario, config.generation_rate_per_us);

  // The MVA path needs a finite think time 1/lambda; at lambda == 0 the
  // open-network path below degenerates correctly (solve_effective_rate
  // returns the converged-at-zero fixed point, every centre sees rate 0,
  // and eq. 15 yields the no-load latency), so route zero-rate configs
  // through it.
  if (fp_options.method == SourceThrottling::kExactMva &&
      config.generation_rate_per_us > 0.0) {
    // Mirror solve_effective_rate's product-form preconditions — this
    // branch bypasses that validation.
    require(fp_options.service_cv2 == 1.0 && fp_options.arrival_ca2 == 1.0 &&
                (fp_options.failure_mtbf_us <= 0.0 ||
                 fp_options.failure_mttr_us <= 0.0),
            "fixed_point: exact MVA requires exponential service, Poisson "
            "arrivals and no failure/repair (product form)");
    const HmcsMvaClassLayout layout =
        build_hmcs_mva_class_layout(config, service);
    const MvaClassResult mva = solve_closed_mva_classes(
        layout.classes, 1.0 / config.generation_rate_per_us,
        config.total_nodes(), fp_options.cancel);
    return detail::finish_mva_prediction(config, p, service, layout, mva);
  }

  const FixedPointResult fp =
      solve_effective_rate(config, service, fp_options);
  return detail::finish_open_prediction(config, p, service, fp, fp_options);
}

}  // namespace hmcs::analytic
