#include "hmcs/analytic/latency_model.hpp"

#include "hmcs/analytic/mm1.hpp"
#include "hmcs/analytic/mva.hpp"
#include "hmcs/analytic/routing_probability.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::analytic {

namespace {

CenterPrediction solve_center(double arrival_rate, double service_rate,
                              double service_cv2) {
  CenterPrediction out{};
  out.arrival_rate = arrival_rate;
  out.service_rate = service_rate;
  out.utilization = mm1::utilization(arrival_rate, service_rate);
  out.response_time_us = mg1::response_time(arrival_rate, service_rate,
                                            service_cv2);
  out.queue_length = mg1::number_in_system(arrival_rate, service_rate,
                                           service_cv2);
  return out;
}

/// kExactMva path: every per-centre quantity comes from the MVA solution
/// of the closed network rather than from open M/M/1 formulas.
LatencyPrediction predict_with_mva(const SystemConfig& config,
                                   LatencyPrediction out) {
  const HmcsMvaLayout layout =
      build_hmcs_mva_layout(config, out.service_times);
  const MvaResult mva =
      solve_closed_mva(layout.stations, 1.0 / config.generation_rate_per_us,
                       config.total_nodes());

  const double x = mva.throughput;  // system-wide cycles per us
  out.lambda_effective = x / static_cast<double>(config.total_nodes());
  out.fixed_point_converged = true;
  out.fixed_point_iterations =
      static_cast<std::uint32_t>(config.total_nodes());

  auto fill = [&](std::size_t index) {
    CenterPrediction center{};
    center.arrival_rate = x * layout.stations[index].visit_ratio;
    center.service_rate = layout.stations[index].service_rate;
    center.utilization = center.arrival_rate / center.service_rate;
    center.response_time_us = mva.response_time_us[index];
    center.queue_length = mva.queue_length[index];
    return center;
  };
  out.icn1 = fill(layout.icn1_index);
  out.ecn1 = fill(layout.ecn1_index);
  out.icn2 = fill(layout.icn2_index);

  out.total_queue_length = 0.0;
  for (const double l : mva.queue_length) out.total_queue_length += l;

  // eq. (15) with MVA waiting times; identically sum_i v_i W_i.
  out.mean_latency_us = mva.total_residence_us;
  return out;
}

}  // namespace

LatencyPrediction predict_latency(const SystemConfig& config,
                                  const ModelOptions& options) {
  config.validate();

  LatencyPrediction out{};
  out.lambda_offered = config.generation_rate_per_us;
  out.inter_cluster_probability =
      inter_cluster_probability(config.clusters, config.nodes_per_cluster);
  out.service_times = center_service_times(config);

  // The MVA path needs a finite think time 1/lambda; at lambda == 0 the
  // open-network path below degenerates correctly (solve_mva returns the
  // converged-at-zero fixed point, every centre sees rate 0, and eq. 15
  // yields the no-load latency), so route zero-rate configs through it.
  if (options.fixed_point.method == SourceThrottling::kExactMva &&
      config.generation_rate_per_us > 0.0) {
    return predict_with_mva(config, std::move(out));
  }

  const FixedPointResult fp =
      solve_effective_rate(config, out.service_times, options.fixed_point);
  out.lambda_effective = fp.lambda_effective;
  out.total_queue_length = fp.total_queue_length;
  out.fixed_point_converged = fp.converged;
  out.fixed_point_iterations = fp.iterations;

  const ArrivalRates rates =
      compute_arrival_rates(config.clusters, config.nodes_per_cluster,
                            out.inter_cluster_probability, fp.lambda_effective);
  const double cv2 = options.fixed_point.service_cv2;
  out.icn1 =
      solve_center(rates.icn1, out.service_times.icn1.service_rate(), cv2);
  out.ecn1 =
      solve_center(rates.ecn1, out.service_times.ecn1.service_rate(), cv2);
  out.icn2 =
      solve_center(rates.icn2, out.service_times.icn2.service_rate(), cv2);

  // eq. (15). When P == 0 (single cluster) the remote centres never see
  // traffic; when N0 == 1 (fully dispersed) no traffic is local. Guard
  // the zero-weight terms so an untraversed centre's W cannot poison the
  // sum even in degenerate setups.
  const double p = out.inter_cluster_probability;
  const double local_term = (p < 1.0) ? (1.0 - p) * out.icn1.response_time_us : 0.0;
  const double remote_term =
      (p > 0.0) ? p * (out.icn2.response_time_us + 2.0 * out.ecn1.response_time_us)
                : 0.0;
  out.mean_latency_us = local_term + remote_term;
  return out;
}

}  // namespace hmcs::analytic
