#pragma once

/// \file tree_sim.hpp
/// Validation DES for the recursive ModelTree (docs/COMPOSITION.md):
/// closed-loop processors over the tree's queueing centres, one FIFO
/// station per centre from analytic::tree_centers so the simulator and
/// the analytic solver share node numbering and service times exactly.
///
/// A message from a processor in leaf group `a` to one in leaf group `b`
/// climbs the egress centres from a's parent up to (exclusive) the
/// lowest common ancestor, crosses the LCA's internal network once, and
/// descends the egress centres down to b's parent — the stochastic
/// counterpart of the tree model's LCA routing. Destinations are uniform
/// over the other N-1 processors (assumption 2 generalised), sources
/// block while their message is in flight (assumption 4), think times
/// and service times are exponential (assumptions 1 and 3).
///
/// Depth-2 trees reduce to the MultiClusterSim topology; the point of
/// this simulator is depth >= 3, where no flat validation path exists.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hmcs/analytic/model_tree.hpp"
#include "hmcs/simcore/tally.hpp"
#include "hmcs/util/cancel.hpp"

namespace hmcs::sim {

struct TreeSimOptions {
  /// Deliveries measured after warm-up (minimum when a CI target is set).
  std::uint64_t measured_messages = 10000;
  /// Deliveries discarded before statistics start.
  std::uint64_t warmup_messages = 2000;
  /// Precision-driven stopping as in SimOptions: keep measuring until
  /// the batch-means 95% CI half-width is below this fraction of the
  /// mean, or message_cap is reached. 0 disables the rule.
  double target_relative_ci = 0.0;
  std::uint64_t message_cap = 400000;
  std::uint64_t seed = 1;
  /// Safety valve against configuration mistakes (0 = no limit).
  std::uint64_t max_events = 200'000'000;
  /// Cooperative cancellation, polled every few thousand events; the
  /// token must outlive run(). Null = never interrupted.
  const util::CancelToken* cancel = nullptr;
};

/// Per-centre observations, in analytic::tree_centers order so entries
/// line up index-for-index with TreeLatencyPrediction::centers.
struct TreeCenterStats {
  std::string path;  ///< node path + ".icn" or ".egress"
  bool egress = false;
  double utilization = 0.0;
  double avg_queue_length = 0.0;
  double mean_response_us = 0.0;
  std::uint64_t departures = 0;
};

struct TreeSimResult {
  std::uint64_t messages_measured = 0;
  double mean_latency_us = 0.0;
  simcore::ConfidenceInterval latency_ci{0.0, 0.0, 0.0};
  /// Measured per-processor delivery rate over the window — the
  /// simulated counterpart of lambda * effective_rate_scale.
  double effective_rate_per_us = 0.0;
  /// Busiest centre's busy fraction (saturation diagnostic).
  double max_center_utilization = 0.0;
  /// Time-averaged customers over all centres (fixed point's L).
  double total_avg_queue_length = 0.0;
  double window_duration_us = 0.0;
  std::uint64_t events_executed = 0;
  std::vector<TreeCenterStats> centers;
};

class TreeSim {
 public:
  /// Validates the tree; requires every leaf generation rate > 0 (a
  /// silent source would never release its processor in a closed loop).
  TreeSim(const analytic::ModelTree& tree, TreeSimOptions options);
  ~TreeSim();

  TreeSim(const TreeSim&) = delete;
  TreeSim& operator=(const TreeSim&) = delete;

  /// Executes one complete run. May be called once per instance.
  TreeSimResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hmcs::sim
