#pragma once

/// \file trace.hpp
/// Message-lifecycle tracing for the multi-cluster simulator. When a
/// TraceRecorder is attached through SimOptions, every message event
/// (generation, entry into a service centre, departure, delivery) is
/// recorded with its timestamp, giving a causally ordered record for
/// debugging and for teaching material. Bounded by `capacity` so an
/// accidental attach to a long run cannot exhaust memory.

#include <cstdint>
#include <string>
#include <vector>

namespace hmcs::sim {

enum class TraceEventKind : std::uint8_t {
  kGenerated,  ///< source picked a destination and injected the message
  kEnqueued,   ///< message joined a service centre's queue
  kDeparted,   ///< message finished service at a centre
  kDelivered,  ///< message reached its destination; source unblocked
};

const char* to_string(TraceEventKind kind);

struct TraceEvent {
  double time_us = 0.0;
  TraceEventKind kind = TraceEventKind::kGenerated;
  std::uint64_t message_id = 0;  ///< pool slot; unique among in-flight
  std::uint64_t source = 0;
  std::uint64_t destination = 0;
  /// Centre label ("ICN1[3]", "ECN1[0]", "ICN2"); empty for
  /// generation/delivery events.
  std::string center;
};

class TraceRecorder {
 public:
  /// Records at most `capacity` events, then stops accepting — but the
  /// loss is never silent: every rejected event advances
  /// `dropped_count()`, which the simulator also surfaces in its
  /// observability snapshot (SimResult::obs.trace_dropped and the
  /// `sim.trace.dropped_events` metric).
  explicit TraceRecorder(std::size_t capacity = 100000);

  void record(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  bool truncated() const { return dropped_ > 0; }
  /// Events rejected because the recorder was at capacity.
  std::uint64_t dropped_count() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }

  /// CSV rendering: time_us,kind,message,source,destination,center.
  std::string to_csv() const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace hmcs::sim
