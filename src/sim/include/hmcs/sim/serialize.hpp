#pragma once

/// \file serialize.hpp
/// JSON serialisation of simulation results, mirroring
/// hmcs/analytic/serialize.hpp so experiment records can pair a config,
/// its predictions, and the measured run in one document.

#include <string>

#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/json.hpp"

namespace hmcs::sim {

void write_json(JsonWriter& json, const CenterStats& stats);
void write_json(JsonWriter& json, const SimResult& result);

std::string to_json(const SimResult& result);

}  // namespace hmcs::sim
