#pragma once

/// \file multicluster_sim.hpp
/// The validation simulator (Section 6): a discrete-event model of the
/// HMSCS with closed-loop processors. Each processor thinks for an
/// exponential interval (mean 1/lambda), generates a message to a
/// destination drawn from the traffic pattern, and stays blocked until
/// the message is delivered (assumption 4). Messages traverse
///
///   local:   ICN1(cluster)
///   remote:  ECN1(source cluster) -> ICN2 -> ECN1(destination cluster)
///
/// with each network a FIFO service centre whose mean service time comes
/// from the same Section 5 formulas the analytical model uses (that is
/// the paper's validation setup: same parameters, stochastic execution).
/// Every message is time-stamped at generation and its latency recorded
/// in a sink when delivered; the run measures a fixed number of
/// post-warm-up deliveries (the paper gathers 10,000 messages).
///
/// The simulator accepts both the Super-Cluster SystemConfig and the
/// heterogeneous ClusterOfClustersConfig, so it validates the extension
/// model too.

#include <cstdint>
#include <memory>
#include <vector>

#include "hmcs/analytic/cluster_of_clusters.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/analytic/system_config.hpp"
#include "hmcs/obs/sampler.hpp"
#include "hmcs/obs/trace.hpp"
#include "hmcs/simcore/fifo_station.hpp"
#include "hmcs/simcore/histogram.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/sim/trace.hpp"
#include "hmcs/simcore/simulation.hpp"
#include "hmcs/util/cancel.hpp"
#include "hmcs/simcore/tally.hpp"
#include "hmcs/workload/message_size.hpp"
#include "hmcs/workload/traffic_pattern.hpp"

namespace hmcs::sim {

enum class ServiceDistribution {
  kExponential,    ///< the paper's assumption for the M/M/1 centres
  kDeterministic,  ///< fixed service time (M/D/1-like ablation)
};

struct SimOptions {
  /// Deliveries measured after warm-up; the paper's runs use 10,000.
  /// When target_relative_ci is set this becomes the *minimum* sample.
  std::uint64_t measured_messages = 10000;
  /// Deliveries discarded before statistics start.
  std::uint64_t warmup_messages = 2000;
  /// Precision-driven stopping: keep measuring past measured_messages
  /// until the batch-means 95% CI half-width falls below this fraction
  /// of the mean (e.g. 0.01 = ±1%), or message_cap is reached.
  /// 0 disables the rule (the paper's fixed-count protocol).
  double target_relative_ci = 0.0;
  /// Hard ceiling on measured deliveries under the precision rule.
  std::uint64_t message_cap = 400000;
  std::uint64_t seed = 1;
  ServiceDistribution service_distribution = ServiceDistribution::kExponential;
  /// Assumption 4 ablation: true (default) blocks a source while its
  /// message is in flight; false injects as an open Poisson stream.
  /// Open-loop runs match the SourceThrottling::kNone analytical model
  /// when every centre is stable, and diverge (growing queues) when the
  /// raw rates saturate a centre — which is exactly why the paper needs
  /// the eq. (7) correction.
  bool closed_loop = true;
  /// Destination selection; null = the paper's uniform pattern.
  std::shared_ptr<const workload::TrafficPattern> traffic;
  /// Message sizes; null = fixed at the config's message_bytes.
  std::shared_ptr<const workload::MessageSizeDistribution> message_size;
  /// Safety valve against configuration mistakes (0 = no limit).
  std::uint64_t max_events = 200'000'000;
  /// Cooperative cancellation / wall-clock deadline, polled every few
  /// thousand events so the hot path stays branch-cheap; run() unwinds
  /// with hmcs::Cancelled or hmcs::DeadlineExceeded. The token must
  /// outlive run(); null = never interrupted. The poll draws no random
  /// numbers, so an uninterrupted run is bit-identical with or without
  /// a token attached.
  const util::CancelToken* cancel = nullptr;
  /// Optional message-lifecycle trace (see trace.hpp); null = off.
  std::shared_ptr<TraceRecorder> trace;

  /// Observability hooks (see docs/OBSERVABILITY.md). Attaching them
  /// changes the executed-event count (sampler ticks ride the engine)
  /// but never the stochastic trajectory: the sampler draws no random
  /// numbers, so every latency and statistic matches an unobserved run.
  struct Observability {
    /// Simulated-time phase spans and queue-depth counter tracks are
    /// recorded here as Chrome trace events; null = off.
    std::shared_ptr<obs::TraceSession> trace;
    /// Perfetto process id grouping this run's tracks (keep distinct per
    /// concurrent run so counter tracks do not interleave).
    std::uint32_t trace_pid = 2;
    /// Period of the queue-depth sampler in simulated µs; 0 = off.
    double sample_interval_us = 0.0;
    /// Ring capacity per sampled series (oldest points drop beyond it).
    std::size_t sample_capacity = 8192;
  };
  Observability obs;
};

/// Aggregated observations for one service-centre role (ICN1/ECN1
/// aggregate over their per-cluster stations).
struct CenterStats {
  double mean_wait_us = 0.0;
  double mean_service_us = 0.0;
  double mean_response_us = 0.0;
  /// Mean over the role's stations of per-station busy fraction.
  double utilization = 0.0;
  /// Mean over the role's stations of time-averaged number in system.
  double avg_queue_length = 0.0;
  std::uint64_t departures = 0;
};

struct SimResult {
  std::uint64_t messages_measured = 0;
  double mean_latency_us = 0.0;
  simcore::ConfidenceInterval latency_ci{0.0, 0.0, 0.0};
  double min_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Exact order statistics over the measured window.
  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;

  /// Split by message kind (0 when a kind never occurred).
  double mean_local_latency_us = 0.0;
  double mean_remote_latency_us = 0.0;
  double remote_fraction = 0.0;

  /// Measured per-processor delivery rate over the window — the
  /// simulated counterpart of the model's lambda_effective.
  double effective_rate_per_us = 0.0;
  /// Time-averaged total customers over all stations — counterpart of
  /// the fixed point's L.
  double total_avg_queue_length = 0.0;

  double window_duration_us = 0.0;
  std::uint64_t events_executed = 0;

  CenterStats icn1;
  CenterStats ecn1;
  CenterStats icn2;

  /// Run-health diagnostics surfaced by the observability layer.
  struct ObsStats {
    /// Simulated time at which warm-up ended and measurement began.
    double warmup_end_us = 0.0;
    /// Batch-means diagnostics for the latency CI (0 batches when the
    /// i.i.d. fallback was used).
    std::uint64_t batch_count = 0;
    double batch_lag1_autocorrelation = 0.0;
    /// Message-lifecycle TraceRecorder events rejected at capacity.
    std::uint64_t trace_dropped = 0;
    /// Queue-depth sampler ticks taken (0 when sampling was off).
    std::uint64_t samples_taken = 0;
    /// Engine diagnostics for this run's event queue.
    std::uint64_t events_pushed = 0;
    std::uint64_t calendar_resizes = 0;
    std::uint64_t calendar_purges = 0;
    std::uint64_t sweep_fallbacks = 0;
    std::size_t peak_slot_capacity = 0;
  };
  ObsStats obs;
};

class MultiClusterSim {
 public:
  MultiClusterSim(const analytic::SystemConfig& config, SimOptions options);
  MultiClusterSim(const analytic::ClusterOfClustersConfig& config,
                  SimOptions options);
  ~MultiClusterSim();

  MultiClusterSim(const MultiClusterSim&) = delete;
  MultiClusterSim& operator=(const MultiClusterSim&) = delete;

  /// Executes one complete run. May be called once per instance.
  SimResult run();

  /// Latency histogram over the measured window (valid after run()).
  const simcore::Histogram& latency_histogram() const;

  /// Raw measured latencies in delivery order (valid after run()) — the
  /// input for external analyses such as simcore::mser_warmup.
  const std::vector<double>& measured_latencies() const;

  /// The queue-depth sampler, or null when options.obs.sample_interval_us
  /// was 0. Series cover the whole run (warm-up included).
  const obs::TimeSeriesSampler* sampler() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hmcs::sim
