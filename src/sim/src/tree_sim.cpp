#include "hmcs/sim/tree_sim.hpp"

#include <algorithm>
#include <deque>

#include "hmcs/simcore/batch_means.hpp"
#include "hmcs/simcore/distributions.hpp"
#include "hmcs/simcore/fifo_station.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/simcore/simulation.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::sim {

namespace {

/// One in-flight message. Closed-loop sources are blocked while their
/// message is in flight, so slot id == source processor id and the pool
/// never grows.
struct MessageState {
  std::uint64_t dst = 0;
  double generated_at = 0.0;
  std::vector<std::size_t> route;  ///< centre indices, in traversal order
  std::size_t hop = 0;
};

}  // namespace

struct TreeSim::Impl {
  analytic::ModelTree tree;
  analytic::FlatTreeView view;
  std::vector<analytic::TreeCenter> centers;
  TreeSimOptions options;

  // --- derived topology tables -------------------------------------------
  std::vector<std::size_t> net_center;     ///< node -> centre index
  std::vector<std::size_t> egress_center;  ///< node -> centre index (root unused)
  std::vector<std::uint32_t> node_level;   ///< root = 0
  std::vector<std::uint64_t> leaf_first_proc;  ///< prefix sums over leaves
  std::vector<std::size_t> proc_leaf;          ///< processor -> leaf index

  // --- engine ---------------------------------------------------------------
  simcore::Simulator simulator;
  std::deque<simcore::FifoStation> stations;  ///< one per centre, same order
  std::deque<simcore::Rng> service_rngs;
  simcore::Rng think_rng{0};
  simcore::Rng traffic_rng{0};
  /// Per-processor MMPP modulators; empty when sources are Poisson.
  std::vector<simcore::Mmpp2> modulators;

  std::vector<MessageState> messages;  ///< indexed by source processor

  // --- measurement ----------------------------------------------------------
  bool measuring = false;
  bool done = false;
  bool has_run = false;
  double window_start = 0.0;
  std::uint64_t delivered_total = 0;
  std::uint64_t measured_deliveries = 0;
  simcore::Tally latency;
  std::vector<double> measured_samples;

  std::uint64_t total_processors() const { return view.total_processors; }

  void build(std::uint64_t seed) {
    const std::size_t internal_count = view.nodes.size();
    net_center.assign(internal_count, analytic::FlatNode::npos);
    egress_center.assign(internal_count, analytic::FlatNode::npos);
    for (std::size_t c = 0; c < centers.size(); ++c) {
      (centers[c].egress ? egress_center : net_center)[centers[c].node] = c;
    }
    node_level.assign(internal_count, 0);
    for (std::size_t u = 1; u < internal_count; ++u) {
      node_level[u] = node_level[view.nodes[u].parent] + 1;
    }
    leaf_first_proc.reserve(view.leaves.size() + 1);
    leaf_first_proc.push_back(0);
    proc_leaf.reserve(total_processors());
    for (std::size_t l = 0; l < view.leaves.size(); ++l) {
      leaf_first_proc.push_back(leaf_first_proc.back() +
                                view.leaves[l].processors);
      for (std::uint32_t p = 0; p < view.leaves[l].processors; ++p) {
        proc_leaf.push_back(l);
      }
    }

    simcore::Rng master(seed);
    think_rng = master.split();
    traffic_rng = master.split();
    // The default scenario (cv^2 = 1, no failures) draws exactly one
    // exponential per service — bit-identical to the pre-scenario
    // sampler, which the fixed-seed regression tests rely on.
    const double cv2 = tree.scenario.service_cv2;
    const double mtbf =
        tree.scenario.failure ? tree.scenario.failure->mtbf_us : 0.0;
    const double mttr =
        tree.scenario.failure ? tree.scenario.failure->mttr_us : 0.0;
    for (std::size_t c = 0; c < centers.size(); ++c) {
      service_rngs.push_back(master.split());
      const double mean = centers[c].service.total_us();
      simcore::Rng& rng = service_rngs.back();
      stations.emplace_back(
          simulator, centers[c].path,
          [mean, &rng, cv2, mtbf, mttr](const simcore::FifoStation::Job&) {
            if (mean <= 0.0) return 0.0;
            double service = simcore::variate_cv2(rng, mean, cv2);
            if (mtbf > 0.0 && mttr > 0.0) {
              const std::uint64_t failures =
                  simcore::poisson(rng, service / mtbf);
              for (std::uint64_t i = 0; i < failures; ++i) {
                service += rng.exponential(mttr);
              }
            }
            return service;
          });
      stations.back().set_departure_callback(
          [this](const simcore::FifoStation::Departure& d) {
            advance(d.job.id);
          });
    }

    if (tree.scenario.mmpp.has_value()) {
      modulators.reserve(total_processors());
      for (std::uint64_t proc = 0; proc < total_processors(); ++proc) {
        const analytic::MmppRates rates =
            analytic::resolve_mmpp(*tree.scenario.mmpp, proc_rate(proc));
        simcore::Mmpp2 modulator(rates.base_rate, rates.burst_rate,
                                 rates.leave_base, rates.leave_burst);
        modulator.set_bursty(
            think_rng.bernoulli(tree.scenario.mmpp->burst_fraction));
        modulators.push_back(modulator);
      }
    }

    messages.resize(total_processors());
    if (options.warmup_messages == 0) measuring = true;
  }

  double proc_rate(std::uint64_t proc) const {
    return view.leaves[proc_leaf[proc]].rate_per_us;
  }

  void schedule_think(std::uint64_t proc) {
    const double wait =
        modulators.empty()
            ? think_rng.exponential(1.0 / proc_rate(proc))
            : modulators[proc].next_interarrival_us(think_rng);
    simulator.schedule_after(wait, [this, proc] { generate(proc); });
  }

  /// Route: egress chain from the source's parent up to (exclusive) the
  /// LCA, the LCA's internal network, then the destination's egress
  /// chain top-down — the flat case degenerates to ECN1 -> ICN2 -> ECN1
  /// for remote and ICN1 alone for local messages.
  std::vector<std::size_t> descent_scratch;
  void build_route(std::vector<std::size_t>& route, std::uint64_t src,
                   std::uint64_t dst) {
    route.clear();
    descent_scratch.clear();
    std::size_t a = view.leaves[proc_leaf[src]].parent;
    std::size_t b = view.leaves[proc_leaf[dst]].parent;
    while (node_level[a] > node_level[b]) {
      route.push_back(egress_center[a]);
      a = view.nodes[a].parent;
    }
    while (node_level[b] > node_level[a]) {
      descent_scratch.push_back(egress_center[b]);
      b = view.nodes[b].parent;
    }
    while (a != b) {
      route.push_back(egress_center[a]);
      descent_scratch.push_back(egress_center[b]);
      a = view.nodes[a].parent;
      b = view.nodes[b].parent;
    }
    route.push_back(net_center[a]);
    // The destination chain was collected bottom-up; descend top-down.
    route.insert(route.end(), descent_scratch.rbegin(),
                 descent_scratch.rend());
  }

  void generate(std::uint64_t proc) {
    MessageState& msg = messages[proc];
    const std::uint64_t n = total_processors();
    std::uint64_t dst = traffic_rng.uniform_below(n - 1);
    if (dst >= proc) ++dst;  // uniform over the other N-1 processors
    msg.dst = dst;
    msg.generated_at = simulator.now();
    build_route(msg.route, proc, dst);
    msg.hop = 0;
    stations[msg.route[0]].arrive(proc);
  }

  void advance(std::uint64_t proc) {
    MessageState& msg = messages[proc];
    ++msg.hop;
    if (msg.hop < msg.route.size()) {
      stations[msg.route[msg.hop]].arrive(proc);
      return;
    }
    deliver(proc);
  }

  void deliver(std::uint64_t proc) {
    const double elapsed = simulator.now() - messages[proc].generated_at;
    ++delivered_total;
    if (measuring) {
      latency.add(elapsed);
      measured_samples.push_back(elapsed);
      ++measured_deliveries;
      if (measured_deliveries >= options.measured_messages &&
          measurement_complete()) {
        done = true;
        return;  // source stays idle; the run is over
      }
    } else if (delivered_total >= options.warmup_messages) {
      measuring = true;
      window_start = simulator.now();
      for (auto& station : stations) station.reset_statistics();
    }
    schedule_think(proc);
  }

  /// The precision rule from MultiClusterSim: check the batch-means CI
  /// every 2000 deliveries past the minimum.
  bool measurement_complete() {
    if (options.target_relative_ci <= 0.0) return true;
    if (measured_deliveries >= options.message_cap) return true;
    if ((measured_deliveries - options.measured_messages) % 2000 != 0) {
      return false;
    }
    const std::uint64_t batch =
        std::max<std::uint64_t>(1, measured_deliveries / 32);
    simcore::BatchMeans batches(batch);
    for (const double sample : measured_samples) batches.add(sample);
    if (batches.num_complete_batches() < 2) return false;
    const auto ci = batches.confidence_interval();
    return ci.half_width <= options.target_relative_ci * batches.mean();
  }

  TreeSimResult collect() {
    TreeSimResult result{};
    result.messages_measured = measured_deliveries;
    result.mean_latency_us = latency.mean();

    const std::uint64_t batch =
        std::max<std::uint64_t>(1, latency.count() / 32);
    simcore::BatchMeans batches(batch);
    for (const double sample : measured_samples) batches.add(sample);
    result.latency_ci = batches.num_complete_batches() >= 2
                            ? batches.confidence_interval()
                            : latency.confidence_interval();

    result.window_duration_us = simulator.now() - window_start;
    if (result.window_duration_us > 0.0) {
      result.effective_rate_per_us =
          static_cast<double>(measured_deliveries) /
          result.window_duration_us /
          static_cast<double>(total_processors());
    }

    result.centers.reserve(centers.size());
    for (std::size_t c = 0; c < centers.size(); ++c) {
      const simcore::FifoStation& station = stations[c];
      TreeCenterStats stats;
      stats.path = centers[c].path;
      stats.egress = centers[c].egress;
      stats.utilization = station.utilization();
      stats.avg_queue_length = station.average_number_in_system();
      if (station.response_times().count() > 0) {
        stats.mean_response_us = station.response_times().mean();
      }
      stats.departures = station.departures();
      result.max_center_utilization =
          std::max(result.max_center_utilization, stats.utilization);
      result.total_avg_queue_length += stats.avg_queue_length;
      result.centers.push_back(std::move(stats));
    }
    result.events_executed = simulator.executed_events();
    return result;
  }

  TreeSimResult run() {
    require(!has_run, "TreeSim: run() may be called only once");
    has_run = true;
    require(options.measured_messages >= 2,
            "TreeSim: needs >= 2 measured messages");

    for (std::uint64_t proc = 0; proc < total_processors(); ++proc) {
      schedule_think(proc);
    }
    constexpr std::uint64_t kCancelPollMask = 4095;
    while (!done) {
      ensure(simulator.step(), "TreeSim: event queue drained before completion");
      if (options.max_events != 0 &&
          simulator.executed_events() > options.max_events) {
        detail::throw_config_error(
            "TreeSim: exceeded max_events safety limit",
            std::source_location::current());
      }
      if (options.cancel != nullptr &&
          (simulator.executed_events() & kCancelPollMask) == 0) {
        options.cancel->check("TreeSim");
      }
    }
    return collect();
  }
};

TreeSim::TreeSim(const analytic::ModelTree& tree, TreeSimOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->tree = tree;
  impl_->view = analytic::flatten(tree);  // validates
  require(impl_->view.total_processors >= 2, "TreeSim: needs >= 2 processors");
  for (const analytic::FlatLeaf& leaf : impl_->view.leaves) {
    require(leaf.rate_per_us > 0.0,
            "TreeSim: every leaf generation rate must be > 0 (closed-loop "
            "sources never release an idle processor)");
  }
  impl_->centers = analytic::tree_centers(impl_->tree, impl_->view);
  impl_->options = options;
  impl_->build(options.seed);
}

TreeSim::~TreeSim() = default;

TreeSimResult TreeSim::run() { return impl_->run(); }

}  // namespace hmcs::sim
