#include "hmcs/sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace hmcs::sim {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kGenerated:
      return "generated";
    case TraceEventKind::kEnqueued:
      return "enqueued";
    case TraceEventKind::kDeparted:
      return "departed";
    case TraceEventKind::kDelivered:
      return "delivered";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "TraceRecorder: capacity must be >= 1");
  events_.reserve(std::min<std::size_t>(capacity, 4096));
}

void TraceRecorder::record(TraceEvent event) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream os;
  os << "time_us,kind,message,source,destination,center\n";
  for (const TraceEvent& event : events_) {
    os << format_compact(event.time_us, 12) << ',' << to_string(event.kind)
       << ',' << event.message_id << ',' << event.source << ','
       << event.destination << ',' << event.center << '\n';
  }
  return os.str();
}

}  // namespace hmcs::sim
