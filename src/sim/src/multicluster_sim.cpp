#include "hmcs/sim/multicluster_sim.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/simcore/batch_means.hpp"
#include "hmcs/simcore/distributions.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::sim {

namespace {

/// Mean service time as an affine function of message size:
/// T(M) = fixed + M * per_byte. For blocking networks per_byte folds in
/// the eq. (20) bisection penalty, so T(M) matches eq. (21) at every M.
struct CenterModel {
  double fixed_us = 0.0;
  double per_byte_us = 0.0;

  double mean_service_us(double bytes) const {
    return fixed_us + bytes * per_byte_us;
  }

  static CenterModel from_breakdown(const analytic::ServiceTimeBreakdown& b,
                                    double reference_bytes) {
    CenterModel m;
    m.fixed_us = b.link_latency_us + b.switch_latency_us;
    m.per_byte_us = (b.transmission_us + b.blocking_us) / reference_bytes;
    return m;
  }
};

struct ResolvedCluster {
  std::uint32_t nodes = 0;
  CenterModel icn1;
  CenterModel ecn1;
  double rate_per_us = 0.0;
};

enum class Stage : std::uint8_t { kIcn1, kEcn1Out, kIcn2, kEcn1In };

/// Lag-1 autocorrelation of a series — the batch-means health check: a
/// value near 0 means the batches are long enough to be treated as
/// independent, so the CI width is trustworthy.
double lag1_autocorrelation(const std::vector<double>& xs) {
  if (xs.size() < 3) return 0.0;
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double variance = 0.0;
  double covariance = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    variance += (xs[i] - mean) * (xs[i] - mean);
    if (i + 1 < xs.size()) {
      covariance += (xs[i] - mean) * (xs[i + 1] - mean);
    }
  }
  return variance > 0.0 ? covariance / variance : 0.0;
}

struct MessageState {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  double generated_at = 0.0;
  double bytes = 0.0;
  Stage stage = Stage::kIcn1;
  bool in_use = false;
};

}  // namespace

struct MultiClusterSim::Impl {
  // --- resolved system ---------------------------------------------------
  std::vector<ResolvedCluster> clusters;
  CenterModel icn2_model;
  double fixed_message_bytes = 0.0;
  workload::NodeSpace space;
  SimOptions options;
  /// Workload scenario from the flat SystemConfig (the CoC constructor
  /// leaves it default — that surface stays exponential-only).
  analytic::WorkloadScenario scenario;

  // --- engine --------------------------------------------------------------
  simcore::Simulator simulator;
  std::deque<simcore::FifoStation> icn1_stations;
  std::deque<simcore::FifoStation> ecn1_stations;
  std::optional<simcore::FifoStation> icn2_station;
  std::deque<simcore::Rng> service_rngs;
  simcore::Rng think_rng{0};
  simcore::Rng traffic_rng{0};
  simcore::Rng size_rng{0};
  /// Per-node MMPP modulators; empty when arrivals are plain Poisson.
  std::vector<simcore::Mmpp2> modulators;

  std::shared_ptr<const workload::TrafficPattern> traffic;

  // --- per-message state ---------------------------------------------------
  std::vector<MessageState> messages;
  std::vector<std::uint32_t> free_slots;

  // --- observability ---------------------------------------------------
  std::optional<obs::TimeSeriesSampler> sampler;
  double warmup_end_us = 0.0;

  // --- measurement -----------------------------------------------------
  bool measuring = false;
  bool done = false;
  bool has_run = false;
  double window_start = 0.0;
  std::uint64_t generated_total = 0;
  std::uint64_t pool_growths = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t measured_deliveries = 0;
  simcore::Tally latency;
  simcore::Tally local_latency;
  simcore::Tally remote_latency;
  std::vector<double> measured_samples;
  std::optional<simcore::Histogram> histogram;

  // -------------------------------------------------------------------------

  std::uint64_t total_nodes() const { return space.total_nodes(); }

  /// Records a trace event. The centre label is passed as (name, index)
  /// parts and only assembled into a string when tracing is actually on —
  /// the hot path must not pay a per-event allocation for a disabled
  /// feature. index < 0 means the centre has no index suffix.
  void trace(TraceEventKind kind, std::uint64_t id, const char* center,
             std::int64_t index = -1) {
    if (!options.trace) return;
    std::string label(center);
    if (index >= 0) {
      label += '[';
      label += std::to_string(index);
      label += ']';
    }
    const MessageState& msg = messages[static_cast<std::size_t>(id)];
    options.trace->record(TraceEvent{simulator.now(), kind, id, msg.src,
                                     msg.dst, std::move(label)});
  }

  double node_rate(std::uint64_t node) const {
    return clusters[space.cluster_of(node)].rate_per_us;
  }

  simcore::FifoStation::ServiceSampler make_sampler(CenterModel model,
                                                    simcore::Rng& rng) {
    // The legacy kDeterministic option wins over the scenario's cv^2;
    // otherwise the scenario picks the distribution. The default
    // (exponential, cv^2 = 1) makes exactly one rng.exponential draw —
    // bit-identical to the pre-scenario sampler, which the fixed-seed
    // regression tests rely on.
    return [this, model, &rng](const simcore::FifoStation::Job& job) {
      const MessageState& msg = messages[static_cast<std::size_t>(job.id)];
      const double mean = model.mean_service_us(msg.bytes);
      if (mean <= 0.0) return 0.0;
      // variate_cv2 at cv^2 = 0 draws nothing, so the legacy
      // kDeterministic option and the cv^2 = 0 scenario share one path.
      const double cv2 =
          options.service_distribution == ServiceDistribution::kDeterministic
              ? 0.0
              : scenario.service_cv2;
      double service = simcore::variate_cv2(rng, mean, cv2);
      if (scenario.failure.has_value()) {
        // Preemptive-resume breakdowns: failures arrive Poisson over the
        // work requirement and each adds an exponential repair.
        const analytic::FailureRepair& f = *scenario.failure;
        if (f.mttr_us > 0.0) {
          const std::uint64_t failures =
              simcore::poisson(rng, service / f.mtbf_us);
          for (std::uint64_t i = 0; i < failures; ++i) {
            service += rng.exponential(f.mttr_us);
          }
        }
      }
      return service;
    };
  }

  void build(std::uint64_t seed) {
    simcore::Rng master(seed);
    think_rng = master.split();
    traffic_rng = master.split();
    size_rng = master.split();

    const std::uint32_t c = static_cast<std::uint32_t>(clusters.size());
    for (std::uint32_t i = 0; i < c; ++i) {
      service_rngs.push_back(master.split());
      icn1_stations.emplace_back(simulator, "ICN1[" + std::to_string(i) + "]",
                                 make_sampler(clusters[i].icn1,
                                              service_rngs.back()));
      service_rngs.push_back(master.split());
      ecn1_stations.emplace_back(simulator, "ECN1[" + std::to_string(i) + "]",
                                 make_sampler(clusters[i].ecn1,
                                              service_rngs.back()));
    }
    service_rngs.push_back(master.split());
    icn2_station.emplace(simulator, "ICN2",
                         make_sampler(icn2_model, service_rngs.back()));

    for (std::uint32_t i = 0; i < c; ++i) {
      icn1_stations[i].set_departure_callback(
          [this, i](const simcore::FifoStation::Departure& d) {
            trace(TraceEventKind::kDeparted, d.job.id, "ICN1", i);
            deliver(d.job.id);
          });
      ecn1_stations[i].set_departure_callback(
          [this, i](const simcore::FifoStation::Departure& d) {
            trace(TraceEventKind::kDeparted, d.job.id, "ECN1", i);
            on_ecn1_departure(d.job.id);
          });
    }
    icn2_station->set_departure_callback(
        [this](const simcore::FifoStation::Departure& d) {
          trace(TraceEventKind::kDeparted, d.job.id, "ICN2");
          on_icn2_departure(d.job.id);
        });

    if (!traffic) {
      traffic = std::make_shared<workload::UniformTraffic>(space);
    }

    const std::uint64_t n = total_nodes();
    messages.resize(n);
    free_slots.reserve(n);
    for (std::uint64_t i = n; i > 0; --i) {
      free_slots.push_back(static_cast<std::uint32_t>(i - 1));
    }

    if (scenario.mmpp.has_value()) {
      modulators.reserve(n);
      for (std::uint64_t node = 0; node < n; ++node) {
        const analytic::MmppRates rates =
            analytic::resolve_mmpp(*scenario.mmpp, node_rate(node));
        simcore::Mmpp2 modulator(rates.base_rate, rates.burst_rate,
                                 rates.leave_base, rates.leave_burst);
        // Seed each source's modulator from the stationary distribution
        // so the arrival stream starts in equilibrium.
        modulator.set_bursty(
            think_rng.bernoulli(scenario.mmpp->burst_fraction));
        modulators.push_back(modulator);
      }
    }

    if (options.warmup_messages == 0) measuring = true;

    init_observability();
  }

  void init_observability() {
    if (options.obs.sample_interval_us <= 0.0) return;
    sampler.emplace(options.obs.sample_capacity);
    if (options.obs.trace) {
      sampler->attach_trace(options.obs.trace.get(), options.obs.trace_pid);
    }
    sampler->add_probe("sim.event_queue.pending", [this] {
      return static_cast<double>(simulator.pending_events());
    });
    sampler->add_probe("sim.icn1.queue_total", [this] {
      double total = 0.0;
      for (const auto& station : icn1_stations) {
        total += static_cast<double>(station.queue_length());
      }
      return total;
    });
    sampler->add_probe("sim.ecn1.queue_total", [this] {
      double total = 0.0;
      for (const auto& station : ecn1_stations) {
        total += static_cast<double>(station.queue_length());
      }
      return total;
    });
    sampler->add_probe("sim.icn2.queue", [this] {
      return static_cast<double>(icn2_station->queue_length());
    });
    sampler->add_probe("sim.messages_in_flight", [this] {
      return static_cast<double>(messages.size() - free_slots.size());
    });
  }

  /// Sampler heartbeat: reads every probe at the current simulated time
  /// and re-arms itself. Rides the regular event queue, so the trace's
  /// time axis is simulated µs — but the probes draw no random numbers,
  /// so the stochastic trajectory is identical to an unsampled run.
  void sample_tick() {
    sampler->sample(simulator.now());
    if (!done) {
      simulator.schedule_after(options.obs.sample_interval_us,
                               [this] { sample_tick(); });
    }
  }

  void schedule_think(std::uint64_t node) {
    const double wait =
        modulators.empty()
            ? think_rng.exponential(1.0 / node_rate(node))
            : modulators[node].next_interarrival_us(think_rng);
    simulator.schedule_after(wait, [this, node] { generate(node); });
  }

  void generate(std::uint64_t node) {
    if (free_slots.empty()) {
      // Open-loop injection has no bound on in-flight messages; grow
      // the pool on demand. (Closed loop is bounded at one per source.)
      ensure(!options.closed_loop, "sim: message pool exhausted");
      messages.push_back(MessageState{});
      free_slots.push_back(static_cast<std::uint32_t>(messages.size() - 1));
      ++pool_growths;
    }
    const std::uint32_t slot = free_slots.back();
    free_slots.pop_back();
    ++generated_total;
    // Open loop: the next arrival is scheduled independently of this
    // message's fate (Poisson stream, assumption 1 without assumption 4).
    if (!options.closed_loop) schedule_think(node);

    MessageState& msg = messages[slot];
    msg.src = node;
    msg.dst = traffic->pick_destination(node, traffic_rng);
    msg.generated_at = simulator.now();
    msg.bytes = options.message_size ? options.message_size->sample_bytes(size_rng)
                                     : fixed_message_bytes;
    msg.in_use = true;

    const std::uint32_t src_cluster = space.cluster_of(node);
    const std::uint32_t dst_cluster = space.cluster_of(msg.dst);
    trace(TraceEventKind::kGenerated, slot, "");
    if (src_cluster == dst_cluster) {
      msg.stage = Stage::kIcn1;
      trace(TraceEventKind::kEnqueued, slot, "ICN1", src_cluster);
      icn1_stations[src_cluster].arrive(slot);
    } else {
      msg.stage = Stage::kEcn1Out;
      trace(TraceEventKind::kEnqueued, slot, "ECN1", src_cluster);
      ecn1_stations[src_cluster].arrive(slot);
    }
  }

  void on_ecn1_departure(std::uint64_t id) {
    MessageState& msg = messages[static_cast<std::size_t>(id)];
    ensure(msg.in_use, "sim: ECN1 departure for free slot");
    if (msg.stage == Stage::kEcn1Out) {
      msg.stage = Stage::kIcn2;
      trace(TraceEventKind::kEnqueued, id, "ICN2");
      icn2_station->arrive(id);
    } else {
      ensure(msg.stage == Stage::kEcn1In, "sim: unexpected ECN1 stage");
      deliver(id);
    }
  }

  void on_icn2_departure(std::uint64_t id) {
    MessageState& msg = messages[static_cast<std::size_t>(id)];
    ensure(msg.in_use && msg.stage == Stage::kIcn2, "sim: unexpected ICN2 stage");
    msg.stage = Stage::kEcn1In;
    const std::uint32_t dst_cluster = space.cluster_of(msg.dst);
    trace(TraceEventKind::kEnqueued, id, "ECN1", dst_cluster);
    ecn1_stations[dst_cluster].arrive(id);
  }

  void deliver(std::uint64_t id) {
    MessageState& msg = messages[static_cast<std::size_t>(id)];
    ensure(msg.in_use, "sim: delivery for free slot");
    trace(TraceEventKind::kDelivered, id, "");
    const double elapsed = simulator.now() - msg.generated_at;
    const bool remote = msg.stage != Stage::kIcn1;
    const std::uint64_t src = msg.src;
    msg.in_use = false;
    free_slots.push_back(static_cast<std::uint32_t>(id));

    ++delivered_total;
    if (measuring) {
      latency.add(elapsed);
      (remote ? remote_latency : local_latency).add(elapsed);
      measured_samples.push_back(elapsed);
      ++measured_deliveries;
      if (measured_deliveries >= options.measured_messages &&
          measurement_complete()) {
        done = true;
        return;  // source stays idle; the run is over
      }
    } else if (delivered_total >= options.warmup_messages) {
      begin_measurement();
    }

    if (options.closed_loop) schedule_think(src);
  }

  /// Under the precision rule, checks the batch-means CI every 2000
  /// deliveries past the minimum; otherwise the minimum alone suffices.
  bool measurement_complete() {
    if (options.target_relative_ci <= 0.0) return true;
    if (measured_deliveries >= options.message_cap) return true;
    if ((measured_deliveries - options.measured_messages) % 2000 != 0) {
      return false;
    }
    const std::uint64_t batch =
        std::max<std::uint64_t>(1, measured_deliveries / 32);
    simcore::BatchMeans batches(batch);
    for (const double sample : measured_samples) batches.add(sample);
    if (batches.num_complete_batches() < 2) return false;
    const auto ci = batches.confidence_interval();
    return ci.half_width <= options.target_relative_ci * batches.mean();
  }

  void begin_measurement() {
    measuring = true;
    window_start = simulator.now();
    warmup_end_us = window_start;
    for (auto& station : icn1_stations) station.reset_statistics();
    for (auto& station : ecn1_stations) station.reset_statistics();
    icn2_station->reset_statistics();
    if (options.obs.trace) {
      options.obs.trace->complete("warmup", "sim.phase", 0.0, window_start,
                                  options.obs.trace_pid);
      options.obs.trace->instant("measurement_start", "sim.phase",
                                 window_start, options.obs.trace_pid);
    }
  }

  CenterStats aggregate(const std::deque<simcore::FifoStation>& stations) const {
    CenterStats out{};
    simcore::Tally waits;
    simcore::Tally services;
    simcore::Tally responses;
    double utilization_sum = 0.0;
    double queue_sum = 0.0;
    for (const auto& station : stations) {
      waits.merge(station.wait_times());
      services.merge(station.service_times());
      responses.merge(station.response_times());
      utilization_sum += station.utilization();
      queue_sum += station.average_number_in_system();
      out.departures += station.departures();
    }
    const double count = static_cast<double>(stations.size());
    out.utilization = utilization_sum / count;
    out.avg_queue_length = queue_sum / count;
    if (waits.count() > 0) {
      out.mean_wait_us = waits.mean();
      out.mean_service_us = services.mean();
      out.mean_response_us = responses.mean();
    }
    return out;
  }

  SimResult collect() {
    SimResult result{};
    result.messages_measured = measured_deliveries;
    result.mean_latency_us = latency.mean();
    result.min_latency_us = latency.min();
    result.max_latency_us = latency.max();

    // Exact percentiles via selection on a scratch copy.
    std::vector<double> scratch = measured_samples;
    auto percentile = [&scratch](double q) {
      const auto rank = static_cast<std::ptrdiff_t>(
          q * static_cast<double>(scratch.size() - 1));
      std::nth_element(scratch.begin(), scratch.begin() + rank, scratch.end());
      return scratch[static_cast<std::size_t>(rank)];
    };
    result.p50_latency_us = percentile(0.50);
    result.p95_latency_us = percentile(0.95);
    result.p99_latency_us = percentile(0.99);

    // Batch means absorb the autocorrelation of consecutive latencies;
    // fall back to the i.i.d. interval for very short runs.
    const std::uint64_t batch = std::max<std::uint64_t>(1, latency.count() / 32);
    simcore::BatchMeans batches(batch);
    for (const double sample : measured_samples) batches.add(sample);
    if (batches.num_complete_batches() >= 2) {
      result.latency_ci = batches.confidence_interval();
      result.obs.batch_count = batches.num_complete_batches();
      result.obs.batch_lag1_autocorrelation =
          lag1_autocorrelation(batches.batch_means());
    } else {
      result.latency_ci = latency.confidence_interval();
    }

    if (local_latency.count() > 0) result.mean_local_latency_us = local_latency.mean();
    if (remote_latency.count() > 0) result.mean_remote_latency_us = remote_latency.mean();
    result.remote_fraction = static_cast<double>(remote_latency.count()) /
                             static_cast<double>(latency.count());

    result.window_duration_us = simulator.now() - window_start;
    if (result.window_duration_us > 0.0) {
      result.effective_rate_per_us =
          static_cast<double>(measured_deliveries) /
          result.window_duration_us / static_cast<double>(total_nodes());
    }

    result.icn1 = aggregate(icn1_stations);
    result.ecn1 = aggregate(ecn1_stations);
    {
      // ICN2 is a single station; reuse the aggregation path.
      CenterStats stats{};
      const auto& s = *icn2_station;
      stats.utilization = s.utilization();
      stats.avg_queue_length = s.average_number_in_system();
      stats.departures = s.departures();
      if (s.wait_times().count() > 0) {
        stats.mean_wait_us = s.wait_times().mean();
        stats.mean_service_us = s.service_times().mean();
        stats.mean_response_us = s.response_times().mean();
      }
      result.icn2 = stats;
    }

    result.total_avg_queue_length = 0.0;
    for (const auto& station : icn1_stations) {
      result.total_avg_queue_length += station.average_number_in_system();
    }
    for (const auto& station : ecn1_stations) {
      result.total_avg_queue_length += station.average_number_in_system();
    }
    result.total_avg_queue_length += icn2_station->average_number_in_system();

    result.events_executed = simulator.executed_events();

    finish_observability(result);

    const double hi = std::max(result.max_latency_us * 1.001, 1.0);
    histogram.emplace(0.0, hi, 64);
    for (const double sample : measured_samples) histogram->add(sample);
    return result;
  }

  /// End-of-run observability: fills SimResult::ObsStats from the engine
  /// and publishes the run's aggregates to the global metrics registry.
  /// Per-message quantities are counted in plain members on the hot path
  /// and flushed here in one shot, so concurrent replications never
  /// contend on shared cache lines mid-run.
  void finish_observability(SimResult& result) {
    result.obs.warmup_end_us = warmup_end_us;
    result.obs.trace_dropped = options.trace ? options.trace->dropped_count() : 0;
    result.obs.samples_taken = sampler ? sampler->samples_taken() : 0;
    const simcore::EventQueue& queue = simulator.queue();
    result.obs.events_pushed = queue.total_pushed();
    result.obs.calendar_resizes = queue.calendar_resizes();
    result.obs.calendar_purges = queue.calendar_purges();
    result.obs.sweep_fallbacks = queue.sweep_fallbacks();
    result.obs.peak_slot_capacity = queue.slot_capacity();

    if (options.obs.trace) {
      options.obs.trace->complete("measurement", "sim.phase", window_start,
                                  simulator.now() - window_start,
                                  options.obs.trace_pid);
    }

    HMCS_OBS_COUNTER_ADD("sim.messages.generated", generated_total);
    HMCS_OBS_COUNTER_ADD("sim.messages.delivered", delivered_total);
    HMCS_OBS_COUNTER_ADD("sim.messages.measured", measured_deliveries);
    HMCS_OBS_COUNTER_ADD("sim.message_pool.growths", pool_growths);
    HMCS_OBS_COUNTER_ADD("sim.trace.dropped_events", result.obs.trace_dropped);
    HMCS_OBS_STAT_OBSERVE("sim.center.icn1.utilization",
                          result.icn1.utilization);
    HMCS_OBS_STAT_OBSERVE("sim.center.ecn1.utilization",
                          result.ecn1.utilization);
    HMCS_OBS_STAT_OBSERVE("sim.center.icn2.utilization",
                          result.icn2.utilization);
    HMCS_OBS_STAT_OBSERVE("sim.run.mean_latency_us", result.mean_latency_us);
    HMCS_OBS_STAT_OBSERVE("sim.run.batch_lag1",
                          result.obs.batch_lag1_autocorrelation);
    HMCS_OBS_GAUGE_SET("sim.run.warmup_end_us", warmup_end_us);
  }

  SimResult run() {
    require(!has_run, "MultiClusterSim: run() may be called only once");
    has_run = true;
    require(total_nodes() >= 2, "MultiClusterSim: needs >= 2 nodes");
    require(options.measured_messages >= 2,
            "MultiClusterSim: needs >= 2 measured messages");

    for (std::uint64_t node = 0; node < total_nodes(); ++node) {
      schedule_think(node);
    }
    if (sampler) sample_tick();
    // Cancellation poll period: the steady_clock read behind
    // CancelToken::check stays off the per-event hot path.
    constexpr std::uint64_t kCancelPollMask = 4095;
    while (!done) {
      ensure(simulator.step(), "sim: event queue drained before completion");
      if (options.max_events != 0 &&
          simulator.executed_events() > options.max_events) {
        detail::throw_config_error(
            "MultiClusterSim: exceeded max_events safety limit",
            std::source_location::current());
      }
      if (options.cancel != nullptr &&
          (simulator.executed_events() & kCancelPollMask) == 0) {
        options.cancel->check("MultiClusterSim");
      }
    }
    return collect();
  }
};

MultiClusterSim::MultiClusterSim(const analytic::SystemConfig& config,
                                 SimOptions options)
    : impl_(std::make_unique<Impl>()) {
  config.validate();
  // The analytic model accepts a zero generation rate (no-load system);
  // an event-driven source that never generates would schedule nothing
  // and the run would never reach its message quota.
  require(config.generation_rate_per_us > 0.0,
          "MultiClusterSim: generation rate must be > 0");
  const analytic::CenterServiceTimes services =
      analytic::center_service_times(config);
  impl_->options = std::move(options);
  impl_->fixed_message_bytes = config.message_bytes;
  impl_->clusters.assign(
      config.clusters,
      ResolvedCluster{
          config.nodes_per_cluster,
          CenterModel::from_breakdown(services.icn1, config.message_bytes),
          CenterModel::from_breakdown(services.ecn1, config.message_bytes),
          config.generation_rate_per_us});
  impl_->space =
      workload::NodeSpace::uniform(config.clusters, config.nodes_per_cluster);
  impl_->icn2_model =
      CenterModel::from_breakdown(services.icn2, config.message_bytes);
  impl_->scenario = config.scenario;
  impl_->traffic = impl_->options.traffic;
  impl_->build(impl_->options.seed);
}

MultiClusterSim::MultiClusterSim(const analytic::ClusterOfClustersConfig& config,
                                 SimOptions options)
    : impl_(std::make_unique<Impl>()) {
  config.validate();
  impl_->options = std::move(options);
  impl_->fixed_message_bytes = config.message_bytes;

  impl_->space.clusters = static_cast<std::uint32_t>(config.clusters.size());
  for (const auto& cluster : config.clusters) {
    const analytic::ServiceTimeBreakdown icn1 = analytic::network_service_time(
        cluster.icn1, cluster.nodes, config.switch_params, config.architecture,
        config.message_bytes);
    const analytic::ServiceTimeBreakdown ecn1 = analytic::network_service_time(
        cluster.ecn1, cluster.nodes, config.switch_params, config.architecture,
        config.message_bytes);
    impl_->clusters.push_back(ResolvedCluster{
        cluster.nodes, CenterModel::from_breakdown(icn1, config.message_bytes),
        CenterModel::from_breakdown(ecn1, config.message_bytes),
        cluster.generation_rate_per_us});
    impl_->space.nodes_per_cluster.push_back(cluster.nodes);
  }
  impl_->space.validate();

  const analytic::ServiceTimeBreakdown icn2 = analytic::network_service_time(
      config.icn2, config.clusters.size(), config.switch_params,
      config.architecture, config.message_bytes);
  impl_->icn2_model = CenterModel::from_breakdown(icn2, config.message_bytes);
  impl_->traffic = impl_->options.traffic;
  impl_->build(impl_->options.seed);
}

MultiClusterSim::~MultiClusterSim() = default;

SimResult MultiClusterSim::run() { return impl_->run(); }

const simcore::Histogram& MultiClusterSim::latency_histogram() const {
  require(impl_->histogram.has_value(),
          "MultiClusterSim: histogram available only after run()");
  return *impl_->histogram;
}

const std::vector<double>& MultiClusterSim::measured_latencies() const {
  require(impl_->has_run && impl_->done,
          "MultiClusterSim: samples available only after run()");
  return impl_->measured_samples;
}

const obs::TimeSeriesSampler* MultiClusterSim::sampler() const {
  return impl_->sampler.has_value() ? &*impl_->sampler : nullptr;
}

}  // namespace hmcs::sim
