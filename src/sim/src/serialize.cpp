#include "hmcs/sim/serialize.hpp"

namespace hmcs::sim {

void write_json(JsonWriter& json, const CenterStats& stats) {
  json.begin_object();
  json.key("mean_wait_us").value(stats.mean_wait_us);
  json.key("mean_service_us").value(stats.mean_service_us);
  json.key("mean_response_us").value(stats.mean_response_us);
  json.key("utilization").value(stats.utilization);
  json.key("avg_queue_length").value(stats.avg_queue_length);
  json.key("departures").value(stats.departures);
  json.end_object();
}

void write_json(JsonWriter& json, const SimResult& result) {
  json.begin_object();
  json.key("messages_measured").value(result.messages_measured);
  json.key("mean_latency_us").value(result.mean_latency_us);
  json.key("latency_ci_half_us").value(result.latency_ci.half_width);
  json.key("min_latency_us").value(result.min_latency_us);
  json.key("max_latency_us").value(result.max_latency_us);
  json.key("p50_latency_us").value(result.p50_latency_us);
  json.key("p95_latency_us").value(result.p95_latency_us);
  json.key("p99_latency_us").value(result.p99_latency_us);
  json.key("mean_local_latency_us").value(result.mean_local_latency_us);
  json.key("mean_remote_latency_us").value(result.mean_remote_latency_us);
  json.key("remote_fraction").value(result.remote_fraction);
  json.key("effective_rate_per_us").value(result.effective_rate_per_us);
  json.key("total_avg_queue_length").value(result.total_avg_queue_length);
  json.key("window_duration_us").value(result.window_duration_us);
  json.key("events_executed").value(result.events_executed);
  json.key("icn1");
  write_json(json, result.icn1);
  json.key("ecn1");
  write_json(json, result.ecn1);
  json.key("icn2");
  write_json(json, result.icn2);
  json.end_object();
}

std::string to_json(const SimResult& result) {
  JsonWriter json;
  write_json(json, result);
  return json.str();
}

}  // namespace hmcs::sim
