#include "hmcs/serve/cache.hpp"

#include "hmcs/util/error.hpp"

namespace hmcs::serve {

ShardedResultCache::ShardedResultCache(const Options& options) {
  require(options.shards >= 1, "serve cache: shards must be >= 1");
  require(options.capacity >= options.shards,
          "serve cache: capacity must be >= shards");
  per_shard_capacity_ =
      (options.capacity + options.shards - 1) / options.shards;
  shards_.reserve(options.shards);
  for (std::size_t i = 0; i < options.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<std::string> ShardedResultCache::get(std::uint64_t hash,
                                                   std::string_view key) {
  Shard& shard = shard_for(hash);
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ShardedResultCache::put(std::uint64_t hash, std::string_view key,
                             std::string value) {
  Shard& shard = shard_for(hash);
  const std::scoped_lock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{std::string(key), std::move(value)});
  shard.index.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
  ++shard.insertions;
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(std::string_view(shard.lru.back().key));
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ShardedResultCache::for_each_lru_to_mru(
    const std::function<void(const std::string& key,
                             const std::string& value)>& fn) const {
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
      fn(it->key, it->value);
    }
  }
}

ShardedResultCache::Stats ShardedResultCache::stats() const {
  Stats total;
  total.shard_entries.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.entries += shard->lru.size();
    total.shard_entries.push_back(shard->lru.size());
  }
  return total;
}

}  // namespace hmcs::serve
