#include "hmcs/serve/thread_pool.hpp"

#include <chrono>

#include "hmcs/util/error.hpp"

namespace hmcs::serve {

WorkStealingPool::WorkStealingPool(std::uint32_t threads,
                                   std::size_t queue_limit)
    : queue_limit_(queue_limit) {
  require(queue_limit >= 1, "serve pool: queue limit must be >= 1");
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  lanes_.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  workers_.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() { drain(); }

bool WorkStealingPool::try_submit(Task task) {
  if (!accepting_.load(std::memory_order_relaxed)) return false;
  // Reserve a queue slot first so concurrent submitters cannot
  // collectively overshoot the limit.
  if (queued_.fetch_add(1, std::memory_order_relaxed) >= queue_limit_) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  const std::size_t lane_index =
      round_robin_.fetch_add(1, std::memory_order_relaxed) % lanes_.size();
  {
    Lane& lane = *lanes_[lane_index];
    const std::scoped_lock lock(lane.mutex);
    lane.tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
  return true;
}

WorkStealingPool::Task WorkStealingPool::take(std::uint32_t self) {
  // Own lane first (FIFO), then steal from the tails of the others.
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = *lanes_[(self + i) % lanes_.size()];
    const std::scoped_lock lock(lane.mutex);
    if (lane.tasks.empty()) continue;
    Task task;
    if (i == 0) {
      task = std::move(lane.tasks.front());
      lane.tasks.pop_front();
    } else {
      task = std::move(lane.tasks.back());
      lane.tasks.pop_back();
    }
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }
  return {};
}

void WorkStealingPool::worker_loop(std::uint32_t self) {
  for (;;) {
    if (Task task = take(self)) {
      task();
      continue;
    }
    std::unique_lock lock(wake_mutex_);
    if (draining_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
    // The timeout is a missed-wakeup safety net (submit can slip
    // between the take() above and this wait), not the wake path.
    wake_cv_.wait_for(lock, std::chrono::milliseconds(20));
  }
}

void WorkStealingPool::drain() {
  if (drained_) return;
  drained_ = true;
  accepting_.store(false, std::memory_order_relaxed);
  draining_.store(true, std::memory_order_relaxed);
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace hmcs::serve
