#include "hmcs/serve/snapshot.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/serve/request.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace hmcs::serve {

namespace {

constexpr std::uint64_t kSnapshotVersion = 1;

/// FNV-1a over key + NUL + value without materialising the
/// concatenation (values are whole reply bodies).
std::uint64_t entry_check(std::string_view key, std::string_view value) {
  std::uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](std::string_view text) {
    for (const char c : text) {
      hash ^= static_cast<std::uint8_t>(c);
      hash *= 1099511628211ull;
    }
  };
  mix(key);
  hash ^= 0u;
  hash *= 1099511628211ull;
  mix(value);
  return hash;
}

}  // namespace

SnapshotSaveReport save_cache_snapshot(const ShardedResultCache& cache,
                                       const std::string& path,
                                       ChaosInjector* chaos) {
  SnapshotSaveReport report;
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::trunc);
    if (!out.is_open()) {
      report.error = "cannot open '" + temp + "' for writing";
      HMCS_OBS_COUNTER_INC("serve.snapshot.save_failures");
      return report;
    }
    JsonWriter header;
    header.begin_object();
    header.key("hmcs_cache_snapshot").value(kSnapshotVersion);
    header.key("ts_ms").value(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count()));
    header.end_object();
    out << header.str() << '\n';
    cache.for_each_lru_to_mru(
        [&out, &report](const std::string& key, const std::string& value) {
          JsonWriter line;
          line.begin_object();
          line.key("key").value(key);
          line.key("value").value(value);
          line.key("check").value(key_hash_hex(entry_check(key, value)));
          line.end_object();
          out << line.str() << '\n';
          ++report.entries;
        });
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(temp.c_str());
      report.entries = 0;
      report.error = "write to '" + temp + "' failed";
      HMCS_OBS_COUNTER_INC("serve.snapshot.save_failures");
      return report;
    }
  }
  if (chaos != nullptr && chaos->should_fail_snapshot()) {
    std::remove(temp.c_str());
    report.entries = 0;
    report.error = "chaos: injected snapshot write failure";
    HMCS_OBS_COUNTER_INC("serve.snapshot.save_failures");
    return report;
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    std::remove(temp.c_str());
    report.entries = 0;
    report.error = "rename '" + temp + "' -> '" + path + "' failed: " + reason;
    HMCS_OBS_COUNTER_INC("serve.snapshot.save_failures");
    return report;
  }
  {
    std::ifstream sized(path, std::ios::ate | std::ios::binary);
    if (sized.is_open()) {
      report.bytes = static_cast<std::size_t>(sized.tellg());
    }
  }
  report.ok = true;
  HMCS_OBS_COUNTER_INC("serve.snapshot.saves");
  HMCS_OBS_GAUGE_SET("serve.snapshot.entries",
                     static_cast<std::int64_t>(report.entries));
  return report;
}

SnapshotLoadReport load_cache_snapshot(ShardedResultCache& cache,
                                       const std::string& path,
                                       const SnapshotLoadOptions& options) {
  SnapshotLoadReport report;
  std::ifstream in(path);
  if (!in.is_open()) return report;  // no snapshot yet: clean cold start
  report.found = true;

  const auto skip = [&report](const std::string& why) {
    ++report.skipped;
    if (report.warning.empty()) report.warning = why;
    HMCS_OBS_COUNTER_INC("serve.snapshot.skipped_lines");
  };

  std::string line;
  bool header_ok = false;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.size() > options.max_line_bytes) {
      skip("line exceeds " + std::to_string(options.max_line_bytes) +
           " bytes");
      continue;
    }
    if (first) {
      first = false;
      // The header gates the whole file: an unknown version means the
      // format may have changed underneath us, and replaying entries
      // written by a different scheme risks serving wrong bytes.
      try {
        const JsonValue doc = parse_json(line);
        const JsonValue* version = doc.find("hmcs_cache_snapshot");
        if (version != nullptr &&
            version->as_number() ==
                static_cast<double>(kSnapshotVersion)) {
          header_ok = true;
          continue;
        }
        skip(version == nullptr
                 ? "missing snapshot header"
                 : "unsupported snapshot version " +
                       std::to_string(version->as_number()));
      } catch (const hmcs::Error&) {
        skip("unparseable snapshot header");
      }
      continue;
    }
    if (!header_ok) {
      // Stale/foreign file: count every line, load nothing.
      skip("entry after a rejected header");
      continue;
    }
    try {
      const JsonValue doc = parse_json(line);
      const JsonValue* key = doc.find("key");
      const JsonValue* value = doc.find("value");
      const JsonValue* check = doc.find("check");
      if (key == nullptr || value == nullptr || check == nullptr ||
          !key->is_string() || !value->is_string() ||
          !check->is_string()) {
        skip("entry missing key/value/check");
        continue;
      }
      if (key_hash_hex(entry_check(key->as_string(), value->as_string())) !=
          check->as_string()) {
        skip("entry checksum mismatch");
        continue;
      }
      cache.put(fnv1a64(key->as_string()), key->as_string(),
                value->as_string());
      ++report.loaded;
    } catch (const hmcs::Error&) {
      skip("unparseable entry line");
    }
  }
  HMCS_OBS_COUNTER_INC("serve.snapshot.loads");
  return report;
}

SnapshotWriter::SnapshotWriter(const ShardedResultCache& cache,
                               const Options& options)
    : cache_(cache), options_(options) {
  require(!options_.path.empty(), "snapshot writer: path must be set");
  if (options_.interval_ms > 0) {
    writer_ = std::thread([this] { writer_loop(); });
  }
}

SnapshotWriter::~SnapshotWriter() { stop(); }

SnapshotSaveReport SnapshotWriter::save_now() {
  const SnapshotSaveReport report =
      save_cache_snapshot(cache_, options_.path, options_.chaos);
  if (report.ok) {
    saves_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return report;
}

void SnapshotWriter::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  wake_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

void SnapshotWriter::writer_loop() {
  std::unique_lock lock(wake_mutex_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    wake_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                      [this] {
                        return stopping_.load(std::memory_order_relaxed);
                      });
    if (stopping_.load(std::memory_order_relaxed)) return;
    lock.unlock();
    save_now();
    lock.lock();
  }
}

}  // namespace hmcs::serve
