#include "hmcs/serve/request.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "hmcs/analytic/config_io.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/analytic/serialize.hpp"
#include "hmcs/analytic/tree_io.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/units.hpp"

namespace hmcs::serve {

namespace {

void reject_unknown_members(const JsonValue& object,
                            const std::vector<std::string>& known,
                            const std::string& where) {
  for (const auto& [key, value] : object.members) {
    (void)value;
    require(std::find(known.begin(), known.end(), key) != known.end(),
            "serve: unknown key '" + key + "' in " + where);
  }
}

double number_member(const JsonValue& object, std::string_view key,
                     double fallback) {
  const JsonValue* member = object.find(key);
  return member == nullptr ? fallback : member->as_number();
}

std::uint64_t uint_member(const JsonValue& object, std::string_view key,
                          std::uint64_t fallback) {
  const JsonValue* member = object.find(key);
  if (member == nullptr) return fallback;
  const double number = member->as_number();
  require(number >= 0.0 && number == static_cast<double>(
                                         static_cast<std::uint64_t>(number)),
          "serve: '" + std::string(key) + "' must be a non-negative integer");
  return static_cast<std::uint64_t>(number);
}

std::string string_member(const JsonValue& object, std::string_view key,
                          const std::string& fallback) {
  const JsonValue* member = object.find(key);
  return member == nullptr ? fallback : member->as_string();
}

/// u64 fields accept the journal spelling (decimal string, exact for
/// all 64 bits) or a plain number (exact up to 2^53).
std::uint64_t u64_member(const JsonValue& object, std::string_view key,
                         std::uint64_t fallback) {
  const JsonValue* member = object.find(key);
  if (member == nullptr) return fallback;
  if (member->is_number()) return uint_member(object, key, fallback);
  const std::string& text = member->as_string();
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  require(errno == 0 && end == text.c_str() + text.size() && !text.empty(),
          "serve: bad u64 '" + text + "' for " + std::string(key));
  return static_cast<std::uint64_t>(value);
}

analytic::SystemConfig config_from_json(const JsonValue& entry) {
  require(entry.is_object(), "serve: 'config' must be an object");
  reject_unknown_members(entry,
                         {"clusters", "nodes_per_cluster", "total_nodes",
                          "architecture", "technology", "message_bytes",
                          "lambda_per_s", "switch_ports",
                          "switch_latency_us", "workload"},
                         "'config'");
  analytic::SystemConfig config;
  config.clusters =
      static_cast<std::uint32_t>(uint_member(entry, "clusters", 1));
  require(config.clusters >= 1, "serve: 'clusters' must be >= 1");

  if (const JsonValue* per_cluster = entry.find("nodes_per_cluster")) {
    require(entry.find("total_nodes") == nullptr,
            "serve: give 'nodes_per_cluster' or 'total_nodes', not both");
    config.nodes_per_cluster =
        static_cast<std::uint32_t>(per_cluster->as_number());
  } else {
    const std::uint64_t total =
        uint_member(entry, "total_nodes", analytic::kPaperTotalNodes);
    require(total >= 1 && total % config.clusters == 0,
            "serve: 'total_nodes' must be a positive multiple of 'clusters'");
    config.nodes_per_cluster =
        static_cast<std::uint32_t>(total / config.clusters);
  }

  // Technology entries use the sweep-config vocabulary ("case1",
  // presets, custom:..., or {icn1,ecn1,icn2} objects).
  const JsonValue* tech_entry = entry.find("technology");
  runner::TechnologyCase tech =
      tech_entry != nullptr
          ? runner::technology_from_json(*tech_entry)
          : runner::technology_case(analytic::HeterogeneityCase::kCase1);
  config.icn1 = tech.icn1;
  config.ecn1 = tech.ecn1;
  config.icn2 = tech.icn2;

  config.architecture = analytic::parse_architecture(
      string_member(entry, "architecture", "non-blocking"));
  config.message_bytes = number_member(entry, "message_bytes", 1024.0);
  config.generation_rate_per_us = units::per_s_to_per_us(number_member(
      entry, "lambda_per_s",
      units::per_us_to_per_s(analytic::kPaperRatePerUs)));
  config.switch_params.ports = static_cast<std::uint32_t>(
      uint_member(entry, "switch_ports", analytic::kPaperSwitchPorts));
  config.switch_params.latency_us = number_member(
      entry, "switch_latency_us", analytic::kPaperSwitchLatencyUs);
  // The canonical key renderer collapses a spelled-out default workload
  // onto the key bytes of an omitted one, so pre-workload caches and
  // snapshots stay warm.
  if (const JsonValue* workload = entry.find("workload")) {
    config.scenario = analytic::workload_from_json(*workload);
  }
  config.validate();
  return config;
}

/// Writes the normalised backend options into the canonical key. The
/// numeric defaults come from the default-constructed option structs —
/// the same ones runner::backend_from_json fills — so an omitted member
/// and its explicit default render identically and cannot drift.
void write_backend_key(JsonWriter& json, const JsonValue* entry,
                       const std::string& type) {
  json.begin_object();
  json.key("type").value(type);
  if (type == "analytic") {
    const analytic::SourceThrottling method = runner::parse_throttling_model(
        entry == nullptr ? "bisection"
                         : string_member(*entry, "model", "bisection"));
    json.key("model").value(runner::throttling_model_name(method));
  } else if (type == "des") {
    runner::DesBackend::Options defaults;
    json.key("messages").value(
        uint_member(*entry, "messages", defaults.sim.measured_messages));
    json.key("warmup").value(
        uint_member(*entry, "warmup", defaults.sim.warmup_messages));
    json.key("replications").value(uint_member(*entry, "replications", 1));
  } else if (type == "fabric") {
    runner::FabricBackend::Options defaults;
    json.key("messages").value(
        uint_member(*entry, "messages", defaults.measured_messages));
    json.key("warmup").value(
        uint_member(*entry, "warmup", defaults.warmup_messages));
  }
  json.end_object();
}

std::string render_id(const JsonValue& id) {
  JsonWriter json;
  if (id.is_string()) {
    json.value(id.as_string());
  } else if (id.is_number()) {
    json.value(id.as_number());
  } else {
    detail::throw_config_error("serve: 'id' must be a string or number",
                               std::source_location::current());
  }
  return json.str();
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string key_hash_hex(std::uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016" PRIx64, hash);
  return std::string(buffer, 16);
}

ServeRequest parse_request(const JsonValue& doc,
                           const runner::SweepLoadOptions& load) {
  require(doc.is_object(), "serve: a request must be a JSON object");
  reject_unknown_members(doc,
                         {"id", "backend", "config", "seed", "deadline_ms",
                          "no_cache", "timing"},
                         "the request");

  ServeRequest request;
  if (const JsonValue* id = doc.find("id")) request.id_json = render_id(*id);

  const JsonValue* backend_entry = doc.find("backend");
  if (backend_entry != nullptr) {
    request.backend = runner::backend_from_json(*backend_entry, load);
    request.backend_kind = backend_entry->at("type").as_string();
  } else {
    request.backend = std::make_shared<runner::AnalyticBackend>();
    request.backend_kind = "analytic";
  }

  const JsonValue* config_entry = doc.find("config");
  require(config_entry != nullptr, "serve: a request needs a 'config'");
  if (analytic::is_tree_config(*config_entry)) {
    analytic::ModelTree tree =
        analytic::model_tree_from_json(*config_entry, "'config'");
    if (const auto flat = tree.as_system_config()) {
      // A nested spelling of the flat two-stage system: lower it so the
      // request shares the flat schema's canonical key (and cache line).
      request.config = *flat;
    } else {
      request.tree =
          std::make_shared<const analytic::ModelTree>(std::move(tree));
    }
  } else {
    request.config = config_from_json(*config_entry);
  }

  request.seed = u64_member(doc, "seed", 1);
  request.deadline_ms = number_member(doc, "deadline_ms", 0.0);
  require(request.deadline_ms >= 0.0, "serve: 'deadline_ms' must be >= 0");
  if (const JsonValue* no_cache = doc.find("no_cache")) {
    request.no_cache = no_cache->as_bool();
  }
  if (const JsonValue* timing = doc.find("timing")) {
    request.timing = timing->as_bool();
  }

  // Canonical key: version tag + normalised backend + the built config
  // (stable declaration-order serialisation resolves presets, unit
  // conversions, and member order) + the seed for stochastic backends.
  JsonWriter json;
  json.begin_object();
  json.key("v").value(std::uint64_t{1});
  json.key("backend");
  write_backend_key(json, backend_entry, request.backend_kind);
  json.key("config");
  if (request.tree != nullptr) {
    analytic::write_json(json, *request.tree);
  } else {
    analytic::write_json(json, request.config);
  }
  if (request.backend_kind != "analytic") {
    json.key("seed").value(std::to_string(request.seed));
  }
  json.end_object();
  request.canonical_key = json.str();
  request.key_hash = fnv1a64(request.canonical_key);
  return request;
}

}  // namespace hmcs::serve
