#include "hmcs/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"
#include "hmcs/util/net.hpp"

namespace hmcs::serve {

namespace {

/// Poll interval for the accept/read loops: how quickly a drain, a
/// stop token, an eviction flag, or a timeout is noticed. The sockets
/// stay blocking; poll() just makes every blocking point interruptible.
constexpr int kPollMs = 50;

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A structured single-line error reply for connection-level
/// rejections (timeouts, eviction, oversized lines): the client hears
/// why it is being dropped instead of seeing a bare FIN.
std::string error_line(const std::string& message) {
  JsonWriter json;
  json.begin_object();
  json.key("status").value("error");
  json.key("error").value(message);
  json.end_object();
  return json.str();
}

}  // namespace

ServeServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

ServeServer::ServeServer(const Options& options)
    : options_(options),
      service_(options.service),
      pool_(options.threads, options.queue_limit) {
  service_.set_pool_status_fn([this] {
    ServeService::PoolStatus status;
    status.queued = pool_.queued();
    status.queue_limit = options_.queue_limit;
    status.threads = pool_.thread_count();
    return status;
  });
}

ServeServer::~ServeServer() {
  shutdown();
  // serve() normally performs the drain; cover construction-only or
  // start()-only lifetimes.
  {
    const std::scoped_lock lock(connections_mutex_);
    for (Reader& reader : readers_) {
      if (reader.thread.joinable()) reader.thread.join();
    }
  }
  pool_.drain();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::uint16_t ServeServer::start() {
  ensure(listen_fd_ < 0, "serve server: start() called twice");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "serve server: socket() failed");

  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  require(::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) == 1,
          "serve server: bad bind address '" + options_.host + "'");
  require(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                 sizeof address) == 0,
          "serve server: bind to " + options_.host + ":" +
              std::to_string(options_.port) + " failed: " +
              std::strerror(errno));
  require(::listen(listen_fd_, 128) == 0, "serve server: listen() failed");

  sockaddr_in bound{};
  socklen_t bound_size = sizeof bound;
  require(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                        &bound_size) == 0,
          "serve server: getsockname() failed");
  port_ = ntohs(bound.sin_port);
  return port_;
}

void ServeServer::serve() {
  ensure(listen_fd_ >= 0, "serve server: serve() before start()");
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (options_.stop != nullptr && options_.stop->cancelled()) break;
    pollfd entry{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&entry, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.connections.accepted");
    auto connection = std::make_shared<Connection>(fd);
    connection->last_activity_ms.store(steady_now_ms(),
                                       std::memory_order_relaxed);
    auto done = std::make_shared<std::atomic<bool>>(false);
    const std::scoped_lock lock(connections_mutex_);
    enforce_connection_limit_locked();
    live_connections_.push_back(connection);
    readers_.push_back(Reader{
        std::thread([this, connection, done] {
          connection_loop(connection);
          done->store(true, std::memory_order_release);
        }),
        done});
  }

  // Graceful drain: stop accepting, let every reader flush the lines
  // it already holds, run every accepted request, then close sockets
  // (readers and queued tasks share Connection ownership, so each fd
  // closes when its last pending reply is written).
  stopping_.store(true, std::memory_order_relaxed);
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    const std::scoped_lock lock(connections_mutex_);
    for (Reader& reader : readers_) {
      if (reader.thread.joinable()) reader.thread.join();
    }
    readers_.clear();
    live_connections_.clear();
  }
  pool_.drain();
}

void ServeServer::enforce_connection_limit_locked() {
  // Reap readers whose loops have exited so a long-lived daemon does
  // not accumulate one joinable thread per connection ever served.
  for (std::size_t i = 0; i < readers_.size();) {
    if (readers_[i].done->load(std::memory_order_acquire)) {
      readers_[i].thread.join();
      readers_[i] = std::move(readers_.back());
      readers_.pop_back();
    } else {
      ++i;
    }
  }
  std::vector<std::shared_ptr<Connection>> live;
  live.reserve(live_connections_.size());
  for (std::size_t i = 0; i < live_connections_.size();) {
    if (auto connection = live_connections_[i].lock()) {
      live.push_back(std::move(connection));
      ++i;
    } else {
      live_connections_[i] = std::move(live_connections_.back());
      live_connections_.pop_back();
    }
  }
  if (options_.max_connections == 0 ||
      live.size() < options_.max_connections) {
    return;
  }
  // Over the cap: flag the connection idle longest (skipping ones
  // already being evicted) and let its reader announce the eviction.
  std::shared_ptr<Connection> oldest;
  std::uint64_t oldest_ms = ~0ull;
  for (const auto& connection : live) {
    if (connection->evict.load(std::memory_order_relaxed)) continue;
    const std::uint64_t last =
        connection->last_activity_ms.load(std::memory_order_relaxed);
    if (last < oldest_ms) {
      oldest_ms = last;
      oldest = connection;
    }
  }
  if (oldest != nullptr) {
    oldest->evict.store(true, std::memory_order_relaxed);
  }
}

void ServeServer::connection_loop(
    const std::shared_ptr<Connection>& connection) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (connection->evict.load(std::memory_order_relaxed)) {
      limit_evicted_.fetch_add(1, std::memory_order_relaxed);
      HMCS_OBS_COUNTER_INC("serve.connections.limit_evicted");
      write_line(*connection,
                 error_line("evicted: connection limit reached and this "
                            "connection was idle longest"));
      return;
    }
    // Read/idle deadlines: silence between requests is policed by
    // idle_timeout_ms, a stalled half-sent line by read_timeout_ms.
    const unsigned timeout_ms =
        buffer.empty() ? options_.idle_timeout_ms : options_.read_timeout_ms;
    if (timeout_ms > 0) {
      const std::uint64_t last =
          connection->last_activity_ms.load(std::memory_order_relaxed);
      if (steady_now_ms() - last >= timeout_ms) {
        timeout_evicted_.fetch_add(1, std::memory_order_relaxed);
        HMCS_OBS_COUNTER_INC("serve.connections.timeout_evicted");
        write_line(*connection,
                   error_line(buffer.empty()
                                  ? "idle timeout: no request received"
                                  : "read timeout: request incomplete"));
        return;
      }
    }
    pollfd entry{connection->fd, POLLIN, 0};
    const int ready = ::poll(&entry, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) continue;
    const ssize_t received =
        util::recv_some(connection->fd, chunk, sizeof chunk);
    if (received == 0) break;  // client EOF
    if (received < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return;
    }
    buffer.append(chunk, static_cast<std::size_t>(received));
    connection->last_activity_ms.store(steady_now_ms(),
                                       std::memory_order_relaxed);
    dispatch_lines(connection, buffer);
    if (buffer.size() > options_.max_line_bytes) {
      // An over-long line can never complete; answer with a structured
      // error (not a silent close, not a misleading "shed") and drop
      // the link.
      oversized_.fetch_add(1, std::memory_order_relaxed);
      HMCS_OBS_COUNTER_INC("serve.requests.oversized");
      write_line(*connection,
                 error_line("request line exceeds " +
                            std::to_string(options_.max_line_bytes) +
                            " bytes"));
      return;
    }
  }
  if (stopping_.load(std::memory_order_relaxed)) {
    // Drain: slurp whatever the client had already sent before the
    // stop (it is in the kernel buffer), so those requests count as
    // accepted and get answered.
    for (;;) {
      const ssize_t received =
          ::recv(connection->fd, chunk, sizeof chunk, MSG_DONTWAIT);
      if (received < 0 && errno == EINTR) continue;
      if (received <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(received));
    }
    dispatch_lines(connection, buffer);
  }
}

void ServeServer::dispatch_lines(
    const std::shared_ptr<Connection>& connection, std::string& buffer) {
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) return;
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    dispatch_line(connection, std::move(line));
  }
}

void ServeServer::dispatch_line(const std::shared_ptr<Connection>& connection,
                                std::string line) {
  lines_.fetch_add(1, std::memory_order_relaxed);
  HMCS_OBS_GAUGE_SET("serve.queue.depth", pool_.queued());
  auto task = [this, connection, line = std::move(line)] {
    const std::string reply = service_.handle_line(line);
    write_line(*connection, reply);
  };
  if (!pool_.try_submit(std::move(task))) {
    // Explicit backpressure: the client hears "shed" immediately
    // instead of waiting on an unbounded queue.
    shed_.fetch_add(1, std::memory_order_relaxed);
    service_.note_shed();
    write_line(*connection, ServeService::shed_reply());
  }
}

void ServeServer::write_line(Connection& connection, std::string_view reply) {
  const std::scoped_lock lock(connection.write_mutex);
  std::string frame(reply);
  frame.push_back('\n');
  if (!util::send_all(connection.fd, frame)) {
    // The client hung up; the request was still fully served.
    HMCS_OBS_COUNTER_INC("serve.replies.write_failed");
  }
}

ServeServer::Stats ServeServer::stats() const {
  Stats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.lines = lines_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.timeout_evicted = timeout_evicted_.load(std::memory_order_relaxed);
  stats.limit_evicted = limit_evicted_.load(std::memory_order_relaxed);
  stats.oversized = oversized_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace hmcs::serve
