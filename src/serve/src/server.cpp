#include "hmcs/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::serve {

namespace {

/// Poll interval for the accept/read loops: how quickly a drain or a
/// stop token is noticed. The sockets stay blocking; poll() just makes
/// every blocking point interruptible.
constexpr int kPollMs = 50;

}  // namespace

ServeServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

ServeServer::ServeServer(const Options& options)
    : options_(options),
      service_(options.service),
      pool_(options.threads, options.queue_limit) {
  service_.set_pool_status_fn([this] {
    ServeService::PoolStatus status;
    status.queued = pool_.queued();
    status.queue_limit = options_.queue_limit;
    status.threads = pool_.thread_count();
    return status;
  });
}

ServeServer::~ServeServer() {
  shutdown();
  // serve() normally performs the drain; cover construction-only or
  // start()-only lifetimes.
  {
    const std::scoped_lock lock(connections_mutex_);
    for (std::thread& reader : reader_threads_) {
      if (reader.joinable()) reader.join();
    }
  }
  pool_.drain();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::uint16_t ServeServer::start() {
  ensure(listen_fd_ < 0, "serve server: start() called twice");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "serve server: socket() failed");

  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  require(::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) == 1,
          "serve server: bad bind address '" + options_.host + "'");
  require(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                 sizeof address) == 0,
          "serve server: bind to " + options_.host + ":" +
              std::to_string(options_.port) + " failed: " +
              std::strerror(errno));
  require(::listen(listen_fd_, 128) == 0, "serve server: listen() failed");

  sockaddr_in bound{};
  socklen_t bound_size = sizeof bound;
  require(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                        &bound_size) == 0,
          "serve server: getsockname() failed");
  port_ = ntohs(bound.sin_port);
  return port_;
}

void ServeServer::serve() {
  ensure(listen_fd_ >= 0, "serve server: serve() before start()");
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (options_.stop != nullptr && options_.stop->cancelled()) break;
    pollfd entry{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&entry, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.connections.accepted");
    auto connection = std::make_shared<Connection>(fd);
    const std::scoped_lock lock(connections_mutex_);
    reader_threads_.emplace_back(
        [this, connection] { connection_loop(connection); });
  }

  // Graceful drain: stop accepting, let every reader flush the lines
  // it already holds, run every accepted request, then close sockets
  // (readers and queued tasks share Connection ownership, so each fd
  // closes when its last pending reply is written).
  stopping_.store(true, std::memory_order_relaxed);
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    const std::scoped_lock lock(connections_mutex_);
    for (std::thread& reader : reader_threads_) {
      if (reader.joinable()) reader.join();
    }
    reader_threads_.clear();
  }
  pool_.drain();
}

void ServeServer::connection_loop(
    const std::shared_ptr<Connection>& connection) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd entry{connection->fd, POLLIN, 0};
    const int ready = ::poll(&entry, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) continue;
    const ssize_t received =
        ::recv(connection->fd, chunk, sizeof chunk, 0);
    if (received == 0) break;  // client EOF
    if (received < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return;
    }
    buffer.append(chunk, static_cast<std::size_t>(received));
    dispatch_lines(connection, buffer);
    if (buffer.size() > options_.max_line_bytes) {
      write_line(*connection, ServeService::shed_reply());
      return;  // an over-long line can never complete; drop the link
    }
  }
  if (stopping_.load(std::memory_order_relaxed)) {
    // Drain: slurp whatever the client had already sent before the
    // stop (it is in the kernel buffer), so those requests count as
    // accepted and get answered.
    for (;;) {
      const ssize_t received =
          ::recv(connection->fd, chunk, sizeof chunk, MSG_DONTWAIT);
      if (received <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(received));
    }
    dispatch_lines(connection, buffer);
  }
}

void ServeServer::dispatch_lines(
    const std::shared_ptr<Connection>& connection, std::string& buffer) {
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) return;
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    dispatch_line(connection, std::move(line));
  }
}

void ServeServer::dispatch_line(const std::shared_ptr<Connection>& connection,
                                std::string line) {
  lines_.fetch_add(1, std::memory_order_relaxed);
  HMCS_OBS_GAUGE_SET("serve.queue.depth", pool_.queued());
  auto task = [this, connection, line = std::move(line)] {
    const std::string reply = service_.handle_line(line);
    write_line(*connection, reply);
  };
  if (!pool_.try_submit(std::move(task))) {
    // Explicit backpressure: the client hears "shed" immediately
    // instead of waiting on an unbounded queue.
    shed_.fetch_add(1, std::memory_order_relaxed);
    service_.note_shed();
    write_line(*connection, ServeService::shed_reply());
  }
}

void ServeServer::write_line(Connection& connection, std::string_view reply) {
  const std::scoped_lock lock(connection.write_mutex);
  std::string frame(reply);
  frame.push_back('\n');
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t sent =
        ::send(connection.fd, frame.data() + written, frame.size() - written,
               MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      // The client hung up; the request was still fully served.
      HMCS_OBS_COUNTER_INC("serve.replies.write_failed");
      return;
    }
    written += static_cast<std::size_t>(sent);
  }
}

ServeServer::Stats ServeServer::stats() const {
  Stats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.lines = lines_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace hmcs::serve
