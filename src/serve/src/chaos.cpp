#include "hmcs/serve/chaos.hpp"

#include <algorithm>
#include <vector>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/error.hpp"

namespace hmcs::serve {

namespace {

double prob_member(const JsonValue& doc, std::string_view key) {
  const JsonValue* member = doc.find(key);
  if (member == nullptr) return 0.0;
  const double value = member->as_number();
  require(value >= 0.0 && value <= 1.0,
          "chaos: '" + std::string(key) + "' must be in [0, 1]");
  return value;
}

/// One uniform double in [0, 1) from a site-salted splitmix64 draw.
/// Sequential tickets through splitmix64 are well-decorrelated by
/// construction (it is the seed-expansion function of the simulators'
/// RNG stack), so one draw per decision is enough.
double uniform_draw(std::uint64_t seed, std::uint64_t site,
                    std::uint64_t ticket) {
  simcore::SplitMix64 mix(seed ^ (0x9e3779b97f4a7c15ULL * (site + 1)) ^
                          ticket);
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

}  // namespace

FaultPlan fault_plan_from_json(const JsonValue& doc) {
  require(doc.is_object(), "chaos: the plan must be a JSON object");
  static const std::vector<std::string> known = {
      "seed",          "shed_prob",      "eval_delay_prob",
      "eval_delay_ms", "eval_error_prob", "snapshot_fail_prob"};
  for (const auto& [key, value] : doc.members) {
    (void)value;
    require(std::find(known.begin(), known.end(), key) != known.end(),
            "chaos: unknown key '" + key + "' in the plan");
  }
  FaultPlan plan;
  if (const JsonValue* seed = doc.find("seed")) {
    const double number = seed->as_number();
    require(number >= 0.0 &&
                number == static_cast<double>(
                              static_cast<std::uint64_t>(number)),
            "chaos: 'seed' must be a non-negative integer");
    plan.seed = static_cast<std::uint64_t>(number);
  }
  plan.shed_prob = prob_member(doc, "shed_prob");
  plan.eval_delay_prob = prob_member(doc, "eval_delay_prob");
  plan.eval_error_prob = prob_member(doc, "eval_error_prob");
  plan.snapshot_fail_prob = prob_member(doc, "snapshot_fail_prob");
  if (const JsonValue* delay = doc.find("eval_delay_ms")) {
    plan.eval_delay_ms = delay->as_number();
    require(plan.eval_delay_ms >= 0.0,
            "chaos: 'eval_delay_ms' must be >= 0");
  }
  return plan;
}

void write_json(JsonWriter& json, const FaultPlan& plan) {
  json.begin_object();
  json.key("seed").value(plan.seed);
  json.key("shed_prob").value(plan.shed_prob);
  json.key("eval_delay_prob").value(plan.eval_delay_prob);
  json.key("eval_delay_ms").value(plan.eval_delay_ms);
  json.key("eval_error_prob").value(plan.eval_error_prob);
  json.key("snapshot_fail_prob").value(plan.snapshot_fail_prob);
  json.end_object();
}

void ChaosInjector::set_plan(const FaultPlan& plan) {
  const std::scoped_lock lock(mutex_);
  plan_ = plan;
}

FaultPlan ChaosInjector::plan() const {
  const std::scoped_lock lock(mutex_);
  return plan_;
}

bool ChaosInjector::roll(Site site, double prob) {
  if (prob <= 0.0) return false;
  std::uint64_t seed;
  {
    const std::scoped_lock lock(mutex_);
    seed = plan_.seed;
  }
  const std::uint64_t ticket =
      tickets_[site].fetch_add(1, std::memory_order_relaxed);
  return uniform_draw(seed, site, ticket) < prob;
}

bool ChaosInjector::should_force_shed() {
  double prob;
  {
    const std::scoped_lock lock(mutex_);
    prob = plan_.shed_prob;
  }
  if (!roll(kShed, prob)) return false;
  forced_sheds_.fetch_add(1, std::memory_order_relaxed);
  HMCS_OBS_COUNTER_INC("serve.chaos.forced_sheds");
  return true;
}

double ChaosInjector::eval_delay_ms() {
  double prob;
  double delay;
  {
    const std::scoped_lock lock(mutex_);
    prob = plan_.eval_delay_prob;
    delay = plan_.eval_delay_ms;
  }
  if (delay <= 0.0 || !roll(kEvalDelay, prob)) return 0.0;
  eval_delays_.fetch_add(1, std::memory_order_relaxed);
  HMCS_OBS_COUNTER_INC("serve.chaos.eval_delays");
  return delay;
}

bool ChaosInjector::should_fail_eval() {
  double prob;
  {
    const std::scoped_lock lock(mutex_);
    prob = plan_.eval_error_prob;
  }
  if (!roll(kEvalError, prob)) return false;
  eval_errors_.fetch_add(1, std::memory_order_relaxed);
  HMCS_OBS_COUNTER_INC("serve.chaos.eval_errors");
  return true;
}

bool ChaosInjector::should_fail_snapshot() {
  double prob;
  {
    const std::scoped_lock lock(mutex_);
    prob = plan_.snapshot_fail_prob;
  }
  if (!roll(kSnapshot, prob)) return false;
  snapshot_failures_.fetch_add(1, std::memory_order_relaxed);
  HMCS_OBS_COUNTER_INC("serve.chaos.snapshot_failures");
  return true;
}

ChaosInjector::Counters ChaosInjector::counters() const {
  Counters counters;
  counters.forced_sheds = forced_sheds_.load(std::memory_order_relaxed);
  counters.eval_delays = eval_delays_.load(std::memory_order_relaxed);
  counters.eval_errors = eval_errors_.load(std::memory_order_relaxed);
  counters.snapshot_failures =
      snapshot_failures_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace hmcs::serve
