#include "hmcs/serve/access_log.hpp"

#include <bit>
#include <chrono>
#include <utility>

#include "hmcs/util/error.hpp"

namespace hmcs::serve {

AccessLog::AccessLog(const Options& options) {
  std::size_t capacity = options.capacity < 8 ? 8 : options.capacity;
  capacity = std::bit_ceil(capacity);
  ring_ = std::vector<Cell>(capacity);
  mask_ = capacity - 1;
  for (std::size_t i = 0; i < capacity; ++i) {
    ring_[i].sequence.store(i, std::memory_order_relaxed);
  }

  out_.open(options.path, std::ios::out | std::ios::app);
  require(out_.is_open(),
          "serve access log: cannot open '" + options.path + "'");

  const unsigned interval =
      options.flush_interval_ms == 0 ? 1 : options.flush_interval_ms;
  writer_ = std::thread([this, interval] {
    while (true) {
      {
        std::unique_lock lock(wake_mutex_);
        wake_cv_.wait_for(lock, std::chrono::milliseconds(interval), [this] {
          return stopping_.load(std::memory_order_acquire);
        });
      }
      writer_loop();
      if (stopping_.load(std::memory_order_acquire)) {
        writer_loop();  // final drain: appends racing stop are rare, small
        return;
      }
    }
  });
}

AccessLog::~AccessLog() {
  stopping_.store(true, std::memory_order_release);
  wake_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

bool AccessLog::try_append(std::string line) {
  std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = ring_[pos & mask_];
    const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
    const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                               static_cast<std::intptr_t>(pos);
    if (diff == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.line = std::move(line);
        cell.sequence.store(pos + 1, std::memory_order_release);
        appended_.fetch_add(1, std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      // The consumer has not freed this slot yet: ring full. Shed.
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

void AccessLog::writer_loop() {
  bool wrote = false;
  for (;;) {
    const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = ring_[pos & mask_];
    const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) !=
        static_cast<std::intptr_t>(pos) + 1) {
      break;  // ring empty (or producer mid-publish; next tick gets it)
    }
    out_ << cell.line << '\n';
    cell.line.clear();
    cell.line.shrink_to_fit();
    // Free the slot for the producer one lap ahead.
    cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    wrote = true;
    written_.fetch_add(1, std::memory_order_release);
  }
  if (wrote) out_.flush();
}

void AccessLog::flush() {
  const std::uint64_t target = appended_.load(std::memory_order_acquire);
  wake_cv_.notify_all();
  while (written_.load(std::memory_order_acquire) < target &&
         !stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

AccessLog::Stats AccessLog::stats() const {
  Stats s;
  s.appended = appended_.load(std::memory_order_relaxed);
  s.written = written_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hmcs::serve
