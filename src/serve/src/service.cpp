#include "hmcs/serve/service.hpp"

#include <cmath>
#include <cstdio>
#include <exception>
#include <thread>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/obs/prometheus.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace hmcs::serve {

namespace {

/// Journal-style number spelling: finite doubles as %.17g (exact
/// round-trip, the byte-identity contract), non-finite as the strings
/// "nan"/"inf"/"-inf" (JSON has no spelling for them).
void write_number(JsonWriter& json, const char* key, double value) {
  json.key(key);
  if (std::isnan(value)) {
    json.value("nan");
  } else if (std::isinf(value)) {
    json.value(value > 0.0 ? "inf" : "-inf");
  } else {
    json.value(value);
  }
}

/// Splices the caller's id into a stored (id-free) body. The body is
/// the cached unit, so cold and warm replies to the same request line
/// are byte-identical including the id.
std::string with_id(const std::string& id_json, const std::string& body) {
  if (id_json.empty()) return body;
  return "{\"id\":" + id_json + "," + body.substr(1);
}

std::string ok_body(const ServeRequest& request,
                    const runner::PointResult& result) {
  JsonWriter json;
  json.begin_object();
  json.key("status").value("ok");
  json.key("backend").value(request.backend_kind);
  json.key("key").value(key_hash_hex(request.key_hash));
  json.key("result").begin_object();
  write_number(json, "mean_latency_us", result.mean_latency_us);
  write_number(json, "ci_half_us", result.ci_half_us);
  write_number(json, "lambda_offered", result.lambda_offered);
  write_number(json, "lambda_effective", result.lambda_effective);
  json.key("converged").value(result.converged);
  write_number(json, "effective_rate_per_us", result.effective_rate_per_us);
  json.key("messages_measured")
      .value(std::to_string(result.messages_measured));
  write_number(json, "mean_switch_hops", result.mean_switch_hops);
  write_number(json, "max_switch_utilization", result.max_switch_utilization);
  write_number(json, "max_center_utilization",
               result.max_center_utilization);
  json.end_object();
  json.end_object();
  return json.str();
}

std::string status_body(const char* status, const std::string& message,
                        const ServeRequest* request) {
  JsonWriter json;
  json.begin_object();
  json.key("status").value(status);
  if (request != nullptr) {
    json.key("backend").value(request->backend_kind);
    json.key("key").value(key_hash_hex(request->key_hash));
  }
  json.key("error").value(message);
  json.end_object();
  return json.str();
}

/// "r<seq>": the process-unique request tag shared by the reply
/// timing, the access log, and trace span names. (Built with += —
/// gcc 12's -Wrestrict misfires on `"r" + std::to_string(...)`.)
std::string trace_tag(std::uint64_t seq) {
  std::string tag = "r";
  tag += std::to_string(seq);
  return tag;
}

obs::RedWindow::Options red_options(unsigned window_seconds) {
  obs::RedWindow::Options options;
  options.window_seconds = window_seconds == 0 ? 1 : window_seconds;
  return options;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return ns > 0 ? static_cast<std::uint64_t>(ns) : 0;
}

}  // namespace

ServeService::ServeService(const Options& options)
    : options_(options),
      cache_(options.cache),
      chaos_(options.chaos ? options.chaos
                           : std::make_shared<ChaosInjector>()),
      red_(red_options(options.red_window_seconds)),
      started_(std::chrono::steady_clock::now()) {}

std::chrono::steady_clock::time_point ServeService::add_stage(
    RequestTrace& trace, const char* name,
    std::chrono::steady_clock::time_point begin) const {
  const auto now = std::chrono::steady_clock::now();
  if (trace.stage_count < RequestTrace::kMaxStages) {
    RequestTrace::Stage& stage = trace.stages[trace.stage_count++];
    stage.name = name;
    stage.start_ns = elapsed_ns(trace.start, begin);
    stage.duration_ns = elapsed_ns(begin, now);
  }
  return now;
}

std::string ServeService::handle_line(std::string_view line) {
  HMCS_OBS_COUNTER_INC("serve.requests.received");
  HMCS_OBS_TIMER_SCOPE("serve.request.wall_time");
  requests_.fetch_add(1, std::memory_order_relaxed);

  RequestTrace trace;
  trace.start = std::chrono::steady_clock::now();
  trace.seq = sequence_.fetch_add(1, std::memory_order_relaxed);
  if (options_.trace) trace.trace_start_us = options_.trace->wall_now_us();

  std::string id_json;
  try {
    const JsonValue doc = parse_json(line);
    if (doc.is_object()) {
      // Pull the id out before full validation so even a rejected
      // request gets a correlatable error reply.
      if (const JsonValue* id = doc.find("id")) {
        JsonWriter json;
        if (id->is_string()) {
          json.value(id->as_string());
          id_json = json.str();
        } else if (id->is_number()) {
          json.value(id->as_number());
          id_json = json.str();
        }
      }
      if (const JsonValue* op = doc.find("op")) {
        // Admin ops are not traced or access-logged: a dashboard
        // polling `stats` once a second must not pollute the very
        // latency distribution it reports.
        return handle_op(op->as_string(), doc, id_json);
      }
    }
    const ServeRequest request = parse_request(doc, options_.load);
    add_stage(trace, "parse", trace.start);
    trace.id_json = request.id_json;
    trace.key_hex = key_hash_hex(request.key_hash);
    trace.backend = request.backend_kind;

    const std::string body = handle_request_body(request, trace);
    const std::uint64_t total_ns =
        elapsed_ns(trace.start, std::chrono::steady_clock::now());
    std::string reply = compose_reply(request, trace, body, total_ns);
    finish(trace, total_ns);
    return reply;
  } catch (const hmcs::Error& error) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.bad_request");
    trace.outcome = "error";
    trace.error = true;
    trace.id_json = id_json;
    const std::uint64_t total_ns =
        elapsed_ns(trace.start, std::chrono::steady_clock::now());
    finish(trace, total_ns);
    return with_id(id_json, status_body("error", error.what(), nullptr));
  }
}

std::string ServeService::handle_op(const std::string& op,
                                    const JsonValue& doc,
                                    const std::string& id_json) {
  if (op == "ping") {
    JsonWriter json;
    json.begin_object();
    json.key("status").value("ok");
    json.key("op").value("ping");
    json.end_object();
    return with_id(id_json, json.str());
  }
  if (op == "stats") return stats_reply(id_json);
  if (op == "metrics") return metrics_reply(id_json);
  if (op == "chaos") {
    // {"op":"chaos"} reports; {"op":"chaos","plan":{...}} installs the
    // plan first (an all-zero plan disables injection).
    if (const JsonValue* plan = doc.find("plan")) {
      chaos_->set_plan(fault_plan_from_json(*plan));
    }
    return chaos_reply(id_json);
  }
  detail::throw_config_error("serve: unknown op '" + op +
                                 "' (expected ping|stats|metrics|chaos)",
                             std::source_location::current());
}

std::string ServeService::chaos_reply(const std::string& id_json) const {
  const ChaosInjector::Counters counters = chaos_->counters();
  JsonWriter json;
  json.begin_object();
  json.key("status").value("ok");
  json.key("op").value("chaos");
  json.key("plan");
  write_json(json, chaos_->plan());
  json.key("counters").begin_object();
  json.key("forced_sheds").value(counters.forced_sheds);
  json.key("eval_delays").value(counters.eval_delays);
  json.key("eval_errors").value(counters.eval_errors);
  json.key("snapshot_failures").value(counters.snapshot_failures);
  json.end_object();
  json.end_object();
  return with_id(id_json, json.str());
}

std::string ServeService::metrics_reply(const std::string& id_json) const {
  JsonWriter json;
  json.begin_object();
  json.key("status").value("ok");
  json.key("op").value("metrics");
  json.key("content_type").value("text/plain; version=0.0.4");
  json.key("body").value(
      obs::render_prometheus(obs::Registry::global()));
  json.end_object();
  return with_id(id_json, json.str());
}

std::string ServeService::stats_reply(const std::string& id_json) const {
  const Counters counters = this->counters();
  const ShardedResultCache::Stats cache = cache_.stats();
  const obs::RedWindow::Summary red = red_.summarize();
  const obs::HdrSnapshot latency = latency_.snapshot();
  const auto ns_to_us = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1000.0;
  };

  JsonWriter json;
  json.begin_object();
  json.key("status").value("ok");
  json.key("op").value("stats");
  json.key("serve").begin_object();
  json.key("requests").value(counters.requests);
  json.key("ok").value(counters.ok);
  json.key("errors").value(counters.errors);
  json.key("timed_out").value(counters.timed_out);
  json.key("bad_requests").value(counters.bad_requests);
  json.key("coalesced").value(counters.coalesced);
  json.key("evaluations").value(counters.evaluations);
  json.key("shed").value(counters.shed);
  json.end_object();
  json.key("cache").begin_object();
  json.key("hits").value(cache.hits);
  json.key("misses").value(cache.misses);
  json.key("insertions").value(cache.insertions);
  json.key("evictions").value(cache.evictions);
  json.key("entries").value(static_cast<std::uint64_t>(cache.entries));
  json.key("shard_entries").begin_array();
  for (const std::size_t entries : cache.shard_entries) {
    json.value(static_cast<std::uint64_t>(entries));
  }
  json.end_array();
  json.end_object();
  json.key("red").begin_object();
  json.key("window_s").value(red.window_s);
  json.key("requests").value(red.requests);
  json.key("errors").value(red.errors);
  json.key("rate_per_s").value(red.rate_per_s);
  json.key("error_rate").value(red.error_rate);
  json.key("p50_us").value(ns_to_us(red.p50_ns));
  json.key("p90_us").value(ns_to_us(red.p90_ns));
  json.key("p99_us").value(ns_to_us(red.p99_ns));
  json.key("p999_us").value(ns_to_us(red.p999_ns));
  json.key("max_us").value(ns_to_us(red.max_ns));
  json.key("dropped").value(red_.dropped());
  json.end_object();
  json.key("latency").begin_object();
  json.key("count").value(latency.total);
  json.key("p50_us").value(ns_to_us(latency.quantile(0.50)));
  json.key("p90_us").value(ns_to_us(latency.quantile(0.90)));
  json.key("p99_us").value(ns_to_us(latency.quantile(0.99)));
  json.key("p999_us").value(ns_to_us(latency.quantile(0.999)));
  json.key("max_us").value(ns_to_us(latency.max_value()));
  json.end_object();
  const PoolStatus pool = pool_status_ ? pool_status_() : PoolStatus{};
  json.key("pool").begin_object();
  json.key("queued").value(static_cast<std::uint64_t>(pool.queued));
  json.key("queue_limit").value(static_cast<std::uint64_t>(pool.queue_limit));
  json.key("threads").value(static_cast<std::uint64_t>(pool.threads));
  json.end_object();
  json.key("inflight_keys")
      .value(static_cast<std::uint64_t>(flights_.in_flight()));
  if (options_.access_log) {
    const AccessLog::Stats log = options_.access_log->stats();
    json.key("access_log").begin_object();
    json.key("appended").value(log.appended);
    json.key("written").value(log.written);
    json.key("shed").value(log.shed);
    json.end_object();
  }
  json.key("uptime_s").value(
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - started_)
          .count());
  json.end_object();
  return with_id(id_json, json.str());
}

std::string ServeService::handle_request_body(const ServeRequest& request,
                                              RequestTrace& trace) {
  if (chaos_->should_force_shed()) {
    // The chaos shed takes the normal pipeline exit (RED, access log,
    // histogram) rather than the server's queue-refusal fast path, so
    // it is indistinguishable from real overload to the client.
    shed_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.shed");
    trace.outcome = "shed";
    trace.error = true;
    return shed_reply();
  }
  if (request.no_cache) {
    trace.outcome = "miss";
    return evaluate(request, trace).body;
  }
  const auto probe_begin = std::chrono::steady_clock::now();
  auto hit = cache_.get(request.key_hash, request.canonical_key);
  add_stage(trace, "cache_probe", probe_begin);
  if (hit) {
    HMCS_OBS_COUNTER_INC("serve.cache.hits");
    trace.outcome = "hit";
    return *hit;
  }
  HMCS_OBS_COUNTER_INC("serve.cache.misses");

  auto [flight, leader] = flights_.join(request.canonical_key);
  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.coalesced");
    const auto wait_begin = std::chrono::steady_clock::now();
    std::string body = SingleFlight::wait(flight);
    add_stage(trace, "coalesce_wait", wait_begin);
    trace.outcome = "coalesced";
    return body;
  }

  trace.outcome = "miss";
  EvalOutcome outcome;
  try {
    outcome = evaluate(request, trace);
  } catch (...) {
    // evaluate() converts all failures to bodies; this path exists so
    // an unexpected throw can never strand the followers.
    flights_.complete(request.canonical_key, flight,
                      status_body("error", "internal error", &request));
    throw;
  }
  if (outcome.cacheable) {
    // Publish to the cache before retiring the flight: a request that
    // arrives after the flight is gone must find the cached body.
    cache_.put(request.key_hash, request.canonical_key, outcome.body);
  }
  flights_.complete(request.canonical_key, flight, outcome.body);
  return outcome.body;
}

ServeService::EvalOutcome ServeService::evaluate(const ServeRequest& request,
                                                 RequestTrace& trace) {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  HMCS_OBS_COUNTER_INC("serve.backend.evaluations");
  HMCS_OBS_TIMER_SCOPE("serve.backend.eval_time");

  util::CancelToken token(options_.hard_cancel);
  const double budget = request.deadline_ms > 0.0
                            ? request.deadline_ms
                            : options_.default_deadline_ms;
  token.set_deadline_after_ms(budget);

  // The request number rides along in the point label, so backend spans
  // and journal labels correlate with the access log and reply timing.
  const std::string label =
      "serve " + request.backend_kind + " " + trace_tag(trace.seq);
  runner::PointContext ctx;
  ctx.index = static_cast<std::size_t>(trace.seq);
  ctx.seed = request.seed;
  ctx.label = label;
  ctx.trace = options_.trace;
  ctx.cancel = &token;

  const auto eval_begin = std::chrono::steady_clock::now();
  try {
    const double injected_delay_ms = chaos_->eval_delay_ms();
    if (injected_delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(injected_delay_ms));
    }
    if (chaos_->should_fail_eval()) {
      throw hmcs::Error("chaos: injected evaluate failure");
    }
    // A deadline that expired while the request sat in the queue must
    // yield timed_out even when the backend finishes too quickly to
    // poll the token (analytic solves are microseconds).
    token.check("serve");
    const runner::PointResult result =
        request.tree != nullptr
            ? request.backend->predict_tree(*request.tree, ctx)
            : request.backend->predict(request.config, ctx);
    ok_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.ok");
    const auto serialize_begin = add_stage(trace, "evaluate", eval_begin);
    std::string body = ok_body(request, result);
    add_stage(trace, "serialize", serialize_begin);
    return {std::move(body), true};
  } catch (const hmcs::DeadlineExceeded& error) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.timed_out");
    trace.outcome = "deadline";
    trace.error = true;
    const auto serialize_begin = add_stage(trace, "evaluate", eval_begin);
    std::string body = status_body("timed_out", error.what(), &request);
    add_stage(trace, "serialize", serialize_begin);
    return {std::move(body), false};
  } catch (const hmcs::Cancelled& error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.cancelled");
    trace.outcome = "error";
    trace.error = true;
    const auto serialize_begin = add_stage(trace, "evaluate", eval_begin);
    std::string body = status_body("cancelled", error.what(), &request);
    add_stage(trace, "serialize", serialize_begin);
    return {std::move(body), false};
  } catch (const std::exception& error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.error");
    trace.outcome = "error";
    trace.error = true;
    const auto serialize_begin = add_stage(trace, "evaluate", eval_begin);
    std::string body = status_body("error", error.what(), &request);
    add_stage(trace, "serialize", serialize_begin);
    return {std::move(body), false};
  }
}

std::string ServeService::compose_reply(const ServeRequest& request,
                                        const RequestTrace& trace,
                                        const std::string& body,
                                        std::uint64_t total_ns) const {
  if (!request.timing) return with_id(trace.id_json, body);
  JsonWriter json;
  json.begin_object();
  json.key("trace").value(trace_tag(trace.seq));
  json.key("total_ns").value(total_ns);
  for (std::size_t i = 0; i < trace.stage_count; ++i) {
    json.key(std::string(trace.stages[i].name) + "_ns")
        .value(trace.stages[i].duration_ns);
  }
  json.end_object();
  std::string prefix = "{";
  if (!trace.id_json.empty()) prefix += "\"id\":" + trace.id_json + ",";
  prefix += "\"timing\":" + json.str() + ",";
  return prefix + body.substr(1);
}

std::string ServeService::access_line(const RequestTrace& trace,
                                      std::uint64_t total_ns) const {
  char head[48];
  const double ts_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::snprintf(head, sizeof head, "{\"ts_ms\":%.3f", ts_ms);
  std::string line = head;
  line += ",\"trace\":\"" + trace_tag(trace.seq) + "\"";
  if (!trace.id_json.empty()) line += ",\"id\":" + trace.id_json;
  line += ",\"outcome\":\"";
  line += trace.outcome;
  line += '"';
  if (!trace.key_hex.empty()) line += ",\"key\":\"" + trace.key_hex + "\"";
  if (!trace.backend.empty()) {
    line += ",\"backend\":\"" + trace.backend + "\"";
  }
  for (std::size_t i = 0; i < trace.stage_count; ++i) {
    line += ",\"";
    line += trace.stages[i].name;
    line += "_ns\":" + std::to_string(trace.stages[i].duration_ns);
  }
  line += ",\"total_ns\":" + std::to_string(total_ns) + "}";
  return line;
}

void ServeService::finish(const RequestTrace& trace, std::uint64_t total_ns) {
  red_.record(total_ns, trace.error);
  latency_.record(total_ns);
  if (options_.trace) {
    options_.trace->complete("req " + trace_tag(trace.seq),
                             "serve.request", trace.trace_start_us,
                             static_cast<double>(total_ns) / 1000.0);
    for (std::size_t i = 0; i < trace.stage_count; ++i) {
      const RequestTrace::Stage& stage = trace.stages[i];
      options_.trace->complete(
          stage.name, "serve.stage",
          trace.trace_start_us +
              static_cast<double>(stage.start_ns) / 1000.0,
          static_cast<double>(stage.duration_ns) / 1000.0);
    }
  }
  if (options_.access_log) {
    options_.access_log->try_append(access_line(trace, total_ns));
  }
}

std::string ServeService::shed_reply() {
  return R"({"status":"shed","error":"server overloaded: request queue full"})";
}

void ServeService::note_shed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
  HMCS_OBS_COUNTER_INC("serve.requests.shed");
  if (options_.access_log) {
    const std::uint64_t seq =
        sequence_.fetch_add(1, std::memory_order_relaxed);
    RequestTrace trace;
    trace.seq = seq;
    trace.outcome = "shed";
    options_.access_log->try_append(access_line(trace, 0));
  }
}

ServeService::Counters ServeService::counters() const {
  Counters counters;
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.ok = ok_.load(std::memory_order_relaxed);
  counters.errors = errors_.load(std::memory_order_relaxed);
  counters.timed_out = timed_out_.load(std::memory_order_relaxed);
  counters.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  counters.coalesced = coalesced_.load(std::memory_order_relaxed);
  counters.evaluations = evaluations_.load(std::memory_order_relaxed);
  counters.shed = shed_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace hmcs::serve
