#include "hmcs/serve/service.hpp"

#include <cmath>
#include <exception>

#include "hmcs/obs/metrics.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace hmcs::serve {

namespace {

/// Journal-style number spelling: finite doubles as %.17g (exact
/// round-trip, the byte-identity contract), non-finite as the strings
/// "nan"/"inf"/"-inf" (JSON has no spelling for them).
void write_number(JsonWriter& json, const char* key, double value) {
  json.key(key);
  if (std::isnan(value)) {
    json.value("nan");
  } else if (std::isinf(value)) {
    json.value(value > 0.0 ? "inf" : "-inf");
  } else {
    json.value(value);
  }
}

/// Splices the caller's id into a stored (id-free) body. The body is
/// the cached unit, so cold and warm replies to the same request line
/// are byte-identical including the id.
std::string with_id(const std::string& id_json, const std::string& body) {
  if (id_json.empty()) return body;
  return "{\"id\":" + id_json + "," + body.substr(1);
}

std::string ok_body(const ServeRequest& request,
                    const runner::PointResult& result) {
  JsonWriter json;
  json.begin_object();
  json.key("status").value("ok");
  json.key("backend").value(request.backend_kind);
  json.key("key").value(key_hash_hex(request.key_hash));
  json.key("result").begin_object();
  write_number(json, "mean_latency_us", result.mean_latency_us);
  write_number(json, "ci_half_us", result.ci_half_us);
  write_number(json, "lambda_offered", result.lambda_offered);
  write_number(json, "lambda_effective", result.lambda_effective);
  json.key("converged").value(result.converged);
  write_number(json, "effective_rate_per_us", result.effective_rate_per_us);
  json.key("messages_measured")
      .value(std::to_string(result.messages_measured));
  write_number(json, "mean_switch_hops", result.mean_switch_hops);
  write_number(json, "max_switch_utilization", result.max_switch_utilization);
  write_number(json, "max_center_utilization",
               result.max_center_utilization);
  json.end_object();
  json.end_object();
  return json.str();
}

std::string status_body(const char* status, const std::string& message,
                        const ServeRequest* request) {
  JsonWriter json;
  json.begin_object();
  json.key("status").value(status);
  if (request != nullptr) {
    json.key("backend").value(request->backend_kind);
    json.key("key").value(key_hash_hex(request->key_hash));
  }
  json.key("error").value(message);
  json.end_object();
  return json.str();
}

}  // namespace

ServeService::ServeService(const Options& options)
    : options_(options), cache_(options.cache) {}

std::string ServeService::handle_line(std::string_view line) {
  HMCS_OBS_COUNTER_INC("serve.requests.received");
  HMCS_OBS_TIMER_SCOPE("serve.request.wall_time");
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string id_json;
  try {
    const JsonValue doc = parse_json(line);
    if (doc.is_object()) {
      // Pull the id out before full validation so even a rejected
      // request gets a correlatable error reply.
      if (const JsonValue* id = doc.find("id")) {
        JsonWriter json;
        if (id->is_string()) {
          json.value(id->as_string());
          id_json = json.str();
        } else if (id->is_number()) {
          json.value(id->as_number());
          id_json = json.str();
        }
      }
      if (const JsonValue* op = doc.find("op")) {
        return handle_op(op->as_string(), id_json);
      }
    }
    const ServeRequest request = parse_request(doc, options_.load);
    return handle_request(request);
  } catch (const hmcs::Error& error) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.bad_request");
    return with_id(id_json, status_body("error", error.what(), nullptr));
  }
}

std::string ServeService::handle_op(const std::string& op,
                                    const std::string& id_json) {
  if (op == "ping") {
    JsonWriter json;
    json.begin_object();
    json.key("status").value("ok");
    json.key("op").value("ping");
    json.end_object();
    return with_id(id_json, json.str());
  }
  if (op == "stats") {
    const Counters counters = this->counters();
    const ShardedResultCache::Stats cache = cache_.stats();
    JsonWriter json;
    json.begin_object();
    json.key("status").value("ok");
    json.key("op").value("stats");
    json.key("serve").begin_object();
    json.key("requests").value(counters.requests);
    json.key("ok").value(counters.ok);
    json.key("errors").value(counters.errors);
    json.key("timed_out").value(counters.timed_out);
    json.key("bad_requests").value(counters.bad_requests);
    json.key("coalesced").value(counters.coalesced);
    json.key("evaluations").value(counters.evaluations);
    json.key("shed").value(counters.shed);
    json.end_object();
    json.key("cache").begin_object();
    json.key("hits").value(cache.hits);
    json.key("misses").value(cache.misses);
    json.key("insertions").value(cache.insertions);
    json.key("evictions").value(cache.evictions);
    json.key("entries").value(static_cast<std::uint64_t>(cache.entries));
    json.end_object();
    json.end_object();
    return with_id(id_json, json.str());
  }
  detail::throw_config_error("serve: unknown op '" + op +
                                 "' (expected ping|stats)",
                             std::source_location::current());
}

std::string ServeService::handle_request(const ServeRequest& request) {
  if (request.no_cache) {
    return with_id(request.id_json, evaluate(request).body);
  }
  if (auto hit = cache_.get(request.key_hash, request.canonical_key)) {
    HMCS_OBS_COUNTER_INC("serve.cache.hits");
    return with_id(request.id_json, *hit);
  }
  HMCS_OBS_COUNTER_INC("serve.cache.misses");

  auto [flight, leader] = flights_.join(request.canonical_key);
  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.coalesced");
    return with_id(request.id_json, SingleFlight::wait(flight));
  }

  EvalOutcome outcome;
  try {
    outcome = evaluate(request);
  } catch (...) {
    // evaluate() converts all failures to bodies; this path exists so
    // an unexpected throw can never strand the followers.
    flights_.complete(request.canonical_key, flight,
                      status_body("error", "internal error", &request));
    throw;
  }
  if (outcome.cacheable) {
    // Publish to the cache before retiring the flight: a request that
    // arrives after the flight is gone must find the cached body.
    cache_.put(request.key_hash, request.canonical_key, outcome.body);
  }
  flights_.complete(request.canonical_key, flight, outcome.body);
  return with_id(request.id_json, outcome.body);
}

ServeService::EvalOutcome ServeService::evaluate(const ServeRequest& request) {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  HMCS_OBS_COUNTER_INC("serve.backend.evaluations");
  HMCS_OBS_TIMER_SCOPE("serve.backend.eval_time");
  obs::WallClockSpan span(options_.trace.get(),
                          "serve " + request.backend_kind, "serve");

  util::CancelToken token(options_.hard_cancel);
  const double budget = request.deadline_ms > 0.0
                            ? request.deadline_ms
                            : options_.default_deadline_ms;
  token.set_deadline_after_ms(budget);

  runner::PointContext ctx;
  ctx.index = static_cast<std::size_t>(
      sequence_.fetch_add(1, std::memory_order_relaxed));
  ctx.seed = request.seed;
  ctx.label = "serve " + request.backend_kind;
  ctx.trace = options_.trace;
  ctx.cancel = &token;

  try {
    // A deadline that expired while the request sat in the queue must
    // yield timed_out even when the backend finishes too quickly to
    // poll the token (analytic solves are microseconds).
    token.check("serve");
    const runner::PointResult result =
        request.backend->predict(request.config, ctx);
    ok_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.ok");
    return {ok_body(request, result), true};
  } catch (const hmcs::DeadlineExceeded& error) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.timed_out");
    return {status_body("timed_out", error.what(), &request), false};
  } catch (const hmcs::Cancelled& error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.cancelled");
    return {status_body("cancelled", error.what(), &request), false};
  } catch (const std::exception& error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    HMCS_OBS_COUNTER_INC("serve.requests.error");
    return {status_body("error", error.what(), &request), false};
  }
}

std::string ServeService::shed_reply() {
  return R"({"status":"shed","error":"server overloaded: request queue full"})";
}

void ServeService::note_shed() {
  shed_.fetch_add(1, std::memory_order_relaxed);
  HMCS_OBS_COUNTER_INC("serve.requests.shed");
}

ServeService::Counters ServeService::counters() const {
  Counters counters;
  counters.requests = requests_.load(std::memory_order_relaxed);
  counters.ok = ok_.load(std::memory_order_relaxed);
  counters.errors = errors_.load(std::memory_order_relaxed);
  counters.timed_out = timed_out_.load(std::memory_order_relaxed);
  counters.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  counters.coalesced = coalesced_.load(std::memory_order_relaxed);
  counters.evaluations = evaluations_.load(std::memory_order_relaxed);
  counters.shed = shed_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace hmcs::serve
