#pragma once

/// \file request.hpp
/// Parsing and canonicalisation of one hmcs_serve query. The wire
/// format is one JSON object per line (docs/SERVING.md):
///
///   {"id": "r-17",                       // optional echo tag
///    "backend": {"type": "analytic", "model": "mva"},   // sweep schema
///    "config": {"clusters": 8,
///               "total_nodes": 256,      // or "nodes_per_cluster"
///               "architecture": "non-blocking",
///               "technology": "case1",   // sweep technology entry
///               "message_bytes": 1024,
///               "lambda_per_s": 250,
///               "switch_ports": 24, "switch_latency_us": 10},
///    "seed": "3",                        // u64 as string or number
///    "deadline_ms": 500,                 // 0/absent = server default
///    "no_cache": false}
///
/// "config" may instead be a nested topology document (a "tree" member;
/// docs/COMPOSITION.md) — tree requests that describe the flat
/// two-stage shape are lowered to the SystemConfig they denote, so the
/// nested and flat spellings of one system share a canonical key.
///
/// The canonical cache key is rendered from the *built* SystemConfig
/// (via analytic::write_json, stable declaration-order keys) plus the
/// normalised backend options — so member order, "case1" vs the
/// equivalent explicit technology object, and omitted-vs-explicit
/// defaults all map to one key. Genuinely nested trees render through
/// the canonical recursive writer instead. The seed participates only
/// for stochastic backends (des/fabric); the analytic model ignores it.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "hmcs/analytic/model_tree.hpp"
#include "hmcs/analytic/system_config.hpp"
#include "hmcs/runner/backend.hpp"
#include "hmcs/runner/sweep_config.hpp"
#include "hmcs/util/json.hpp"

namespace hmcs::serve {

struct ServeRequest {
  /// The "id" member re-rendered as a JSON value ("\"r-17\"" or "17");
  /// empty when the request carried none. Spliced verbatim into the
  /// reply so clients can correlate out-of-order replies.
  std::string id_json;

  std::string backend_kind;  ///< analytic|des|fabric
  std::shared_ptr<runner::Backend> backend;
  analytic::SystemConfig config;
  /// Set only for genuinely nested tree requests (flat-shaped trees are
  /// lowered into `config` at parse time); evaluated through
  /// Backend::predict_tree.
  std::shared_ptr<const analytic::ModelTree> tree;
  std::uint64_t seed = 1;
  double deadline_ms = 0.0;  ///< 0 = use the server default
  bool no_cache = false;
  /// When true the reply carries a "timing" member with the per-stage
  /// breakdown (docs/SERVING.md). Not part of the canonical key: the
  /// cached body never contains timing, it is spliced per reply.
  bool timing = false;

  std::string canonical_key;     ///< full canonical JSON key document
  std::uint64_t key_hash = 0;    ///< FNV-1a 64 of canonical_key
};

/// Parses one already-parsed request document. Throws hmcs::ConfigError
/// on unknown members, missing required fields, or invalid values.
/// `load` carries execution-time backend knobs (obs sampling), which do
/// not participate in the canonical key.
ServeRequest parse_request(const JsonValue& doc,
                           const runner::SweepLoadOptions& load = {});

/// FNV-1a 64-bit over `text` (the cache's shard/key hash).
std::uint64_t fnv1a64(std::string_view text);

/// 16-digit lowercase hex rendering of a key hash (reply "key" field).
std::string key_hash_hex(std::uint64_t hash);

}  // namespace hmcs::serve
