#pragma once

/// \file service.hpp
/// The transport-independent core of hmcs_serve: one JSON request line
/// in, one JSON reply line out. Owns the sharded result cache and the
/// single-flight table; the TCP server (server.hpp) and the in-process
/// tests/benches drive the same handle_line() entry point.
///
/// Reply envelope (docs/SERVING.md):
///
///   {"id":..., "status":"ok", "backend":"analytic",
///    "key":"<16-hex canonical key hash>",
///    "result":{...journal-style PointResult fields...}}
///
/// plus "error" (bad request or backend failure), "timed_out"
/// (deadline expired), "cancelled", and — written by the server when
/// the bounded queue refuses work — "shed". The cached unit is the
/// body *without* the "id" member: identical configurations produce
/// byte-identical bodies whether answered cold or from cache, and the
/// caller's id is spliced in per reply. A request carrying
/// `"timing": true` additionally gets a "timing" member (also spliced,
/// never cached) with the per-stage breakdown.
///
/// Observability (this PR's tentpole): every request is timed through
/// named stages (parse, cache_probe, coalesce_wait, evaluate,
/// serialize), classified into an outcome ∈ {hit, miss, coalesced,
/// shed, error, deadline}, and fed into (a) a rolling RED window and a
/// lifetime HDR latency histogram served by the `stats` op, (b) the
/// optional TraceSession as a per-request span tree, and (c) the
/// optional structured access log — one JSON line per request, written
/// off-thread, shed-not-block. The `metrics` op renders the global
/// registry as Prometheus text.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "hmcs/obs/hdr_histogram.hpp"
#include "hmcs/obs/red.hpp"
#include "hmcs/obs/trace.hpp"
#include "hmcs/runner/sweep_config.hpp"
#include "hmcs/serve/access_log.hpp"
#include "hmcs/serve/cache.hpp"
#include "hmcs/serve/chaos.hpp"
#include "hmcs/serve/request.hpp"
#include "hmcs/serve/single_flight.hpp"
#include "hmcs/util/cancel.hpp"

namespace hmcs::serve {

class ServeService {
 public:
  struct Options {
    ShardedResultCache::Options cache;
    /// Applied when a request carries no deadline_ms; 0 = no deadline.
    double default_deadline_ms = 0.0;
    /// Execution-time backend knobs (obs sampling); not in cache keys.
    runner::SweepLoadOptions load;
    /// Optional trace session: each request records a span tree (the
    /// request span plus one child per stage), named "req r<seq>".
    std::shared_ptr<obs::TraceSession> trace;
    /// Optional hard-stop parent for in-flight evaluations (a drain
    /// deliberately does NOT cancel them — it waits for the replies).
    const util::CancelToken* hard_cancel = nullptr;
    /// Optional structured access log (one JSON line per request).
    std::shared_ptr<AccessLog> access_log;
    /// Width of the rolling RED window behind the `stats` op.
    unsigned red_window_seconds = 60;
    /// Fault-injection layer (docs/ROBUSTNESS.md). When null the
    /// service creates its own (all-zero plan) so the `chaos` admin op
    /// always works; the daemon passes a shared injector so the
    /// snapshot writer rolls on the same streams.
    std::shared_ptr<ChaosInjector> chaos;
  };

  struct Counters {
    std::uint64_t requests = 0;     ///< lines handled (incl. ops)
    std::uint64_t ok = 0;           ///< evaluations that succeeded
    std::uint64_t errors = 0;       ///< backend/evaluation failures
    std::uint64_t timed_out = 0;    ///< deadline expiries
    std::uint64_t bad_requests = 0; ///< parse/validation rejections
    std::uint64_t coalesced = 0;    ///< followers served by a leader
    std::uint64_t evaluations = 0;  ///< backend predict() calls
    std::uint64_t shed = 0;         ///< refused by the bounded queue
  };

  /// Live queue depth reported by the `stats` op; the owning server
  /// installs the callback (the service itself has no pool).
  struct PoolStatus {
    std::size_t queued = 0;
    std::size_t queue_limit = 0;
    std::size_t threads = 0;
  };

  explicit ServeService(const Options& options);

  /// Handles one request line and returns the reply line (no trailing
  /// newline). Never throws: every failure becomes an error reply.
  std::string handle_line(std::string_view line);

  /// The canned overload reply; the server writes it (and calls
  /// note_shed()) when the bounded queue refuses a request.
  static std::string shed_reply();
  void note_shed();

  void set_pool_status_fn(std::function<PoolStatus()> fn) {
    pool_status_ = std::move(fn);
  }

  Counters counters() const;
  ShardedResultCache::Stats cache_stats() const { return cache_.stats(); }
  const ShardedResultCache& cache() const { return cache_; }
  /// Mutable access for the daemon's snapshot reload at startup.
  ShardedResultCache& cache() { return cache_; }
  ChaosInjector& chaos() { return *chaos_; }
  /// RED summary over the trailing window (the `stats` op's "red").
  obs::RedWindow::Summary red_summary() const { return red_.summarize(); }
  /// Lifetime request-latency histogram (the `stats` op's "latency").
  const obs::HdrHistogram& latency_histogram() const { return latency_; }

 private:
  struct EvalOutcome {
    std::string body;
    bool cacheable = false;  ///< only "ok" bodies are cached
  };

  /// Per-request measurement context threaded through the pipeline.
  struct RequestTrace {
    static constexpr std::size_t kMaxStages = 5;
    struct Stage {
      const char* name = nullptr;
      std::uint64_t start_ns = 0;  ///< offset from request start
      std::uint64_t duration_ns = 0;
    };

    std::chrono::steady_clock::time_point start;
    double trace_start_us = 0.0;  ///< TraceSession timestamp base
    std::uint64_t seq = 0;        ///< process-unique request number
    const char* outcome = "error";
    bool error = false;  ///< counts toward the RED error rate
    std::string id_json;
    std::string key_hex;
    std::string backend;
    Stage stages[kMaxStages];
    std::size_t stage_count = 0;
  };

  /// Returns the id-free reply body and classifies trace.outcome.
  std::string handle_request_body(const ServeRequest& request,
                                  RequestTrace& trace);
  std::string handle_op(const std::string& op, const JsonValue& doc,
                        const std::string& id_json);
  std::string chaos_reply(const std::string& id_json) const;
  std::string metrics_reply(const std::string& id_json) const;
  std::string stats_reply(const std::string& id_json) const;
  EvalOutcome evaluate(const ServeRequest& request, RequestTrace& trace);

  /// Records one stage covering [begin, now); returns now.
  std::chrono::steady_clock::time_point add_stage(
      RequestTrace& trace, const char* name,
      std::chrono::steady_clock::time_point begin) const;

  /// RED/histogram/trace/access-log fan-out for one finished request.
  void finish(const RequestTrace& trace, std::uint64_t total_ns);
  std::string access_line(const RequestTrace& trace,
                          std::uint64_t total_ns) const;
  /// Splices id and (optionally) the timing breakdown into a stored
  /// id-free body.
  std::string compose_reply(const ServeRequest& request,
                            const RequestTrace& trace,
                            const std::string& body,
                            std::uint64_t total_ns) const;

  Options options_;
  ShardedResultCache cache_;
  std::shared_ptr<ChaosInjector> chaos_;
  SingleFlight flights_;
  obs::RedWindow red_;
  obs::HdrHistogram latency_;
  std::function<PoolStatus()> pool_status_;
  std::chrono::steady_clock::time_point started_;
  std::atomic<std::uint64_t> sequence_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace hmcs::serve
