#pragma once

/// \file service.hpp
/// The transport-independent core of hmcs_serve: one JSON request line
/// in, one JSON reply line out. Owns the sharded result cache and the
/// single-flight table; the TCP server (server.hpp) and the in-process
/// tests/benches drive the same handle_line() entry point.
///
/// Reply envelope (docs/SERVING.md):
///
///   {"id":..., "status":"ok", "backend":"analytic",
///    "key":"<16-hex canonical key hash>",
///    "result":{...journal-style PointResult fields...}}
///
/// plus "error" (bad request or backend failure), "timed_out"
/// (deadline expired), "cancelled", and — written by the server when
/// the bounded queue refuses work — "shed". The cached unit is the
/// body *without* the "id" member: identical configurations produce
/// byte-identical bodies whether answered cold or from cache, and the
/// caller's id is spliced in per reply.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "hmcs/obs/trace.hpp"
#include "hmcs/runner/sweep_config.hpp"
#include "hmcs/serve/cache.hpp"
#include "hmcs/serve/request.hpp"
#include "hmcs/serve/single_flight.hpp"
#include "hmcs/util/cancel.hpp"

namespace hmcs::serve {

class ServeService {
 public:
  struct Options {
    ShardedResultCache::Options cache;
    /// Applied when a request carries no deadline_ms; 0 = no deadline.
    double default_deadline_ms = 0.0;
    /// Execution-time backend knobs (obs sampling); not in cache keys.
    runner::SweepLoadOptions load;
    /// Optional trace session: each evaluation records a wall-clock
    /// span named after the backend kind.
    std::shared_ptr<obs::TraceSession> trace;
    /// Optional hard-stop parent for in-flight evaluations (a drain
    /// deliberately does NOT cancel them — it waits for the replies).
    const util::CancelToken* hard_cancel = nullptr;
  };

  struct Counters {
    std::uint64_t requests = 0;     ///< lines handled (incl. ops)
    std::uint64_t ok = 0;           ///< evaluations that succeeded
    std::uint64_t errors = 0;       ///< backend/evaluation failures
    std::uint64_t timed_out = 0;    ///< deadline expiries
    std::uint64_t bad_requests = 0; ///< parse/validation rejections
    std::uint64_t coalesced = 0;    ///< followers served by a leader
    std::uint64_t evaluations = 0;  ///< backend predict() calls
    std::uint64_t shed = 0;         ///< refused by the bounded queue
  };

  explicit ServeService(const Options& options);

  /// Handles one request line and returns the reply line (no trailing
  /// newline). Never throws: every failure becomes an error reply.
  std::string handle_line(std::string_view line);

  /// The canned overload reply; the server writes it (and calls
  /// note_shed()) when the bounded queue refuses a request.
  static std::string shed_reply();
  void note_shed();

  Counters counters() const;
  ShardedResultCache::Stats cache_stats() const { return cache_.stats(); }
  const ShardedResultCache& cache() const { return cache_; }

 private:
  struct EvalOutcome {
    std::string body;
    bool cacheable = false;  ///< only "ok" bodies are cached
  };

  std::string handle_request(const ServeRequest& request);
  std::string handle_op(const std::string& op, const std::string& id_json);
  EvalOutcome evaluate(const ServeRequest& request);

  Options options_;
  ShardedResultCache cache_;
  SingleFlight flights_;
  std::atomic<std::uint64_t> sequence_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace hmcs::serve
