#pragma once

/// \file access_log.hpp
/// Structured JSON-lines access log for hmcs_serve: one line per
/// finished request, written by a dedicated consumer thread behind a
/// lock-free bounded MPMC ring (Vyukov's algorithm — per-cell sequence
/// numbers, a CAS to claim a slot, no mutex anywhere on the producer
/// side). When the ring is full the line is *shed* and counted, never
/// blocking the request path: the log is an observability aid, and an
/// observability aid that can stall the service under load would be
/// worse than none.
///
/// Line schema (docs/SERVING.md):
///
///   {"ts_ms":<unix epoch ms>,"trace":"r<seq>","id":...,
///    "outcome":"hit|miss|coalesced|shed|error|deadline",
///    "key":"<16-hex>","backend":"analytic",
///    "parse_ns":...,"cache_probe_ns":...,"coalesce_wait_ns":...,
///    "evaluate_ns":...,"serialize_ns":...,"total_ns":...}
///
/// The service composes the line; this class only moves bytes.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hmcs::serve {

class AccessLog {
 public:
  struct Options {
    std::string path;
    /// Ring capacity in lines; rounded up to a power of two, min 8.
    std::size_t capacity = 4096;
    /// How long the writer sleeps when the ring drains empty.
    unsigned flush_interval_ms = 50;
  };

  struct Stats {
    std::uint64_t appended = 0;  ///< lines accepted into the ring
    std::uint64_t written = 0;   ///< lines flushed to the file
    std::uint64_t shed = 0;      ///< lines dropped on a full ring
  };

  /// Opens `path` for append and starts the writer thread. Throws
  /// hmcs::ConfigError when the file cannot be opened.
  explicit AccessLog(const Options& options);

  /// Drains the ring, flushes, and joins the writer.
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Lock-free from any thread: enqueues one line (no trailing
  /// newline). Returns false — and counts a shed — when the ring is
  /// full. Never blocks.
  bool try_append(std::string line);

  /// Blocks until every line appended before the call is on disk.
  /// Test/shutdown aid, not for the request path.
  void flush();

  Stats stats() const;

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    std::string line;
  };

  void writer_loop();

  std::vector<Cell> ring_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<bool> stopping_{false};

  std::ofstream out_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::thread writer_;
};

}  // namespace hmcs::serve
