#pragma once

/// \file single_flight.hpp
/// Micro-batching of duplicate in-flight work: when several requests
/// for the same canonical key arrive before the first one finishes, one
/// becomes the leader (it evaluates) and the rest are followers (they
/// block on the leader's condition variable and reuse its reply). This
/// bounds backend work per unique key to one evaluation at a time no
/// matter how many clients stampede on a cold key.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace hmcs::serve {

class SingleFlight {
 public:
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::string body;  ///< the leader's reply body, valid once done
  };

  /// Joins the flight for `key`. Returns {flight, is_leader}: the first
  /// caller per key becomes the leader and must eventually call
  /// complete(); later callers wait() on the same flight.
  std::pair<std::shared_ptr<Flight>, bool> join(const std::string& key) {
    const std::scoped_lock lock(mutex_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) return {it->second, false};
    auto flight = std::make_shared<Flight>();
    inflight_.emplace(key, flight);
    return {flight, true};
  }

  /// Leader publishes its reply and retires the key. The key is erased
  /// before the flight is marked done, so a request arriving after a
  /// leader cached its result either hits the cache or starts a fresh
  /// flight — it never joins a completed one.
  void complete(const std::string& key, const std::shared_ptr<Flight>& flight,
                std::string body) {
    {
      const std::scoped_lock lock(mutex_);
      inflight_.erase(key);
    }
    {
      const std::scoped_lock lock(flight->mutex);
      flight->body = std::move(body);
      flight->done = true;
    }
    flight->cv.notify_all();
  }

  /// Follower: blocks until the leader completes, then returns a copy
  /// of the leader's reply body.
  static std::string wait(const std::shared_ptr<Flight>& flight) {
    std::unique_lock lock(flight->mutex);
    flight->cv.wait(lock, [&] { return flight->done; });
    return flight->body;
  }

  std::size_t in_flight() const {
    const std::scoped_lock lock(mutex_);
    return inflight_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;
};

}  // namespace hmcs::serve
