#pragma once

/// \file cache.hpp
/// The sharded LRU result cache behind hmcs_serve. Entries map a
/// canonical request key (the full key string, not just its hash — two
/// requests whose 64-bit hashes collide must never share a reply) to
/// the serialized reply body. Shards are independent mutex+LRU list+
/// index triples selected by the key hash, so concurrent lookups of
/// unrelated keys never contend on one lock.
///
/// Values are whole reply bodies: a hit is returned byte-for-byte as it
/// was stored, which is what makes the daemon's "cached replies are
/// bit-identical to cold evaluation" contract a memcmp rather than a
/// numeric tolerance (docs/SERVING.md).

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hmcs::serve {

class ShardedResultCache {
 public:
  struct Options {
    std::size_t shards = 8;
    /// Total entry budget across all shards (each shard holds
    /// ceil(capacity / shards) entries before evicting its LRU tail).
    std::size_t capacity = 4096;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    /// Per-shard entry counts, in shard order (occupancy skew shows a
    /// hot shard before eviction rates do).
    std::vector<std::size_t> shard_entries;
  };

  explicit ShardedResultCache(const Options& options);

  /// Looks up `key` (selecting the shard by `hash`), refreshing its LRU
  /// position on a hit. Returns a copy of the stored value.
  std::optional<std::string> get(std::uint64_t hash, std::string_view key);

  /// Inserts or refreshes `key`, evicting the shard's least recently
  /// used entries beyond its capacity. Idempotent on duplicate puts
  /// (single-flight races re-store the identical body).
  void put(std::uint64_t hash, std::string_view key, std::string value);

  /// Visits every entry, shard by shard, from least- to most-recently
  /// used — the order a snapshot reload should replay so the restored
  /// LRU discipline matches the saved one. Each shard's lock is held
  /// while its entries are visited; `fn` must not call back into the
  /// cache.
  void for_each_lru_to_mru(
      const std::function<void(const std::string& key,
                               const std::string& value)>& fn) const;

  Stats stats() const;
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  using LruList = std::list<Entry>;

  struct Shard {
    mutable std::mutex mutex;
    LruList lru;  ///< front = most recently used
    /// Views point at Entry::key in `lru`; list nodes are stable, and
    /// the index entry is erased before its list node.
    std::unordered_map<std::string_view, LruList::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(std::uint64_t hash) {
    return *shards_[hash % shards_.size()];
  }

  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace hmcs::serve
