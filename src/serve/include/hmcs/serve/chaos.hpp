#pragma once

/// \file chaos.hpp
/// Deterministic fault injection for the serve tier. A FaultPlan names
/// per-stage failure probabilities; a ChaosInjector rolls them with a
/// seeded splitmix64 stream per decision site, so a given (seed, plan,
/// arrival order) replays the same faults — failure paths become
/// testable rather than theoretical (docs/ROBUSTNESS.md). The daemon
/// configures it from `--chaos-*` flags and the `chaos` admin op can
/// swap the plan at runtime; every injected fault is counted both here
/// and in the global metrics registry as `serve.chaos.*`.
///
/// Injection sites:
///   - forced sheds: the request is answered "shed" without touching
///     the cache or the pool (exercises client retry paths),
///   - evaluate latency: a fixed delay before the backend runs
///     (exercises deadlines and queue growth),
///   - evaluate errors: the backend "fails" with a tagged error reply
///     (exercises error accounting and the access log),
///   - snapshot-write failures: save_cache_snapshot() aborts as if the
///     disk failed (exercises warm-restart degradation).

#include <atomic>
#include <cstdint>
#include <mutex>

#include "hmcs/util/json.hpp"

namespace hmcs::serve {

/// The injection probabilities, all in [0, 1]; an all-zero plan (the
/// default) injects nothing. `seed` makes the decision streams
/// reproducible across runs.
struct FaultPlan {
  std::uint64_t seed = 1;
  double shed_prob = 0.0;            ///< forced "shed" replies
  double eval_delay_prob = 0.0;      ///< inject latency before evaluate
  double eval_delay_ms = 0.0;        ///< the injected latency
  double eval_error_prob = 0.0;      ///< forced evaluate failures
  double snapshot_fail_prob = 0.0;   ///< forced snapshot-write failures

  bool enabled() const {
    return shed_prob > 0.0 || eval_delay_prob > 0.0 ||
           eval_error_prob > 0.0 || snapshot_fail_prob > 0.0;
  }
};

/// Parses a plan document ({"seed":..,"shed_prob":..,...}); unknown
/// members and out-of-range probabilities throw hmcs::ConfigError.
FaultPlan fault_plan_from_json(const JsonValue& doc);

/// Renders `plan` as the canonical JSON object (the `chaos` op reply).
void write_json(JsonWriter& json, const FaultPlan& plan);

class ChaosInjector {
 public:
  struct Counters {
    std::uint64_t forced_sheds = 0;
    std::uint64_t eval_delays = 0;
    std::uint64_t eval_errors = 0;
    std::uint64_t snapshot_failures = 0;
  };

  ChaosInjector() = default;
  explicit ChaosInjector(const FaultPlan& plan) : plan_(plan) {}

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// Swaps the live plan (the `chaos` admin op). Decision streams
  /// restart: each site's ticket counter keeps running, but the seed
  /// and probabilities take effect on the next roll.
  void set_plan(const FaultPlan& plan);
  FaultPlan plan() const;

  /// Decision rolls. Each consumes one ticket on its site's stream and
  /// bumps the matching counter (and serve.chaos.* metric) when it
  /// fires.
  bool should_force_shed();
  /// Returns the injected delay in ms, or 0.0 for "no delay".
  double eval_delay_ms();
  bool should_fail_eval();
  bool should_fail_snapshot();

  Counters counters() const;

 private:
  enum Site : std::uint64_t {
    kShed = 0,
    kEvalDelay = 1,
    kEvalError = 2,
    kSnapshot = 3,
    kSiteCount = 4,
  };

  /// One deterministic uniform draw on `site`'s stream against `prob`.
  bool roll(Site site, double prob);

  mutable std::mutex mutex_;
  FaultPlan plan_;
  std::atomic<std::uint64_t> tickets_[kSiteCount] = {};
  std::atomic<std::uint64_t> forced_sheds_{0};
  std::atomic<std::uint64_t> eval_delays_{0};
  std::atomic<std::uint64_t> eval_errors_{0};
  std::atomic<std::uint64_t> snapshot_failures_{0};
};

}  // namespace hmcs::serve
