#pragma once

/// \file server.hpp
/// The TCP front-end of hmcs_serve: JSON-lines over a plain socket.
/// One reader thread per connection splits the byte stream into lines
/// and submits each to the work-stealing pool; replies are written back
/// on the same socket under a per-connection write mutex (replies may
/// be reordered relative to requests — correlate with "id").
///
/// Graceful drain (SIGINT): the accept loop stops, every reader
/// performs one final non-blocking slurp of bytes the client already
/// sent and submits the remaining complete lines, the pool runs every
/// accepted request to completion, and only then do sockets close — so
/// a drain loses zero accepted-but-unanswered requests. Requests the
/// bounded queue refuses are answered immediately with a "shed" reply
/// instead of being silently dropped.
///
/// Connection hardening (docs/SERVING.md "Connection limits &
/// timeouts"): a connection that sends nothing for idle_timeout_ms —
/// or stalls mid-line for read_timeout_ms — is answered with a
/// structured error and evicted, so a slow or hostile client cannot
/// hold a reader forever; a line longer than max_line_bytes gets an
/// error reply instead of unbounded buffering; and when
/// max_connections is reached the oldest-idle connection is evicted to
/// make room. All socket I/O is EINTR- and partial-transfer-safe
/// (util::send_all / util::recv_some).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "hmcs/serve/service.hpp"
#include "hmcs/serve/thread_pool.hpp"
#include "hmcs/util/cancel.hpp"

namespace hmcs::serve {

class ServeServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;     ///< 0 = ephemeral (read back via port())
    std::uint32_t threads = 0;  ///< pool size; 0 = hardware concurrency
    std::size_t queue_limit = 1024;
    /// A connection whose current line exceeds this is answered with a
    /// structured error and dropped (it can never complete, and an
    /// unbounded buffer is a memory DoS).
    std::size_t max_line_bytes = 1u << 20;
    /// Evict a connection that has sent no bytes for this long
    /// (0 = never). The eviction is announced with an error reply.
    unsigned idle_timeout_ms = 0;
    /// Evict a connection whose started-but-incomplete line has
    /// stalled for this long (0 = never). Separate from the idle
    /// deadline because a half-sent request is a stronger signal of a
    /// broken client than silence between requests.
    unsigned read_timeout_ms = 0;
    /// Concurrent-connection cap (0 = unlimited). An accept beyond the
    /// cap evicts the connection that has been idle longest.
    std::size_t max_connections = 0;
    ServeService::Options service;
    /// External stop signal (the SIGINT token): when it cancels, the
    /// accept loop initiates the same graceful drain as shutdown().
    const util::CancelToken* stop = nullptr;
  };

  explicit ServeServer(const Options& options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds and listens; returns the bound port (resolves port 0).
  std::uint16_t start();
  std::uint16_t port() const { return port_; }

  /// Accepts and serves until shutdown() or the stop token fires;
  /// returns only after the graceful drain completes.
  void serve();

  /// Initiates the graceful drain from any thread. serve() returns
  /// once every accepted request has been answered.
  void shutdown() { stopping_.store(true, std::memory_order_relaxed); }

  ServeService& service() { return service_; }

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t lines = 0;  ///< request lines read off sockets
    std::uint64_t shed = 0;
    std::uint64_t timeout_evicted = 0;  ///< idle/read deadline hits
    std::uint64_t limit_evicted = 0;    ///< oldest-idle cap evictions
    std::uint64_t oversized = 0;        ///< over-long request lines
  };
  Stats stats() const;

 private:
  struct Connection {
    explicit Connection(int descriptor) : fd(descriptor) {}
    ~Connection();
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;
    int fd = -1;
    std::mutex write_mutex;
    /// Steady-clock ms of the last byte received; the oldest-idle
    /// eviction key.
    std::atomic<std::uint64_t> last_activity_ms{0};
    /// Set by the accept loop when this connection loses the
    /// oldest-idle eviction; its reader notices within one poll tick.
    std::atomic<bool> evict{false};
  };

  /// One reader thread plus its completion flag, so the accept loop
  /// can reap finished readers instead of accumulating joinable
  /// threads for the daemon's lifetime.
  struct Reader {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void connection_loop(const std::shared_ptr<Connection>& connection);
  /// Reaps finished readers and prunes dead connection slots; then, if
  /// the live count is at the cap, flags the oldest-idle connection
  /// for eviction. Caller holds connections_mutex_.
  void enforce_connection_limit_locked();
  /// Consumes every complete line in `buffer`, dispatching each.
  void dispatch_lines(const std::shared_ptr<Connection>& connection,
                      std::string& buffer);
  void dispatch_line(const std::shared_ptr<Connection>& connection,
                     std::string line);
  void write_line(Connection& connection, std::string_view reply);

  Options options_;
  ServeService service_;
  WorkStealingPool pool_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex connections_mutex_;
  std::vector<Reader> readers_;
  std::vector<std::weak_ptr<Connection>> live_connections_;
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> lines_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> timeout_evicted_{0};
  std::atomic<std::uint64_t> limit_evicted_{0};
  std::atomic<std::uint64_t> oversized_{0};
};

}  // namespace hmcs::serve
