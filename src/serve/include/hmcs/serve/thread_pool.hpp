#pragma once

/// \file thread_pool.hpp
/// The daemon's work-stealing execution pool. Submissions round-robin
/// across per-worker lanes; an idle worker drains its own lane FIFO and
/// steals from the tails of the others, so one connection issuing many
/// slow requests cannot starve the rest. The total queue is bounded:
/// try_submit() refuses work beyond the limit instead of buffering
/// without bound, and the server turns that refusal into an explicit
/// "shed" reply — backpressure the client can see (docs/SERVING.md).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hmcs::serve {

class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  /// `threads` 0 means hardware concurrency; `queue_limit` bounds the
  /// number of accepted-but-unstarted tasks across all lanes.
  WorkStealingPool(std::uint32_t threads, std::size_t queue_limit);

  /// Drains (runs every accepted task) and joins the workers.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueues `task` unless the queue is at its limit or the pool is
  /// draining; returns false (and does not take the task) in that case.
  bool try_submit(Task task);

  /// Stops accepting work, runs everything already accepted to
  /// completion, and joins the workers. Idempotent.
  void drain();

  std::size_t queued() const {
    return queued_.load(std::memory_order_relaxed);
  }
  std::uint32_t thread_count() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

 private:
  struct Lane {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::uint32_t self);
  Task take(std::uint32_t self);

  std::size_t queue_limit_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::uint64_t> round_robin_{0};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> draining_{false};
  bool drained_ = false;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
};

}  // namespace hmcs::serve
