#pragma once

/// \file snapshot.hpp
/// Durable warm restarts for the serve tier: the ShardedResultCache is
/// spilled to a versioned JSON-lines snapshot (canonical key → cached
/// reply body) on graceful drain and, optionally, on a periodic
/// interval; a restarted daemon started with `--cache-snapshot <path>`
/// reloads it and answers previously-seen requests warm. Canonical
/// keys are process-independent (they are rendered from the built
/// config, not from pointers or hashes of transient state), which is
/// what makes the spill meaningful across processes.
///
/// File format — one JSON object per line:
///
///   {"hmcs_cache_snapshot":1,"ts_ms":...}          // header, version 1
///   {"key":"<canonical key>","value":"<reply body>","check":"<16-hex>"}
///
/// `check` is an FNV-1a 64 digest over key + NUL + value, so a torn or
/// bit-flipped line is detected per entry. Writes are atomic: the full
/// file is written to `<path>.tmp` and rename()d over `path`, so a
/// crash mid-save leaves the previous snapshot intact — a kill -9 can
/// lose at most the entries cached since the last completed save.
///
/// Loading is tolerant by design (docs/ROBUSTNESS.md): corrupt,
/// oversized, or schema-violating lines are *skipped and counted*,
/// never fatal — a damaged snapshot degrades a warm restart into a
/// (partially) cold one instead of preventing startup. A header with
/// an unknown version skips the whole file the same way.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "hmcs/serve/cache.hpp"
#include "hmcs/serve/chaos.hpp"

namespace hmcs::serve {

struct SnapshotSaveReport {
  bool ok = false;
  std::size_t entries = 0;  ///< cache entries written
  std::size_t bytes = 0;    ///< file size on success
  std::string error;        ///< why ok == false
};

struct SnapshotLoadReport {
  /// False when `path` does not exist — a clean cold start, not an
  /// error (the first run of a daemon has no snapshot yet).
  bool found = false;
  std::size_t loaded = 0;   ///< entries inserted into the cache
  std::size_t skipped = 0;  ///< corrupt/oversized/stale lines dropped
  std::string warning;      ///< first skip reason, for the startup log
};

struct SnapshotLoadOptions {
  /// Lines longer than this are skipped (a snapshot is re-read at
  /// startup; an absurd line is more likely corruption than data).
  std::size_t max_line_bytes = 1u << 20;
};

/// Writes every cache entry to `path` atomically (temp file + rename).
/// Never throws: filesystem failures come back as ok == false. When
/// `chaos` is set and its plan injects a snapshot failure, the save
/// aborts (temp file removed) exactly as if the disk had failed.
SnapshotSaveReport save_cache_snapshot(const ShardedResultCache& cache,
                                       const std::string& path,
                                       ChaosInjector* chaos = nullptr);

/// Replays `path` into `cache` (least- to most-recently-used order, so
/// the restored LRU discipline matches the saved one). Never throws;
/// see SnapshotLoadReport for the tolerant-skip accounting.
SnapshotLoadReport load_cache_snapshot(ShardedResultCache& cache,
                                       const std::string& path,
                                       const SnapshotLoadOptions& options = {});

/// The periodic spill thread: saves the cache to `path` every
/// `interval_ms` (0 = never; save_now() still works for the drain-time
/// final spill). Failed saves are counted and retried next interval —
/// a full disk must not take the daemon down.
class SnapshotWriter {
 public:
  struct Options {
    std::string path;
    unsigned interval_ms = 0;
    ChaosInjector* chaos = nullptr;
  };

  SnapshotWriter(const ShardedResultCache& cache, const Options& options);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Synchronous save on the caller's thread (the drain-time spill).
  SnapshotSaveReport save_now();

  /// Stops the periodic thread (idempotent; the destructor calls it).
  void stop();

  std::uint64_t saves() const {
    return saves_.load(std::memory_order_relaxed);
  }
  std::uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  void writer_loop();

  const ShardedResultCache& cache_;
  Options options_;
  std::atomic<std::uint64_t> saves_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<bool> stopping_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::thread writer_;
};

}  // namespace hmcs::serve
