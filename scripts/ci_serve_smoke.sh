#!/usr/bin/env bash
# End-to-end smoke of the model-as-a-service daemon (docs/SERVING.md):
# start hmcs_serve on an ephemeral port with a structured access log,
# drive a mixed cold/warm/malformed workload with hmcs_loadgen asserting
# the cache hit rate, the warm/cold speedup, and cold/cached
# byte-identity, scrape one Prometheus exposition with hmcs_top and
# check it is well-formed, then SIGINT the daemon, require a clean drain
# (exit 130), and verify the access log captured the workload.
#
# Usage: scripts/ci_serve_smoke.sh [hmcs_serve] [hmcs_loadgen] [hmcs_top]
set -euo pipefail

HMCS_SERVE=${1:-./build/tools/hmcs_serve}
HMCS_LOADGEN=${2:-./build/tools/hmcs_loadgen}
HMCS_TOP=${3:-./build/tools/hmcs_top}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== starting daemon =="
"$HMCS_SERVE" --port 0 --queue-limit 256 --access-log "$WORK/access.log" \
  > "$WORK/serve.out" 2> "$WORK/serve.err" &
serve_pid=$!

# The first stdout line is "hmcs_serve listening on <host>:<port>".
port=""
for _ in $(seq 1 100); do
  if [ -s "$WORK/serve.out" ]; then
    port=$(head -1 "$WORK/serve.out" | sed 's/.*://')
    break
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "FAIL: daemon never reported its port" >&2
  cat "$WORK/serve.err" >&2
  exit 1
fi
echo "daemon is listening on port $port"

echo "== mixed cold/warm/malformed workload =="
# 8 distinct keys, 6 warm rounds each: hit rate 48/56 ~ 0.857. Warm
# replies must be byte-identical to cold and at least 50x faster at the
# median (the serving acceptance bar; in practice it is thousands).
"$HMCS_LOADGEN" --port "$port" --keys 8 --warm-iterations 6 \
  --malformed 4 --min-hit-rate 0.85 --min-warm-speedup 50 \
  | tee "$WORK/loadgen.json"

echo "== prometheus exposition =="
"$HMCS_TOP" --port "$port" --metrics > "$WORK/metrics.txt"
grep -q '^# TYPE serve_cache_hits counter$' "$WORK/metrics.txt" || {
  echo "FAIL: exposition is missing the serve_cache_hits TYPE line" >&2
  head -40 "$WORK/metrics.txt" >&2
  exit 1
}
hits=$(awk '$1 == "serve_cache_hits" {print $2}' "$WORK/metrics.txt")
if [ -z "$hits" ] || [ "$hits" -le 0 ]; then
  echo "FAIL: serve_cache_hits is '$hits', expected > 0 after warm rounds" >&2
  exit 1
fi
grep -q 'serve_request_wall_time_seconds_bucket{le="+Inf"}' \
  "$WORK/metrics.txt" || {
  echo "FAIL: request-latency histogram has no +Inf bucket" >&2
  exit 1
}
echo "exposition ok: serve_cache_hits=$hits"

echo "== non-default workload keys (G/G/1 service_cv2) =="
# 4 keys sharing base parameters with the default-cv2 set above, but
# carrying "workload":{"service_cv2":4}: each must mint a distinct
# canonical cache key (4 fresh cold misses), then warm-hit its own line
# (hit rate 4/8 = 0.5 for this run). Exact MVA is product-form-only and
# rejects non-exponential service, so this pass drives the G/G/1
# bisection solver.
misses_before=$(awk '$1 == "serve_cache_misses" {print $2}' "$WORK/metrics.txt")
"$HMCS_LOADGEN" --port "$port" --keys 4 --warm-iterations 1 \
  --model bisection --service-cv2 4 --min-hit-rate 0.49 \
  | tee "$WORK/loadgen_cv2.json"
"$HMCS_TOP" --port "$port" --metrics > "$WORK/metrics_cv2.txt"
misses_after=$(awk '$1 == "serve_cache_misses" {print $2}' "$WORK/metrics_cv2.txt")
if [ -z "$misses_before" ] || [ -z "$misses_after" ] \
   || [ $((misses_after - misses_before)) -ne 4 ]; then
  echo "FAIL: cv^2=4 requests did not mint 4 fresh cache keys" \
       "(misses $misses_before -> $misses_after)" >&2
  exit 1
fi
echo "workload keys ok: serve_cache_misses $misses_before -> $misses_after"

echo "== live dashboard snapshot =="
"$HMCS_TOP" --port "$port" --iterations 1 | tee "$WORK/top.txt"
grep -q '^latency ' "$WORK/top.txt" || {
  echo "FAIL: hmcs_top snapshot is missing the latency row" >&2
  exit 1
}

echo "== SIGINT drain =="
kill -INT "$serve_pid"
set +e
wait "$serve_pid"
status=$?
set -e
if [ "$status" -ne 130 ]; then
  echo "FAIL: daemon exited $status on SIGINT, expected 130" >&2
  cat "$WORK/serve.err" >&2
  exit 1
fi
grep -q "drained" "$WORK/serve.err" || {
  echo "FAIL: daemon did not report a drained shutdown" >&2
  cat "$WORK/serve.err" >&2
  exit 1
}
echo "== access log =="
# The daemon flushes the log on shutdown; every loadgen model request
# (cold + warm, not the admin ops or malformed-counted errors) appears
# as one JSON line with an outcome and a total.
if [ ! -s "$WORK/access.log" ]; then
  echo "FAIL: access log is empty" >&2
  exit 1
fi
lines=$(wc -l < "$WORK/access.log")
hits_logged=$(grep -c '"outcome":"hit"' "$WORK/access.log")
if [ "$hits_logged" -le 0 ]; then
  echo "FAIL: access log has no cache-hit lines" >&2
  head -5 "$WORK/access.log" >&2
  exit 1
fi
grep -q '"outcome":"miss"' "$WORK/access.log" || {
  echo "FAIL: access log has no cache-miss lines" >&2
  exit 1
}
grep -q '"total_ns":' "$WORK/access.log" || {
  echo "FAIL: access log lines carry no total_ns" >&2
  exit 1
}
echo "access log ok: $lines lines, $hits_logged hits"

echo "PASS: warm cache served byte-identical replies, metrics exposed, access log written, daemon drained cleanly"
