#!/usr/bin/env bash
# End-to-end smoke of the model-as-a-service daemon (docs/SERVING.md):
# start hmcs_serve on an ephemeral port, drive a mixed cold/warm/
# malformed workload with hmcs_loadgen asserting the cache hit rate,
# the warm/cold speedup, and cold/cached byte-identity, then SIGINT the
# daemon and require a clean drain (exit 130).
#
# Usage: scripts/ci_serve_smoke.sh [path/to/hmcs_serve] [path/to/hmcs_loadgen]
set -euo pipefail

HMCS_SERVE=${1:-./build/tools/hmcs_serve}
HMCS_LOADGEN=${2:-./build/tools/hmcs_loadgen}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "== starting daemon =="
"$HMCS_SERVE" --port 0 --queue-limit 256 \
  > "$WORK/serve.out" 2> "$WORK/serve.err" &
serve_pid=$!

# The first stdout line is "hmcs_serve listening on <host>:<port>".
port=""
for _ in $(seq 1 100); do
  if [ -s "$WORK/serve.out" ]; then
    port=$(head -1 "$WORK/serve.out" | sed 's/.*://')
    break
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "FAIL: daemon never reported its port" >&2
  cat "$WORK/serve.err" >&2
  exit 1
fi
echo "daemon is listening on port $port"

echo "== mixed cold/warm/malformed workload =="
# 8 distinct keys, 6 warm rounds each: hit rate 48/56 ~ 0.857. Warm
# replies must be byte-identical to cold and at least 50x faster at the
# median (the serving acceptance bar; in practice it is thousands).
"$HMCS_LOADGEN" --port "$port" --keys 8 --warm-iterations 6 \
  --malformed 4 --min-hit-rate 0.85 --min-warm-speedup 50 \
  | tee "$WORK/loadgen.json"

echo "== SIGINT drain =="
kill -INT "$serve_pid"
set +e
wait "$serve_pid"
status=$?
set -e
if [ "$status" -ne 130 ]; then
  echo "FAIL: daemon exited $status on SIGINT, expected 130" >&2
  cat "$WORK/serve.err" >&2
  exit 1
fi
grep -q "drained" "$WORK/serve.err" || {
  echo "FAIL: daemon did not report a drained shutdown" >&2
  cat "$WORK/serve.err" >&2
  exit 1
}
echo "PASS: warm cache served byte-identical replies and the daemon drained cleanly"
