#!/usr/bin/env bash
# Crash-recovery smoke for the serve tier's durable warm restarts
# (docs/SERVING.md "Durable restarts", docs/ROBUSTNESS.md):
#
#   1. start hmcs_serve with a cache snapshot and a short periodic
#      spill interval, warm the cache with hmcs_loadgen (recording the
#      cold replies), and wait for a completed snapshot,
#   2. kill -9 the daemon — no drain, no final spill — and restart it
#      from the snapshot: the warm pass must hit the restored cache
#      (hit rate ~1) and every reply must be byte-identical to the
#      recording from before the crash,
#   3. corrupt the snapshot (garbage + a bit-flipped entry) and restart
#      again: the daemon must report skipped lines and still serve —
#      a damaged snapshot degrades to a (partially) cold start, never
#      a startup failure — then drain cleanly on SIGINT (exit 130).
#
# Usage: scripts/ci_crash_recovery_smoke.sh [hmcs_serve] [hmcs_loadgen]
set -euo pipefail

HMCS_SERVE=${1:-./build/tools/hmcs_serve}
HMCS_LOADGEN=${2:-./build/tools/hmcs_loadgen}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

SNAPSHOT="$WORK/cache.snap"
KEYS=8

# Starts the daemon ($1 = log tag, rest = extra flags); sets the
# globals $port and $serve_pid. (No command substitution: a subshell
# would strand the pid.)
start_daemon() {
  local tag=$1
  shift
  "$HMCS_SERVE" --port 0 --cache-snapshot "$SNAPSHOT" "$@" \
    > "$WORK/$tag.out" 2> "$WORK/$tag.err" &
  serve_pid=$!
  port=""
  for _ in $(seq 1 100); do
    if [ -s "$WORK/$tag.out" ]; then
      port=$(head -1 "$WORK/$tag.out" | sed 's/.*://')
      break
    fi
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "FAIL: daemon ($tag) never reported its port" >&2
    cat "$WORK/$tag.err" >&2
    exit 1
  fi
  echo "daemon ($tag) is listening on port $port"
}

echo "== daemon A: warm the cache, snapshot periodically =="
start_daemon first --snapshot-interval-ms 50
"$HMCS_LOADGEN" --port "$port" --keys "$KEYS" --warm-iterations 2 \
  --replies-out "$WORK/replies.txt" > "$WORK/loadgen_a.json"
test "$(wc -l < "$WORK/replies.txt")" -eq "$KEYS"

# Wait for a snapshot that holds every key (header + KEYS entry lines).
snapshot_ready=""
for _ in $(seq 1 100); do
  if [ -s "$SNAPSHOT" ] && \
     [ "$(wc -l < "$SNAPSHOT")" -ge $((KEYS + 1)) ]; then
    snapshot_ready=yes
    break
  fi
  sleep 0.1
done
if [ -z "$snapshot_ready" ]; then
  echo "FAIL: periodic snapshot never captured all $KEYS entries" >&2
  exit 1
fi

echo "== kill -9 mid-flight =="
kill -9 "$serve_pid"
set +e
wait "$serve_pid" 2>/dev/null
set -e

echo "== daemon B: restart from the snapshot =="
start_daemon second
grep -q "cache snapshot loaded" "$WORK/second.err" || {
  echo "FAIL: restarted daemon did not report loading the snapshot" >&2
  cat "$WORK/second.err" >&2
  exit 1
}
# The "cold" pass replays the same keys: every one must hit the
# restored cache, and every reply must be byte-identical to the
# recording made before the crash.
"$HMCS_LOADGEN" --port "$port" --keys "$KEYS" --warm-iterations 0 \
  --replies-expect "$WORK/replies.txt" --min-hit-rate 0.99 \
  > "$WORK/loadgen_b.json"
kill -INT "$serve_pid"
set +e
wait "$serve_pid"
status=$?
set -e
test "$status" -eq 130 || {
  echo "FAIL: daemon B exited $status on SIGINT, expected 130" >&2
  exit 1
}
echo "warm restart served byte-identical replies from the snapshot"

echo "== daemon C: corrupted snapshot degrades, does not crash =="
# Garbage where an entry was, plus a flipped byte in another entry
# (caught by the per-line checksum).
awk 'NR == 2 {print "}{ definitely not json"; next}
     NR == 3 {gsub(/"value":"/, "\"value\":\"X"); print; next}
     {print}' "$SNAPSHOT" > "$SNAPSHOT.corrupt"
mv "$SNAPSHOT.corrupt" "$SNAPSHOT"

start_daemon third
grep -Eq "cache snapshot loaded from .*: [0-9]+ entries, [1-9][0-9]* lines skipped" \
  "$WORK/third.err" || {
  echo "FAIL: daemon C did not report skipped snapshot lines" >&2
  cat "$WORK/third.err" >&2
  exit 1
}
# Still serves: the same workload completes (cold for damaged keys).
"$HMCS_LOADGEN" --port "$port" --keys "$KEYS" --warm-iterations 1 \
  > "$WORK/loadgen_c.json"
kill -INT "$serve_pid"
set +e
wait "$serve_pid"
status=$?
set -e
test "$status" -eq 130 || {
  echo "FAIL: daemon C exited $status on SIGINT, expected 130" >&2
  exit 1
}

echo "PASS: kill -9 -> warm restart with byte-identical replies; corrupted snapshot -> tolerated cold start"
