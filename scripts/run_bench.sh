#!/usr/bin/env bash
# Builds the relbench preset and runs the performance-tracking benches,
# leaving BENCH_engine.json, BENCH_sweep.json, BENCH_serve.json and
# BENCH_solver.json at the repository root. Pass extra arguments through
# to the engine bench (e.g. --events 2000000).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

if ! command -v cmake >/dev/null 2>&1; then
  echo "error: cmake not found on PATH — install CMake >= 3.16 to run the bench" >&2
  exit 1
fi

# Configure only when the build tree is missing or was never configured;
# an up-to-date tree goes straight to the (incremental) build.
if [[ ! -f build-relbench/CMakeCache.txt ]]; then
  cmake --preset relbench
fi

cmake --build --preset relbench -j "$(nproc)" \
  --target engine_throughput sweep_scaling serve_throughput solver_batch

./build-relbench/bench/engine_throughput --out BENCH_engine.json "$@"
echo "wrote ${repo_root}/BENCH_engine.json"

./build-relbench/bench/sweep_scaling --out BENCH_sweep.json
echo "wrote ${repo_root}/BENCH_sweep.json"

./build-relbench/bench/serve_throughput --out BENCH_serve.json
echo "wrote ${repo_root}/BENCH_serve.json"

./build-relbench/bench/solver_batch --out BENCH_solver.json
echo "wrote ${repo_root}/BENCH_solver.json"
