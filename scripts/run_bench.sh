#!/usr/bin/env bash
# Builds the relbench preset and runs the event-engine throughput bench,
# leaving BENCH_engine.json at the repository root. Pass extra arguments
# through to the bench binary (e.g. --events 2000000).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

cmake --preset relbench
cmake --build --preset relbench -j "$(nproc)" --target engine_throughput

./build-relbench/bench/engine_throughput --out BENCH_engine.json "$@"
echo "wrote ${repo_root}/BENCH_engine.json"
