#!/usr/bin/env bash
# End-to-end checkpoint/resume smoke for hmcs_run (docs/ROBUSTNESS.md):
# run a DES sweep with a journal, SIGINT it mid-flight, resume from the
# journal, and require the resumed CSV/JSON artifacts to be
# byte-identical to an uninterrupted reference run.
#
# Usage: scripts/ci_resume_smoke.sh [path/to/hmcs_run]
set -euo pipefail

HMCS_RUN=${1:-./build/tools/hmcs_run}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# A sweep heavy enough to survive a couple of seconds on CI hardware
# (roughly tens of seconds in total), so the interrupt lands mid-grid.
cat > "$WORK/sweep.kv" <<'EOF'
id            = resume_smoke
mode          = cartesian
clusters      = 1,2,4,8,16,32
message_bytes = 1024,512
lambda_per_s  = 250
architecture  = blocking
technology    = case1
backends      = analytic,des
messages      = 3000000
warmup        = 5000
seed          = 7
EOF

echo "== reference (uninterrupted) run =="
"$HMCS_RUN" --config "$WORK/sweep.kv" --threads 2 \
  --csv-dir "$WORK/ref" --json-dir "$WORK/ref" > "$WORK/ref.txt"

echo "== interrupted run (SIGINT after 3s) =="
set +e
"$HMCS_RUN" --config "$WORK/sweep.kv" --threads 2 \
  --journal "$WORK/run.jsonl" \
  --csv-dir "$WORK/part" --json-dir "$WORK/part" > "$WORK/part.txt" 2>&1 &
pid=$!
sleep 3
kill -INT "$pid"
wait "$pid"
status=$?
set -e
if [ "$status" -ne 130 ]; then
  echo "FAIL: interrupted run exited $status, expected 130" >&2
  cat "$WORK/part.txt" >&2
  exit 1
fi
journaled=$(grep -c '"cell"' "$WORK/run.jsonl" || true)
echo "journaled cells: $journaled"
if [ "$journaled" -ge 24 ]; then
  echo "FAIL: the interrupt landed after the sweep finished; nothing" \
       "was left to resume (increase messages)" >&2
  exit 1
fi

echo "== resumed run =="
"$HMCS_RUN" --config "$WORK/sweep.kv" --threads 2 \
  --resume "$WORK/run.jsonl" \
  --csv-dir "$WORK/res" --json-dir "$WORK/res" > "$WORK/res.txt"

cmp "$WORK/ref/resume_smoke.csv" "$WORK/res/resume_smoke.csv"
cmp "$WORK/ref/resume_smoke.json" "$WORK/res/resume_smoke.json"
echo "PASS: resumed artifacts are byte-identical to the uninterrupted run"
