// Declarative sweep expansion: axis defaulting, cartesian nesting
// order, zipped lockstep, labels, and the deterministic seed chain.

#include <gtest/gtest.h>

#include "hmcs/runner/sweep_spec.hpp"
#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs;
using runner::AxisMode;
using runner::SweepPoint;
using runner::SweepSpec;
using runner::expand_sweep;

TEST(SweepSpec, EmptyAxesExpandToPaperDefaults) {
  const std::vector<SweepPoint> points = expand_sweep(SweepSpec{});
  std::size_t count = 0;
  const std::uint32_t* sweep = analytic::paper_cluster_sweep(&count);
  ASSERT_EQ(points.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].clusters, sweep[i]);
    EXPECT_DOUBLE_EQ(points[i].message_bytes, 1024.0);
    EXPECT_DOUBLE_EQ(points[i].lambda_per_us, analytic::kPaperRatePerUs);
    EXPECT_EQ(points[i].architecture,
              analytic::NetworkArchitecture::kNonBlocking);
    EXPECT_EQ(points[i].technology_label,
              analytic::to_string(analytic::HeterogeneityCase::kCase1));
    // Case 1 (Table 2): GE intra-cluster, FE everywhere else.
    EXPECT_EQ(points[i].config.icn1.name, analytic::gigabit_ethernet().name);
    EXPECT_EQ(points[i].config.ecn1.name, analytic::fast_ethernet().name);
    EXPECT_EQ(points[i].config.icn2.name, analytic::fast_ethernet().name);
  }
}

TEST(SweepSpec, CartesianOrderIsClustersMajorSizeMinor) {
  SweepSpec spec;
  spec.axes.clusters = {2, 4};
  spec.axes.message_bytes = {1024.0, 512.0};
  const std::vector<SweepPoint> points = expand_sweep(spec);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].clusters, 2u);
  EXPECT_DOUBLE_EQ(points[0].message_bytes, 1024.0);
  EXPECT_EQ(points[1].clusters, 2u);
  EXPECT_DOUBLE_EQ(points[1].message_bytes, 512.0);
  EXPECT_EQ(points[2].clusters, 4u);
  EXPECT_DOUBLE_EQ(points[2].message_bytes, 1024.0);
  EXPECT_EQ(points[3].clusters, 4u);
  EXPECT_DOUBLE_EQ(points[3].message_bytes, 512.0);
}

TEST(SweepSpec, ConfigIsFullyBuilt) {
  SweepSpec spec;
  spec.axes.clusters = {8};
  spec.total_nodes = 64;
  spec.axes.architectures = {analytic::NetworkArchitecture::kBlocking};
  const std::vector<SweepPoint> points = expand_sweep(spec);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].config.clusters, 8u);
  EXPECT_EQ(points[0].config.nodes_per_cluster, 8u);
  EXPECT_EQ(points[0].config.architecture,
            analytic::NetworkArchitecture::kBlocking);
  EXPECT_EQ(points[0].config.switch_params.ports, analytic::kPaperSwitchPorts);
}

TEST(SweepSpec, LabelIsFigureStyleForSingletonExtras) {
  SweepSpec spec;
  spec.id = "fig6";
  spec.axes.clusters = {16};
  spec.axes.message_bytes = {512.0};
  const std::vector<SweepPoint> points = expand_sweep(spec);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].label, "fig6 C=16 M=512");
}

TEST(SweepSpec, LabelGrowsSuffixesForVaryingExtras) {
  SweepSpec spec;
  spec.id = "s";
  spec.axes.clusters = {4};
  spec.axes.architectures = {analytic::NetworkArchitecture::kNonBlocking,
                             analytic::NetworkArchitecture::kBlocking};
  const std::vector<SweepPoint> points = expand_sweep(spec);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].label,
            std::string("s C=4 M=1024 ") +
                analytic::to_string(
                    analytic::NetworkArchitecture::kNonBlocking));
  EXPECT_EQ(points[1].label,
            std::string("s C=4 M=1024 ") +
                analytic::to_string(analytic::NetworkArchitecture::kBlocking));
}

TEST(SweepSpec, DefaultSeedMatchesSplitMixChain) {
  // The figure harness's historical derivation, kept bit-exact.
  simcore::SplitMix64 seed_mix(3);
  simcore::SplitMix64 cluster_mix(seed_mix.next() ^ 8u);
  simcore::SplitMix64 byte_mix(cluster_mix.next() ^
                               static_cast<std::uint64_t>(512.0));
  const std::uint64_t expected = byte_mix.next();
  EXPECT_EQ(runner::default_point_seed(3, 8, 512.0), expected);

  SweepSpec spec;
  spec.base_seed = 3;
  spec.axes.clusters = {8};
  spec.axes.message_bytes = {512.0};
  EXPECT_EQ(expand_sweep(spec)[0].seed, expected);
}

TEST(SweepSpec, SeedFnOverridesDefault) {
  SweepSpec spec;
  spec.axes.clusters = {2, 4};
  spec.seed_fn = [](const SweepPoint& point) {
    return 7000 + point.clusters;
  };
  const std::vector<SweepPoint> points = expand_sweep(spec);
  EXPECT_EQ(points[0].seed, 7002u);
  EXPECT_EQ(points[1].seed, 7004u);
}

TEST(SweepSpec, ZippedWalksAxesInLockstep) {
  SweepSpec spec;
  spec.mode = AxisMode::kZipped;
  spec.axes.clusters = {2, 4, 8};
  spec.axes.message_bytes = {64.0, 256.0, 1024.0};
  spec.axes.architectures = {analytic::NetworkArchitecture::kBlocking};
  const std::vector<SweepPoint> points = expand_sweep(spec);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(points[i].clusters, spec.axes.clusters[i]);
    EXPECT_DOUBLE_EQ(points[i].message_bytes, spec.axes.message_bytes[i]);
    // The singleton architecture axis broadcasts.
    EXPECT_EQ(points[i].architecture,
              analytic::NetworkArchitecture::kBlocking);
  }
}

TEST(SweepSpec, ZippedRejectsLengthMismatch) {
  SweepSpec spec;
  spec.mode = AxisMode::kZipped;
  spec.axes.clusters = {2, 4, 8};
  spec.axes.message_bytes = {64.0, 256.0};
  EXPECT_THROW(expand_sweep(spec), ConfigError);
}

TEST(SweepSpec, RejectsClustersNotDividingTotalNodes) {
  SweepSpec spec;
  spec.axes.clusters = {3};  // 256 % 3 != 0
  EXPECT_THROW(expand_sweep(spec), ConfigError);
}

}  // namespace
