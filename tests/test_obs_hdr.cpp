// Tests for the log-linear HDR histogram (index math, precision bound,
// quantiles, concurrency) and the rolling RED window (epoch rotation,
// eviction, error accounting, straggler drops).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "hmcs/obs/hdr_histogram.hpp"
#include "hmcs/obs/red.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::obs::HdrHistogram;
using hmcs::obs::HdrSnapshot;
using hmcs::obs::RedWindow;

TEST(HdrHistogram, SmallValuesAreExact) {
  // Below 2^(sub_bits+1) every value has its own bucket.
  for (unsigned sub_bits : {1u, 5u, 8u}) {
    const std::uint64_t exact_limit = 2ull << sub_bits;
    for (std::uint64_t v = 0; v < exact_limit; ++v) {
      const std::size_t index = HdrHistogram::index_for(v, sub_bits);
      EXPECT_EQ(index, static_cast<std::size_t>(v));
      EXPECT_EQ(HdrHistogram::bucket_upper_bound(index, sub_bits), v);
    }
  }
}

TEST(HdrHistogram, IndexIsMonotoneAndContiguousAcrossOctaves) {
  const unsigned sub_bits = 5;
  std::size_t previous = HdrHistogram::index_for(0, sub_bits);
  // Walk bucket boundaries: each upper bound + 1 must land in the next
  // bucket, with no gaps or reversals.
  for (std::size_t i = 0; i + 1 < HdrHistogram::array_size(sub_bits); ++i) {
    const std::uint64_t upper = HdrHistogram::bucket_upper_bound(i, sub_bits);
    if (upper == ~0ull) break;  // saturated top bucket
    EXPECT_EQ(HdrHistogram::index_for(upper, sub_bits), i);
    EXPECT_EQ(HdrHistogram::index_for(upper + 1, sub_bits), i + 1);
  }
  (void)previous;
}

TEST(HdrHistogram, RelativeErrorBoundedBySubBits) {
  // The bucket upper bound overshoots the recorded value by at most a
  // factor of 1 + 2^-sub_bits.
  for (unsigned sub_bits : {3u, 5u, 7u}) {
    const double max_rel = 1.0 / static_cast<double>(1ull << sub_bits);
    std::uint64_t v = 1;
    for (int i = 0; i < 60; ++i, v = v * 3 + 7) {
      const std::size_t index = HdrHistogram::index_for(v, sub_bits);
      const std::uint64_t upper =
          HdrHistogram::bucket_upper_bound(index, sub_bits);
      ASSERT_GE(upper, v);
      const double rel = (static_cast<double>(upper) - static_cast<double>(v)) /
                         static_cast<double>(v);
      EXPECT_LE(rel, max_rel + 1e-12) << "v=" << v << " sub_bits=" << sub_bits;
    }
  }
}

TEST(HdrHistogram, ExtremeValuesMapInRange) {
  const unsigned sub_bits = 5;
  const std::size_t size = HdrHistogram::array_size(sub_bits);
  EXPECT_LT(HdrHistogram::index_for(~0ull, sub_bits), size);
  EXPECT_EQ(HdrHistogram::bucket_upper_bound(size - 1, sub_bits), ~0ull);
  HdrHistogram hist(sub_bits);
  hist.record(~0ull);
  hist.record(0);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.snapshot().max_value(), ~0ull);
}

TEST(HdrHistogram, QuantilesMatchExactDatasetWithinPrecision) {
  HdrHistogram hist(5);
  std::vector<std::uint64_t> values;
  std::uint64_t x = 12345;
  for (int i = 0; i < 10000; ++i) {
    // SplitMix-ish scramble for a deterministic spread over ~3 decades.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    const std::uint64_t v = 1000 + x % 1000000;
    values.push_back(v);
    hist.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const std::uint64_t exact = values[rank - 1];
    const std::uint64_t approx = hist.quantile(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(approx),
              static_cast<double>(exact) * (1.0 + 1.0 / 32.0) + 1.0)
        << "q=" << q;
  }
  EXPECT_EQ(hist.quantile(0.0), hist.snapshot().buckets.front().first);
  EXPECT_EQ(hist.quantile(1.0), hist.snapshot().max_value());
}

TEST(HdrHistogram, EmptyHistogram) {
  HdrHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.quantile(0.5), 0u);
  const HdrSnapshot snap = hist.snapshot();
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(snap.max_value(), 0u);
}

TEST(HdrHistogram, ConcurrentRecordingConservesCount) {
  HdrHistogram hist(5);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(static_cast<std::uint64_t>(t * 1000 + i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HdrSnapshot snap = hist.snapshot();
  std::uint64_t total = 0;
  for (const auto& [upper, count] : snap.buckets) total += count;
  EXPECT_EQ(total, hist.count());
}

TEST(HdrHistogram, ResetClears) {
  HdrHistogram hist;
  hist.record(42);
  hist.record(1u << 20);
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_TRUE(hist.snapshot().empty());
}

TEST(HdrHistogram, RejectsBadSubBits) {
  EXPECT_THROW(HdrHistogram(0), hmcs::Error);
  EXPECT_THROW(HdrHistogram(13), hmcs::Error);
}

TEST(HdrHistogram, DenseMergeMatchesPerHistogramTotals) {
  HdrHistogram a(5);
  HdrHistogram b(5);
  for (std::uint64_t v = 1; v < 1000; v += 7) a.record(v);
  for (std::uint64_t v = 500; v < 5000; v += 11) b.record(v);
  std::vector<std::uint64_t> dense(HdrHistogram::array_size(5), 0);
  a.accumulate(dense);
  b.accumulate(dense);
  const HdrSnapshot merged = HdrHistogram::snapshot_from_dense(5, dense);
  EXPECT_EQ(merged.total, a.count() + b.count());
  EXPECT_EQ(merged.max_value(),
            std::max(a.snapshot().max_value(), b.snapshot().max_value()));
}

// ---------------------------------------------------------------------------
// RedWindow
// ---------------------------------------------------------------------------

TEST(RedWindow, SingleEpochSummary) {
  RedWindow::Options options;
  options.window_seconds = 10;
  RedWindow red(options);
  for (int i = 0; i < 100; ++i) {
    red.record_at(0, 1000, /*error=*/i < 5);
  }
  const RedWindow::Summary sum = red.summarize_at(0, 0.5);
  EXPECT_EQ(sum.requests, 100u);
  EXPECT_EQ(sum.errors, 5u);
  EXPECT_DOUBLE_EQ(sum.error_rate, 0.05);
  // Only 0.5 s of wall time covered: 100 requests -> 200/s.
  EXPECT_NEAR(sum.rate_per_s, 200.0, 1e-9);
  EXPECT_GE(sum.p50_ns, 1000u);
  EXPECT_EQ(sum.max_ns, 1000u);
}

TEST(RedWindow, OldEpochsFallOutOfTheWindow) {
  RedWindow::Options options;
  options.window_seconds = 3;
  RedWindow red(options);
  red.record_at(0, 100, false);
  red.record_at(1, 200, false);
  red.record_at(4, 300, false);

  // As of epoch 4, (1, 4] covers epochs 2..4: only the epoch-4 sample.
  const RedWindow::Summary now = red.summarize_at(4, 1.0);
  EXPECT_EQ(now.requests, 1u);
  EXPECT_EQ(now.max_ns, 300u);

  // As of epoch 1 the first two samples are both in range. (The ring
  // still holds them; nothing recycled their slots yet.)
  const RedWindow::Summary then = red.summarize_at(1, 1.0);
  EXPECT_EQ(then.requests, 2u);
}

TEST(RedWindow, SlotRecyclingResetsCounts) {
  RedWindow::Options options;
  options.window_seconds = 2;  // ring of 4 slots
  RedWindow red(options);
  red.record_at(0, 100, true);
  // Epoch 4 reuses slot 0 (4 % 4 == 0); the old epoch-0 data must not
  // leak into the new epoch's counts.
  red.record_at(4, 900, false);
  const RedWindow::Summary sum = red.summarize_at(4, 1.0);
  EXPECT_EQ(sum.requests, 1u);
  EXPECT_EQ(sum.errors, 0u);
  EXPECT_EQ(sum.max_ns, 900u);
}

TEST(RedWindow, StragglersAreDroppedNotMisfiled) {
  RedWindow::Options options;
  options.window_seconds = 2;  // ring of 4 slots
  RedWindow red(options);
  red.record_at(6, 100, false);  // slot 2 now owned by epoch 6
  // A recorder more than a full ring behind finds its slot recycled for
  // a newer epoch; the sample must be dropped, not counted against 6.
  red.record_at(2, 999, true);
  EXPECT_EQ(red.dropped(), 1u);
  const RedWindow::Summary sum = red.summarize_at(6, 1.0);
  EXPECT_EQ(sum.requests, 1u);
  EXPECT_EQ(sum.errors, 0u);
}

TEST(RedWindow, EmptyWindow) {
  RedWindow red;
  const RedWindow::Summary sum = red.summarize();
  EXPECT_EQ(sum.requests, 0u);
  EXPECT_DOUBLE_EQ(sum.rate_per_s, 0.0);
  EXPECT_DOUBLE_EQ(sum.error_rate, 0.0);
  EXPECT_EQ(sum.p99_ns, 0u);
}

TEST(RedWindow, WallClockRecordLandsInSummary) {
  RedWindow red;
  red.record(5000, false);
  red.record(7000, true);
  const RedWindow::Summary sum = red.summarize();
  EXPECT_EQ(sum.requests, 2u);
  EXPECT_EQ(sum.errors, 1u);
  EXPECT_EQ(sum.max_ns, 7000u);
  EXPECT_GT(sum.rate_per_s, 0.0);
}

TEST(RedWindow, ConcurrentRecordingConservesRequests) {
  RedWindow::Options options;
  options.window_seconds = 4;
  RedWindow red(options);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&red] {
      for (int i = 0; i < kPerThread; ++i) {
        red.record_at(i % 3, 100 + static_cast<std::uint64_t>(i), false);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const RedWindow::Summary sum = red.summarize_at(3, 1.0);
  EXPECT_EQ(sum.requests + red.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
