// Whole-system switch-level fabric: graph composition, HMSCS routing
// rule, and agreement with the centre-level abstraction where the two
// coincide by construction (single-switch networks at low load).

#include <gtest/gtest.h>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/netsim/hmcs_fabric.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/math_util.hpp"

namespace {

using namespace hmcs;
using analytic::HeterogeneityCase;
using analytic::NetworkArchitecture;
using netsim::HmcsFabric;
using netsim::RoutedPath;

analytic::SystemConfig small_config(double rate = 1e-5) {
  // C=4 x N0=8 on 8-port switches: ICN1 d=1, ECN1 (9 endpoints) d=2,
  // ICN2 d=1.
  analytic::SystemConfig config = analytic::paper_scenario(
      HeterogeneityCase::kCase1, 4, NetworkArchitecture::kNonBlocking, 1024.0,
      32, rate);
  config.switch_params.ports = 8;
  return config;
}

TEST(HmcsFabric, GraphComposition) {
  const HmcsFabric fabric(small_config());
  const topology::Graph& graph = fabric.graph();
  // 32 processors + 4 gateways.
  EXPECT_EQ(graph.endpoints().size(), 36u);
  EXPECT_EQ(fabric.num_processors(), 32u);
  // ICN1: 4 x 1 switch; ECN1 (9 endpoints, Pr=8): 4 x 5; ICN2: 1.
  EXPECT_EQ(graph.count_nodes(topology::NodeKind::kSwitch), 4u + 20u + 1u);
}

TEST(HmcsFabric, LocalRouteStaysInsideTheCluster) {
  const HmcsFabric fabric(small_config());
  simcore::Rng rng(1);
  const RoutedPath path = fabric.route(0, 7, rng);  // both in cluster 0
  ASSERT_EQ(path.switches.size(), 1u);  // single-switch ICN1
  // Case 1: ICN1 is Gigabit Ethernet (80 us).
  EXPECT_DOUBLE_EQ(path.extra_latency_us, 80.0);
}

TEST(HmcsFabric, RemoteRouteCrossesEgressBackboneIngress) {
  const HmcsFabric fabric(small_config());
  simcore::Rng rng(2);
  const RoutedPath path = fabric.route(0, 31, rng);  // cluster 0 -> 3
  // ECN1 (d=2: 1 or 3 switches) + ICN2 (1) + ECN1 (1 or 3).
  EXPECT_GE(path.switches.size(), 3u);
  EXPECT_LE(path.switches.size(), 7u);
  // Case 1 remote alphas: FE + FE + FE = 150 us.
  EXPECT_DOUBLE_EQ(path.extra_latency_us, 150.0);
}

TEST(HmcsFabric, RejectsDegenerateRoutes) {
  const HmcsFabric fabric(small_config());
  simcore::Rng rng(3);
  EXPECT_THROW(fabric.route(5, 5, rng), ConfigError);
  EXPECT_THROW(fabric.route(0, 99, rng), ConfigError);
}

TEST(HmcsFabric, NodeScalesReflectTechnologies) {
  const auto options = HmcsFabric(small_config()).make_sim_options();
  // Reference is ICN2 = Fast Ethernet; ICN1 switches are GE => scale
  // 94/10.5; ECN1/ICN2 switches scale 1.
  double max_scale = 0.0;
  for (const double scale : options.node_bandwidth_scale) {
    max_scale = std::max(max_scale, scale);
  }
  EXPECT_NEAR(max_scale, 94.0 / 10.5, 1e-12);
  EXPECT_EQ(options.active_endpoints, 32u);
  EXPECT_TRUE(static_cast<bool>(options.path_provider));
}

TEST(HmcsFabric, LowLoadLatencyMatchesCenterLevelModel) {
  // The paper's C=16 configuration: every network is one switch, so the
  // switch-level system *is* the centre-level queueing network (modulo
  // alpha being propagation here vs server occupancy there — identical
  // at low load). The measured latency must land on eq. (15).
  const analytic::SystemConfig config = analytic::paper_scenario(
      HeterogeneityCase::kCase1, 16, NetworkArchitecture::kNonBlocking,
      1024.0, 256, analytic::kPaperLiteralRatePerUs);
  const HmcsFabric fabric(config);
  netsim::FabricSimOptions options = fabric.make_sim_options();
  options.measured_messages = 6000;
  options.warmup_messages = 500;
  options.seed = 9;
  netsim::SwitchFabricSim sim(fabric.graph(), options);
  const netsim::FabricSimResult result = sim.run();

  const analytic::LatencyPrediction prediction =
      analytic::predict_latency(config);
  EXPECT_LT(relative_error(result.mean_latency_us,
                           prediction.mean_latency_us),
            0.02)
      << "switch-level " << result.mean_latency_us << " vs model "
      << prediction.mean_latency_us;
}

TEST(HmcsFabric, SingleClusterHasNoGateways) {
  analytic::SystemConfig config = small_config();
  config.clusters = 1;
  config.nodes_per_cluster = 32;
  const HmcsFabric fabric(config);
  EXPECT_EQ(fabric.graph().endpoints().size(), 32u);
  simcore::Rng rng(4);
  const RoutedPath path = fabric.route(0, 31, rng);
  EXPECT_DOUBLE_EQ(path.extra_latency_us, 80.0);  // ICN1 only
}

TEST(HmcsFabric, FullyDispersedSystemRoutesOnlyRemotely) {
  analytic::SystemConfig config = small_config();
  config.clusters = 8;
  config.nodes_per_cluster = 1;
  const HmcsFabric fabric(config);
  simcore::Rng rng(5);
  const RoutedPath path = fabric.route(0, 7, rng);
  EXPECT_GE(path.switches.size(), 3u);
  EXPECT_DOUBLE_EQ(path.extra_latency_us, 150.0);
}

TEST(HmcsFabric, BlockingPenaltyIsContentionNotPropagation) {
  // eq. (21) charges every message (N/2)M*beta regardless of load — a
  // throughput model. On the wired chain an *unloaded* message crosses
  // its few switches unobstructed, so the switch-level latency sits far
  // below the centre-level blocking prediction. The penalty only
  // materialises under contention (see
  // SwitchFabricSim.FatTreeSustainsHigherThroughputThanChain).
  const analytic::SystemConfig config = analytic::paper_scenario(
      HeterogeneityCase::kCase1, 4, NetworkArchitecture::kBlocking, 1024.0,
      64, analytic::kPaperLiteralRatePerUs);
  const HmcsFabric fabric(config);
  netsim::FabricSimOptions options = fabric.make_sim_options();
  options.measured_messages = 3000;
  options.warmup_messages = 300;
  options.seed = 21;
  netsim::SwitchFabricSim sim(fabric.graph(), options);
  const double switch_level = sim.run().mean_latency_us;

  const double center_level =
      analytic::predict_latency(config).mean_latency_us;
  EXPECT_LT(switch_level, 0.5 * center_level);
}

TEST(HmcsFabric, BlockingArchitectureBuildsChains) {
  analytic::SystemConfig config = small_config();
  config.architecture = NetworkArchitecture::kBlocking;
  const HmcsFabric fabric(config);
  // Chains: ICN1 ceil(8/8)=1 x4; ECN1 ceil(9/8)=2 x4; ICN2 1.
  EXPECT_EQ(fabric.graph().count_nodes(topology::NodeKind::kSwitch),
            4u + 8u + 1u);
}

}  // namespace
