// The blocked-source fixed point, eqs. (6)-(7): solver agreement,
// self-consistency, saturation throttling, and the queue-length rules.

#include <gtest/gtest.h>

#include <cmath>

#include "hmcs/analytic/fixed_point.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::analytic;

SystemConfig light_config() {
  // Low load: throttling should be negligible.
  return paper_scenario(HeterogeneityCase::kCase1, 4,
                        NetworkArchitecture::kNonBlocking, 1024.0, 256,
                        kPaperLiteralRatePerUs);  // 0.25 msg/s
}

SystemConfig heavy_config() {
  // The paper's headline rate saturates the FE egress path.
  return paper_scenario(HeterogeneityCase::kCase1, 4,
                        NetworkArchitecture::kNonBlocking, 1024.0, 256,
                        kPaperRatePerUs);  // 0.25 msg/ms
}

TEST(FixedPoint, LightLoadKeepsOfferedRate) {
  const SystemConfig config = light_config();
  const CenterServiceTimes service = center_service_times(config);
  const FixedPointResult result = solve_effective_rate(config, service);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.lambda_effective, config.generation_rate_per_us,
              1e-3 * config.generation_rate_per_us);
  // At 0.25 msg/s total offered work is ~0.06% of capacity; only a few
  // hundredths of a customer are ever queued system-wide.
  EXPECT_LT(result.total_queue_length, 0.1);
}

TEST(FixedPoint, HeavyLoadThrottles) {
  const SystemConfig config = heavy_config();
  const CenterServiceTimes service = center_service_times(config);
  const FixedPointResult result = solve_effective_rate(config, service);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.lambda_effective, 0.5 * config.generation_rate_per_us);
  EXPECT_GT(result.total_queue_length, 10.0);
  EXPECT_LE(result.total_queue_length,
            static_cast<double>(config.total_nodes()));
}

TEST(FixedPoint, SolutionIsSelfConsistent) {
  // lambda_eff == lambda * (N - L(lambda_eff)) / N at the returned point.
  for (const auto hetero : {HeterogeneityCase::kCase1, HeterogeneityCase::kCase2}) {
    for (const std::uint32_t clusters : {1u, 2u, 16u, 256u}) {
      const SystemConfig config = paper_scenario(
          hetero, clusters, NetworkArchitecture::kNonBlocking, 1024.0);
      const CenterServiceTimes service = center_service_times(config);
      const FixedPointResult result = solve_effective_rate(config, service);
      const double n = static_cast<double>(config.total_nodes());
      const double recomputed =
          config.generation_rate_per_us * (n - result.total_queue_length) / n;
      EXPECT_NEAR(result.lambda_effective, recomputed,
                  1e-4 * config.generation_rate_per_us)
          << "C=" << clusters;
    }
  }
}

TEST(FixedPoint, PicardAgreesWithBisectionWhenItConverges) {
  const SystemConfig config = light_config();
  const CenterServiceTimes service = center_service_times(config);
  FixedPointOptions picard;
  picard.method = SourceThrottling::kPicard;
  FixedPointOptions bisect;
  bisect.method = SourceThrottling::kBisection;
  const FixedPointResult a = solve_effective_rate(config, service, picard);
  const FixedPointResult b = solve_effective_rate(config, service, bisect);
  ASSERT_TRUE(a.converged);
  EXPECT_NEAR(a.lambda_effective, b.lambda_effective,
              1e-6 * config.generation_rate_per_us);
}

TEST(FixedPoint, DampedPicardHandlesModerateLoad) {
  SystemConfig config = heavy_config();
  config.generation_rate_per_us = 0.4e-4;  // rho just under saturation
  const CenterServiceTimes service = center_service_times(config);
  FixedPointOptions picard;
  picard.method = SourceThrottling::kPicard;
  picard.picard_damping = 0.3;
  picard.max_iterations = 5000;
  picard.tolerance = 1e-10;
  const FixedPointResult a = solve_effective_rate(config, service, picard);
  const FixedPointResult b = solve_effective_rate(config, service);
  if (a.converged) {
    EXPECT_NEAR(a.lambda_effective, b.lambda_effective,
                0.02 * config.generation_rate_per_us);
  }
}

TEST(FixedPoint, NoneReturnsOfferedRate) {
  const SystemConfig config = heavy_config();
  const CenterServiceTimes service = center_service_times(config);
  FixedPointOptions none;
  none.method = SourceThrottling::kNone;
  const FixedPointResult result = solve_effective_rate(config, service, none);
  EXPECT_DOUBLE_EQ(result.lambda_effective, config.generation_rate_per_us);
  // At the raw rate the FE path is saturated: L snaps to N.
  EXPECT_DOUBLE_EQ(result.total_queue_length,
                   static_cast<double>(config.total_nodes()));
}

TEST(FixedPoint, MvaAgreesWithBisectionAtLightLoad) {
  const SystemConfig config = light_config();
  const CenterServiceTimes service = center_service_times(config);
  FixedPointOptions mva;
  mva.method = SourceThrottling::kExactMva;
  const FixedPointResult a = solve_effective_rate(config, service, mva);
  const FixedPointResult b = solve_effective_rate(config, service);
  EXPECT_NEAR(a.lambda_effective, b.lambda_effective,
              1e-3 * config.generation_rate_per_us);
}

TEST(FixedPoint, QueueRuleEq6CountsEcn1Twice) {
  const SystemConfig config = heavy_config();
  const CenterServiceTimes service = center_service_times(config);
  const double rate = 0.3e-4;  // below saturation so L is finite
  const double paper =
      total_queue_length(config, service, rate, QueueLengthRule::kPaperEq6);
  const double consistent =
      total_queue_length(config, service, rate, QueueLengthRule::kConsistent);
  EXPECT_GT(paper, consistent);
}

TEST(FixedPoint, EffectiveRateMonotoneInOfferedRate) {
  double previous = 0.0;
  for (const double rate : {0.5e-4, 1e-4, 2e-4, 4e-4, 8e-4}) {
    SystemConfig config = heavy_config();
    config.generation_rate_per_us = rate;
    const CenterServiceTimes service = center_service_times(config);
    const double eff =
        solve_effective_rate(config, service).lambda_effective;
    EXPECT_GE(eff, previous - 1e-12);
    EXPECT_LE(eff, rate);
    previous = eff;
  }
}

TEST(FixedPoint, ZeroGenerationRateConvergesAtZero) {
  // lambda == 0 used to divide the Picard residual by lambda (NaN) and
  // make the tolerance test a vacuous `<= 0`; all solvers now return
  // the exact answer — converged at 0 in 0 iterations — and the
  // residual trace stays empty and finite.
  SystemConfig config = light_config();
  config.generation_rate_per_us = 0.0;
  config.validate();  // zero load is a valid configuration
  const CenterServiceTimes service = center_service_times(config);

  for (const SourceThrottling method :
       {SourceThrottling::kPicard, SourceThrottling::kBisection,
        SourceThrottling::kExactMva, SourceThrottling::kNone}) {
    FixedPointOptions options;
    options.method = method;
    std::vector<double> residuals;
    options.residual_trace = &residuals;
    const FixedPointResult result =
        solve_effective_rate(config, service, options);
    EXPECT_TRUE(result.converged) << static_cast<int>(method);
    EXPECT_DOUBLE_EQ(result.lambda_effective, 0.0);
    EXPECT_DOUBLE_EQ(result.total_queue_length, 0.0);
    EXPECT_EQ(result.iterations, 0u);
    for (const double r : residuals) EXPECT_FALSE(std::isnan(r));
  }
}

TEST(FixedPoint, Validation) {
  const SystemConfig config = light_config();
  const CenterServiceTimes service = center_service_times(config);
  FixedPointOptions bad;
  bad.tolerance = 0.0;
  EXPECT_THROW(solve_effective_rate(config, service, bad), hmcs::ConfigError);
  bad = {};
  bad.max_iterations = 0;
  EXPECT_THROW(solve_effective_rate(config, service, bad), hmcs::ConfigError);
  bad = {};
  bad.picard_damping = 1.5;
  EXPECT_THROW(solve_effective_rate(config, service, bad), hmcs::ConfigError);
  EXPECT_THROW(total_queue_length(config, service, -1.0,
                                  QueueLengthRule::kPaperEq6),
               hmcs::ConfigError);
}

}  // namespace
