#include <gtest/gtest.h>

#include <vector>

#include "hmcs/simcore/simulation.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::simcore::Simulator;

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<double> seen;
  sim.schedule_after(5.0, [&] { seen.push_back(sim.now()); });
  sim.schedule_after(2.0, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<double>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(Simulator, ScheduleAtUsesAbsoluteTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(7.5, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  sim.schedule_after(1.0, [&] {
    ++chain;
    sim.schedule_after(1.0, [&] {
      ++chain;
      sim.schedule_after(1.0, [&] { ++chain; });
    });
  });
  sim.run();
  EXPECT_EQ(chain, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, RejectsPastAndNegativeScheduling) {
  Simulator sim;
  sim.schedule_after(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), hmcs::ConfigError);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), hmcs::ConfigError);
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  // A later run resumes with the remaining events.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> seen;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_after(t, [&, t] { seen.push_back(t); });
  }
  const auto executed = sim.run_until(2.5);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
  // Clock lands exactly on the deadline when no event sits there.
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  sim.run();
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Simulator, RunUntilExecutesEventExactlyAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(2.0, [&] { fired = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelledEventNeverFires) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_after(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, ZeroDelayEventsRunInFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(0.0, [&] { order.push_back(1); });
  sim.schedule_after(0.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
