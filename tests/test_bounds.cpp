// Operational asymptotic bounds and their envelope property: every
// solver's prediction must respect them.

#include <gtest/gtest.h>

#include <limits>

#include "hmcs/analytic/bounds.hpp"
#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::analytic;

TEST(Bounds, TotalDemandEqualsNoLoadLatency) {
  // D = (1-P)T_I1 + P(2T_E1 + T_I2) is exactly eq. (15) at zero load.
  const SystemConfig config =
      paper_scenario(HeterogeneityCase::kCase1, 8,
                     NetworkArchitecture::kNonBlocking, 1024.0, 256,
                     kPaperLiteralRatePerUs);
  const AsymptoticBounds bounds = compute_bounds(config);
  const LatencyPrediction prediction = predict_latency(config);
  EXPECT_NEAR(bounds.total_demand_us, prediction.mean_latency_us,
              1e-2 * prediction.mean_latency_us);
}

TEST(Bounds, BottleneckIdentification) {
  // Case 1, C=2: each cluster's FE egress carries half the system;
  // C=8+: the single shared FE backbone dominates; C=1: only ICN1.
  EXPECT_STREQ(compute_bounds(paper_scenario(HeterogeneityCase::kCase1, 2,
                                             NetworkArchitecture::kNonBlocking,
                                             1024.0))
                   .bottleneck,
               "ECN1");
  EXPECT_STREQ(compute_bounds(paper_scenario(HeterogeneityCase::kCase1, 8,
                                             NetworkArchitecture::kNonBlocking,
                                             1024.0))
                   .bottleneck,
               "ICN2");
  EXPECT_STREQ(compute_bounds(paper_scenario(HeterogeneityCase::kCase1, 1,
                                             NetworkArchitecture::kNonBlocking,
                                             1024.0))
                   .bottleneck,
               "ICN1");
  EXPECT_STREQ(compute_bounds(paper_scenario(HeterogeneityCase::kCase1, 256,
                                             NetworkArchitecture::kNonBlocking,
                                             1024.0))
                   .bottleneck,
               "ICN2");
}

TEST(Bounds, EnvelopeHoldsForExactMva) {
  // The exact solver can never leave the operational envelope.
  for (const auto hetero :
       {HeterogeneityCase::kCase1, HeterogeneityCase::kCase2}) {
    for (const auto arch : {NetworkArchitecture::kNonBlocking,
                            NetworkArchitecture::kBlocking}) {
      for (const std::uint32_t clusters : {1u, 2u, 16u, 256u}) {
        const SystemConfig config =
            paper_scenario(hetero, clusters, arch, 1024.0);
        const AsymptoticBounds bounds = compute_bounds(config);
        ModelOptions options;
        options.fixed_point.method = SourceThrottling::kExactMva;
        const LatencyPrediction prediction = predict_latency(config, options);
        EXPECT_LE(prediction.lambda_effective,
                  bounds.throughput_upper_per_us * 1.001)
            << "C=" << clusters;
        EXPECT_GE(prediction.mean_latency_us, bounds.latency_lower_us * 0.98)
            << "C=" << clusters;
      }
    }
  }
}

TEST(Bounds, PaperApproximationViolatesTheEnvelopeAtPartialSaturation) {
  // Documented deficiency of eqs. (6)-(7): at C=2 (one centre class
  // saturated, the rest idle) the open-network fixed point predicts a
  // latency below the N*D_max - Z operational lower bound — something no
  // real closed network can do. This is precisely the figure-4 C=2
  // outlier that kExactMva eliminates.
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 2, NetworkArchitecture::kNonBlocking, 1024.0);
  const AsymptoticBounds bounds = compute_bounds(config);
  const LatencyPrediction open = predict_latency(config);  // kBisection
  EXPECT_LT(open.mean_latency_us, bounds.latency_lower_us);

  ModelOptions mva;
  mva.fixed_point.method = SourceThrottling::kExactMva;
  const LatencyPrediction exact = predict_latency(config, mva);
  EXPECT_GE(exact.mean_latency_us, bounds.latency_lower_us * 0.98);
}

TEST(Bounds, ThroughputBoundTightAtSaturation) {
  // Deep saturation: exact MVA approaches the bottleneck bound.
  SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking, 1024.0);
  config.generation_rate_per_us = 4e-3;  // 4000 msg/s/node
  const AsymptoticBounds bounds = compute_bounds(config);
  ModelOptions mva;
  mva.fixed_point.method = SourceThrottling::kExactMva;
  const LatencyPrediction prediction = predict_latency(config, mva);
  EXPECT_GT(prediction.lambda_effective,
            0.95 * bounds.throughput_upper_per_us);
  EXPECT_LE(prediction.lambda_effective,
            1.001 * bounds.throughput_upper_per_us);
}

TEST(Bounds, LatencyBoundTightAtLowLoad) {
  const SystemConfig config =
      paper_scenario(HeterogeneityCase::kCase2, 16,
                     NetworkArchitecture::kNonBlocking, 512.0, 256,
                     kPaperLiteralRatePerUs);
  const AsymptoticBounds bounds = compute_bounds(config);
  const LatencyPrediction prediction = predict_latency(config);
  EXPECT_NEAR(prediction.mean_latency_us, bounds.latency_lower_us,
              0.01 * bounds.latency_lower_us);
}

TEST(Bounds, BlockingRaisesTheBottleneck) {
  const AsymptoticBounds nonblocking = compute_bounds(paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking, 1024.0));
  const AsymptoticBounds blocking = compute_bounds(paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kBlocking, 1024.0));
  EXPECT_GT(blocking.bottleneck_demand_us, nonblocking.bottleneck_demand_us);
  EXPECT_LT(blocking.throughput_upper_per_us,
            nonblocking.throughput_upper_per_us);
}

}  // namespace
