// Destination selection: uniform (assumption 3), localized, hotspot.

#include <gtest/gtest.h>

#include <vector>

#include "hmcs/simcore/rng.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/workload/traffic_pattern.hpp"

namespace {

using namespace hmcs::workload;
using hmcs::simcore::Rng;

TEST(NodeSpace, UniformLayout) {
  const NodeSpace space = NodeSpace::uniform(4, 8);
  EXPECT_EQ(space.total_nodes(), 32u);
  EXPECT_EQ(space.cluster_of(0), 0u);
  EXPECT_EQ(space.cluster_of(7), 0u);
  EXPECT_EQ(space.cluster_of(8), 1u);
  EXPECT_EQ(space.cluster_of(31), 3u);
  EXPECT_EQ(space.first_node_of(2), 16u);
}

TEST(NodeSpace, RaggedLayout) {
  NodeSpace space;
  space.clusters = 3;
  space.nodes_per_cluster = {5, 1, 10};
  space.validate();
  EXPECT_EQ(space.total_nodes(), 16u);
  EXPECT_EQ(space.cluster_of(4), 0u);
  EXPECT_EQ(space.cluster_of(5), 1u);
  EXPECT_EQ(space.cluster_of(6), 2u);
  EXPECT_EQ(space.first_node_of(2), 6u);
  EXPECT_THROW(space.cluster_of(16), hmcs::ConfigError);
}

TEST(NodeSpace, Validation) {
  NodeSpace bad;
  bad.clusters = 2;
  bad.nodes_per_cluster = {4};
  EXPECT_THROW(bad.validate(), hmcs::ConfigError);
  bad.nodes_per_cluster = {4, 0};
  EXPECT_THROW(bad.validate(), hmcs::ConfigError);
}

TEST(UniformTraffic, NeverPicksSelfAndCoversEveryone) {
  const UniformTraffic traffic(NodeSpace::uniform(2, 4));
  Rng rng(3);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) {
    const std::uint64_t dst = traffic.pick_destination(3, rng);
    ASSERT_NE(dst, 3u);
    ASSERT_LT(dst, 8u);
    ++hits[dst];
  }
  // Uniform over the 7 others: ~1143 each.
  for (std::uint64_t node = 0; node < 8; ++node) {
    if (node == 3) {
      EXPECT_EQ(hits[node], 0);
    } else {
      EXPECT_NEAR(hits[node], 8000 / 7, 150);
    }
  }
}

TEST(UniformTraffic, MatchesEq8RemoteFraction) {
  const NodeSpace space = NodeSpace::uniform(4, 16);
  const UniformTraffic traffic(space);
  Rng rng(11);
  int remote = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t dst = traffic.pick_destination(5, rng);
    if (space.cluster_of(dst) != 0) ++remote;
  }
  // eq. (8): P = (C-1)N0/(CN0-1) = 48/63.
  EXPECT_NEAR(static_cast<double>(remote) / kSamples, 48.0 / 63.0, 0.01);
}

TEST(UniformTraffic, RequiresTwoNodes) {
  EXPECT_THROW(UniformTraffic(NodeSpace::uniform(1, 1)), hmcs::ConfigError);
}

TEST(LocalizedTraffic, LocalityZeroNeverStaysHome) {
  const NodeSpace space = NodeSpace::uniform(4, 8);
  const LocalizedTraffic traffic(space, 0.0);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(space.cluster_of(traffic.pick_destination(2, rng)), 0u);
  }
}

TEST(LocalizedTraffic, LocalityOneAlwaysStaysHome) {
  const NodeSpace space = NodeSpace::uniform(4, 8);
  const LocalizedTraffic traffic(space, 1.0);
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t dst = traffic.pick_destination(10, rng);
    EXPECT_EQ(space.cluster_of(dst), 1u);
    EXPECT_NE(dst, 10u);
  }
}

TEST(LocalizedTraffic, IntermediateLocalityMatchesProbability) {
  const NodeSpace space = NodeSpace::uniform(4, 8);
  const LocalizedTraffic traffic(space, 0.7);
  Rng rng(9);
  int local = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (space.cluster_of(traffic.pick_destination(0, rng)) == 0) ++local;
  }
  EXPECT_NEAR(static_cast<double>(local) / kSamples, 0.7, 0.01);
}

TEST(LocalizedTraffic, SingleClusterFallsBackToUniform) {
  const NodeSpace space = NodeSpace::uniform(1, 8);
  const LocalizedTraffic traffic(space, 0.0);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t dst = traffic.pick_destination(4, rng);
    EXPECT_NE(dst, 4u);
    EXPECT_LT(dst, 8u);
  }
}

TEST(LocalizedTraffic, RejectsBadLocality) {
  EXPECT_THROW(LocalizedTraffic(NodeSpace::uniform(2, 2), 1.5),
               hmcs::ConfigError);
}

TEST(HotspotTraffic, FractionRoutesToHotspot) {
  const NodeSpace space = NodeSpace::uniform(2, 8);
  const HotspotTraffic traffic(space, 0, 0.5);
  Rng rng(13);
  int hot = 0;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    if (traffic.pick_destination(9, rng) == 0) ++hot;
  }
  // 0.5 directly + 0.5 * 1/15 uniform residue.
  EXPECT_NEAR(static_cast<double>(hot) / kSamples, 0.5 + 0.5 / 15.0, 0.01);
}

TEST(HotspotTraffic, HotspotItselfSendsUniformly) {
  const NodeSpace space = NodeSpace::uniform(2, 4);
  const HotspotTraffic traffic(space, 3, 0.9);
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(traffic.pick_destination(3, rng), 3u);
  }
}

TEST(HotspotTraffic, Validation) {
  EXPECT_THROW(HotspotTraffic(NodeSpace::uniform(2, 4), 8, 0.5),
               hmcs::ConfigError);
  EXPECT_THROW(HotspotTraffic(NodeSpace::uniform(2, 4), 0, -0.1),
               hmcs::ConfigError);
}

TEST(Patterns, NamesAreDescriptive) {
  const NodeSpace space = NodeSpace::uniform(2, 4);
  EXPECT_EQ(UniformTraffic(space).name(), "uniform");
  EXPECT_NE(LocalizedTraffic(space, 0.25).name().find("0.25"),
            std::string::npos);
  EXPECT_NE(HotspotTraffic(space, 2, 0.5).name().find("node 2"),
            std::string::npos);
}

}  // namespace
