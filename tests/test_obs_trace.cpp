// The span/trace recorder and its Chrome trace-event export: ring
// bounding, JSON validity (parsed back with hmcs::util::parse_json), the
// end-to-end fixed-seed simulator golden run, and the fixed-point
// residual trace.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "hmcs/analytic/fixed_point.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/obs/sampler.hpp"
#include "hmcs/obs/trace.hpp"
#include "hmcs/sim/multicluster_sim.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs;

TEST(ObsTrace, RecordsSpansInOrder) {
  obs::TraceSession session;
  session.complete("a", "cat", 10.0, 5.0);
  session.instant("b", "cat", 20.0);
  session.counter("depth", 30.0, 4.0);
  EXPECT_EQ(session.size(), 3u);
  EXPECT_EQ(session.dropped_count(), 0u);
  const auto events = session.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_DOUBLE_EQ(events[0].duration_us, 5.0);
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[2].phase, 'C');
  EXPECT_DOUBLE_EQ(events[2].counter_value, 4.0);
}

TEST(ObsTrace, RingKeepsNewestAndCountsDrops) {
  obs::TraceSession session(4);
  for (int i = 0; i < 10; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    session.instant(name, "cat", static_cast<double>(i));
  }
  EXPECT_EQ(session.size(), 4u);
  EXPECT_EQ(session.dropped_count(), 6u);
  const auto events = session.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first: e6 e7 e8 e9.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
}

TEST(ObsTrace, ChromeJsonIsValidAndComplete) {
  obs::TraceSession session;
  session.set_process_name(1, "proc \"one\"");
  session.set_thread_name(1, 2, "lane");
  session.complete("span", "cat", 1.5, 2.5, 1, 2);
  session.counter("depth", 3.0, 7.0, 1);

  const JsonValue doc = parse_json(session.to_chrome_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  // 2 metadata + 2 events.
  ASSERT_EQ(events.size(), 4u);
  bool saw_span = false;
  bool saw_counter = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    // Required trace-event fields on every record.
    EXPECT_TRUE(event.find("name") != nullptr);
    EXPECT_TRUE(event.find("ph") != nullptr);
    EXPECT_TRUE(event.find("ts") != nullptr);
    EXPECT_TRUE(event.find("pid") != nullptr);
    const std::string ph = event.at("ph").as_string();
    if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(event.at("name").as_string(), "span");
      EXPECT_DOUBLE_EQ(event.at("ts").as_number(), 1.5);
      EXPECT_DOUBLE_EQ(event.at("dur").as_number(), 2.5);
    } else if (ph == "C") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(event.at("args").at("value").as_number(), 7.0);
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
}

/// The golden end-to-end check: a fixed-seed simulator run with tracing
/// and sampling attached must emit a parseable Chrome trace containing
/// the phase spans and every sampled counter track.
TEST(ObsTrace, FixedSeedSimProducesLoadableTrace) {
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, 4,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0, 16, 1e-4);
  sim::SimOptions options;
  options.measured_messages = 200;
  options.warmup_messages = 50;
  options.seed = 11;
  options.obs.trace = std::make_shared<obs::TraceSession>();
  options.obs.trace_pid = 5;
  options.obs.sample_interval_us = 500.0;
  sim::MultiClusterSim simulator(config, options);
  const sim::SimResult result = simulator.run();

  ASSERT_NE(simulator.sampler(), nullptr);
  EXPECT_EQ(result.obs.samples_taken, simulator.sampler()->samples_taken());
  EXPECT_GT(result.obs.samples_taken, 0u);
  EXPECT_GT(result.obs.warmup_end_us, 0.0);
  EXPECT_GT(result.obs.events_pushed, 0u);

  const JsonValue doc = parse_json(options.obs.trace->to_chrome_json());
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  std::set<std::string> names;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const JsonValue& event = events.at(i);
    names.insert(event.at("name").as_string());
    EXPECT_DOUBLE_EQ(event.at("pid").as_number(), 5.0);
    EXPECT_GE(event.at("ts").as_number(), 0.0);
  }
  EXPECT_TRUE(names.count("warmup"));
  EXPECT_TRUE(names.count("measurement"));
  EXPECT_TRUE(names.count("measurement_start"));
  EXPECT_TRUE(names.count("sim.event_queue.pending"));
  EXPECT_TRUE(names.count("sim.icn1.queue_total"));
  EXPECT_TRUE(names.count("sim.messages_in_flight"));
}

TEST(ObsTrace, SamplerSeriesAreBoundedAndMirrored) {
  obs::TraceSession session;
  obs::TimeSeriesSampler sampler(4);
  sampler.attach_trace(&session, 9);
  double value = 0.0;
  sampler.add_probe("probe", [&value] { return value; });
  for (int i = 0; i < 10; ++i) {
    value = static_cast<double>(i);
    sampler.sample(static_cast<double>(i) * 10.0);
  }
  ASSERT_EQ(sampler.series().size(), 1u);
  const auto& series = sampler.series()[0];
  EXPECT_EQ(series.values.size(), 4u);
  EXPECT_EQ(series.dropped, 6u);
  EXPECT_DOUBLE_EQ(series.values.back(), 9.0);
  EXPECT_DOUBLE_EQ(series.values.front(), 6.0);
  EXPECT_EQ(sampler.samples_taken(), 10u);
  // Mirrored counter events are unbounded by the series cap (ring-bounded
  // by the session instead).
  EXPECT_EQ(session.size(), 10u);
}

/// Satellite check: the bisection residual trace decays monotonically
/// (the bracket halves every iteration) and ends below tolerance.
TEST(ObsTrace, BisectionResidualTraceDecaysMonotonically) {
  const analytic::SystemConfig config = analytic::paper_scenario(
      analytic::HeterogeneityCase::kCase1, 4,
      analytic::NetworkArchitecture::kNonBlocking, 1024.0, 256,
      analytic::kPaperRatePerUs);
  const analytic::CenterServiceTimes service =
      analytic::center_service_times(config);
  std::vector<double> residuals;
  analytic::FixedPointOptions options;
  options.method = analytic::SourceThrottling::kBisection;
  options.tolerance = 1e-9;
  options.residual_trace = &residuals;
  const analytic::FixedPointResult result =
      analytic::solve_effective_rate(config, service, options);
  EXPECT_TRUE(result.converged);
  ASSERT_GE(residuals.size(), 2u);
  EXPECT_EQ(residuals.size(), result.iterations);
  for (std::size_t i = 1; i < residuals.size(); ++i) {
    EXPECT_LT(residuals[i], residuals[i - 1]);
  }
  EXPECT_LE(residuals.back(), options.tolerance);
  // The same buffer is cleared and refilled on reuse.
  analytic::solve_effective_rate(config, service, options);
  EXPECT_EQ(residuals.size(), result.iterations);
}

TEST(ObsTrace, WriteFileRejectsBadPath) {
  obs::TraceSession session;
  session.instant("x", "cat", 0.0);
  EXPECT_THROW(session.write_file("/nonexistent-dir-xyz/trace.json"),
               hmcs::Error);
}

}  // namespace
