// Proves the event engine's core claim: steady-state push/pop/cancel
// churn performs ZERO heap allocations. Global operator new/delete are
// replaced with counting versions; the count is armed only around the
// measured loop (gtest itself allocates freely outside it).
//
// The warm-up loops matter: the slot pool and calendar geometry are
// allowed to allocate while growing to their high-water mark — the
// contract is about the steady state after that.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "hmcs/simcore/event_queue.hpp"
#include "hmcs/simcore/rng.hpp"

namespace {
// Single-threaded tests; plain counters are fine.
std::uint64_t g_new_calls = 0;
bool g_counting = false;

void* counted_alloc(std::size_t size) {
  if (g_counting) ++g_new_calls;
  if (void* ptr = std::malloc(size)) return ptr;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace {

using hmcs::simcore::EventId;
using hmcs::simcore::EventQueue;
using hmcs::simcore::Rng;

TEST(EngineAllocation, SteadyStateChurnIsAllocationFree) {
  EventQueue queue;
  Rng rng(42);
  double sink = 0.0;
  for (int i = 0; i < 4096; ++i) {
    queue.push(rng.uniform(0.0, 1000.0), [&sink] { sink += 1.0; });
  }
  // Reach the slot-pool and calendar high-water mark (rebuilds included)
  // before arming the counter.
  double now = 0.0;
  for (int i = 0; i < 100000; ++i) {
    auto event = queue.pop_next();
    now = event->time;
    queue.push(now + rng.uniform(0.0, 1000.0), [&sink] { sink += 1.0; });
  }

  g_new_calls = 0;
  g_counting = true;
  for (int i = 0; i < 100000; ++i) {
    auto event = queue.pop_next();
    event->action();
    now = event->time;
    queue.push(now + rng.uniform(0.0, 1000.0), [&sink] { sink += 1.0; });
  }
  g_counting = false;

  EXPECT_EQ(g_new_calls, 0u);
  EXPECT_GT(sink, 0.0);
}

TEST(EngineAllocation, CancelHeavyChurnIsAllocationFree) {
  // Timer-wheel style: every iteration arms a far-future timeout and
  // disarms an earlier one, so tombstones flow through the calendar's
  // purge path while live population stays pinned.
  constexpr std::size_t kLag = 64;
  EventQueue queue;
  Rng rng(7);
  std::vector<EventId> pending(kLag);
  for (int i = 0; i < 2048; ++i) queue.push(rng.uniform(0.0, 1000.0), [] {});
  for (std::size_t i = 0; i < kLag; ++i) {
    pending[i] = queue.push(1.0e6 + rng.uniform(0.0, 1000.0), [] {});
  }
  double now = 0.0;
  std::size_t cursor = 0;
  auto churn = [&](int iterations) {
    for (int i = 0; i < iterations; ++i) {
      auto event = queue.pop_next();
      now = event->time;
      queue.push(now + rng.uniform(0.0, 1000.0), [] {});
      const EventId fresh =
          queue.push(now + 1.0e6 + rng.uniform(0.0, 1000.0), [] {});
      ASSERT_TRUE(queue.cancel(pending[cursor]));
      pending[cursor] = fresh;
      cursor = (cursor + 1) % kLag;
    }
  };
  churn(100000);  // several tombstone purge cycles — high-water reached

  g_new_calls = 0;
  g_counting = true;
  churn(100000);
  g_counting = false;

  EXPECT_EQ(g_new_calls, 0u);
}

TEST(EngineAllocation, InlineCapturesDoNotAllocate) {
  // A capture that would overflow std::function's small-buffer
  // optimisation on common ABIs still fits InlineFunction's inline
  // storage: scheduling it must not touch the heap.
  EventQueue queue;
  double a = 1.0, b = 2.0, c = 3.0, d = 4.0;
  double out = 0.0;
  queue.push(0.0, [] {});  // first push builds the initial geometry
  queue.pop_next();

  g_new_calls = 0;
  g_counting = true;
  queue.push(1.0, [&out, a, b, c, d] { out = a + b + c + d; });
  auto event = queue.pop_next();
  g_counting = false;

  ASSERT_TRUE(event.has_value());
  event->action();
  EXPECT_EQ(g_new_calls, 0u);
  EXPECT_EQ(out, 10.0);
}

}  // namespace
