// Tests for the hmcs_serve layer: the sharded LRU cache, canonical
// request keys, the service's cache/single-flight/deadline semantics,
// the bounded work-stealing pool, and the TCP server's graceful drain
// (every accepted request answered, over real sockets).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hmcs/serve/cache.hpp"
#include "hmcs/serve/request.hpp"
#include "hmcs/serve/server.hpp"
#include "hmcs/serve/service.hpp"
#include "hmcs/serve/single_flight.hpp"
#include "hmcs/serve/thread_pool.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/json.hpp"

namespace {

using namespace hmcs;

serve::ServeRequest parse_line(const std::string& line) {
  return serve::parse_request(parse_json(line));
}

// ---------------------------------------------------------------------------
// ShardedResultCache

TEST(ServeCache, StoresAndEvictsLru) {
  serve::ShardedResultCache cache({.shards = 1, .capacity = 2});
  cache.put(1, "a", "A");
  cache.put(2, "b", "B");
  EXPECT_EQ(cache.get(1, "a"), std::optional<std::string>("A"));
  // "b" is now LRU; inserting "c" evicts it.
  cache.put(3, "c", "C");
  EXPECT_FALSE(cache.get(2, "b").has_value());
  EXPECT_EQ(cache.get(1, "a"), std::optional<std::string>("A"));
  EXPECT_EQ(cache.get(3, "c"), std::optional<std::string>("C"));

  const serve::ShardedResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ServeCache, HashCollisionsDoNotShareReplies) {
  serve::ShardedResultCache cache({.shards = 4, .capacity = 16});
  // Same hash, different keys: must be distinct entries.
  cache.put(7, "first", "1");
  cache.put(7, "second", "2");
  EXPECT_EQ(cache.get(7, "first"), std::optional<std::string>("1"));
  EXPECT_EQ(cache.get(7, "second"), std::optional<std::string>("2"));
}

TEST(ServeCache, PutIsIdempotent) {
  serve::ShardedResultCache cache({.shards = 2, .capacity = 8});
  cache.put(5, "k", "v");
  cache.put(5, "k", "v");
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.get(5, "k"), std::optional<std::string>("v"));
}

// ---------------------------------------------------------------------------
// Canonical request keys

TEST(ServeRequestKey, MemberOrderDoesNotMatter) {
  const serve::ServeRequest a = parse_line(
      R"({"config":{"clusters":8,"total_nodes":256,"message_bytes":2048}})");
  const serve::ServeRequest b = parse_line(
      R"({"config":{"message_bytes":2048,"total_nodes":256,"clusters":8}})");
  EXPECT_EQ(a.canonical_key, b.canonical_key);
  EXPECT_EQ(a.key_hash, b.key_hash);
}

TEST(ServeRequestKey, ExplicitDefaultsMatchOmitted) {
  // "case1" and paper defaults spelled out explicitly must collapse to
  // the same key as the all-defaults request.
  const serve::ServeRequest implicit = parse_line(R"({"config":{}})");
  const serve::ServeRequest expanded = parse_line(
      R"({"backend":{"type":"analytic"},
          "config":{"clusters":1,"total_nodes":256,
                    "architecture":"non-blocking","technology":"case1",
                    "message_bytes":1024,"lambda_per_s":250}})");
  EXPECT_EQ(implicit.canonical_key, expanded.canonical_key);
}

TEST(ServeRequestKey, NodesPerClusterEqualsTotalNodes) {
  const serve::ServeRequest by_total =
      parse_line(R"({"config":{"clusters":4,"total_nodes":64}})");
  const serve::ServeRequest by_per_cluster =
      parse_line(R"({"config":{"clusters":4,"nodes_per_cluster":16}})");
  EXPECT_EQ(by_total.canonical_key, by_per_cluster.canonical_key);
}

TEST(ServeRequestKey, SeedIgnoredForAnalyticOnly) {
  const serve::ServeRequest analytic_a =
      parse_line(R"({"config":{},"seed":1})");
  const serve::ServeRequest analytic_b =
      parse_line(R"({"config":{},"seed":2})");
  EXPECT_EQ(analytic_a.canonical_key, analytic_b.canonical_key);

  const serve::ServeRequest des_a = parse_line(
      R"({"backend":{"type":"des","messages":100,"warmup":10},
          "config":{},"seed":1})");
  const serve::ServeRequest des_b = parse_line(
      R"({"backend":{"type":"des","messages":100,"warmup":10},
          "config":{},"seed":2})");
  EXPECT_NE(des_a.canonical_key, des_b.canonical_key);
}

TEST(ServeRequestKey, RejectsUnknownMembers) {
  EXPECT_THROW(parse_line(R"({"config":{},"bogus":1})"), ConfigError);
  EXPECT_THROW(parse_line(R"({"config":{"bogus":1}})"), ConfigError);
}

TEST(ServeRequestKey, DefaultWorkloadCollapsesOntoLegacyKey) {
  // The workload extension must not perturb existing cache lines: a
  // request spelling out the default scenario keys byte-identically to
  // one that never mentions "workload" — and neither key contains the
  // member at all, so pre-workload caches and snapshots stay warm.
  const serve::ServeRequest legacy =
      parse_line(R"({"config":{"clusters":8,"total_nodes":256}})");
  const serve::ServeRequest spelled = parse_line(
      R"({"config":{"clusters":8,"total_nodes":256,
                    "workload":{"service_cv2":1.0,"arrival_ca2":1.0}}})");
  EXPECT_EQ(legacy.canonical_key, spelled.canonical_key);
  EXPECT_EQ(legacy.canonical_key.find("workload"), std::string::npos);
}

TEST(ServeRequestKey, NonDefaultWorkloadGetsItsOwnKey) {
  const serve::ServeRequest legacy =
      parse_line(R"({"config":{"clusters":8,"total_nodes":256}})");
  const serve::ServeRequest hyper = parse_line(
      R"({"config":{"clusters":8,"total_nodes":256,
                    "workload":{"service_cv2":4.0}}})");
  EXPECT_NE(legacy.canonical_key, hyper.canonical_key);
  EXPECT_NE(hyper.canonical_key.find("workload"), std::string::npos);

  // Distinct scenarios key distinctly too.
  const serve::ServeRequest mmpp = parse_line(
      R"({"config":{"clusters":8,"total_nodes":256,
                    "workload":{"mmpp":{"burst_ratio":4.0}}}})");
  EXPECT_NE(hyper.canonical_key, mmpp.canonical_key);
  const serve::ServeRequest failure = parse_line(
      R"({"config":{"clusters":8,"total_nodes":256,
                    "workload":{"failure":{"mtbf_us":1e6,"mttr_us":1e3}}}})");
  EXPECT_NE(mmpp.canonical_key, failure.canonical_key);
}

TEST(ServeRequestKey, WorkloadRejectsUnknownAndConflictingMembers) {
  EXPECT_THROW(
      parse_line(R"({"config":{"workload":{"cv2":2.0}}})"), ConfigError);
  EXPECT_THROW(parse_line(R"({"config":{"workload":{
      "arrival_ca2":2.0,"mmpp":{"burst_ratio":2.0}}}})"),
               ConfigError);
}

TEST(ServeRequestKey, NestedFlatShapeCollidesWithFlatSchema) {
  // A depth-2 tree spelling the exact two-stage case-1 system must be
  // lowered at parse time and share the flat schema's canonical key
  // (and therefore its cache line).
  const serve::ServeRequest flat = parse_line(
      R"({"config":{"clusters":2,"nodes_per_cluster":32,
                    "technology":"case1","message_bytes":1024,
                    "lambda_per_s":250,
                    "switch_ports":24,"switch_latency_us":10}})");
  const serve::ServeRequest nested = parse_line(
      R"({"config":{"tree":{
            "network":"fast-ethernet",
            "children":[
              {"network":"gigabit-ethernet","egress":"fast-ethernet",
               "children":[{"processors":32,"lambda_per_s":250}]},
              {"network":"gigabit-ethernet","egress":"fast-ethernet",
               "children":[{"processors":32,"lambda_per_s":250}]}]},
          "message_bytes":1024,
          "switch_ports":24,"switch_latency_us":10}})");
  EXPECT_EQ(nested.tree, nullptr);  // lowered, not kept as a tree
  EXPECT_EQ(nested.canonical_key, flat.canonical_key);
  EXPECT_EQ(nested.key_hash, flat.key_hash);
}

TEST(ServeRequestKey, GenuinelyNestedTreeGetsItsOwnKey) {
  // Unequal children cannot lower; the request keeps the tree and keys
  // on the canonical recursive document.
  const serve::ServeRequest request = parse_line(
      R"({"config":{"tree":{
            "network":"fast-ethernet",
            "children":[
              {"network":"gigabit-ethernet","egress":"fast-ethernet",
               "children":[{"processors":32,"lambda_per_s":250},
                           {"processors":8,"lambda_per_s":100}]}]}}})");
  ASSERT_NE(request.tree, nullptr);
  EXPECT_NE(request.canonical_key.find("\"tree\""), std::string::npos);
}

TEST(ServeRequestKey, NestedSchemaRejectsUnknownMembersUniformly) {
  // Typos fail loudly in the nested schema exactly as in the flat one.
  EXPECT_THROW(parse_line(
                   R"({"config":{"tree":{"network":"fast-ethernet",
                        "children":[{"processors":2,"lambda_per_s":1}]},
                        "bogus":1}})"),
               ConfigError);
  EXPECT_THROW(parse_line(
                   R"({"config":{"tree":{"network":"fast-ethernet",
                        "bogus":1,
                        "children":[{"processors":2,"lambda_per_s":1}]}}})"),
               ConfigError);
  EXPECT_THROW(parse_line(
                   R"({"config":{"tree":{"network":"fast-ethernet",
                        "children":[{"processors":2,"lambda_per_s":1,
                                     "bogus":1}]}}})"),
               ConfigError);
}

// ---------------------------------------------------------------------------
// ServeService

constexpr const char* kTinyRequest =
    R"({"id":"r1","config":{"clusters":2,"total_nodes":32}})";

TEST(ServeService, CachedReplyIsByteIdenticalToCold) {
  serve::ServeService service({});
  const std::string cold = service.handle_line(kTinyRequest);
  EXPECT_NE(cold.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(cold.find("\"id\":\"r1\""), std::string::npos);
  const std::string warm = service.handle_line(kTinyRequest);
  EXPECT_EQ(warm, cold);

  const serve::ShardedResultCache::Stats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(service.counters().evaluations, 1u);
}

TEST(ServeService, EvaluatesNonDefaultWorkloadRequests) {
  // End-to-end: a cv^2 = 4 request misses the default request's cache
  // line, evaluates through the G/G/1 path, and prices higher latency.
  serve::ServeService service({});
  const std::string base = service.handle_line(
      R"({"config":{"clusters":2,"total_nodes":32,"lambda_per_s":250}})");
  const std::string hyper = service.handle_line(
      R"({"config":{"clusters":2,"total_nodes":32,"lambda_per_s":250,
                    "workload":{"service_cv2":4.0}}})");
  EXPECT_EQ(service.counters().evaluations, 2u);  // distinct cache lines
  const auto latency_of = [](const std::string& reply) {
    const JsonValue doc = parse_json(reply);
    return doc.at("result").at("mean_latency_us").as_number();
  };
  EXPECT_GT(latency_of(hyper), latency_of(base));
}

TEST(ServeService, DifferentIdSameConfigSharesTheCacheEntry) {
  serve::ServeService service({});
  const std::string first = service.handle_line(
      R"({"id":"a","config":{"clusters":2,"total_nodes":32}})");
  const std::string second = service.handle_line(
      R"({"id":"b","config":{"clusters":2,"total_nodes":32}})");
  EXPECT_EQ(service.counters().evaluations, 1u);
  // Bodies differ only in the spliced id.
  EXPECT_NE(first.find("\"id\":\"a\""), std::string::npos);
  EXPECT_NE(second.find("\"id\":\"b\""), std::string::npos);
  EXPECT_EQ(first.substr(first.find("\"status\"")),
            second.substr(second.find("\"status\"")));
}

TEST(ServeService, SingleFlightCoalescesConcurrentDuplicates) {
  serve::ServeService service({});
  // A key expensive enough (exact MVA, many nodes) that followers pile
  // onto the leader's flight.
  const std::string heavy =
      R"({"backend":{"type":"analytic","model":"mva"},
          "config":{"clusters":8,"total_nodes":65536}})";
  constexpr std::size_t kThreads = 8;
  std::vector<std::string> replies(kThreads);
  {
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i] { replies[i] = service.handle_line(heavy); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(service.counters().evaluations, 1u);
  for (const std::string& reply : replies) {
    EXPECT_EQ(reply, replies[0]);
    EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos);
  }
}

TEST(ServeService, ExpiredDeadlineYieldsTimedOutReply) {
  serve::ServeService service({});
  const std::string reply = service.handle_line(
      R"({"id":"d","config":{"clusters":2,"total_nodes":32},
          "deadline_ms":1e-9})");
  EXPECT_NE(reply.find("\"status\":\"timed_out\""), std::string::npos);
  EXPECT_NE(reply.find("\"id\":\"d\""), std::string::npos);
  EXPECT_EQ(service.counters().timed_out, 1u);
  // Failures are never cached: the same key without a deadline works.
  const std::string retry = service.handle_line(
      R"({"id":"d","config":{"clusters":2,"total_nodes":32}})");
  EXPECT_NE(retry.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ServeService, MalformedLineGetsErrorReplyWithId) {
  serve::ServeService service({});
  const std::string garbage = service.handle_line("not json at all");
  EXPECT_NE(garbage.find("\"status\":\"error\""), std::string::npos);

  const std::string bad = service.handle_line(
      R"({"id":7,"config":{"clusters":3,"total_nodes":32}})");
  EXPECT_NE(bad.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(bad.find("\"id\":7"), std::string::npos);
  EXPECT_EQ(service.counters().bad_requests, 2u);
}

TEST(ServeService, PingAndStatsOps) {
  serve::ServeService service({});
  const std::string pong = service.handle_line(R"({"op":"ping","id":"p"})");
  EXPECT_NE(pong.find("\"op\":\"ping\""), std::string::npos);
  EXPECT_NE(pong.find("\"id\":\"p\""), std::string::npos);

  service.handle_line(kTinyRequest);
  const JsonValue stats =
      parse_json(service.handle_line(R"({"op":"stats"})"));
  EXPECT_EQ(stats.at("serve").at("evaluations").as_number(), 1.0);
  EXPECT_EQ(stats.at("cache").at("misses").as_number(), 1.0);
}

TEST(ServeService, NoCacheBypassesTheCache) {
  serve::ServeService service({});
  service.handle_line(
      R"({"config":{"clusters":2,"total_nodes":32},"no_cache":true})");
  service.handle_line(
      R"({"config":{"clusters":2,"total_nodes":32},"no_cache":true})");
  EXPECT_EQ(service.counters().evaluations, 2u);
  EXPECT_EQ(service.cache_stats().entries, 0u);
}

TEST(ServeService, EvaluatesNestedTreeRequests) {
  serve::ServeService service({});
  const std::string reply = service.handle_line(
      R"({"id":"t1","config":{"tree":{
            "network":"fast-ethernet",
            "children":[
              {"network":"gigabit-ethernet","egress":"fast-ethernet",
               "children":[{"processors":16,"lambda_per_s":100},
                           {"processors":8,"lambda_per_s":50}]},
              {"network":"gigabit-ethernet","egress":"fast-ethernet",
               "children":[{"processors":32,"lambda_per_s":75}]}]},
          "message_bytes":1024}})");
  EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(reply.find("\"id\":\"t1\""), std::string::npos);
  EXPECT_NE(reply.find("mean_latency_us"), std::string::npos);

  // The warm path replays the cached body byte-for-byte.
  const std::string warm = service.handle_line(
      R"({"id":"t1","config":{"tree":{
            "network":"fast-ethernet",
            "children":[
              {"network":"gigabit-ethernet","egress":"fast-ethernet",
               "children":[{"processors":16,"lambda_per_s":100},
                           {"processors":8,"lambda_per_s":50}]},
              {"network":"gigabit-ethernet","egress":"fast-ethernet",
               "children":[{"processors":32,"lambda_per_s":75}]}]},
          "message_bytes":1024}})");
  EXPECT_EQ(warm, reply);
  EXPECT_EQ(service.counters().evaluations, 1u);
}

// ---------------------------------------------------------------------------
// WorkStealingPool

TEST(ServePool, RunsEverythingAndBoundsTheQueue) {
  serve::WorkStealingPool pool(2, 4);
  std::atomic<int> ran{0};
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  // Block both workers so submissions pile up in the queue.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.try_submit([&] {
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
      ran.fetch_add(1);
    }));
  }
  // Wait for the workers to pick the blockers up so the queue is empty.
  while (pool.queued() != 0) std::this_thread::yield();
  int accepted = 0;
  int refused = 0;
  for (int i = 0; i < 16; ++i) {
    if (pool.try_submit([&] { ran.fetch_add(1); })) {
      ++accepted;
    } else {
      ++refused;
    }
  }
  EXPECT_EQ(accepted, 4);  // bounded at queue_limit
  EXPECT_EQ(refused, 12);
  {
    const std::scoped_lock lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  pool.drain();
  EXPECT_EQ(ran.load(), 2 + accepted);  // drain ran every accepted task
  EXPECT_FALSE(pool.try_submit([] {}));  // drained pool refuses work
}

// ---------------------------------------------------------------------------
// ServeServer over real sockets

class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                        sizeof address),
              0)
        << std::strerror(errno);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_line(const std::string& line) {
    const std::string frame = line + "\n";
    ASSERT_EQ(::send(fd_, frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
  }

  /// Reads reply lines until EOF (the server closing the socket).
  std::vector<std::string> read_until_eof() {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t received = ::recv(fd_, chunk, sizeof chunk, 0);
      if (received <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(received));
      for (;;) {
        const std::size_t newline = buffer.find('\n');
        if (newline == std::string::npos) break;
        lines.push_back(buffer.substr(0, newline));
        buffer.erase(0, newline + 1);
      }
    }
    return lines;
  }

 private:
  int fd_ = -1;
};

TEST(ServeServer, DrainAnswersEveryAcceptedRequest) {
  serve::ServeServer::Options options;
  // One worker + distinct multi-millisecond keys: when the shutdown
  // lands, most accepted requests are still waiting in the pool's
  // queue, which is exactly what the drain must not lose.
  options.threads = 1;
  serve::ServeServer server(options);
  const std::uint16_t port = server.start();
  std::thread accept_thread([&] { server.serve(); });

  constexpr int kRequests = 12;
  TestClient client(port);
  for (int i = 0; i < kRequests; ++i) {
    client.send_line(
        R"({"id":)" + std::to_string(i) +
        R"(,"backend":{"type":"analytic","model":"mva"},)" +
        R"("config":{"clusters":8,"total_nodes":65536,"message_bytes":)" +
        std::to_string(1024 + i) + "}}");
  }
  // Wait until every line has been read off the socket (a byte still in
  // the client's Nagle buffer was never accepted by the server), then
  // shut down with the bulk of the work still queued.
  while (server.stats().lines < kRequests) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.shutdown();
  accept_thread.join();

  const std::vector<std::string> replies = client.read_until_eof();
  ASSERT_EQ(replies.size(), static_cast<std::size_t>(kRequests));
  std::vector<bool> seen(kRequests, false);
  for (const std::string& reply : replies) {
    EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos) << reply;
    const JsonValue doc = parse_json(reply);
    seen[static_cast<int>(doc.at("id").as_number())] = true;
  }
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(seen[i]) << "request " << i << " was never answered";
  }
  EXPECT_EQ(server.service().counters().ok,
            static_cast<std::uint64_t>(kRequests));  // all distinct keys
}

TEST(ServeServer, ServesColdAndWarmOverTcp) {
  serve::ServeServer::Options options;
  options.threads = 2;
  serve::ServeServer server(options);
  const std::uint16_t port = server.start();
  std::thread accept_thread([&] { server.serve(); });

  {
    TestClient client(port);
    client.send_line(kTinyRequest);
    client.send_line(kTinyRequest);
    client.send_line("garbage");
    // Give the daemon time to answer, then stop; drain flushes replies.
    while (server.service().counters().requests < 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.shutdown();
    accept_thread.join();

    const std::vector<std::string> replies = client.read_until_eof();
    ASSERT_EQ(replies.size(), 3u);
    int ok = 0;
    int errors = 0;
    for (const std::string& reply : replies) {
      if (reply.find("\"status\":\"ok\"") != std::string::npos) ++ok;
      if (reply.find("\"status\":\"error\"") != std::string::npos) ++errors;
    }
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(errors, 1);
  }
  // Under load (e.g. sanitizer builds) the second identical request can
  // land while the first is still evaluating, in which case it
  // coalesces onto the in-flight evaluation instead of hitting the
  // cache. Either way it must have been served without recomputation.
  EXPECT_EQ(server.service().cache_stats().hits +
                server.service().counters().coalesced,
            1u);
}

}  // namespace
