// Binary switch tree: the paper's Section 5.1 bisection-width-1 example.

#include <gtest/gtest.h>

#include "hmcs/topology/bisection.hpp"
#include "hmcs/topology/switch_tree.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::topology::Graph;
using hmcs::topology::NodeKind;
using hmcs::topology::SwitchTree;

TEST(SwitchTree, CountsFollowCompleteBinaryTree) {
  const SwitchTree tree(3, 4);
  EXPECT_EQ(tree.num_switches(), 7u);
  EXPECT_EQ(tree.num_leaves(), 4u);
  EXPECT_EQ(tree.num_endpoints(), 16u);
}

TEST(SwitchTree, BisectionWidthIsOne) {
  // "the bisection width of a tree is 1, since if either link connected
  // to the root is removed the tree is split into two subtrees" (§5.1).
  const SwitchTree tree(3, 4);
  EXPECT_EQ(tree.bisection_width(), 1u);
  EXPECT_EQ(hmcs::topology::measured_bisection_cables(tree.build_graph()), 1u);
}

TEST(SwitchTree, SingleSwitchIsAStar) {
  const SwitchTree star(1, 8);
  EXPECT_EQ(star.num_switches(), 1u);
  EXPECT_EQ(star.bisection_width(), 4u);
  EXPECT_EQ(hmcs::topology::measured_bisection_cables(star.build_graph()), 4u);
}

TEST(SwitchTree, TraversalsThroughCommonAncestor) {
  const SwitchTree tree(3, 2);  // 4 leaves, 2 endpoints each
  EXPECT_EQ(tree.switch_traversals(0, 0), 0u);
  EXPECT_EQ(tree.switch_traversals(0, 1), 1u);  // same leaf
  EXPECT_EQ(tree.switch_traversals(0, 2), 3u);  // sibling leaves
  EXPECT_EQ(tree.switch_traversals(0, 7), 5u);  // across the root
  EXPECT_EQ(tree.switch_traversals(7, 0), 5u);
}

TEST(SwitchTree, GraphShape) {
  const SwitchTree tree(3, 4);
  const Graph g = tree.build_graph();
  EXPECT_EQ(g.count_nodes(NodeKind::kEndpoint), 16u);
  EXPECT_EQ(g.count_nodes(NodeKind::kSwitch), 7u);
  // 16 endpoint links + 6 internal tree links.
  EXPECT_EQ(g.total_cables(), 22u);
}

TEST(SwitchTree, RejectsBadParameters) {
  EXPECT_THROW(SwitchTree(0, 4), hmcs::ConfigError);
  EXPECT_THROW(SwitchTree(33, 4), hmcs::ConfigError);
  EXPECT_THROW(SwitchTree(3, 0), hmcs::ConfigError);
}

}  // namespace
