// Exact MVA solver: closed-form checks on canonical closed networks and
// asymptotic (bottleneck/machine-repairman) laws.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "hmcs/analytic/mva.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/analytic/service_time.hpp"
#include "hmcs/util/cancel.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::analytic;

TEST(Mva, SingleCustomerSeesNoQueueing) {
  // n=1: response time is the bare service time everywhere.
  const std::vector<MvaStation> stations{{1.0, 0.5}, {2.0, 1.0}};
  const MvaResult result = solve_closed_mva(stations, 10.0, 1);
  EXPECT_DOUBLE_EQ(result.response_time_us[0], 2.0);
  EXPECT_DOUBLE_EQ(result.response_time_us[1], 1.0);
  // X = 1 / (Z + v1 W1 + v2 W2) = 1/(10 + 2 + 2).
  EXPECT_NEAR(result.throughput, 1.0 / 14.0, 1e-12);
}

TEST(Mva, TwoCustomersCentralServer) {
  // Hand-run of the recursion: one station (v=1, mu=1), Z=0.
  // n=1: W=1, X=1, L=1. n=2: W=2, X=2/2=1, L=2.
  const std::vector<MvaStation> stations{{1.0, 1.0}};
  const MvaResult result = solve_closed_mva(stations, 0.0, 2);
  EXPECT_DOUBLE_EQ(result.response_time_us[0], 2.0);
  EXPECT_DOUBLE_EQ(result.throughput, 1.0);
  EXPECT_DOUBLE_EQ(result.queue_length[0], 2.0);
}

TEST(Mva, LittleLawHoldsPerStation) {
  const std::vector<MvaStation> stations{{0.5, 0.01}, {1.0, 0.02}, {0.25, 0.005}};
  const MvaResult result = solve_closed_mva(stations, 100.0, 40);
  for (std::size_t i = 0; i < stations.size(); ++i) {
    EXPECT_NEAR(result.queue_length[i],
                result.throughput * stations[i].visit_ratio *
                    result.response_time_us[i],
                1e-9);
  }
  // Population is conserved: customers are thinking or queued.
  double total_queued = 0.0;
  for (const double l : result.queue_length) total_queued += l;
  const double thinking = result.throughput * 100.0;
  EXPECT_NEAR(total_queued + thinking, 40.0, 1e-9);
}

TEST(Mva, BottleneckLawAtLargePopulation) {
  // X(N) -> min_i mu_i / v_i as N grows.
  const std::vector<MvaStation> stations{{1.0, 0.02}, {1.0, 0.05}};
  const MvaResult result = solve_closed_mva(stations, 50.0, 500);
  EXPECT_NEAR(result.throughput, 0.02, 1e-4);
  // Nearly every customer queues at the bottleneck.
  EXPECT_GT(result.queue_length[0], 450.0);
  EXPECT_LT(result.queue_length[1], 5.0);
}

TEST(Mva, ThroughputMonotoneInPopulation) {
  const std::vector<MvaStation> stations{{1.0, 0.01}};
  double previous = 0.0;
  for (const std::uint64_t n : {1ULL, 2ULL, 5ULL, 20ULL, 100ULL}) {
    const double x = solve_closed_mva(stations, 200.0, n).throughput;
    EXPECT_GT(x, previous);
    previous = x;
  }
  EXPECT_LE(previous, 0.01 + 1e-12);  // never exceeds bottleneck capacity
}

TEST(Mva, ZeroVisitStationIsInert) {
  const std::vector<MvaStation> with{{1.0, 0.01}, {0.0, 1e-9}};
  const std::vector<MvaStation> without{{1.0, 0.01}};
  const MvaResult a = solve_closed_mva(with, 100.0, 30);
  const MvaResult b = solve_closed_mva(without, 100.0, 30);
  EXPECT_NEAR(a.throughput, b.throughput, 1e-12);
  EXPECT_DOUBLE_EQ(a.queue_length[1], 0.0);
}

TEST(Mva, HmcsLayoutMatchesArrivalRateShape) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 4, NetworkArchitecture::kNonBlocking, 1024.0);
  const CenterServiceTimes service = center_service_times(config);
  const HmcsMvaLayout layout = build_hmcs_mva_layout(config, service);
  ASSERT_EQ(layout.stations.size(), 2u * 4u + 1u);
  // Visit ratios sum to (1-P) + 2P + P = 1 + 2P per cycle.
  double visits = 0.0;
  for (const auto& s : layout.stations) visits += s.visit_ratio;
  const double p = 192.0 / 255.0;
  EXPECT_NEAR(visits, 1.0 + 2.0 * p, 1e-12);
  // Station groups are internally identical.
  EXPECT_DOUBLE_EQ(layout.stations[layout.icn1_index].visit_ratio,
                   layout.stations[layout.icn1_index + 3].visit_ratio);
  EXPECT_DOUBLE_EQ(layout.stations[layout.ecn1_index].service_rate,
                   service.ecn1.service_rate());
  EXPECT_DOUBLE_EQ(layout.stations[layout.icn2_index].visit_ratio, p);
}

// ------------------------------------------- multi-class approximate MVA

TEST(Amva, SingleClassMatchesExactMvaClosely) {
  // Bard-Schweitzer against the exact recursion on the same network.
  const std::vector<MvaStation> stations{{0.5, 0.01}, {1.0, 0.02},
                                         {0.25, 0.004}};
  const std::vector<double> rates{0.01, 0.02, 0.004};
  for (const std::uint64_t population : {1ULL, 4ULL, 32ULL, 256ULL}) {
    const MvaResult exact = solve_closed_mva(stations, 150.0, population);
    MvaClass cls;
    cls.population = population;
    cls.think_time_us = 150.0;
    cls.visit_ratios = {0.5, 1.0, 0.25};
    const MultiClassMvaResult approx = solve_multiclass_amva(rates, {cls});
    ASSERT_TRUE(approx.converged);
    EXPECT_NEAR(approx.throughput[0], exact.throughput,
                0.05 * exact.throughput)
        << "population=" << population;
  }
}

TEST(Amva, SingleCustomerIsExact) {
  // With N=1 the self-exclusion term vanishes and AMVA is exact.
  const std::vector<double> rates{0.01, 0.05};
  MvaClass cls;
  cls.population = 1;
  cls.think_time_us = 10.0;
  cls.visit_ratios = {1.0, 2.0};
  const MultiClassMvaResult result = solve_multiclass_amva(rates, {cls});
  // W_i = 1/mu_i; X = 1/(Z + v.W) = 1/(10 + 100 + 40).
  EXPECT_NEAR(result.throughput[0], 1.0 / 150.0, 1e-9);
  EXPECT_NEAR(result.response_time_us[0][0], 100.0, 1e-9);
}

TEST(Amva, SymmetricClassesShareTheNetworkEqually) {
  const std::vector<double> rates{0.02};
  MvaClass cls;
  cls.population = 10;
  cls.think_time_us = 500.0;
  cls.visit_ratios = {1.0};
  const MultiClassMvaResult result =
      solve_multiclass_amva(rates, {cls, cls});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.throughput[0], result.throughput[1], 1e-9);
  // Two identical classes of 10 vs one class of 20: near-identical
  // aggregate throughput.
  MvaClass merged = cls;
  merged.population = 20;
  const MultiClassMvaResult single = solve_multiclass_amva(rates, {merged});
  EXPECT_NEAR(result.throughput[0] + result.throughput[1],
              single.throughput[0], 0.02 * single.throughput[0]);
}

TEST(Amva, HeavierClassDominatesStationQueue) {
  const std::vector<double> rates{0.01, 0.01};
  MvaClass a;  // hammers station 0
  a.population = 20;
  a.think_time_us = 100.0;
  a.visit_ratios = {1.0, 0.0};
  MvaClass b = a;  // hammers station 1, but thinks much longer
  b.think_time_us = 10000.0;
  b.visit_ratios = {0.0, 1.0};
  const MultiClassMvaResult result = solve_multiclass_amva(rates, {a, b});
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.queue_length[0], 5.0 * result.queue_length[1]);
}

TEST(Amva, PopulationConserved) {
  const std::vector<double> rates{0.01, 0.02, 0.004};
  MvaClass a;
  a.population = 12;
  a.think_time_us = 300.0;
  a.visit_ratios = {1.0, 0.5, 0.25};
  MvaClass b;
  b.population = 30;
  b.think_time_us = 800.0;
  b.visit_ratios = {0.0, 1.0, 0.5};
  const MultiClassMvaResult result = solve_multiclass_amva(rates, {a, b});
  ASSERT_TRUE(result.converged);
  double queued = 0.0;
  for (const double l : result.queue_length) queued += l;
  const double thinking =
      result.throughput[0] * 300.0 + result.throughput[1] * 800.0;
  EXPECT_NEAR(queued + thinking, 42.0, 0.01);
}

TEST(Amva, Validation) {
  const std::vector<double> rates{0.01};
  MvaClass cls;
  cls.population = 2;
  cls.think_time_us = 1.0;
  cls.visit_ratios = {1.0};
  EXPECT_THROW(solve_multiclass_amva({}, {cls}), hmcs::ConfigError);
  EXPECT_THROW(solve_multiclass_amva(rates, {}), hmcs::ConfigError);
  MvaClass bad = cls;
  bad.population = 0;
  EXPECT_THROW(solve_multiclass_amva(rates, {bad}), hmcs::ConfigError);
  bad = cls;
  bad.visit_ratios = {1.0, 2.0};  // wrong width
  EXPECT_THROW(solve_multiclass_amva(rates, {bad}), hmcs::ConfigError);
  EXPECT_THROW(solve_multiclass_amva({0.0}, {cls}), hmcs::ConfigError);
}

TEST(Mva, Validation) {
  EXPECT_THROW(solve_closed_mva({{1.0, 1.0}}, -1.0, 10), hmcs::ConfigError);
  EXPECT_THROW(solve_closed_mva({{1.0, 1.0}}, 1.0, 0), hmcs::ConfigError);
  EXPECT_THROW(solve_closed_mva({{-1.0, 1.0}}, 1.0, 10), hmcs::ConfigError);
  EXPECT_THROW(solve_closed_mva({{1.0, 0.0}}, 1.0, 10), hmcs::ConfigError);
}

// --- Station-class collapse ------------------------------------------------

/// Expands a class list into the equivalent flat station list.
std::vector<MvaStation> expand_classes(
    const std::vector<MvaStationClass>& classes) {
  std::vector<MvaStation> stations;
  for (const MvaStationClass& cls : classes) {
    for (std::uint64_t i = 0; i < cls.multiplicity; ++i) {
      stations.push_back(MvaStation{cls.visit_ratio, cls.service_rate});
    }
  }
  return stations;
}

double rel_diff(double a, double b) {
  const double denom = std::max(std::fabs(a), std::fabs(b));
  return denom > 0.0 ? std::fabs(a - b) / denom : 0.0;
}

TEST(MvaClasses, CollapseMatchesScalarOnRandomizedNetworks) {
  // Property: the class recursion is the scalar recursion with identical
  // stations deduplicated, so every observable agrees to rounding
  // (<= 1e-12 relative; only the cycle-sum association differs).
  std::mt19937_64 rng(20260807);
  std::uniform_real_distribution<double> visit(0.05, 2.0);
  std::uniform_real_distribution<double> mu(0.005, 1.0);
  std::uniform_real_distribution<double> think(0.0, 200.0);
  std::uniform_int_distribution<int> n_classes(1, 4);
  std::uniform_int_distribution<std::uint64_t> multiplicity(1, 6);
  std::uniform_int_distribution<std::uint64_t> population(1, 80);

  for (int trial = 0; trial < 50; ++trial) {
    std::vector<MvaStationClass> classes;
    const int k = n_classes(rng);
    for (int c = 0; c < k; ++c) {
      classes.push_back(
          MvaStationClass{visit(rng), mu(rng), multiplicity(rng)});
    }
    const double z = think(rng);
    const std::uint64_t n = population(rng);

    const MvaResult scalar = solve_closed_mva(expand_classes(classes), z, n);
    const MvaClassResult collapsed = solve_closed_mva_classes(classes, z, n);

    EXPECT_LE(rel_diff(scalar.throughput, collapsed.throughput), 1e-12);
    EXPECT_LE(rel_diff(scalar.total_residence_us,
                       collapsed.total_residence_us),
              1e-12);
    std::size_t station = 0;
    for (std::size_t c = 0; c < classes.size(); ++c) {
      for (std::uint64_t i = 0; i < classes[c].multiplicity; ++i, ++station) {
        EXPECT_LE(rel_diff(scalar.response_time_us[station],
                           collapsed.response_time_us[c]),
                  1e-12);
        EXPECT_LE(rel_diff(scalar.queue_length[station],
                           collapsed.queue_length[c]),
                  1e-12);
      }
    }
  }
}

TEST(MvaClasses, HmcsClassLayoutMatchesStationLayout) {
  const SystemConfig config =
      paper_scenario(HeterogeneityCase::kCase1, 8,
                     NetworkArchitecture::kNonBlocking, 1024.0);
  const CenterServiceTimes service = center_service_times(config);
  const double think = 1.0 / config.generation_rate_per_us;

  const HmcsMvaLayout stations = build_hmcs_mva_layout(config, service);
  const HmcsMvaClassLayout classes =
      build_hmcs_mva_class_layout(config, service);
  ASSERT_EQ(classes.classes.size(), 3u);
  EXPECT_EQ(classes.classes[classes.icn1_class].multiplicity,
            config.clusters);
  EXPECT_EQ(classes.classes[classes.ecn1_class].multiplicity,
            config.clusters);
  EXPECT_EQ(classes.classes[classes.icn2_class].multiplicity, 1u);

  const MvaResult by_station =
      solve_closed_mva(stations.stations, think, config.total_nodes());
  const MvaClassResult by_class = solve_closed_mva_classes(
      classes.classes, think, config.total_nodes());

  EXPECT_LE(rel_diff(by_station.throughput, by_class.throughput), 1e-12);
  EXPECT_LE(rel_diff(by_station.response_time_us[stations.icn1_index],
                     by_class.response_time_us[classes.icn1_class]),
            1e-12);
  EXPECT_LE(rel_diff(by_station.response_time_us[stations.ecn1_index],
                     by_class.response_time_us[classes.ecn1_class]),
            1e-12);
  EXPECT_LE(rel_diff(by_station.response_time_us[stations.icn2_index],
                     by_class.response_time_us[classes.icn2_class]),
            1e-12);
}

TEST(MvaClasses, CancelTokenUnwindsTheRecursion) {
  const std::vector<MvaStationClass> classes{{1.0, 0.5, 4}};
  hmcs::util::CancelToken token;
  token.cancel();
  EXPECT_THROW(solve_closed_mva_classes(classes, 10.0, 100000, &token),
               hmcs::Cancelled);

  hmcs::util::CancelToken deadline;
  deadline.set_deadline_after_ms(1e-6);
  EXPECT_THROW(solve_closed_mva_classes(classes, 10.0, 1u << 24, &deadline),
               hmcs::DeadlineExceeded);
  // The scalar recursion polls the same token.
  EXPECT_THROW(
      solve_closed_mva(expand_classes(classes), 10.0, 1u << 24, &deadline),
      hmcs::DeadlineExceeded);
}

TEST(MvaClasses, Validation) {
  EXPECT_THROW(solve_closed_mva_classes({{1.0, 1.0, 0}}, 1.0, 10),
               hmcs::ConfigError);
  EXPECT_THROW(solve_closed_mva_classes({{1.0, 0.0, 1}}, 1.0, 10),
               hmcs::ConfigError);
  EXPECT_THROW(solve_closed_mva_classes({{-1.0, 1.0, 1}}, 1.0, 10),
               hmcs::ConfigError);
  EXPECT_THROW(solve_closed_mva_classes({{1.0, 1.0, 1}}, 1.0, 0),
               hmcs::ConfigError);
}

}  // namespace
