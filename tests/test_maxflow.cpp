// Dinic max-flow and the Graph container.

#include <gtest/gtest.h>

#include "hmcs/topology/graph.hpp"
#include "hmcs/topology/maxflow.hpp"
#include "hmcs/util/error.hpp"

namespace {

using hmcs::topology::Graph;
using hmcs::topology::MaxFlow;
using hmcs::topology::NodeKind;

TEST(MaxFlow, SingleEdge) {
  MaxFlow f(2);
  f.add_edge(0, 1, 7);
  EXPECT_EQ(f.solve(0, 1), 7u);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  MaxFlow f(3);
  f.add_edge(0, 1, 10);
  f.add_edge(1, 2, 4);
  EXPECT_EQ(f.solve(0, 2), 4u);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow f(4);
  f.add_edge(0, 1, 3);
  f.add_edge(1, 3, 3);
  f.add_edge(0, 2, 5);
  f.add_edge(2, 3, 5);
  EXPECT_EQ(f.solve(0, 3), 8u);
}

TEST(MaxFlow, ClassicTextbookNetwork) {
  // CLRS-style example with a known max flow of 23.
  MaxFlow f(6);
  f.add_edge(0, 1, 16);
  f.add_edge(0, 2, 13);
  f.add_edge(1, 2, 10);
  f.add_edge(2, 1, 4);
  f.add_edge(1, 3, 12);
  f.add_edge(3, 2, 9);
  f.add_edge(2, 4, 14);
  f.add_edge(4, 3, 7);
  f.add_edge(3, 5, 20);
  f.add_edge(4, 5, 4);
  EXPECT_EQ(f.solve(0, 5), 23u);
}

TEST(MaxFlow, UndirectedEdgesCarryFlowEitherWay) {
  MaxFlow f(3);
  f.add_undirected_edge(0, 1, 5);
  f.add_undirected_edge(1, 2, 5);
  EXPECT_EQ(f.solve(2, 0), 5u);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(4);
  f.add_edge(0, 1, 5);
  f.add_edge(2, 3, 5);
  EXPECT_EQ(f.solve(0, 3), 0u);
}

TEST(MaxFlow, MinCutSeparatesSourceSide) {
  MaxFlow f(4);
  f.add_edge(0, 1, 100);
  f.add_edge(1, 2, 1);  // the bottleneck
  f.add_edge(2, 3, 100);
  EXPECT_EQ(f.solve(0, 3), 1u);
  const auto side = f.min_cut_source_side();
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(MaxFlow, Validation) {
  MaxFlow f(2);
  EXPECT_THROW(f.add_edge(0, 0, 1), hmcs::ConfigError);
  EXPECT_THROW(f.add_edge(0, 5, 1), hmcs::ConfigError);
  EXPECT_THROW(f.solve(0, 0), hmcs::ConfigError);
  EXPECT_THROW(f.min_cut_source_side(), hmcs::ConfigError);
  f.add_edge(0, 1, 1);
  f.solve(0, 1);
  EXPECT_THROW(f.solve(0, 1), hmcs::ConfigError);  // single-shot
  EXPECT_THROW(f.add_edge(0, 1, 1), hmcs::ConfigError);
}

// ------------------------------------------------------------------ Graph

TEST(GraphContainer, MergesParallelLinks) {
  Graph g;
  const auto a = g.add_node(NodeKind::kSwitch, 1, 0);
  const auto b = g.add_node(NodeKind::kSwitch, 2, 0);
  g.add_link(a, b);
  g.add_link(b, a, 2);  // same pair, opposite order
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_EQ(g.total_cables(), 3u);
  EXPECT_EQ(g.degree(a), 3u);
}

TEST(GraphContainer, CutCablesCountsCrossingMultiplicity) {
  Graph g;
  const auto a = g.add_node(NodeKind::kEndpoint, 0, 0);
  const auto b = g.add_node(NodeKind::kEndpoint, 0, 1);
  const auto s = g.add_node(NodeKind::kSwitch, 1, 0);
  g.add_link(a, s, 2);
  g.add_link(b, s, 3);
  EXPECT_EQ(g.cut_cables({true, false, true}), 3u);
  EXPECT_EQ(g.cut_cables({true, false, false}), 2u);
  EXPECT_THROW(g.cut_cables({true}), hmcs::ConfigError);
}

TEST(GraphContainer, Validation) {
  Graph g;
  const auto a = g.add_node(NodeKind::kEndpoint, 0, 0);
  EXPECT_THROW(g.add_link(a, a), hmcs::ConfigError);
  EXPECT_THROW(g.add_link(a, 5), hmcs::ConfigError);
  EXPECT_THROW(g.node(3), hmcs::ConfigError);
  EXPECT_THROW(g.degree(3), hmcs::ConfigError);
}

TEST(GraphContainer, EndpointsInCreationOrder) {
  Graph g;
  g.add_node(NodeKind::kSwitch, 1, 0);
  const auto e0 = g.add_node(NodeKind::kEndpoint, 0, 0);
  const auto e1 = g.add_node(NodeKind::kEndpoint, 0, 1);
  const auto endpoints = g.endpoints();
  ASSERT_EQ(endpoints.size(), 2u);
  EXPECT_EQ(endpoints[0], e0);
  EXPECT_EQ(endpoints[1], e1);
}

}  // namespace
