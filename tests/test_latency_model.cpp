// End-to-end analytical model: eq. (15) assembly, degenerate cases, and
// the qualitative properties the paper reports (C=16 dip, blocking much
// slower than non-blocking, message-size monotonicity).

#include <gtest/gtest.h>

#include <cmath>

#include "hmcs/analytic/latency_model.hpp"
#include "hmcs/analytic/scenario.hpp"
#include "hmcs/util/error.hpp"

namespace {

using namespace hmcs::analytic;

ModelOptions mva_options() {
  ModelOptions options;
  options.fixed_point.method = SourceThrottling::kExactMva;
  return options;
}

TEST(LatencyModel, SingleClusterUsesOnlyIcn1) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 1, NetworkArchitecture::kNonBlocking, 1024.0);
  const LatencyPrediction prediction = predict_latency(config);
  EXPECT_DOUBLE_EQ(prediction.inter_cluster_probability, 0.0);
  EXPECT_DOUBLE_EQ(prediction.ecn1.arrival_rate, 0.0);
  EXPECT_DOUBLE_EQ(prediction.icn2.arrival_rate, 0.0);
  EXPECT_DOUBLE_EQ(prediction.mean_latency_us, prediction.icn1.response_time_us);
}

TEST(LatencyModel, FullyDispersedUsesOnlyRemotePath) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 256, NetworkArchitecture::kNonBlocking, 1024.0);
  const LatencyPrediction prediction = predict_latency(config);
  EXPECT_DOUBLE_EQ(prediction.inter_cluster_probability, 1.0);
  EXPECT_DOUBLE_EQ(prediction.icn1.arrival_rate, 0.0);
  EXPECT_NEAR(prediction.mean_latency_us,
              prediction.icn2.response_time_us +
                  2.0 * prediction.ecn1.response_time_us,
              1e-9);
}

TEST(LatencyModel, Eq15AssemblyAtLightLoad) {
  const SystemConfig config =
      paper_scenario(HeterogeneityCase::kCase2, 8,
                     NetworkArchitecture::kNonBlocking, 512.0, 256,
                     kPaperLiteralRatePerUs);
  const LatencyPrediction prediction = predict_latency(config);
  const double p = prediction.inter_cluster_probability;
  EXPECT_NEAR(prediction.mean_latency_us,
              (1.0 - p) * prediction.icn1.response_time_us +
                  p * (prediction.icn2.response_time_us +
                       2.0 * prediction.ecn1.response_time_us),
              1e-9);
  // At 0.25 msg/s the response times collapse to the service times.
  EXPECT_NEAR(prediction.icn1.response_time_us,
              1.0 / prediction.icn1.service_rate,
              1e-3 / prediction.icn1.service_rate);
}

TEST(LatencyModel, LargerMessagesAreSlower) {
  for (const auto arch : {NetworkArchitecture::kNonBlocking,
                          NetworkArchitecture::kBlocking}) {
    const auto small = predict_latency(paper_scenario(
        HeterogeneityCase::kCase1, 8, arch, 512.0));
    const auto large = predict_latency(paper_scenario(
        HeterogeneityCase::kCase1, 8, arch, 1024.0));
    EXPECT_GT(large.mean_latency_us, small.mean_latency_us);
  }
}

TEST(LatencyModel, BlockingSlowerThanNonBlockingEverywhere) {
  // The headline comparison of Figures 4/6 and 5/7.
  for (const std::uint32_t clusters : {1u, 2u, 4u, 16u, 64u, 256u}) {
    for (const auto hetero :
         {HeterogeneityCase::kCase1, HeterogeneityCase::kCase2}) {
      const auto nonblocking = predict_latency(paper_scenario(
          hetero, clusters, NetworkArchitecture::kNonBlocking, 1024.0));
      const auto blocking = predict_latency(paper_scenario(
          hetero, clusters, NetworkArchitecture::kBlocking, 1024.0));
      EXPECT_GT(blocking.mean_latency_us, nonblocking.mean_latency_us)
          << "C=" << clusters;
    }
  }
}

TEST(LatencyModel, SingleSwitchCollapseShowsAtC16) {
  // The paper: "when the number of clusters is equal to 16, we
  // experience a different behavior ... because the number of clusters
  // and the number of nodes in each cluster are less than the number of
  // ports". At light load this appears as a pure service-time drop.
  auto latency_at = [](std::uint32_t clusters) {
    return predict_latency(
               paper_scenario(HeterogeneityCase::kCase1, clusters,
                              NetworkArchitecture::kNonBlocking, 1024.0, 256,
                              kPaperLiteralRatePerUs))
        .mean_latency_us;
  };
  // Service time at C=16 (one-switch networks everywhere) is lower than
  // the trend from its neighbours with multi-stage fabrics.
  const double c8 = latency_at(8);
  const double c16 = latency_at(16);
  const double c32 = latency_at(32);
  EXPECT_LT(c16, c32);
  // The knee: the drop 8->16 is much larger than the smooth P-driven
  // drift would produce, and 16->32 bounces back up.
  EXPECT_LT(c16, c8 + 1.0);
  EXPECT_GT(c32 - c16, 15.0);  // two extra switch hops on both fabrics
}

TEST(LatencyModel, SaturatedSystemStillReturnsFiniteLatency) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 4, NetworkArchitecture::kBlocking, 1024.0);
  const LatencyPrediction prediction = predict_latency(config);
  EXPECT_TRUE(std::isfinite(prediction.mean_latency_us));
  EXPECT_GT(prediction.mean_latency_us, 0.0);
  EXPECT_LT(prediction.lambda_effective, config.generation_rate_per_us);
}

TEST(LatencyModel, MvaAndBisectionAgreeAtLightLoad) {
  const SystemConfig config =
      paper_scenario(HeterogeneityCase::kCase1, 8,
                     NetworkArchitecture::kNonBlocking, 1024.0, 256,
                     kPaperLiteralRatePerUs);
  const auto open = predict_latency(config);
  const auto closed = predict_latency(config, mva_options());
  EXPECT_NEAR(open.mean_latency_us, closed.mean_latency_us,
              0.01 * open.mean_latency_us);
}

TEST(LatencyModel, MvaLatencyEqualsCycleIdentity) {
  // MVA invariant: mean latency = N/X - Z.
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase2, 16, NetworkArchitecture::kNonBlocking, 512.0);
  const auto prediction = predict_latency(config, mva_options());
  const double n = static_cast<double>(config.total_nodes());
  const double x = prediction.lambda_effective * n;
  const double z = 1.0 / config.generation_rate_per_us;
  EXPECT_NEAR(prediction.mean_latency_us, n / x - z,
              1e-6 * prediction.mean_latency_us);
}

TEST(LatencyModel, Case2SingleClusterSlowerThanCase1) {
  // C=1 traffic rides ICN1 only: GE in Case 1, FE in Case 2.
  const auto case1 = predict_latency(paper_scenario(
      HeterogeneityCase::kCase1, 1, NetworkArchitecture::kNonBlocking, 1024.0));
  const auto case2 = predict_latency(paper_scenario(
      HeterogeneityCase::kCase2, 1, NetworkArchitecture::kNonBlocking, 1024.0));
  EXPECT_GT(case2.mean_latency_us, case1.mean_latency_us);
}

TEST(LatencyModel, UtilizationsAreReported) {
  const SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking, 1024.0);
  const auto prediction = predict_latency(config);
  EXPECT_GE(prediction.icn1.utilization, 0.0);
  EXPECT_LT(prediction.icn1.utilization, 1.0);
  EXPECT_LT(prediction.ecn1.utilization, 1.0);
  EXPECT_LT(prediction.icn2.utilization, 1.0);
  EXPECT_GT(prediction.ecn1.utilization, prediction.icn1.utilization);
}

TEST(LatencyModel, RejectsInvalidConfig) {
  SystemConfig config = paper_scenario(
      HeterogeneityCase::kCase1, 8, NetworkArchitecture::kNonBlocking, 1024.0);
  config.message_bytes = -1.0;
  EXPECT_THROW(predict_latency(config), hmcs::ConfigError);
  config = paper_scenario(HeterogeneityCase::kCase1, 8,
                          NetworkArchitecture::kNonBlocking, 1024.0);
  config.clusters = 0;
  EXPECT_THROW(predict_latency(config), hmcs::ConfigError);
}

}  // namespace
