#include <gtest/gtest.h>

#include "hmcs/util/ascii_chart.hpp"
#include "hmcs/util/error.hpp"
#include "hmcs/util/string_util.hpp"

namespace {

using hmcs::AsciiChart;

std::vector<std::string> lines_of(const std::string& text) {
  return hmcs::split(text, '\n');
}

TEST(AsciiChart, RampPlacesMarkersMonotonically) {
  AsciiChart chart(32, 8);
  chart.add_series("ramp", {0.0, 1.0, 2.0, 3.0}, '*');
  const std::string out = chart.render({"a", "b", "c", "d"}, "y");
  const auto lines = lines_of(out);
  // Find the row of each '*' per column; rows must decrease (higher
  // values sit higher on the chart).
  std::vector<int> star_rows;
  for (std::size_t row = 1; row <= 8; ++row) {
    for (std::size_t col = 0; col < lines[row].size(); ++col) {
      if (lines[row][col] == '*') star_rows.push_back(static_cast<int>(row));
    }
  }
  ASSERT_EQ(star_rows.size(), 4u);  // one star per point
  // Rows are scanned top-down, so earlier-found stars are higher values.
  EXPECT_TRUE(std::is_sorted(star_rows.begin(), star_rows.end()));
}

TEST(AsciiChart, CollisionsMarkedWithHash) {
  AsciiChart chart(16, 6);
  chart.add_series("a", {5.0, 1.0}, '*');
  chart.add_series("b", {5.0, 2.0}, 'o');
  const std::string out = chart.render({"x", "y"}, "v");
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("(# = overlap)"), std::string::npos);
}

TEST(AsciiChart, LegendAndAxisLabelsPresent) {
  AsciiChart chart(24, 6);
  chart.add_series("analysis", {1.0, 2.0}, '*');
  chart.add_series("simulation", {1.5, 2.5}, 'o');
  const std::string out = chart.render({"1", "2"}, "latency");
  EXPECT_NE(out.find("* = analysis"), std::string::npos);
  EXPECT_NE(out.find("o = simulation"), std::string::npos);
  EXPECT_NE(out.find("latency"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);  // peak in header
}

TEST(AsciiChart, SinglePointCentred) {
  AsciiChart chart(20, 5);
  chart.add_series("pt", {3.0}, '*');
  const std::string out = chart.render({"only"}, "v");
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(AsciiChart, AllZeroSeriesRenders) {
  AsciiChart chart(16, 5);
  chart.add_series("zero", {0.0, 0.0, 0.0}, '*');
  EXPECT_NO_THROW(chart.render({"a", "b", "c"}, "v"));
}

TEST(AsciiChart, Validation) {
  EXPECT_THROW(AsciiChart(4, 2), hmcs::ConfigError);
  AsciiChart chart(16, 6);
  EXPECT_THROW(chart.render({}, "v"), hmcs::ConfigError);  // no series
  chart.add_series("a", {1.0, 2.0}, '*');
  EXPECT_THROW(chart.render({"one"}, "v"), hmcs::ConfigError);  // labels
  chart.add_series("b", {1.0}, 'o');  // length mismatch
  EXPECT_THROW(chart.render({"one", "two"}, "v"), hmcs::ConfigError);
  EXPECT_THROW(chart.add_series("bad", {-1.0}, 'x'), hmcs::ConfigError);
  EXPECT_THROW(chart.add_series("bad", {}, 'x'), hmcs::ConfigError);
}

}  // namespace
