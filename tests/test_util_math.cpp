#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "hmcs/util/math_util.hpp"

namespace {

using namespace hmcs;

TEST(CeilDiv, ExactDivision) {
  EXPECT_EQ(ceil_div(12, 4), 3u);
  EXPECT_EQ(ceil_div(24, 24), 1u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
}

TEST(CeilDiv, RoundsUp) {
  EXPECT_EQ(ceil_div(13, 4), 4u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(25, 24), 2u);
  EXPECT_EQ(ceil_div(255, 2), 128u);
}

TEST(CeilDiv, ZeroDivisorYieldsZero) { EXPECT_EQ(ceil_div(5, 0), 0u); }

TEST(CeilDiv, LargeValues) {
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max() - 1;
  EXPECT_EQ(ceil_div(big, big), 1u);
}

TEST(IsPowerOfTwo, Basics) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(1ULL << 63));
  EXPECT_FALSE(is_power_of_two((1ULL << 63) + 1));
}

TEST(CeilLog, MatchesDefinition) {
  // Smallest e with base^e >= x.
  EXPECT_EQ(ceil_log(2, 1), 0u);
  EXPECT_EQ(ceil_log(2, 2), 1u);
  EXPECT_EQ(ceil_log(2, 3), 2u);
  EXPECT_EQ(ceil_log(2, 8), 3u);
  EXPECT_EQ(ceil_log(2, 9), 4u);
  EXPECT_EQ(ceil_log(12, 8), 1u);    // fat-tree d=1 case (N=16, Pr=24)
  EXPECT_EQ(ceil_log(12, 128), 2u);  // fat-tree d=2 case (N=256, Pr=24)
  EXPECT_EQ(ceil_log(4, 8), 2u);     // paper's worked example (N=16, Pr=8)
}

TEST(CeilLog, RejectsBadInput) {
  EXPECT_THROW(ceil_log(1, 5), ConfigError);
  EXPECT_THROW(ceil_log(2, 0), ConfigError);
}

TEST(CeilLog, HugeInputDoesNotOverflow) {
  EXPECT_EQ(ceil_log(2, std::numeric_limits<std::uint64_t>::max()), 64u);
}

TEST(ApproxEqual, ToleratesRelativeError) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 1e-2));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_TRUE(approx_equal(1e-15, 0.0));  // under the absolute floor
}

TEST(ApproxEqual, Symmetric) {
  EXPECT_EQ(approx_equal(3.0, 3.1, 0.05), approx_equal(3.1, 3.0, 0.05));
}

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(9.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(relative_error(1.0, 0.0)));
}

}  // namespace
